"""Pytest bootstrap: make the ``src/`` layout importable without installation.

With this, a plain ``python -m pytest -q`` works from the repo root; the
``PYTHONPATH=src`` prefix (and ``pip install -e .``) remain equivalent
alternatives — see README.md.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
