#!/usr/bin/env python3
"""Background subtraction on a (synthetic) street-scene video with NMF.

This is the paper's motivating dense use case (§6.1.1): reshape every video
frame into a column, factorize the resulting tall-and-skinny matrix, and read
the rank-k reconstruction as the static background — the moving objects stay
in the residual.

Run with::

    python examples/video_background_subtraction.py
"""

from __future__ import annotations

import numpy as np

from repro import fit
from repro.data.video import VideoSceneConfig, background_foreground_split, video_matrix


def main() -> None:
    config = VideoSceneConfig(height=48, width=64, channels=3, frames=120, n_objects=5, seed=3)
    A = video_matrix(config)
    m, n = A.shape
    print("Synthetic street-scene video")
    print(f"  frames: {config.frames} of {config.height}x{config.width} RGB")
    print(f"  frames-as-columns matrix: {m} x {n} (tall and skinny, as in the paper)\n")

    # The tall-and-skinny shape makes the paper's grid rule pick a 1D grid.
    result = fit(A, 6, variant="hpc2d", n_ranks=4, max_iters=25, seed=11)
    print(f"Processor grid chosen by the §5 rule: {result.grid_shape} (1D, as expected)")
    print(f"Relative error of the rank-6 background model: {result.relative_error:.4f}\n")

    background, foreground = background_foreground_split(A, result.W, result.H)

    # Energy split: the background model should capture most of the signal,
    # and the foreground residual should be concentrated on few pixels.
    total = np.linalg.norm(A)
    print("Energy split")
    print(f"  ||A||_F              = {total:10.2f}")
    print(f"  ||background||_F     = {np.linalg.norm(background):10.2f}")
    print(f"  ||foreground||_F     = {np.linalg.norm(foreground):10.2f}")

    # Foreground sparsity: fraction of pixels carrying 90% of residual energy.
    residual_energy = np.sort((foreground**2).ravel())[::-1]
    cumulative = np.cumsum(residual_energy) / residual_energy.sum()
    pixels_for_90 = int(np.searchsorted(cumulative, 0.9)) + 1
    fraction = pixels_for_90 / foreground.size
    print(f"\n90% of the foreground energy lives in {fraction:.2%} of the pixels")
    print("(moving rectangles only), confirming the background/foreground separation.")

    # Per-frame detection: frames where objects are present have larger residual.
    per_frame = np.linalg.norm(foreground, axis=0)
    print(f"\nPer-frame residual norm: min={per_frame.min():.2f}, "
          f"median={np.median(per_frame):.2f}, max={per_frame.max():.2f}")
    print("\nPer-task time breakdown of the parallel factorization:")
    for category, seconds in sorted(result.breakdown.as_dict().items()):
        if seconds > 0:
            print(f"  {category:>14}: {seconds:.3f} s")


if __name__ == "__main__":
    main()
