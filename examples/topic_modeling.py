#!/usr/bin/env python3
"""Topic modeling on a synthetic bag-of-words matrix with sparse NMF.

The paper motivates NMF for text mining: rows of A are dictionary words,
columns are documents, A[i, j] is the count of word i in document j, and the
rank-k factors give interpretable topics (columns of W are word distributions,
columns of H are per-document topic weights).

Since no corpus ships with this reproduction, the example *plants* a topic
structure: a vocabulary partitioned into topical word groups, documents drawn
from mixtures of one or two topics, Zipf word popularity and Poisson counts.
NMF must recover the planted topics, which the script verifies.

Run with::

    python examples/topic_modeling.py
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import fit

VOCAB_SIZE = 2_000
N_DOCS = 800
N_TOPICS = 6
WORDS_PER_DOC = 120


def make_corpus(seed: int = 0):
    """Synthetic bag-of-words matrix with ``N_TOPICS`` planted topics.

    Returns ``(A, topic_of_word)`` where ``A`` is the sparse word-by-document
    count matrix and ``topic_of_word[i]`` is the dominant planted topic of
    word ``i`` (used only for evaluation).
    """
    rng = np.random.default_rng(seed)
    # Each topic owns a contiguous slice of the vocabulary plus a shared tail
    # of stop-word-like common words.
    topic_of_word = np.repeat(np.arange(N_TOPICS), VOCAB_SIZE // N_TOPICS)
    topic_of_word = np.concatenate([topic_of_word,
                                    np.full(VOCAB_SIZE - topic_of_word.size, -1)])
    # Zipf-ish within-topic word popularity.
    word_weight = 1.0 / (1.0 + np.arange(VOCAB_SIZE) % (VOCAB_SIZE // N_TOPICS)) ** 0.8

    rows, cols, vals = [], [], []
    doc_topics = rng.integers(0, N_TOPICS, size=N_DOCS)
    for doc in range(N_DOCS):
        primary = doc_topics[doc]
        secondary = rng.integers(0, N_TOPICS)
        mix = rng.uniform(0.7, 0.95)
        for _ in range(WORDS_PER_DOC):
            topic = primary if rng.random() < mix else secondary
            candidates = np.flatnonzero(topic_of_word == topic)
            probs = word_weight[candidates] / word_weight[candidates].sum()
            word = rng.choice(candidates, p=probs)
            rows.append(word)
            cols.append(doc)
            vals.append(1.0)
    A = sp.coo_matrix((vals, (rows, cols)), shape=(VOCAB_SIZE, N_DOCS)).tocsr()
    A.sum_duplicates()
    return A, topic_of_word, doc_topics


def main() -> None:
    A, topic_of_word, doc_topics = make_corpus(seed=4)
    density = A.nnz / (A.shape[0] * A.shape[1])
    print("Synthetic bag-of-words corpus")
    print(f"  vocabulary: {VOCAB_SIZE} words, documents: {N_DOCS}, planted topics: {N_TOPICS}")
    print(f"  matrix: {A.shape[0]} x {A.shape[1]}, density {density:.4f} "
          f"({A.nnz} nonzeros)\n")

    result = fit(A, N_TOPICS, variant="hpc2d", n_ranks=4, max_iters=30, seed=13)
    print(f"HPC-NMF on 4 ranks: grid {result.grid_shape}, "
          f"relative error {result.relative_error:.4f}\n")

    # Interpret the factors: the top words of each NMF topic should come from
    # a single planted topic.
    W = result.W  # words x topics
    print("Top words per learned topic (planted topic of each word in brackets):")
    purity_scores = []
    for topic in range(N_TOPICS):
        top_words = np.argsort(W[:, topic])[::-1][:10]
        owners = topic_of_word[top_words]
        owners = owners[owners >= 0]
        if owners.size:
            dominant = np.bincount(owners, minlength=N_TOPICS).argmax()
            purity = float(np.mean(owners == dominant))
        else:  # pragma: no cover - degenerate topic
            dominant, purity = -1, 0.0
        purity_scores.append(purity)
        preview = ", ".join(f"w{w}[{topic_of_word[w]}]" for w in top_words[:6])
        print(f"  topic {topic}: dominant planted topic {dominant}, purity {purity:.0%}: {preview}")

    mean_purity = float(np.mean(purity_scores))
    print(f"\nMean top-word purity: {mean_purity:.0%}")

    # Document clustering accuracy via the H factor.
    assignments = np.argmax(result.H, axis=0)
    # Map each learned topic to the most common planted topic among its documents.
    accuracy_hits = 0
    for topic in range(N_TOPICS):
        docs = np.flatnonzero(assignments == topic)
        if docs.size:
            dominant = np.bincount(doc_topics[docs], minlength=N_TOPICS).argmax()
            accuracy_hits += int(np.sum(doc_topics[docs] == dominant))
    print(f"Document clustering accuracy (best topic mapping): {accuracy_hits / N_DOCS:.0%}")


if __name__ == "__main__":
    main()
