#!/usr/bin/env python3
"""Quickstart: factorize a small nonnegative matrix, sequentially and in parallel.

Run with::

    python examples/quickstart.py

The script

1. builds a small nonnegative matrix with planted rank-8 structure,
2. factorizes it with the sequential ANLS reference (Algorithm 1 of the paper)
   through the ``repro.fit`` front door,
3. factorizes it again with the ``hpc2d`` variant (Algorithm 3) on 4 SPMD
   ranks — same front door, one ``variant=`` knob changed — watching the run
   live with an iteration observer, and
4. shows that both produce the same factors and error, plus the per-task time
   breakdown and communication ledger of the parallel run.
"""

from __future__ import annotations

import numpy as np

from repro import fit
from repro.core.observers import HistoryRecorder
from repro.data.lowrank import planted_lowrank


def main() -> None:
    rng_label = "planted rank-8 nonnegative matrix, 400 x 300"
    A = planted_lowrank(400, 300, 8, seed=7, noise_std=0.01)
    k = 8

    print(f"Input: {rng_label}")
    print(f"  shape: {A.shape}, density: dense, target rank k={k}\n")

    # --- sequential reference (Algorithm 1) --------------------------------
    sequential = fit(A, k, variant="sequential", max_iters=20, seed=42)
    print("Sequential ANLS (Algorithm 1)")
    print(sequential.summary())
    print()

    # --- HPC-NMF on 4 ranks (Algorithm 3) -----------------------------------
    # Same front door; an observer watches every outer iteration as it runs.
    watcher = HistoryRecorder()
    parallel = fit(A, k, variant="hpc2d", n_ranks=4, max_iters=20, seed=42,
                   observers=[watcher])
    print("HPC-NMF on 4 SPMD ranks (Algorithm 3)")
    print(parallel.summary())
    print(f"  observer saw {len(watcher.history)} iterations, "
          f"final rel_err {watcher.relative_errors[-1]:.6f}")
    print()

    # --- the two agree -------------------------------------------------------
    w_diff = float(np.max(np.abs(sequential.W - parallel.W)))
    h_diff = float(np.max(np.abs(sequential.H - parallel.H)))
    print("Agreement between sequential and parallel runs (same seed):")
    print(f"  max |W_seq - W_par| = {w_diff:.2e}")
    print(f"  max |H_seq - H_par| = {h_diff:.2e}")
    print(f"  relative errors: {sequential.relative_error:.6f} vs {parallel.relative_error:.6f}")
    print()

    print("Communication recorded by the parallel run (words, per §5's analysis):")
    for op, entry in parallel.ledger_summary.items():
        print(f"  {op:>15}: {entry['calls']:>3} calls, {entry['words']:>12.1f} words")


if __name__ == "__main__":
    main()
