#!/usr/bin/env python3
"""Quickstart: factorize a small nonnegative matrix, sequentially and in parallel.

Run with::

    python examples/quickstart.py

The script

1. builds a small nonnegative matrix with planted rank-8 structure,
2. factorizes it with the sequential ANLS reference (Algorithm 1 of the paper),
3. factorizes it again with HPC-NMF (Algorithm 3) on 4 SPMD ranks, and
4. shows that both produce the same factors and error, plus the per-task time
   breakdown and communication ledger of the parallel run.
"""

from __future__ import annotations

import numpy as np

from repro import nmf, parallel_nmf
from repro.data.lowrank import planted_lowrank


def main() -> None:
    rng_label = "planted rank-8 nonnegative matrix, 400 x 300"
    A = planted_lowrank(400, 300, 8, seed=7, noise_std=0.01)
    k = 8

    print(f"Input: {rng_label}")
    print(f"  shape: {A.shape}, density: dense, target rank k={k}\n")

    # --- sequential reference (Algorithm 1) --------------------------------
    sequential = nmf(A, k, max_iters=20, seed=42)
    print("Sequential ANLS (Algorithm 1)")
    print(sequential.summary())
    print()

    # --- HPC-NMF on 4 ranks (Algorithm 3) -----------------------------------
    parallel = parallel_nmf(A, k, n_ranks=4, algorithm="hpc2d", max_iters=20, seed=42)
    print("HPC-NMF on 4 SPMD ranks (Algorithm 3)")
    print(parallel.summary())
    print()

    # --- the two agree -------------------------------------------------------
    w_diff = float(np.max(np.abs(sequential.W - parallel.W)))
    h_diff = float(np.max(np.abs(sequential.H - parallel.H)))
    print("Agreement between sequential and parallel runs (same seed):")
    print(f"  max |W_seq - W_par| = {w_diff:.2e}")
    print(f"  max |H_seq - H_par| = {h_diff:.2e}")
    print(f"  relative errors: {sequential.relative_error:.6f} vs {parallel.relative_error:.6f}")
    print()

    print("Communication recorded by the parallel run (words, per §5's analysis):")
    for op, entry in parallel.ledger_summary.items():
        print(f"  {op:>15}: {entry['calls']:>3} calls, {entry['words']:>12.1f} words")


if __name__ == "__main__":
    main()
