#!/usr/bin/env python3
"""Community detection on a directed graph with NMF (the paper's Webbase use case).

"The NMF output of this directed graph will help us understand clusters in
graphs" (§6.1.1).  This example builds a directed graph with planted
communities plus power-law background edges, factorizes its sparse adjacency
matrix with HPC-NMF, and reads cluster assignments off the factors.

Run with::

    python examples/graph_clustering.py
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import fit
from repro.data.webgraph import degree_statistics, web_graph_matrix

N_NODES = 1_200
N_COMMUNITIES = 4
INTRA_EDGES_PER_NODE = 8
BACKGROUND_EDGES = 2_000


def make_community_graph(seed: int = 0):
    """A directed graph with planted communities plus web-like background noise."""
    rng = np.random.default_rng(seed)
    community = rng.integers(0, N_COMMUNITIES, size=N_NODES)
    rows, cols = [], []
    # Dense-ish connectivity inside each community.
    for node in range(N_NODES):
        members = np.flatnonzero(community == community[node])
        targets = rng.choice(members, size=min(INTRA_EDGES_PER_NODE, members.size), replace=False)
        for t in targets:
            if t != node:
                rows.append(node)
                cols.append(t)
    intra = sp.coo_matrix((np.ones(len(rows)), (rows, cols)), shape=(N_NODES, N_NODES))
    # Power-law background edges across communities (the "web" part).
    background = web_graph_matrix(N_NODES, BACKGROUND_EDGES, seed=seed + 1)
    A = (intra.tocsr() + background)
    A.data[:] = 1.0
    return A, community


def main() -> None:
    A, community = make_community_graph(seed=5)
    stats = degree_statistics(A)
    print("Directed graph with planted communities")
    print(f"  nodes: {N_NODES}, edges: {A.nnz}, communities: {N_COMMUNITIES}")
    print(f"  degree stats: mean out {stats['out_mean']:.1f}, max in {stats['in_max']}\n")

    result = fit(A, N_COMMUNITIES, variant="hpc2d", n_ranks=4, max_iters=30, seed=17)
    print(f"HPC-NMF on 4 ranks: grid {result.grid_shape}, "
          f"relative error {result.relative_error:.4f}\n")

    # Cluster nodes by their dominant W component (out-link profile).
    assignment = np.argmax(result.W, axis=1)

    # Cluster quality: within each NMF cluster, how concentrated is the
    # planted community label?
    total_correct = 0
    print("Cluster composition (NMF cluster -> dominant planted community):")
    for cluster in range(N_COMMUNITIES):
        nodes = np.flatnonzero(assignment == cluster)
        if nodes.size == 0:
            print(f"  cluster {cluster}: empty")
            continue
        counts = np.bincount(community[nodes], minlength=N_COMMUNITIES)
        dominant = int(np.argmax(counts))
        purity = counts[dominant] / nodes.size
        total_correct += counts[dominant]
        print(f"  cluster {cluster}: {nodes.size:4d} nodes, dominant community {dominant}, "
              f"purity {purity:.0%}")

    print(f"\nOverall clustering accuracy (best per-cluster mapping): "
          f"{total_correct / N_NODES:.0%}")

    # Compare against the Naive parallel algorithm: identical output, more
    # communication — the reason HPC-NMF exists.
    naive = fit(A, N_COMMUNITIES, variant="naive", n_ranks=4, max_iters=30, seed=17)
    words_hpc = sum(e["words"] for e in result.ledger_summary.values())
    words_naive = sum(e["words"] for e in naive.ledger_summary.values())
    print("\nCommunication comparison for the same factorization:")
    print(f"  HPC-NMF-2D: {words_hpc:12.0f} words")
    print(f"  Naive:      {words_naive:12.0f} words "
          f"({words_naive / max(words_hpc, 1):.1f}x more)")

    # The same front door also runs symmetric NMF (S = G Gᵀ), the
    # clustering-native model from the paper's reference [13] — one
    # ``variant=`` knob, no separate entry point.
    sym = fit(A, N_COMMUNITIES, variant="symmetric", max_iters=20, seed=17)
    sym_correct = 0
    for cluster in range(N_COMMUNITIES):
        nodes = np.flatnonzero(sym.labels == cluster)
        if nodes.size:
            sym_correct += int(np.bincount(community[nodes], minlength=N_COMMUNITIES).max())
    print(f"\nSymNMF (variant='symmetric') clustering accuracy: "
          f"{sym_correct / N_NODES:.0%}")


if __name__ == "__main__":
    main()
