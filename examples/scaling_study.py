#!/usr/bin/env python3
"""Scaling study: regenerate the paper's evaluation tables from the command line.

Prints, for any of the paper's four datasets,

* the Figure-3-style comparison (per-iteration time vs k at 600 cores) and
  strong-scaling series from the analytic Edison model, and
* a measured comparison run on this machine's SPMD backend with the
  scaled-down dataset.

Run with::

    python examples/scaling_study.py                # all datasets, modeled only
    python examples/scaling_study.py SSYN --measured
"""

from __future__ import annotations

import argparse

from repro.perf.experiments import comparison_vs_k, strong_scaling, table3_grid
from repro.perf.report import render_breakdown_table, render_table3

DATASETS = ("DSYN", "SSYN", "Video", "Webbase")


def run_dataset(dataset: str, measured: bool) -> None:
    print("=" * 78)
    print(f"Dataset: {dataset}")
    print("=" * 78)

    comparison = comparison_vs_k(dataset, mode="modeled")
    print(render_breakdown_table(comparison, x_axis="k"))
    speedups = comparison.speedup("naive", "hpc2d")
    best = max(speedups.values())
    print(f"\nLargest modeled Naive/HPC-2D speedup: {best:.2f}x "
          f"(paper reports up to 4.4x on SSYN, k=10)\n")

    scaling = strong_scaling(dataset, mode="modeled", k=50)
    print(render_breakdown_table(scaling, x_axis="p"))
    print()

    if measured:
        print("-- measured on this machine (scaled-down dataset, SPMD threads) --")
        measured_result = comparison_vs_k(dataset, mode="measured", ks=[2, 4, 8], cores=4)
        print(render_breakdown_table(measured_result, x_axis="k"))
        print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("datasets", nargs="*", default=list(DATASETS),
                        choices=list(DATASETS) + [[]],
                        help="datasets to study (default: all four)")
    parser.add_argument("--measured", action="store_true",
                        help="also run the measured-mode comparison on this machine")
    args = parser.parse_args()

    datasets = args.datasets if args.datasets else list(DATASETS)
    for dataset in datasets:
        run_dataset(dataset, args.measured)

    print("=" * 78)
    print("Table 3 analogue (modeled at paper scale)")
    print("=" * 78)
    print(render_table3(table3_grid(mode="modeled", k=50), k=50))


if __name__ == "__main__":
    main()
