#!/usr/bin/env python3
"""Streaming background subtraction: incremental NMF over a live video feed.

The paper's video scenario (§6.1.1) keeps only "the last minute or two of
video ... from the live video camera" and updates the factorization as new
frames arrive.  This example feeds the synthetic street scene frame by frame
into :class:`repro.core.streaming.StreamingNMF` and reports, per frame, how
much of the residual energy the moving objects carry — i.e. live moving-object
detection without ever re-factorizing the whole window from scratch.

(For batch replay of a pre-recorded matrix the same model is reachable as
``repro.fit(A, k, variant="streaming", window=...)``; this example drives the
frame-by-frame interface directly because the feed is "live".)

Run with::

    python examples/streaming_video.py
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import StreamingNMF
from repro.data.video import VideoSceneConfig, video_matrix


def main() -> None:
    config = VideoSceneConfig(height=32, width=40, channels=3, frames=150,
                              n_objects=3, seed=9)
    A = video_matrix(config)
    n_pixels, n_frames = A.shape
    print("Streaming synthetic street scene")
    print(f"  {n_frames} frames of {config.height}x{config.width} RGB "
          f"({n_pixels} pixels per frame)")

    model = StreamingNMF(
        n_pixels=n_pixels,
        k=5,
        window=40,
        refresh_every=10,
        refresh_iters=2,
        seed=1,
    )

    print(f"  sliding window: {model.window} frames, rank {model.k}, "
          f"refresh every {model.refresh_every} frames\n")
    print(f"{'frame':>6}  {'window err':>10}  {'residual energy %':>18}")

    checkpoints = set(range(9, n_frames, 30)) | {n_frames - 1}
    for frame_idx in range(n_frames):
        frame = A[:, frame_idx]
        residual = model.push_frame(frame)
        if frame_idx in checkpoints:
            frame_energy = float(np.sum(frame**2))
            resid_share = float(np.sum(residual**2)) / max(frame_energy, 1e-12)
            print(f"{frame_idx:>6}  {model.window_error():>10.4f}  {resid_share:>17.1%}")

    print("\nThe window error stays low and stable while the residual share "
          "tracks how much of each frame is moving objects —")
    print("the live analogue of the batch background subtraction example.")


if __name__ == "__main__":
    main()
