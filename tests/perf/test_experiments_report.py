"""Tests for the experiment drivers and report rendering."""

import pytest

from repro.perf.experiments import (
    MEASURED_CORE_COUNTS,
    PAPER_CORE_COUNTS,
    PAPER_RANKS,
    PAPER_VARIANTS,
    comparison_vs_k,
    measured_breakdown,
    strong_scaling,
    table3_grid,
)
from repro.perf.report import render_breakdown_table, render_table3, to_csv
from repro.data.registry import measured_scale


class TestModeledDrivers:
    def test_comparison_produces_all_points(self):
        result = comparison_vs_k("SSYN", mode="modeled")
        assert len(result.points) == 3 * len(PAPER_RANKS)
        assert {pt.variant for pt in result.points} == set(PAPER_VARIANTS)
        assert all(pt.p == 600 for pt in result.points)
        assert all(pt.total > 0 for pt in result.points)

    def test_comparison_totals_increase_with_k(self):
        result = comparison_vs_k("DSYN", mode="modeled")
        for variant in PAPER_VARIANTS:
            totals = [pt.total for pt in result.for_variant(variant)]
            assert totals == sorted(totals)

    def test_scaling_uses_dense_core_counts_for_dense_data(self):
        dense = strong_scaling("Video", mode="modeled")
        sparse = strong_scaling("SSYN", mode="modeled")
        assert {pt.p for pt in dense.points} == {216, 384, 600}
        assert {pt.p for pt in sparse.points} == set(PAPER_CORE_COUNTS)

    def test_scaling_totals_decrease_with_cores_for_hpc2d(self):
        result = strong_scaling("SSYN", mode="modeled")
        totals = [pt.total for pt in result.for_variant("hpc2d")]
        assert totals == sorted(totals, reverse=True)

    def test_speedup_helper(self):
        result = comparison_vs_k("SSYN", mode="modeled")
        speedups = result.speedup("naive", "hpc2d")
        assert len(speedups) == len(PAPER_RANKS)
        assert all(v > 1.0 for v in speedups.values())

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            comparison_vs_k("SSYN", mode="guessed")
        with pytest.raises(ValueError):
            strong_scaling("SSYN", mode="guessed")

    def test_table3_has_all_cells(self):
        table = table3_grid(mode="modeled")
        assert set(table) == {"naive", "hpc1d", "hpc2d"}
        for variant, per_dataset in table.items():
            assert set(per_dataset) == {"DSYN", "SSYN", "Video", "Webbase"}
            assert set(per_dataset["SSYN"]) == set(PAPER_CORE_COUNTS)
            assert set(per_dataset["DSYN"]) == {216, 384, 600}


class TestMeasuredDrivers:
    def test_measured_breakdown_runs_a_real_factorization(self):
        spec = measured_scale("SSYN")
        breakdown = measured_breakdown(spec, "hpc2d", k=4, n_ranks=2, iterations=2)
        assert breakdown.total > 0
        assert breakdown.get("NLS") > 0

    def test_measured_comparison_small(self):
        result = comparison_vs_k(
            "Video",
            mode="measured",
            ks=[2, 4],
            cores=2,
            variants=["naive", "hpc2d"],
            measured_iterations=2,
        )
        assert len(result.points) == 4
        assert all(pt.mode == "measured" for pt in result.points)
        assert all(pt.total > 0 for pt in result.points)


class TestReports:
    def test_render_breakdown_table_contains_all_rows(self):
        result = comparison_vs_k("Webbase", mode="modeled", ks=[10, 50])
        text = render_breakdown_table(result, x_axis="k")
        assert "Naive" in text and "HPC-NMF-2D" in text
        assert text.count("\n") >= 2 + 6  # header + separator + 6 data rows

    def test_to_csv_round_trips_totals(self):
        result = comparison_vs_k("SSYN", mode="modeled", ks=[10])
        csv_text = to_csv(result)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("dataset,variant,k,p,mode")
        assert len(lines) == 1 + 3  # header + three variants

    def test_render_table3(self):
        table = table3_grid(mode="modeled")
        text = render_table3(table)
        assert "600" in text
        assert "naive:DSYN" in text
