"""Property tests: one source of truth for the §4.3 flop formulas.

``core/local_ops.matmul_flops`` (what the kernels report) and
``perf/model.dense_flops_per_iteration`` / ``sparse_flops_per_iteration``
(what the analytic model charges) used to encode the same formulas
independently; now the model derives its per-iteration counts from the
local-ops primitives.  These tests pin the agreement on random shapes: one
iteration does two local multiplies, so the per-iteration count at ``p``
processes must equal ``2 · matmul_flops(block, k) / p`` exactly.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.local_ops import (
    dense_matmul_flops,
    matmul_flops,
    sparse_matmul_flops,
)
from repro.perf.model import dense_flops_per_iteration, sparse_flops_per_iteration


@given(
    m=st.integers(1, 400),
    n=st.integers(1, 300),
    k=st.integers(1, 60),
    p=st.integers(1, 64),
)
@settings(max_examples=50, deadline=None)
def test_dense_per_iteration_is_two_local_matmuls(m, n, k, p):
    block = np.broadcast_to(0.0, (m, n))  # matmul_flops only reads the shape
    assert dense_flops_per_iteration(m, n, k, p) == 2.0 * matmul_flops(block, k) / p
    assert matmul_flops(block, k) == dense_matmul_flops(m, n, k) == 2.0 * m * n * k


@given(
    m=st.integers(2, 80),
    n=st.integers(2, 80),
    k=st.integers(1, 40),
    p=st.integers(1, 64),
    density=st.floats(0.01, 0.5),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_sparse_per_iteration_counts_actual_nonzeros(m, n, k, p, density, seed):
    A = sp.random(m, n, density=density, format="csr", random_state=seed)
    assert sparse_flops_per_iteration(A.nnz, k, p) == 2.0 * matmul_flops(A, k) / p
    assert matmul_flops(A, k) == sparse_matmul_flops(A.nnz, k) == 2.0 * A.nnz * k


def test_sparse_block_charges_nnz_not_dimensions():
    A = sp.csr_matrix(([1.0], ([0], [0])), shape=(100, 100))
    assert matmul_flops(A, 10) == pytest.approx(2.0 * 1 * 10)
