"""Tests for the machine model presets and kernel-efficiency accounting."""

import math

import pytest

from repro.comm.cost import EDISON, LAPTOP
from repro.perf.machine import EDISON_NODE, MachineSpec, edison_machine, laptop_machine


def test_edison_per_core_peak_matches_node_spec():
    per_core = EDISON_NODE["peak_gflops_per_node"] / EDISON_NODE["cores_per_node"]
    assert EDISON.flops_per_second == pytest.approx(per_core * 1e9)


def test_default_machine_uses_edison_network():
    machine = edison_machine()
    assert machine.network is EDISON
    assert machine.name == "edison"


def test_efficiency_factors_order_kernel_costs():
    machine = edison_machine()
    flops = 1e9
    # For the same flop count: dense MM is fastest, then Gram, then sparse MM,
    # then BPP's tiny-kernel regime.
    assert machine.dense_mm_seconds(flops) < machine.gram_seconds(flops)
    assert machine.gram_seconds(flops) < machine.sparse_mm_seconds(flops)
    assert machine.sparse_mm_seconds(flops) < machine.nls_seconds(flops)


def test_with_options_returns_new_spec():
    base = edison_machine()
    tweaked = base.with_options(dense_mm_efficiency=0.5)
    assert tweaked.dense_mm_efficiency == 0.5
    assert base.dense_mm_efficiency == 0.70
    assert isinstance(tweaked, MachineSpec)


def test_override_via_factory_kwargs():
    machine = edison_machine(bpp_iterations=3.0)
    assert machine.bpp_iterations == 3.0


def test_laptop_preset_is_slower_network_than_flops():
    # Sanity: both presets have positive constants and laptop latency < Edison's
    # only in the sense that both are physically plausible (no zero/negative).
    assert LAPTOP.alpha > 0 and LAPTOP.beta > 0 and LAPTOP.gamma > 0
    assert EDISON.alpha > 0 and EDISON.beta > 0 and EDISON.gamma > 0


def test_collectives_helper_bound_to_network():
    machine = edison_machine()
    coll = machine.collectives()
    assert coll.machine is EDISON


def test_laptop_machine_factory():
    machine = laptop_machine()
    assert machine.network is LAPTOP
    assert machine.name == "laptop"


class TestKernelSpeedups:
    def test_default_table_prices_scalar_at_unity(self):
        machine = edison_machine()
        assert machine.kernel_speedup("scalar") == 1.0
        assert machine.kernel_speedup("batched") > 1.0
        assert machine.kernel_speedup("numba") > machine.kernel_speedup("batched")
        # Unknown names price like scalar: the planner validates names first.
        assert machine.kernel_speedup("mystery") == 1.0

    def test_for_kernel_scales_nls_efficiency(self):
        machine = edison_machine()
        batched = machine.for_kernel("batched")
        ratio = machine.kernel_speedup("batched")
        assert batched.nls_efficiency == pytest.approx(
            machine.nls_efficiency * ratio
        )
        # NLS gets cheaper by exactly the speedup; other kernels unchanged.
        assert batched.nls_seconds(1e9) == pytest.approx(
            machine.nls_seconds(1e9) / ratio
        )
        assert batched.dense_mm_seconds(1e9) == machine.dense_mm_seconds(1e9)

    def test_for_kernel_identity_cases(self):
        machine = edison_machine()
        assert machine.for_kernel(None) is machine
        assert machine.for_kernel("scalar") is machine

    def test_nls_seconds_accepts_kernel_directly(self):
        machine = edison_machine()
        assert machine.nls_seconds(1e9, kernel="batched") == pytest.approx(
            machine.nls_seconds(1e9) / machine.kernel_speedup("batched")
        )

    def test_measured_ratios_override_defaults(self):
        machine = edison_machine(kernel_speedups={"scalar": 1.0, "batched": 3.5})
        assert machine.kernel_speedup("batched") == 3.5


class TestCalibrate:
    def test_calibrated_constants_are_physical(self):
        machine = MachineSpec.calibrate(size=96, repeats=1)
        net = machine.network
        assert machine.name == "local-calibrated"
        for constant in (net.alpha, net.beta, net.gamma):
            assert math.isfinite(constant) and constant > 0
        # gamma reflects an achieved GEMM, so no extra efficiency discount;
        # the kernel-shape efficiencies keep their defaults, per the docstring.
        assert machine.dense_mm_efficiency == 1.0
        defaults = MachineSpec(network=machine.network)
        assert machine.gram_efficiency == defaults.gram_efficiency
        assert machine.sparse_mm_efficiency == defaults.sparse_mm_efficiency
        assert machine.nls_efficiency == defaults.nls_efficiency
        # Sanity bracket: any host runs a dense GEMM between 10 Mflop/s and
        # 10 Tflop/s per core.
        assert 1e7 < net.flops_per_second < 1e13

    def test_calibration_does_not_change_the_default(self):
        MachineSpec.calibrate(size=64, repeats=1)
        assert edison_machine().network is EDISON

    def test_calibration_rates_available_kernels(self):
        from repro.nls import available_kernels

        machine = MachineSpec.calibrate(size=64, repeats=1)
        assert machine.kernel_speedups is not None
        assert set(machine.kernel_speedups) == set(available_kernels())
        assert machine.kernel_speedups["scalar"] == pytest.approx(1.0)
        assert all(v > 0 for v in machine.kernel_speedups.values())

    def test_kernel_rating_can_be_skipped(self):
        machine = MachineSpec.calibrate(size=64, repeats=1, rate_kernels=False)
        assert machine.kernel_speedups is None
        # Falls back to the documented default table.
        assert machine.kernel_speedup("batched") > 1.0

    def test_parallel_calibration_measures_contended_gemm_rate(self):
        """ranks > 1 times the GEMM with that many concurrent OS processes,
        so gamma prices plans against real parallel throughput."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            machine = MachineSpec.calibrate(size=96, repeats=1, ranks=2)
        assert machine.name == "local-calibrated-p2"
        assert math.isfinite(machine.network.gamma) and machine.network.gamma > 0
        assert machine.dense_mm_efficiency == 1.0


class TestOverlapCalibration:
    def test_overlap_rating_is_off_by_default(self):
        machine = MachineSpec.calibrate(size=64, repeats=1, rate_kernels=False)
        assert machine.overlap_efficiency is None
        # Falls back to the documented static table.
        assert machine.overlap_fraction("process") == pytest.approx(0.7)

    def test_rate_overlap_measures_every_backend(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            machine = MachineSpec.calibrate(
                size=64, repeats=1, rate_kernels=False, rate_overlap=True
            )
        measured = machine.overlap_efficiency
        assert measured is not None
        # In-process backends are measured; the wire backends keep their
        # static entries in the table (their probe would fork per call).
        assert set(measured) == {"thread", "process", "lockstep", "socket", "mpi"}
        # Lockstep completes nonblocking ops eagerly at issue: pinned to 0.
        assert measured["lockstep"] == 0.0
        # Hidden fractions are physical: clamped to [0, 1] per the probe.
        assert all(0.0 <= v <= 1.0 for v in measured.values())
        # overlap_fraction reads the measured table, not the static default.
        for backend, value in measured.items():
            assert machine.overlap_fraction(backend) == pytest.approx(value)

    def test_overlap_probe_is_a_valid_spmd_program(self):
        from repro.comm import run_spmd
        from repro.perf.machine import _overlap_probe

        fractions = run_spmd(2, _overlap_probe, 48, 1, 0, backend="thread")
        assert len(fractions) == 2
        assert all(0.0 <= f <= 1.0 for f in fractions)


class TestLinkCosts:
    """The per-backend alpha-beta wire terms behind `repro plan --backend`."""

    def test_defaults_cover_exactly_the_wire_backends(self):
        from repro.perf.machine import DEFAULT_LINK_COSTS

        assert set(DEFAULT_LINK_COSTS) == {"socket", "mpi"}
        for alpha, beta in DEFAULT_LINK_COSTS.values():
            assert alpha > 0 and beta > 0
        # TCP loopback latency dwarfs an HPC interconnect's.
        assert DEFAULT_LINK_COSTS["socket"][0] > DEFAULT_LINK_COSTS["mpi"][0]

    def test_in_process_backends_are_byte_stable(self):
        machine = edison_machine()
        for backend in (None, "thread", "process", "lockstep", "no-such"):
            assert machine.link_cost(backend) is None
            assert machine.for_backend(backend) is machine

    def test_for_backend_swaps_alpha_beta_keeps_gamma(self):
        machine = edison_machine()
        wired = machine.for_backend("socket")
        alpha, beta = machine.link_cost("socket")
        assert wired.network.alpha == alpha
        assert wired.network.beta == beta
        assert wired.network.gamma == machine.network.gamma
        assert wired.name == "edison+socket"
        # The compute-side efficiency table must be untouched.
        assert wired.dense_mm_efficiency == machine.dense_mm_efficiency
        assert wired.nls_efficiency == machine.nls_efficiency

    def test_wire_pricing_raises_collective_costs(self):
        machine = edison_machine()
        wired = machine.for_backend("socket")
        words = 10_000.0
        assert wired.collectives().all_gather(words, 4) > (
            machine.collectives().all_gather(words, 4)
        )

    def test_measured_table_overrides_defaults(self):
        machine = edison_machine().with_options(
            link_costs={"socket": (1e-3, 1e-6)}
        )
        assert machine.link_cost("socket") == (1e-3, 1e-6)
        # A backend dropped from a custom table prices in-process.
        assert machine.link_cost("mpi") is None

    def test_link_probe_is_a_valid_spmd_program(self):
        import warnings

        from repro.comm.backends import run_spmd
        from repro.perf.machine import _link_probe

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results = run_spmd(2, _link_probe, 2, backend="socket")
        alpha, beta = results[0]
        assert results[1] is None  # the echo rank reports nothing
        assert alpha > 0 and beta > 0
        assert alpha < 1.0 and beta < 1e-3  # loopback, not carrier pigeon

    def test_calibrate_rate_links_fills_the_socket_entry(self):
        import warnings

        from repro.perf.machine import DEFAULT_LINK_COSTS

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            spec = MachineSpec.calibrate(
                size=64, repeats=1, rate_kernels=False, rate_links=True
            )
        assert spec.link_costs is not None
        assert spec.link_costs["socket"] != DEFAULT_LINK_COSTS["socket"]
        assert spec.link_costs["mpi"] == DEFAULT_LINK_COSTS["mpi"]
        alpha, beta = spec.link_cost("socket")
        assert alpha > 0 and beta > 0
        assert spec.for_backend("socket").name == "local-calibrated+socket"

    def test_links_are_off_by_default(self):
        spec = MachineSpec.calibrate(size=64, repeats=1, rate_kernels=False)
        assert spec.link_costs is None
