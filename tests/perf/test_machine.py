"""Tests for the machine model presets and kernel-efficiency accounting."""

import math

import pytest

from repro.comm.cost import EDISON, LAPTOP
from repro.perf.machine import EDISON_NODE, MachineSpec, edison_machine, laptop_machine


def test_edison_per_core_peak_matches_node_spec():
    per_core = EDISON_NODE["peak_gflops_per_node"] / EDISON_NODE["cores_per_node"]
    assert EDISON.flops_per_second == pytest.approx(per_core * 1e9)


def test_default_machine_uses_edison_network():
    machine = edison_machine()
    assert machine.network is EDISON
    assert machine.name == "edison"


def test_efficiency_factors_order_kernel_costs():
    machine = edison_machine()
    flops = 1e9
    # For the same flop count: dense MM is fastest, then Gram, then sparse MM,
    # then BPP's tiny-kernel regime.
    assert machine.dense_mm_seconds(flops) < machine.gram_seconds(flops)
    assert machine.gram_seconds(flops) < machine.sparse_mm_seconds(flops)
    assert machine.sparse_mm_seconds(flops) < machine.nls_seconds(flops)


def test_with_options_returns_new_spec():
    base = edison_machine()
    tweaked = base.with_options(dense_mm_efficiency=0.5)
    assert tweaked.dense_mm_efficiency == 0.5
    assert base.dense_mm_efficiency == 0.70
    assert isinstance(tweaked, MachineSpec)


def test_override_via_factory_kwargs():
    machine = edison_machine(bpp_iterations=3.0)
    assert machine.bpp_iterations == 3.0


def test_laptop_preset_is_slower_network_than_flops():
    # Sanity: both presets have positive constants and laptop latency < Edison's
    # only in the sense that both are physically plausible (no zero/negative).
    assert LAPTOP.alpha > 0 and LAPTOP.beta > 0 and LAPTOP.gamma > 0
    assert EDISON.alpha > 0 and EDISON.beta > 0 and EDISON.gamma > 0


def test_collectives_helper_bound_to_network():
    machine = edison_machine()
    coll = machine.collectives()
    assert coll.machine is EDISON


def test_laptop_machine_factory():
    machine = laptop_machine()
    assert machine.network is LAPTOP
    assert machine.name == "laptop"


class TestCalibrate:
    def test_calibrated_constants_are_physical(self):
        machine = MachineSpec.calibrate(size=96, repeats=1)
        net = machine.network
        assert machine.name == "local-calibrated"
        for constant in (net.alpha, net.beta, net.gamma):
            assert math.isfinite(constant) and constant > 0
        # gamma reflects an achieved GEMM, so no extra efficiency discount;
        # the kernel-shape efficiencies keep their defaults, per the docstring.
        assert machine.dense_mm_efficiency == 1.0
        defaults = MachineSpec(network=machine.network)
        assert machine.gram_efficiency == defaults.gram_efficiency
        assert machine.sparse_mm_efficiency == defaults.sparse_mm_efficiency
        assert machine.nls_efficiency == defaults.nls_efficiency
        # Sanity bracket: any host runs a dense GEMM between 10 Mflop/s and
        # 10 Tflop/s per core.
        assert 1e7 < net.flops_per_second < 1e13

    def test_calibration_does_not_change_the_default(self):
        MachineSpec.calibrate(size=64, repeats=1)
        assert edison_machine().network is EDISON

    def test_parallel_calibration_measures_contended_gemm_rate(self):
        """ranks > 1 times the GEMM with that many concurrent OS processes,
        so gamma prices plans against real parallel throughput."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            machine = MachineSpec.calibrate(size=96, repeats=1, ranks=2)
        assert machine.name == "local-calibrated-p2"
        assert math.isfinite(machine.network.gamma) and machine.network.gamma > 0
        assert machine.dense_mm_efficiency == 1.0
