"""Tests of the analytic performance model against the paper's claims."""

import math

import pytest

from repro.data.registry import paper_scale
from repro.perf.machine import edison_machine
from repro.perf.model import (
    bpp_flops,
    dense_flops_per_iteration,
    hpc_breakdown,
    hpc_words_per_iteration,
    naive_breakdown,
    naive_words_per_iteration,
    predicted_breakdown,
    sparse_flops_per_iteration,
    table2_costs,
)
from repro.plan.problem import ProblemSpec


@pytest.fixture(scope="module")
def machine():
    return edison_machine()


class TestFlopCounts:
    def test_dense_flops_formula(self):
        assert dense_flops_per_iteration(100, 50, 10, 4) == pytest.approx(4 * 100 * 50 * 10 / 4)

    def test_sparse_flops_formula(self):
        assert sparse_flops_per_iteration(1e6, 20, 10) == pytest.approx(4 * 1e6 * 20 / 10)

    def test_bpp_flops_scale_superlinearly_in_k(self):
        # Doubling k must more than double the NLS cost (the Webbase effect).
        assert bpp_flops(40, 1000, 10) > 2.5 * bpp_flops(20, 1000, 10)

    def test_bpp_flops_linear_in_columns(self):
        assert bpp_flops(20, 2000, 10) == pytest.approx(2 * bpp_flops(20, 1000, 10))


class TestBreakdowns:
    def test_naive_has_no_reduce_scatter_or_allreduce(self, machine):
        spec = paper_scale("SSYN")
        b = naive_breakdown(spec, k=50, p=600, machine=machine)
        assert b.get("ReduceScatter") == 0.0
        assert b.get("AllReduce") == 0.0
        assert b.get("AllGather") > 0.0

    def test_naive_gram_is_redundant_so_does_not_shrink_with_p(self, machine):
        spec = paper_scale("DSYN")
        g216 = naive_breakdown(spec, 50, 216, machine=machine).get("Gram")
        g600 = naive_breakdown(spec, 50, 600, machine=machine).get("Gram")
        assert g216 == pytest.approx(g600)

    def test_hpc_gram_scales_with_p(self, machine):
        spec = paper_scale("DSYN")
        g216 = hpc_breakdown(spec, 50, 216, machine=machine).get("Gram")
        g600 = hpc_breakdown(spec, 50, 600, machine=machine).get("Gram")
        assert g600 < g216

    def test_hpc_2d_communicates_less_than_naive_on_squarish_data(self, machine):
        for dataset in ("DSYN", "SSYN", "Webbase"):
            spec = paper_scale(dataset)
            naive = naive_breakdown(spec, 50, 600, machine=machine)
            hpc2d = hpc_breakdown(spec, 50, 600, machine=machine)
            assert hpc2d.communication < naive.communication, dataset

    def test_grid_mismatch_rejected(self, machine):
        with pytest.raises(ValueError):
            hpc_breakdown(paper_scale("DSYN"), 50, 600, grid=(7, 7), machine=machine)

    def test_dispatch_by_variant(self, machine):
        spec = paper_scale("SSYN")
        assert predicted_breakdown("naive", spec, 10, 24, machine).get(
            "AllReduce"
        ) == 0.0
        b1d = predicted_breakdown("hpc1d", spec, 10, 24, machine)
        b2d = predicted_breakdown("hpc2d", spec, 10, 24, machine)
        assert b2d.communication <= b1d.communication

    def test_dispatch_rejects_unmodeled_variant(self, machine):
        with pytest.raises(ValueError, match="cost model"):
            predicted_breakdown("streaming", paper_scale("SSYN"), 10, 24, machine)

    def test_breakdowns_accept_problem_specs(self, machine):
        # The DatasetSpec adapter and a raw ProblemSpec must price identically.
        spec = paper_scale("DSYN")
        problem = ProblemSpec.from_dataset(spec, 50)
        via_dataset = hpc_breakdown(spec, 50, 600, machine=machine)
        via_problem = hpc_breakdown(problem, 50, 600, machine=machine)
        assert via_dataset.as_dict() == via_problem.as_dict()

    def test_words_per_iteration_match_section5(self):
        # Naive: (p-1)/p (m+n)k; HPC on (pr, pc): the §5 expression in
        # ledger convention (factor collectives twice, all-reduce 2x2 k²).
        m, n, k, p = 1200, 800, 10, 6
        problem = ProblemSpec(m=m, n=n, k=k)
        assert naive_words_per_iteration(problem, k, p) == pytest.approx(
            (p - 1) / p * (m + n) * k
        )
        pr, pc = 3, 2
        expected = 2.0 * (
            (pr - 1) / pr * n * k / pc + (pc - 1) / pc * m * k / pr
        ) + 4.0 * (p - 1) / p * k * k
        assert hpc_words_per_iteration(problem, k, p, grid=(pr, pc)) == pytest.approx(expected)
        assert naive_words_per_iteration(problem, k, 1) == 0.0


class TestPaperShapeClaims:
    """The qualitative conclusions of §6.4 / §6.5 must hold in the model."""

    def test_hpc2d_beats_naive_on_every_dataset_at_600_cores(self, machine):
        for dataset in ("DSYN", "SSYN", "Video", "Webbase"):
            spec = paper_scale(dataset)
            naive = naive_breakdown(spec, 50, 600, machine=machine).total
            hpc2d = hpc_breakdown(spec, 50, 600, machine=machine).total
            assert hpc2d < naive, dataset

    def test_2d_beats_1d_on_squarish_matrices(self, machine):
        for dataset in ("DSYN", "SSYN", "Webbase"):
            spec = paper_scale(dataset)
            b1d = hpc_breakdown(spec, 50, 600, grid=(600, 1), machine=machine).total
            b2d = hpc_breakdown(spec, 50, 600, machine=machine).total
            assert b2d < b1d, dataset

    def test_1d_and_2d_comparable_on_video(self, machine):
        # The Video matrix is so tall that the auto-selected grid *is* 1D and
        # both variants are computation bound (§6.4).
        spec = paper_scale("Video")
        b1d = hpc_breakdown(spec, 50, 600, grid=(600, 1), machine=machine)
        b2d = hpc_breakdown(spec, 50, 600, machine=machine)
        assert b2d.total == pytest.approx(b1d.total, rel=0.05)
        assert b1d.computation > b1d.communication

    def test_webbase_is_nls_bound_for_hpc(self, machine):
        spec = paper_scale("Webbase")
        b = hpc_breakdown(spec, 50, 600, machine=machine)
        assert b.get("NLS") > 0.5 * b.total

    def test_naive_ssyn_is_communication_bound(self, machine):
        spec = paper_scale("SSYN")
        b = naive_breakdown(spec, 10, 600, machine=machine)
        assert b.communication > b.computation

    def test_speedup_of_2d_over_naive_in_plausible_range(self, machine):
        # Paper: largest observed speedup 4.4x (SSYN, k=10); model should put
        # the Naive/2D ratio in the same "several-fold" regime, not 1.0x and
        # not 100x.
        spec = paper_scale("SSYN")
        ratio = (
            naive_breakdown(spec, 10, 600, machine=machine).total
            / hpc_breakdown(spec, 10, 600, machine=machine).total
        )
        assert 2.0 < ratio < 20.0

    def test_strong_scaling_of_hpc2d(self, machine):
        # Per-iteration time must drop substantially from 216 to 600 cores.
        spec = paper_scale("DSYN")
        t216 = hpc_breakdown(spec, 50, 216, machine=machine).total
        t600 = hpc_breakdown(spec, 50, 600, machine=machine).total
        assert t600 < t216
        assert t216 / t600 > 1.8  # paper: 2.7x over a 2.8x core increase


class TestDeprecatedAlgorithmVariant:
    """Satellite: the pre-registry enum survives as a warned alias."""

    def test_import_warns_and_maps_to_registry_names(self):
        import repro.perf.model as model

        with pytest.warns(DeprecationWarning, match="AlgorithmVariant is deprecated"):
            enum_cls = model.AlgorithmVariant
        from repro.core.variants import available_variants

        values = [member.value for member in enum_cls]
        assert values == ["naive", "hpc1d", "hpc2d"]
        assert set(values) <= set(available_variants())

    def test_package_level_alias_forwards(self):
        import repro.perf as perf

        with pytest.warns(DeprecationWarning):
            enum_cls = perf.AlgorithmVariant
        assert enum_cls.HPC_2D.value == "hpc2d"

    def test_labels_come_from_the_registry(self):
        import repro.perf.model as model

        with pytest.warns(DeprecationWarning):
            enum_cls = model.AlgorithmVariant
        from repro.core.variants import get_variant

        for member in enum_cls:
            assert member.label == get_variant(member.value).label

    def test_members_still_work_in_the_dispatcher(self, machine):
        import repro.perf.model as model

        with pytest.warns(DeprecationWarning):
            enum_cls = model.AlgorithmVariant
        spec = paper_scale("SSYN")
        legacy = predicted_breakdown(enum_cls.HPC_2D, spec, 10, 24, machine)
        modern = predicted_breakdown("hpc2d", spec, 10, 24, machine)
        assert legacy.as_dict() == modern.as_dict()


class TestTable2:
    def test_lower_bound_never_exceeds_hpc_words(self):
        for m, n, k, p in [(172_800, 115_200, 50, 600), (1_013_400, 2_400, 50, 216)]:
            costs = table2_costs(m, n, k, p)
            assert costs["lower_bound"]["words"] <= costs["hpc"]["words"] * (1 + 1e-9)

    def test_hpc_words_improve_on_naive_words(self):
        costs = table2_costs(172_800, 115_200, 50, 600)
        assert costs["hpc"]["words"] < costs["naive"]["words"]

    def test_tall_skinny_case_uses_nk_words(self):
        # At 216 cores the Video matrix satisfies m/p > n, the paper's
        # tall-and-skinny regime, so the HPC word count is n·k.
        m, n, k, p = 1_013_400, 2_400, 50, 216
        costs = table2_costs(m, n, k, p)
        assert costs["hpc"]["words"] == pytest.approx(n * k)

    def test_squarish_case_uses_sqrt_bound(self):
        m, n, k, p = 172_800, 115_200, 50, 600
        costs = table2_costs(m, n, k, p)
        assert costs["hpc"]["words"] == pytest.approx(math.sqrt(m * n * k * k / p))

    def test_message_counts_are_log_p(self):
        costs = table2_costs(10_000, 10_000, 10, 64)
        assert costs["naive"]["messages"] == pytest.approx(6.0)
        assert costs["hpc"]["messages"] == pytest.approx(6.0)
