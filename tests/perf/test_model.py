"""Tests of the analytic performance model against the paper's claims."""

import math

import pytest

from repro.data.registry import paper_scale
from repro.perf.machine import edison_machine
from repro.perf.model import (
    AlgorithmVariant,
    bpp_flops,
    dense_flops_per_iteration,
    hpc_breakdown,
    naive_breakdown,
    predicted_breakdown,
    sparse_flops_per_iteration,
    table2_costs,
)


@pytest.fixture(scope="module")
def machine():
    return edison_machine()


class TestFlopCounts:
    def test_dense_flops_formula(self):
        assert dense_flops_per_iteration(100, 50, 10, 4) == pytest.approx(4 * 100 * 50 * 10 / 4)

    def test_sparse_flops_formula(self):
        assert sparse_flops_per_iteration(1e6, 20, 10) == pytest.approx(4 * 1e6 * 20 / 10)

    def test_bpp_flops_scale_superlinearly_in_k(self):
        # Doubling k must more than double the NLS cost (the Webbase effect).
        assert bpp_flops(40, 1000, 10) > 2.5 * bpp_flops(20, 1000, 10)

    def test_bpp_flops_linear_in_columns(self):
        assert bpp_flops(20, 2000, 10) == pytest.approx(2 * bpp_flops(20, 1000, 10))


class TestBreakdowns:
    def test_naive_has_no_reduce_scatter_or_allreduce(self, machine):
        spec = paper_scale("SSYN")
        b = naive_breakdown(spec, k=50, p=600, machine=machine)
        assert b.get("ReduceScatter") == 0.0
        assert b.get("AllReduce") == 0.0
        assert b.get("AllGather") > 0.0

    def test_naive_gram_is_redundant_so_does_not_shrink_with_p(self, machine):
        spec = paper_scale("DSYN")
        g216 = naive_breakdown(spec, 50, 216, machine=machine).get("Gram")
        g600 = naive_breakdown(spec, 50, 600, machine=machine).get("Gram")
        assert g216 == pytest.approx(g600)

    def test_hpc_gram_scales_with_p(self, machine):
        spec = paper_scale("DSYN")
        g216 = hpc_breakdown(spec, 50, 216, machine=machine).get("Gram")
        g600 = hpc_breakdown(spec, 50, 600, machine=machine).get("Gram")
        assert g600 < g216

    def test_hpc_2d_communicates_less_than_naive_on_squarish_data(self, machine):
        for dataset in ("DSYN", "SSYN", "Webbase"):
            spec = paper_scale(dataset)
            naive = naive_breakdown(spec, 50, 600, machine=machine)
            hpc2d = hpc_breakdown(spec, 50, 600, machine=machine)
            assert hpc2d.communication < naive.communication, dataset

    def test_grid_mismatch_rejected(self, machine):
        with pytest.raises(ValueError):
            hpc_breakdown(paper_scale("DSYN"), 50, 600, grid=(7, 7), machine=machine)

    def test_dispatch_by_variant(self, machine):
        spec = paper_scale("SSYN")
        assert predicted_breakdown(AlgorithmVariant.NAIVE, spec, 10, 24, machine).get(
            "AllReduce"
        ) == 0.0
        b1d = predicted_breakdown(AlgorithmVariant.HPC_1D, spec, 10, 24, machine)
        b2d = predicted_breakdown(AlgorithmVariant.HPC_2D, spec, 10, 24, machine)
        assert b2d.communication <= b1d.communication


class TestPaperShapeClaims:
    """The qualitative conclusions of §6.4 / §6.5 must hold in the model."""

    def test_hpc2d_beats_naive_on_every_dataset_at_600_cores(self, machine):
        for dataset in ("DSYN", "SSYN", "Video", "Webbase"):
            spec = paper_scale(dataset)
            naive = naive_breakdown(spec, 50, 600, machine=machine).total
            hpc2d = hpc_breakdown(spec, 50, 600, machine=machine).total
            assert hpc2d < naive, dataset

    def test_2d_beats_1d_on_squarish_matrices(self, machine):
        for dataset in ("DSYN", "SSYN", "Webbase"):
            spec = paper_scale(dataset)
            b1d = hpc_breakdown(spec, 50, 600, grid=(600, 1), machine=machine).total
            b2d = hpc_breakdown(spec, 50, 600, machine=machine).total
            assert b2d < b1d, dataset

    def test_1d_and_2d_comparable_on_video(self, machine):
        # The Video matrix is so tall that the auto-selected grid *is* 1D and
        # both variants are computation bound (§6.4).
        spec = paper_scale("Video")
        b1d = hpc_breakdown(spec, 50, 600, grid=(600, 1), machine=machine)
        b2d = hpc_breakdown(spec, 50, 600, machine=machine)
        assert b2d.total == pytest.approx(b1d.total, rel=0.05)
        assert b1d.computation > b1d.communication

    def test_webbase_is_nls_bound_for_hpc(self, machine):
        spec = paper_scale("Webbase")
        b = hpc_breakdown(spec, 50, 600, machine=machine)
        assert b.get("NLS") > 0.5 * b.total

    def test_naive_ssyn_is_communication_bound(self, machine):
        spec = paper_scale("SSYN")
        b = naive_breakdown(spec, 10, 600, machine=machine)
        assert b.communication > b.computation

    def test_speedup_of_2d_over_naive_in_plausible_range(self, machine):
        # Paper: largest observed speedup 4.4x (SSYN, k=10); model should put
        # the Naive/2D ratio in the same "several-fold" regime, not 1.0x and
        # not 100x.
        spec = paper_scale("SSYN")
        ratio = (
            naive_breakdown(spec, 10, 600, machine=machine).total
            / hpc_breakdown(spec, 10, 600, machine=machine).total
        )
        assert 2.0 < ratio < 20.0

    def test_strong_scaling_of_hpc2d(self, machine):
        # Per-iteration time must drop substantially from 216 to 600 cores.
        spec = paper_scale("DSYN")
        t216 = hpc_breakdown(spec, 50, 216, machine=machine).total
        t600 = hpc_breakdown(spec, 50, 600, machine=machine).total
        assert t600 < t216
        assert t216 / t600 > 1.8  # paper: 2.7x over a 2.8x core increase


class TestTable2:
    def test_lower_bound_never_exceeds_hpc_words(self):
        for m, n, k, p in [(172_800, 115_200, 50, 600), (1_013_400, 2_400, 50, 216)]:
            costs = table2_costs(m, n, k, p)
            assert costs["lower_bound"]["words"] <= costs["hpc"]["words"] * (1 + 1e-9)

    def test_hpc_words_improve_on_naive_words(self):
        costs = table2_costs(172_800, 115_200, 50, 600)
        assert costs["hpc"]["words"] < costs["naive"]["words"]

    def test_tall_skinny_case_uses_nk_words(self):
        # At 216 cores the Video matrix satisfies m/p > n, the paper's
        # tall-and-skinny regime, so the HPC word count is n·k.
        m, n, k, p = 1_013_400, 2_400, 50, 216
        costs = table2_costs(m, n, k, p)
        assert costs["hpc"]["words"] == pytest.approx(n * k)

    def test_squarish_case_uses_sqrt_bound(self):
        m, n, k, p = 172_800, 115_200, 50, 600
        costs = table2_costs(m, n, k, p)
        assert costs["hpc"]["words"] == pytest.approx(math.sqrt(m * n * k * k / p))

    def test_message_counts_are_log_p(self):
        costs = table2_costs(10_000, 10_000, 10, 64)
        assert costs["naive"]["messages"] == pytest.approx(6.0)
        assert costs["hpc"]["messages"] == pytest.approx(6.0)
