"""Package-level tests: lazy exports, version, initialization conventions."""

import numpy as np
import pytest

import repro
from repro.core.initialization import (
    init_h_global,
    init_h_local,
    init_h_slice,
    init_w_global,
)


class TestLazyExports:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_lazy_attributes_resolve(self):
        assert callable(repro.nmf)
        assert callable(repro.parallel_nmf)
        assert repro.NMFConfig(k=3).k == 3
        assert repro.NMFResult is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_symbol

    def test_dir_lists_exports(self):
        listing = dir(repro)
        for name in ("nmf", "parallel_nmf", "NMFConfig", "NMFResult"):
            assert name in listing


class TestInitialization:
    def test_slices_of_global_h_reassemble_exactly(self):
        k, n, seed = 4, 37, 11
        full = init_h_global(k, n, seed)
        pieces = [init_h_slice(k, n, seed, (lo, lo + 9)) for lo in range(0, 36, 9)]
        pieces.append(init_h_slice(k, n, seed, (36, 37)))
        np.testing.assert_array_equal(np.concatenate(pieces, axis=1), full)

    def test_global_h_deterministic_and_nonnegative(self):
        a = init_h_global(3, 10, 5)
        b = init_h_global(3, 10, 5)
        np.testing.assert_array_equal(a, b)
        assert np.all(a >= 0) and np.all(a < 1)

    def test_local_init_differs_between_ranks(self):
        a = init_h_local(3, 8, seed=1, rank=0)
        b = init_h_local(3, 8, seed=1, rank=1)
        assert a.shape == b.shape == (3, 8)
        assert not np.allclose(a, b)

    def test_w_init_differs_from_h_init(self):
        W = init_w_global(10, 3, seed=2)
        H = init_h_global(3, 10, seed=2)
        assert not np.allclose(W, H.T)
