"""Tests for the command-line interface."""

from pathlib import Path

import numpy as np
import pytest

from repro.cli import main


def test_datasets_command_lists_registry(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "dsyn-small" in out and "webbase-paper" in out


def test_factorize_registered_dataset(capsys, tmp_path):
    save = tmp_path / "factors.npz"
    code = main([
        "factorize", "video-small", "-k", "3", "--ranks", "2",
        "--algorithm", "hpc2d", "--iters", "3", "--save", str(save),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "relative error" in out
    with np.load(save) as data:
        assert data["W"].shape[1] == 3
        assert data["H"].shape[0] == 3


def test_factorize_npy_file(capsys, tmp_path):
    path = tmp_path / "matrix.npy"
    np.save(path, np.abs(np.random.default_rng(0).standard_normal((30, 20))))
    code = main(["factorize", str(path), "-k", "2", "--algorithm", "sequential",
                 "--iters", "2"])
    assert code == 0
    assert "k=2" in capsys.readouterr().out


def test_factorize_missing_input_errors():
    with pytest.raises(SystemExit):
        main(["factorize", "definitely-not-a-dataset", "-k", "2"])


def test_factorize_paper_dataset_alias(capsys):
    assert main(["factorize", "Video", "-k", "2", "--variant", "sequential",
                 "--iters", "2"]) == 0
    assert "k=2" in capsys.readouterr().out


def test_factorize_nonpositive_ranks_errors():
    with pytest.raises(SystemExit, match="ranks"):
        main(["factorize", "ssyn-small", "-k", "2", "--ranks", "0"])


def test_factorize_sequential_variant_rejects_ranks():
    with pytest.raises(SystemExit, match="sequential-only"):
        main(["factorize", "ssyn-small", "-k", "2", "--ranks", "4",
              "--variant", "sequential"])


def test_variants_command_lists_registry(capsys):
    from repro.core.variants import available_variants

    assert main(["variants"]) == 0
    out = capsys.readouterr().out
    for name in available_variants():
        assert name in out
    assert "parallelizable" in out


def test_version_flag_matches_pyproject(capsys):
    tomllib = pytest.importorskip("tomllib")  # stdlib from 3.11 on

    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert repro.__version__ in out

    pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
    declared = tomllib.loads(pyproject.read_text())["project"]["version"]
    assert declared == repro.__version__, (
        "pyproject.toml and repro.__version__ drifted apart"
    )


def test_plan_dataset_alias(capsys):
    assert main(["plan", "SSYN"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("Execution plan candidates")
    assert "ssyn-paper" in out
    assert "hpc2d" in out and "hpc1d" in out and "naive" in out
    assert "* chosen:" in out


def test_plan_registered_dataset_name(capsys):
    assert main(["plan", "video-small", "-k", "4", "--ranks", "4"]) == 0
    assert "video-small" in capsys.readouterr().out


def test_plan_adhoc_shape_tall_skinny(capsys):
    assert main([
        "plan", "--shape", "20000", "200", "--density", "0.01",
        "--ranks", "16", "-k", "10",
    ]) == 0
    out = capsys.readouterr().out
    assert "20000x200" in out and "sparse" in out
    # m/p = 1250 > n = 200: the chosen grid must be the paper's 1D regime.
    assert "grid=16x1" in out


def test_plan_requires_dataset_or_shape():
    with pytest.raises(SystemExit, match="--shape"):
        main(["plan"])


def test_plan_rejects_dataset_and_shape_together():
    with pytest.raises(SystemExit, match="not both"):
        main(["plan", "SSYN", "--shape", "10", "10"])


def test_plan_rejects_density_without_shape():
    with pytest.raises(SystemExit, match="--density"):
        main(["plan", "SSYN", "--density", "0.5"])


def test_plan_unknown_dataset_errors():
    with pytest.raises(SystemExit, match="not a registered dataset"):
        main(["plan", "no-such-dataset"])


def test_plan_nonpositive_ranks_errors():
    with pytest.raises(SystemExit, match="ranks"):
        main(["plan", "SSYN", "--ranks", "0"])


def test_experiment_comparison_modeled(capsys, tmp_path):
    csv_path = tmp_path / "fig.csv"
    code = main(["experiment", "comparison", "--dataset", "SSYN", "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "HPC-NMF-2D" in out
    assert csv_path.exists()
    assert csv_path.read_text().startswith("dataset,variant")


def test_experiment_table3(capsys):
    assert main(["experiment", "table3"]) == 0
    assert "naive:DSYN" in capsys.readouterr().out


def test_experiment_scaling(capsys):
    assert main(["experiment", "scaling", "--dataset", "Video"]) == 0
    assert "Video" in capsys.readouterr().out


def _serve_model(tmp_path):
    from repro.core.api import fit
    from repro.data.lowrank import planted_lowrank

    res = fit(planted_lowrank(32, 24, 2, seed=0, noise_std=0.02), 2,
              max_iters=2, seed=1)
    return res.save(tmp_path / "model.npz")


def test_serve_self_test_round_trip(capsys, tmp_path):
    path = _serve_model(tmp_path)
    code = main(["serve", str(path), "--port", "0", "--self-test", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "serving" in out
    assert "self-test passed" in out
    assert '"responses_total": 4' in out


def test_serve_named_model_spec(capsys, tmp_path):
    path = _serve_model(tmp_path)
    assert main(["serve", f"prod={path}", "--port", "0", "--self-test"]) == 0
    assert "prod" in capsys.readouterr().out


def test_serve_models_dir(capsys, tmp_path):
    path = _serve_model(tmp_path)
    code = main(["serve", "--models-dir", str(path.parent), "--port", "0",
                 "--self-test", "2"])
    assert code == 0
    assert "model" in capsys.readouterr().out


def test_serve_missing_model_errors(tmp_path):
    with pytest.raises(SystemExit, match="ghost"):
        main(["serve", str(tmp_path / "ghost.npz"), "--port", "0",
              "--self-test"])


def test_serve_without_models_errors():
    with pytest.raises(SystemExit, match="nothing to serve"):
        main(["serve", "--port", "0", "--self-test"])


def test_serve_rejects_unknown_kernel():
    with pytest.raises(SystemExit):
        main(["serve", "x.npz", "--kernel", "warp-drive"])
