"""Projection engine: validation, byte-identity contract, incremental refresh."""

import numpy as np
import pytest

from repro.core.config import NMFConfig
from repro.core.result import NMFResult
from repro.nls.bpp import BlockPrincipalPivoting
from repro.nls.kernels import available_kernels
from repro.serve import (
    ModelRefresher,
    ModelStore,
    ProjectionRequestError,
    project,
    project_blocks,
    projection_residuals,
    validate_columns,
)

RNG = np.random.default_rng(3)
M, K = 60, 4
W = np.abs(RNG.standard_normal((M, K))) + 0.01


class TestValidateColumns:
    def test_single_column_becomes_2d(self):
        out = validate_columns(np.ones(M), M)
        assert out.shape == (M, 1)
        assert out.dtype == np.float64

    def test_block_passes_through(self):
        X = np.abs(RNG.standard_normal((M, 3)))
        assert validate_columns(X, M).shape == (M, 3)

    def test_list_input_converted(self):
        assert validate_columns([1.0] * M, M).shape == (M, 1)

    def test_wrong_length_rejected(self):
        with pytest.raises(ProjectionRequestError, match=f"expects {M} features"):
            validate_columns(np.ones(M + 1), M)

    def test_non_numeric_rejected(self):
        with pytest.raises(ProjectionRequestError, match="real-numeric"):
            validate_columns(["a"] * M, M)

    def test_3d_rejected(self):
        with pytest.raises(ProjectionRequestError, match="3-D"):
            validate_columns(np.ones((2, 2, 2)), M)

    def test_empty_batch_rejected(self):
        with pytest.raises(ProjectionRequestError, match="empty"):
            validate_columns(np.empty((M, 0)), M)

    def test_nan_names_the_bad_column(self):
        X = np.ones((M, 3))
        X[5, 2] = np.nan
        with pytest.raises(ProjectionRequestError, match="column 2"):
            validate_columns(X, M)

    def test_inf_rejected(self):
        X = np.ones((M, 1))
        X[0, 0] = np.inf
        with pytest.raises(ProjectionRequestError, match="NaN or Inf"):
            validate_columns(X, M)


class TestProject:
    def test_projection_is_nonnegative_and_shaped(self):
        X = np.abs(RNG.standard_normal((M, 5)))
        H = project(W, X)
        assert H.shape == (K, 5)
        assert (H >= 0).all()

    def test_in_model_columns_recovered(self):
        H_true = 0.5 + np.abs(RNG.standard_normal((K, 4)))
        H = project(W, W @ H_true)
        assert np.allclose(H, H_true, rtol=1e-6, atol=1e-8)

    def test_1d_input_accepted(self):
        assert project(W, np.abs(RNG.standard_normal(M))).shape == (K, 1)

    def test_cached_gram_matches_fresh(self):
        X = np.abs(RNG.standard_normal((M, 3)))
        a = project(W, X)
        b = project(W, X, gram=W.T @ W)
        assert a.tobytes() == b.tobytes()

    @pytest.mark.parametrize("kernel", available_kernels())
    def test_kernels_agree_bitwise(self, kernel):
        X = np.abs(RNG.standard_normal((M, 6)))
        assert (project(W, X, kernel=kernel).tobytes()
                == project(W, X, kernel="scalar").tobytes())


class TestByteIdentityContract:
    """Co-batching must be invisible: pinned at the project_blocks level."""

    @pytest.mark.parametrize("kernel", available_kernels())
    def test_block_in_batch_equals_block_alone(self, kernel):
        solver = BlockPrincipalPivoting(kernel=kernel, persistent_cache=True)
        blocks = [np.abs(RNG.standard_normal((M, c))) for c in (1, 3, 2, 1)]
        batched = project_blocks(W, blocks, solver=solver)
        offset = 0
        for block in blocks:
            c = block.shape[1]
            alone = project(W, block, kernel="scalar")
            assert batched[:, offset:offset + c].tobytes() == alone.tobytes()
            offset += c

    def test_identity_survives_warm_persistent_cache(self):
        solver = BlockPrincipalPivoting(kernel="batched", persistent_cache=True)
        block = np.abs(RNG.standard_normal((M, 2)))
        strangers = [np.abs(RNG.standard_normal((M, 4))) for _ in range(3)]
        alone = project(W, block, kernel="scalar")
        for stranger in strangers:  # different co-batches, same answer
            batched = project_blocks(W, [stranger, block], solver=solver)
            assert batched[:, 4:].tobytes() == alone.tobytes()


class TestResiduals:
    def test_exact_columns_have_zero_residual(self):
        H_true = 0.5 + np.abs(RNG.standard_normal((K, 3)))
        X = W @ H_true
        res = projection_residuals(W, X, project(W, X))
        assert res.shape == (3,)
        assert (res < 1e-7).all()

    def test_zero_column_has_zero_residual(self):
        X = np.zeros((M, 1))
        res = projection_residuals(W, X, project(W, X))
        assert res[0] == 0.0

    def test_residual_is_relative(self):
        X = np.abs(RNG.standard_normal((M, 2)))
        H = project(W, X)
        expected = np.linalg.norm(X - W @ H, axis=0) / np.linalg.norm(X, axis=0)
        assert np.allclose(projection_residuals(W, X, H), expected)


class TestModelRefresher:
    def _store(self):
        store = ModelStore()
        store.add_result("m", NMFResult(
            W=W.copy(), H=np.abs(RNG.standard_normal((K, 8))),
            config=NMFConfig(k=K, seed=0), iterations=2,
        ))
        return store

    def test_ingest_counts_columns(self):
        refresher = ModelRefresher(self._store(), "m", refresh_every=100)
        for _ in range(3):
            refresher.ingest(np.abs(RNG.standard_normal(M)))
        assert refresher.columns_seen == 3
        assert refresher.published_versions == []

    def test_refresh_cadence_publishes_new_version(self):
        store = self._store()
        refresher = ModelRefresher(store, "m", window=8, refresh_every=4)
        for _ in range(8):
            refresher.ingest(np.abs(RNG.standard_normal(M)))
        assert refresher.published_versions == [2, 3]
        entry = store.get("m")
        assert entry.version == 3
        assert entry.result.variant == "streaming"
        # the published basis still validates (nonnegative, no dead columns)
        assert (entry.W >= 0).all()

    def test_ingest_rejects_blocks(self):
        refresher = ModelRefresher(self._store(), "m")
        with pytest.raises(ProjectionRequestError, match="exactly one column"):
            refresher.ingest(np.abs(RNG.standard_normal((M, 2))))

    def test_ingest_validates_length(self):
        refresher = ModelRefresher(self._store(), "m")
        with pytest.raises(ProjectionRequestError, match="features"):
            refresher.ingest(np.ones(M + 1))

    def test_checkpoint_every_writes_npz(self, tmp_path):
        refresher = ModelRefresher(
            self._store(), "m", refresh_every=100,
            checkpoint_every=2,
            checkpoint_template=str(tmp_path / "ckpt_{iteration:03d}.npz"),
        )
        for _ in range(5):
            refresher.ingest(np.abs(RNG.standard_normal(M)))
        paths = refresher.checkpoint_paths
        assert len(paths) == 2
        with np.load(paths[0]) as data:
            assert data["W"].shape == (M, K)

    def test_checkpoint_every_requires_template(self):
        with pytest.raises(ValueError, match="template"):
            ModelRefresher(self._store(), "m", checkpoint_every=2)
