"""Serving telemetry: nearest-rank percentiles, ring window, snapshot shape."""

import math

import pytest

from repro.serve import LatencyWindow, ServeStats, percentile


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_single_value(self):
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([7.0], 99.0) == 7.0

    def test_nearest_rank_definition(self):
        values = [float(v) for v in range(1, 11)]  # 1..10
        assert percentile(values, 50.0) == 5.0     # ceil(10*0.5) = rank 5
        assert percentile(values, 90.0) == 9.0
        assert percentile(values, 99.0) == 10.0
        assert percentile(values, 0.0) == 1.0      # clamped to rank 1
        assert percentile(values, 100.0) == 10.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestLatencyWindow:
    def test_quantiles_of_recent_observations(self):
        window = LatencyWindow()
        for v in range(1, 101):
            window.record(v / 1000.0)
        q = window.quantiles((50.0, 99.0))
        assert q["p50"] == 0.050
        assert q["p99"] == 0.099

    def test_ring_drops_oldest(self):
        window = LatencyWindow(maxlen=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            window.record(v)
        assert len(window) == 4
        assert window.quantiles((100.0,))["p100"] == 5.0
        assert window.quantiles((0.0,))["p0"] == 2.0  # 1.0 evicted


class TestServeStats:
    def test_snapshot_shape(self):
        stats = ServeStats()
        snapshot = stats.snapshot()
        for key in ("requests_total", "responses_total", "columns_total",
                    "batches_total", "shed_total", "deadline_total",
                    "validation_errors", "model_errors", "queue_depth",
                    "batch_columns_histogram", "latency_seconds"):
            assert key in snapshot
        assert math.isnan(snapshot["mean_batch_columns"])

    def test_batch_recording(self):
        stats = ServeStats()
        stats.record_admitted()
        stats.record_admitted()
        stats.record_batch(n_requests=2, n_columns=8)
        stats.record_batch(n_requests=1, n_columns=8)
        assert stats.requests_total == 2
        assert stats.responses_total == 3
        assert stats.columns_total == 16
        assert stats.mean_batch_columns == 8.0
        assert stats.snapshot()["batch_columns_histogram"] == {"8": 2}

    def test_latency_quantiles_in_snapshot(self):
        stats = ServeStats()
        for v in (0.010, 0.020, 0.030):
            stats.record_latency(v)
        latency = stats.snapshot()["latency_seconds"]
        assert latency["p50"] == 0.020
        assert latency["p99"] == 0.030

    def test_snapshot_is_json_safe(self):
        import json

        stats = ServeStats()
        stats.record_batch(1, 4)
        stats.record_latency(0.01)
        parsed = json.loads(json.dumps(stats.snapshot()))
        assert parsed["batches_total"] == 1
