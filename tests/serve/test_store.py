"""ModelStore: load/validate artifacts, versioned hot swap, cache lifetimes."""

import numpy as np
import pytest

from repro.core.api import fit
from repro.core.config import NMFConfig
from repro.core.result import NMFResult
from repro.data.lowrank import planted_lowrank
from repro.serve import ModelLoadError, ModelNotFoundError, ModelStore


def _result(seed=0, m=40, k=3):
    rng = np.random.default_rng(seed)
    return NMFResult(
        W=np.abs(rng.standard_normal((m, k))) + 0.01,
        H=np.abs(rng.standard_normal((k, 10))),
        config=NMFConfig(k=k, seed=seed),
        iterations=2,
    )


@pytest.fixture()
def saved_model(tmp_path):
    res = fit(planted_lowrank(40, 30, 3, seed=0, noise_std=0.02), 3,
              max_iters=3, seed=1)
    return res.save(tmp_path / "model.npz")


class TestLoading:
    def test_load_from_file(self, saved_model):
        store = ModelStore()
        entry = store.load(saved_model)
        assert entry.name == "model"
        assert entry.version == 1
        assert entry.m == 40 and entry.k == 3
        assert "model" in store and len(store) == 1

    def test_load_with_explicit_name(self, saved_model):
        entry = ModelStore().load(saved_model, name="prod")
        assert entry.name == "prod"

    def test_bare_name_resolves_against_root(self, saved_model):
        store = ModelStore(root=saved_model.parent)
        assert store.load("model.npz").name == "model"

    def test_load_all(self, saved_model):
        store = ModelStore(root=saved_model.parent)
        entries = store.load_all()
        assert [e.name for e in entries] == ["model"]

    def test_load_all_requires_root(self):
        with pytest.raises(ModelLoadError, match="no root"):
            ModelStore().load_all()

    def test_load_all_empty_dir(self, tmp_path):
        with pytest.raises(ModelLoadError, match="no .*npz"):
            ModelStore(root=tmp_path).load_all()

    def test_missing_file_raises_model_load_error(self, tmp_path):
        with pytest.raises(ModelLoadError, match="nope"):
            ModelStore().load(tmp_path / "nope.npz")

    def test_add_in_memory_result(self):
        store = ModelStore()
        entry = store.add_result("mem", _result())
        assert entry.source is None
        assert store.get("mem") is entry


class TestValidation:
    def test_negative_basis_rejected(self):
        res = _result()
        res.W[0, 0] = -1.0
        with pytest.raises(ModelLoadError, match="negative"):
            ModelStore().add_result("bad", res)

    def test_nonfinite_basis_rejected(self):
        res = _result()
        res.W[1, 1] = np.nan
        with pytest.raises(ModelLoadError, match="non-finite"):
            ModelStore().add_result("bad", res)

    def test_zero_column_rejected(self):
        res = _result()
        res.W[:, 2] = 0.0
        with pytest.raises(ModelLoadError, match="column 2"):
            ModelStore().add_result("bad", res)

    def test_failed_registration_leaves_store_unchanged(self):
        store = ModelStore()
        store.add_result("good", _result())
        bad = _result()
        bad.W[:, 0] = 0.0
        with pytest.raises(ModelLoadError):
            store.add_result("other", bad)
        assert store.names() == ["good"]


class TestEntry:
    def test_gram_and_cholesky_cached_and_frozen(self):
        entry = ModelStore().add_result("m", _result())
        assert np.array_equal(entry.gram, entry.W.T @ entry.W)
        assert not entry.W.flags.writeable
        assert not entry.gram.flags.writeable
        assert not entry.cholesky.flags.writeable
        # the Cholesky factor reproduces the (ridge-stabilised) Gram
        rebuilt = entry.cholesky @ entry.cholesky.T
        assert np.allclose(rebuilt, entry.gram, rtol=1e-8, atol=1e-10)

    def test_solver_for_memoises_per_kernel(self):
        entry = ModelStore().add_result("m", _result())
        a = entry.solver_for("scalar")
        assert entry.solver_for("scalar") is a
        assert entry.solver_for("batched") is not a
        # persistent pattern cache enabled: repeated solves reuse factors
        assert a.cached_patterns == 0
        a.solve(np.asarray(entry.gram), np.abs(np.ones((entry.k, 2))))
        assert a.cached_patterns >= 1

    def test_describe_carries_model_metadata(self):
        entry = ModelStore().add_result("m", _result())
        desc = entry.describe()
        assert desc["name"] == "m"
        assert desc["version"] == 1
        assert desc["k"] == 3 and desc["m"] == 40


class TestHotSwap:
    def test_swap_bumps_version_and_rebuilds_caches(self):
        store = ModelStore()
        first = store.add_result("m", _result(seed=0))
        warm = first.solver_for("scalar")
        warm.solve(np.asarray(first.gram), np.abs(np.ones((first.k, 1))))
        assert warm.cached_patterns >= 1

        second = store.swap("m", _result(seed=1))
        assert second.version == 2
        assert store.get("m") is second
        # fresh entry, fresh solver, empty pattern cache: the Gram changed
        assert second.solver_for("scalar") is not warm
        assert second.solver_for("scalar").cached_patterns == 0
        # the old entry still serves any in-flight batch that resolved it
        assert first.version == 1
        assert not first.W.flags.writeable

    def test_reload_reads_the_backing_file(self, saved_model):
        store = ModelStore()
        store.load(saved_model, name="m")
        entry = store.reload("m")
        assert entry.version == 2
        assert entry.source == saved_model

    def test_reload_of_corrupt_file_keeps_old_version(self, saved_model):
        store = ModelStore()
        old = store.load(saved_model, name="m")
        saved_model.write_bytes(b"garbage")
        with pytest.raises(ModelLoadError):
            store.reload("m")
        assert store.get("m") is old

    def test_reload_of_in_memory_model_errors(self):
        store = ModelStore()
        store.add_result("mem", _result())
        with pytest.raises(ModelLoadError, match="no backing"):
            store.reload("mem")


class TestLookup:
    def test_unknown_name_lists_known_models(self):
        store = ModelStore()
        store.add_result("a", _result())
        with pytest.raises(ModelNotFoundError) as exc_info:
            store.get("b")
        assert "'b'" in str(exc_info.value)
        assert "a" in str(exc_info.value)

    def test_describe_lists_sorted(self):
        store = ModelStore()
        store.add_result("beta", _result())
        store.add_result("alpha", _result())
        assert [d["name"] for d in store.describe()] == ["alpha", "beta"]
