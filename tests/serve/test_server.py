"""End-to-end serving tests: micro-batched byte identity, deadlines, shedding.

No pytest-asyncio in the environment: each test drives its own event loop
through ``asyncio.run``.  The slow-kernel fake monkeypatches
``repro.serve.server.project_blocks`` so queue timeouts and load shedding are
exercised deterministically, without real kernels being slow.
"""

import asyncio
import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro.serve.server as server_mod
from repro.core.api import fit
from repro.core.config import NMFConfig
from repro.core.result import NMFResult
from repro.data.lowrank import planted_lowrank
from repro.serve import (
    DeadlineExceededError,
    ModelNotFoundError,
    ModelStore,
    ProjectionRequestError,
    ProjectionServer,
    ProjectionService,
    ServeError,
    ServerOverloadedError,
    project,
)
from repro.serve.server import run_self_test

M, K = 48, 3
RNG = np.random.default_rng(11)


def _store(name="m", m=M, k=K):
    store = ModelStore()
    store.add_result(name, NMFResult(
        W=np.abs(RNG.standard_normal((m, k))) + 0.01,
        H=np.abs(RNG.standard_normal((k, 6))),
        config=NMFConfig(k=k, seed=0),
        iterations=1,
    ))
    return store


class TestServiceLifecycle:
    def test_submit_before_start_errors(self):
        service = ProjectionService(_store())

        async def run():
            with pytest.raises(ServeError, match="not started"):
                await service.submit("m", np.ones(M))

        asyncio.run(run())

    def test_bad_construction_rejected(self):
        store = _store()
        with pytest.raises(ValueError):
            ProjectionService(store, batch_window=-1)
        with pytest.raises(ValueError):
            ProjectionService(store, max_batch_columns=0)
        with pytest.raises(ValueError):
            ProjectionService(store, queue_limit=0)


class TestMicroBatchedByteIdentity:
    """The acceptance contract: co-batching is invisible, bit for bit."""

    def test_e2e_store_load_concurrent_clients(self, tmp_path):
        # Full satellite path: checkpointed artifact on disk -> store load ->
        # concurrent asyncio clients -> ONE coalesced kernel call -> responses
        # byte-identical to each column projected alone with the scalar kernel.
        result = fit(planted_lowrank(M, 32, K, seed=0, noise_std=0.02), K,
                     max_iters=3, seed=1)
        path = result.save(tmp_path / "model.npz")
        store = ModelStore()
        store.load(path, name="m")
        entry = store.get("m")
        X = np.abs(RNG.standard_normal((M, 10)))

        async def run():
            service = ProjectionService(
                store, batch_window=0.05, max_batch_columns=64,
                kernel="batched",
            )
            await service.start()
            try:
                responses = await asyncio.gather(*[
                    service.submit("m", X[:, i]) for i in range(10)
                ])
            finally:
                await service.stop()
            return responses

        responses = asyncio.run(run())
        # genuinely micro-batched: every request rode a multi-column batch
        assert all(r.batch_columns == 10 for r in responses)
        for i, response in enumerate(responses):
            alone = project(entry.W, X[:, [i]], kernel="scalar",
                            gram=entry.gram)
            assert response.H.tobytes() == alone.tobytes()
            assert response.version == 1
            assert np.isfinite(response.residuals).all()

    def test_multi_column_requests_in_mixed_batch(self):
        store = _store()
        entry = store.get("m")
        blocks = [np.abs(RNG.standard_normal((M, c))) for c in (2, 1, 3)]

        async def run():
            service = ProjectionService(store, batch_window=0.05,
                                        kernel="batched")
            await service.start()
            try:
                return await asyncio.gather(*[
                    service.submit("m", b) for b in blocks
                ])
            finally:
                await service.stop()

        responses = asyncio.run(run())
        assert all(r.batch_columns == 6 for r in responses)
        for block, response in zip(blocks, responses):
            alone = project(entry.W, block, kernel="scalar", gram=entry.gram)
            assert response.H.tobytes() == alone.tobytes()

    def test_admission_validation_fails_bad_request_alone(self):
        # One malformed request must 400 by itself; its co-submitted
        # neighbours still get served from the same window.
        store = _store()
        good = np.abs(RNG.standard_normal((M, 4)))
        bad = np.full(M, np.nan)

        async def run():
            service = ProjectionService(store, batch_window=0.05)
            await service.start()
            try:
                results = await asyncio.gather(
                    service.submit("m", good),
                    service.submit("m", bad),
                    service.submit("m", np.ones(M + 5)),
                    return_exceptions=True,
                )
            finally:
                await service.stop()
            return results

        ok, nan_err, shape_err = asyncio.run(run())
        assert ok.H.shape == (K, 4)
        assert isinstance(nan_err, ProjectionRequestError)
        assert isinstance(shape_err, ProjectionRequestError)

    def test_unknown_model_rejected_at_admission(self):
        async def run():
            service = ProjectionService(_store())
            await service.start()
            try:
                with pytest.raises(ModelNotFoundError):
                    await service.submit("ghost", np.ones(M))
            finally:
                await service.stop()

        asyncio.run(run())


class TestHotSwap:
    def test_swap_under_traffic_bumps_version_without_dropping(self):
        store = _store()

        async def run():
            service = ProjectionService(store, batch_window=0.001)
            await service.start()
            try:
                first = await service.submit("m", np.ones(M))
                store.swap("m", NMFResult(
                    W=np.abs(RNG.standard_normal((M, K))) + 0.01,
                    H=np.abs(RNG.standard_normal((K, 4))),
                    config=NMFConfig(k=K, seed=9),
                    iterations=1,
                ))
                second = await service.submit("m", np.ones(M))
            finally:
                await service.stop()
            return first, second

        first, second = asyncio.run(run())
        assert first.version == 1
        assert second.version == 2
        assert first.H.tobytes() != second.H.tobytes()


class TestSlowKernel:
    """Deadline expiry and queue shedding, via a slow project_blocks fake."""

    @pytest.fixture()
    def slow_kernel(self, monkeypatch):
        real = server_mod.project_blocks

        def slow(*args, **kwargs):
            time.sleep(0.15)  # runs on the kernel executor thread
            return real(*args, **kwargs)

        monkeypatch.setattr(server_mod, "project_blocks", slow)

    def test_queued_past_deadline_gets_504(self, slow_kernel):
        store = _store()

        async def run():
            # one request per batch: later submissions wait a full slow solve
            service = ProjectionService(store, batch_window=0.0,
                                        max_batch_columns=1)
            await service.start()
            try:
                head = asyncio.create_task(service.submit("m", np.ones(M)))
                await asyncio.sleep(0.02)  # head is now in the slow kernel
                queued = [
                    asyncio.create_task(
                        service.submit("m", np.ones(M), timeout=0.05))
                    for _ in range(2)
                ]
                results = await asyncio.gather(head, *queued,
                                               return_exceptions=True)
                stats = service.stats.snapshot()
            finally:
                await service.stop()
            return results, stats

        (head, late1, late2), stats = asyncio.run(run())
        assert head.H.shape == (K, 1)
        assert isinstance(late1, DeadlineExceededError)
        assert isinstance(late2, DeadlineExceededError)
        assert stats["deadline_total"] == 2

    def test_full_queue_sheds_with_503(self, slow_kernel):
        store = _store()

        async def run():
            service = ProjectionService(store, batch_window=0.0,
                                        max_batch_columns=1, queue_limit=1,
                                        default_deadline=5.0)
            await service.start()
            try:
                head = asyncio.create_task(service.submit("m", np.ones(M)))
                await asyncio.sleep(0.02)  # head dequeued into the kernel
                second = asyncio.create_task(service.submit("m", np.ones(M)))
                await asyncio.sleep(0)     # second now occupies the queue
                with pytest.raises(ServerOverloadedError, match="full"):
                    await service.submit("m", np.ones(M))
                results = await asyncio.gather(head, second)
                stats = service.stats.snapshot()
            finally:
                await service.stop()
            return results, stats

        (head, second), stats = asyncio.run(run())
        assert head.H.shape == (K, 1)
        assert second.H.shape == (K, 1)  # queued, not shed: served after head
        assert stats["shed_total"] == 1

    def test_kernel_failure_fails_batch_but_not_service(self, monkeypatch):
        store = _store()

        calls = {"n": 0}
        real = server_mod.project_blocks

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("kernel exploded")
            return real(*args, **kwargs)

        monkeypatch.setattr(server_mod, "project_blocks", flaky)

        async def run():
            service = ProjectionService(store, batch_window=0.0)
            await service.start()
            try:
                with pytest.raises(RuntimeError, match="exploded"):
                    await service.submit("m", np.ones(M))
                recovered = await service.submit("m", np.ones(M))
            finally:
                await service.stop()
            return recovered

        assert asyncio.run(run()).H.shape == (K, 1)


def _http(base, path, payload=None, method=None):
    """Blocking stdlib HTTP helper; returns (status, parsed json body)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestHttpServer:
    def _run(self, scenario, **service_kwargs):
        """Start a server on an ephemeral port, run ``scenario(base, ...)``."""
        store = _store()
        entry = store.get("m")

        async def main():
            service = ProjectionService(
                store, **{"batch_window": 0.01, **service_kwargs})
            server = ProjectionServer(service, port=0, refresh_every=4)
            await server.start()
            loop = asyncio.get_running_loop()
            base = f"http://127.0.0.1:{server.port}"
            try:
                return await scenario(loop, base, store, entry)
            finally:
                await server.stop()

        return asyncio.run(main())

    def test_healthz_and_stats(self):
        async def scenario(loop, base, store, entry):
            health = await loop.run_in_executor(None, _http, base, "/healthz")
            stats = await loop.run_in_executor(None, _http, base, "/stats")
            return health, stats

        (h_status, health), (s_status, stats) = self._run(scenario)
        assert h_status == 200 and health["status"] == "ok"
        assert health["models"][0]["name"] == "m"
        assert s_status == 200
        assert stats["requests_total"] == 0
        assert "latency_seconds" in stats

    def test_concurrent_projections_match_solo_scalar(self):
        X = np.abs(RNG.standard_normal((M, 6)))

        async def scenario(loop, base, store, entry):
            calls = [
                loop.run_in_executor(
                    None, _http, base, "/v1/models/m/project",
                    {"column": X[:, i].tolist()},
                )
                for i in range(6)
            ]
            return await asyncio.gather(*calls)

        results = self._run(scenario, kernel="batched")
        assert all(status == 200 for status, _ in results)
        assert any(body["batch_columns"] > 1 for _, body in results)

    def test_http_response_values_equal_solo_projection(self):
        X = np.abs(RNG.standard_normal((M, 3)))

        async def scenario(loop, base, store, entry):
            status, body = await loop.run_in_executor(
                None, _http, base, "/v1/models/m/project",
                {"columns": [X[:, i].tolist() for i in range(3)]},
            )
            return status, body, entry

        status, body, entry = self._run(scenario, kernel="batched")
        assert status == 200
        alone = project(entry.W, X, kernel="scalar", gram=entry.gram)
        # JSON round-trips float64 exactly: values match the scalar solo
        # projection to the last bit.
        assert body["h"] == alone.T.tolist()
        assert body["version"] == 1
        assert len(body["residuals"]) == 3

    def test_malformed_requests_get_400(self):
        async def scenario(loop, base, store, entry):
            cases = [
                ("/v1/models/m/project", {"column": [1.0] * (M + 1)}),
                ("/v1/models/m/project", {"column": [1.0] * M,
                                          "columns": [[1.0] * M]}),
                ("/v1/models/m/project", {}),
                ("/v1/models/m/project", {"columns": []}),
                ("/v1/models/m/project", {"column": [1.0] * M,
                                          "timeout": -1}),
                ("/v1/models/m/project", {"columns": [[1.0], [1.0, 2.0]]}),
            ]
            out = []
            for path, payload in cases:
                out.append(await loop.run_in_executor(
                    None, _http, base, path, payload))
            raw = await loop.run_in_executor(
                None, _http, base, "/v1/models/m/project", "not json")
            out.append(raw)
            return out

        results = self._run(scenario)
        assert [status for status, _ in results] == [400] * 7
        assert "features" in results[0][1]["error"]

    def test_unknown_model_and_route_get_404(self):
        async def scenario(loop, base, store, entry):
            missing = await loop.run_in_executor(
                None, _http, base, "/v1/models/ghost/project",
                {"column": [1.0] * M})
            noroute = await loop.run_in_executor(
                None, _http, base, "/v1/nothing")
            return missing, noroute

        (m_status, m_body), (r_status, _) = self._run(scenario)
        assert m_status == 404
        assert m_body["type"] == "ModelNotFoundError"
        assert r_status == 404

    def test_wrong_method_gets_405(self):
        async def scenario(loop, base, store, entry):
            getting = await loop.run_in_executor(
                None, _http, base, "/v1/models/m/project", None, "GET")
            posting = await loop.run_in_executor(
                None, _http, base, "/healthz", {}, "POST")
            return getting, posting

        (g_status, _), (p_status, _) = self._run(scenario)
        assert g_status == 405 and p_status == 405

    def test_ingest_publishes_on_cadence(self):
        async def scenario(loop, base, store, entry):
            statuses = []
            for _ in range(4):  # refresh_every=4 -> one published version
                column = np.abs(RNG.standard_normal(M))
                statuses.append(await loop.run_in_executor(
                    None, _http, base, "/v1/models/m/ingest",
                    {"column": column.tolist()}))
            return statuses, store.get("m").version

        statuses, version = self._run(scenario)
        assert [s for s, _ in statuses] == [200] * 4
        assert statuses[-1][1]["columns_seen"] == 4
        assert version == 2
        assert statuses[-1][1]["serving_version"] == 2

    def test_reload_endpoint_on_in_memory_model_is_500(self):
        async def scenario(loop, base, store, entry):
            return await loop.run_in_executor(
                None, _http, base, "/v1/models/m/reload", {})

        status, body = self._run(scenario)
        assert status == 500
        assert body["type"] == "ModelLoadError"

    def test_run_self_test_round_trip(self):
        store = _store()

        async def main():
            service = ProjectionService(store, batch_window=0.01,
                                        kernel="batched")
            server = ProjectionServer(service, port=0)
            await server.start()
            try:
                return await run_self_test(server, n_requests=5)
            finally:
                await server.stop()

        summary = asyncio.run(main())
        assert summary["requests"] == 5
        assert summary["stats"]["responses_total"] == 5
        assert all(np.isfinite(r["residuals"]).all()
                   for r in summary["responses"])
