"""Property tests for the block partition invariants (ISSUE 1).

The whole distributed layer rests on these: the blocks must cover every
index exactly once and be balanced to within one element.  Hypothesis
exercises the full (n, p) space including the degenerate p > n corner.
"""

import pytest
from hypothesis import given, strategies as st

from repro.dist.partition import block_counts, block_offsets, block_range, owning_rank
from repro.util.errors import PartitionError

sizes = st.integers(min_value=0, max_value=500)
nparts = st.integers(min_value=1, max_value=64)


@given(n=sizes, p=nparts)
def test_counts_sum_to_n(n, p):
    assert sum(block_counts(n, p)) == n


@given(n=sizes, p=nparts)
def test_counts_balanced_within_one(n, p):
    counts = block_counts(n, p)
    assert max(counts) - min(counts) <= 1


@given(n=sizes, p=nparts)
def test_counts_are_nonincreasing(n, p):
    # Remainder is spread over the *first* blocks, matching the communicator's
    # default reduce-scatter counts.
    counts = block_counts(n, p)
    assert all(a >= b for a, b in zip(counts, counts[1:]))


@given(n=sizes, p=nparts)
def test_ranges_tile_the_index_space(n, p):
    ranges = [block_range(n, p, r) for r in range(p)]
    # In order, contiguous, covering [0, n) exactly.
    assert ranges[0][0] == 0
    assert ranges[-1][1] == n
    for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
        assert hi == lo


@given(n=sizes, p=nparts)
def test_ranges_match_offsets_and_counts(n, p):
    offsets = block_offsets(n, p)
    counts = block_counts(n, p)
    assert len(offsets) == p + 1
    for r in range(p):
        lo, hi = block_range(n, p, r)
        assert (lo, hi) == (offsets[r], offsets[r + 1])
        assert hi - lo == counts[r]


@given(n=st.integers(min_value=1, max_value=500), p=nparts, data=st.data())
def test_owning_rank_inverts_block_range(n, p, data):
    index = data.draw(st.integers(min_value=0, max_value=n - 1))
    r = owning_rank(n, p, index)
    lo, hi = block_range(n, p, r)
    assert lo <= index < hi


@pytest.mark.parametrize(
    "call",
    [
        lambda: block_counts(-1, 2),
        lambda: block_counts(10, 0),
        lambda: block_range(10, 3, 3),
        lambda: block_range(10, 3, -1),
        lambda: owning_rank(10, 3, 10),
        lambda: owning_rank(10, 3, -1),
    ],
)
def test_invalid_arguments_raise(call):
    with pytest.raises(PartitionError):
        call()
