"""Tests for the distributed factor layout of Algorithm 3 (Figure 2).

The ownership invariants under test are the ones the paper's correctness
rests on: the p sub-block ranges tile the factor's global axis, the
row/column all-gathers reconstruct exactly ``W_i`` / ``H_j``, and the
sub-blocking agrees with the reduce-scatter counts used in the iteration.
"""

import numpy as np
import pytest

from repro.comm.backends import run_spmd
from repro.comm.grid import ProcessGrid
from repro.dist.factors import DistributedFactorH, DistributedFactorW
from repro.dist.partition import block_counts, block_range

GRIDS = [(1, 1, 1), (2, 2, 1), (2, 1, 2), (4, 2, 2), (6, 3, 2), (6, 2, 3)]


def spmd(p, pr, pc, program):
    def wrapper(comm):
        return program(ProcessGrid(comm, pr, pc))

    return run_spmd(p, wrapper)


@pytest.mark.parametrize("p,pr,pc", GRIDS)
def test_w_ranges_tile_rows(p, pr, pc):
    m, k = 23, 4

    def program(grid):
        return grid.coords, DistributedFactorW.zeros(grid, m, k).global_range

    out = spmd(p, pr, pc, program)
    covered = np.zeros(m, dtype=int)
    for _, (lo, hi) in out:
        covered[lo:hi] += 1
    assert np.all(covered == 1), "W sub-blocks must tile [0, m) exactly once"
    # Sub-blocks of one grid row stay inside that row's W_i block.
    for (i, j), (lo, hi) in out:
        r0, r1 = block_range(m, pr, i)
        assert r0 <= lo <= hi <= r1


@pytest.mark.parametrize("p,pr,pc", GRIDS)
def test_h_ranges_tile_columns(p, pr, pc):
    k, n = 3, 17

    def program(grid):
        return grid.coords, DistributedFactorH.zeros(grid, k, n).global_range

    out = spmd(p, pr, pc, program)
    covered = np.zeros(n, dtype=int)
    for _, (lo, hi) in out:
        covered[lo:hi] += 1
    assert np.all(covered == 1), "H sub-blocks must tile [0, n) exactly once"
    for (i, j), (lo, hi) in out:
        c0, c1 = block_range(n, pc, j)
        assert c0 <= lo <= hi <= c1


@pytest.mark.parametrize("p,pr,pc", GRIDS)
def test_row_block_allgather_reconstructs_w_i(p, pr, pc):
    m, k = 19, 3
    W_global = np.random.default_rng(0).random((m, k))

    def program(grid):
        fac = DistributedFactorW.zeros(grid, m, k)
        lo, hi = fac.global_range
        fac.local = W_global[lo:hi]
        W_i = fac.row_block()
        r0, r1 = block_range(m, pr, grid.coords[0])
        np.testing.assert_array_equal(W_i, W_global[r0:r1])
        return True

    assert all(spmd(p, pr, pc, program))


@pytest.mark.parametrize("p,pr,pc", GRIDS)
def test_col_block_allgather_reconstructs_h_j(p, pr, pc):
    k, n = 4, 26
    H_global = np.random.default_rng(1).random((k, n))

    def program(grid):
        fac = DistributedFactorH.zeros(grid, k, n)
        lo, hi = fac.global_range
        fac.local = H_global[:, lo:hi]
        H_j = fac.col_block()
        c0, c1 = block_range(n, pc, grid.coords[1])
        np.testing.assert_array_equal(H_j, H_global[:, c0:c1])
        return True

    assert all(spmd(p, pr, pc, program))


@pytest.mark.parametrize("p,pr,pc", [(4, 2, 2), (6, 3, 2), (6, 2, 3)])
def test_subblocking_matches_reduce_scatter_counts(p, pr, pc):
    """The (W_i)_j / (H_j)_i splits must equal block_counts of the local axes.

    hpc_nmf.py reduce-scatters V_ij with counts=block_counts(local_rows, pc)
    over the row communicator; each rank must receive exactly its own
    sub-block for the algorithm to need no redistribution step.
    """
    m, k, n = 21, 3, 16

    def program(grid):
        W = DistributedFactorW.zeros(grid, m, k)
        H = DistributedFactorH.zeros(grid, k, n)
        local_rows = block_range(m, pr, grid.coords[0])
        local_cols = block_range(n, pc, grid.coords[1])
        w_counts = block_counts(local_rows[1] - local_rows[0], pc)
        h_counts = block_counts(local_cols[1] - local_cols[0], pr)
        assert W.local.shape == (w_counts[grid.coords[1]], k)
        assert H.local.shape == (k, h_counts[grid.coords[0]])
        # The in-row/in-column offsets agree with the scatter boundaries.
        assert W.block_range_in_row[0] == sum(w_counts[: grid.coords[1]])
        assert H.block_range_in_col[0] == sum(h_counts[: grid.coords[0]])
        return True

    assert all(spmd(p, pr, pc, program))


def test_zeros_start_empty_and_assignable():
    def program(grid):
        fac = DistributedFactorW.zeros(grid, 12, 2)
        assert not np.any(fac.local)
        fac.local = np.ones_like(fac.local)
        return float(fac.local.sum())

    totals = spmd(4, 2, 2, program)
    assert sum(totals) == 12 * 2
