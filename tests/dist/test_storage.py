"""The local-block storage abstraction: out-of-core blocks, identical bytes.

``NMFConfig.storage = "memmap"`` rehomes each rank's dense block of ``A``
onto an ``np.memmap`` over an unlinked temporary file, so webbase-scale
matrices can exceed RAM while the never-materialize-``A`` algorithms stream
them block by block.  The contract: storage is *transparent* — the same
blocks, the same factors, byte for byte — and sparse blocks (already
compressed) pass through untouched.
"""

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro.comm.backends import run_spmd
from repro.comm.grid import ProcessGrid
from repro.core.api import fit
from repro.core.config import NMFConfig
from repro.data.lowrank import planted_lowrank
from repro.dist.distmatrix import DistMatrix2D
from repro.dist.storage import STORAGE_MODES, materialize_block, validate_storage
from repro.util.errors import ShapeError


@pytest.fixture(autouse=True)
def _silence_oversubscription():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


class TestValidation:
    def test_known_modes(self):
        assert STORAGE_MODES == ("memory", "memmap")
        for mode in STORAGE_MODES:
            validate_storage(mode)  # must not raise

    @pytest.mark.parametrize("bad", ["disk", "", None, 3, "MEMMAP"])
    def test_unknown_mode_raises_listing_choices(self, bad):
        with pytest.raises(ShapeError, match="memory"):
            validate_storage(bad)

    def test_config_validates_storage(self):
        assert NMFConfig(k=2, storage="memmap").storage == "memmap"
        with pytest.raises(ShapeError, match="storage"):
            NMFConfig(k=2, storage="ramdisk")


class TestMaterializeBlock:
    def test_memory_mode_is_identity(self):
        block = np.arange(12.0).reshape(3, 4)
        assert materialize_block(block, "memory") is block

    def test_dense_block_lands_on_a_memmap(self):
        block = np.random.default_rng(0).random((5, 7))
        out = materialize_block(block, "memmap")
        assert isinstance(out, np.memmap)
        assert out.dtype == block.dtype and out.shape == block.shape
        assert out.tobytes() == block.tobytes()

    def test_memmapped_block_is_writable_like_memory(self):
        out = materialize_block(np.zeros((2, 2)), "memmap")
        out[0, 0] = 7.0  # solvers may scribble on local views
        assert out[0, 0] == 7.0

    def test_sparse_blocks_pass_through(self):
        block = sp.random(6, 5, density=0.3, random_state=0, format="csr")
        assert materialize_block(block, "memmap") is block

    def test_zero_size_blocks_pass_through(self):
        # More ranks than rows gives some ranks an empty block; np.memmap
        # cannot map zero bytes, so these stay as ordinary arrays.
        block = np.empty((0, 4))
        out = materialize_block(block, "memmap")
        assert out.shape == (0, 4) and not isinstance(out, np.memmap)


class TestDistMatrixStorage:
    @pytest.mark.parametrize("p,pr,pc", [(1, 1, 1), (4, 2, 2)])
    def test_from_global_blocks_identical_across_storage(self, p, pr, pc):
        A = np.random.default_rng(3).random((23, 17))

        def program(comm):
            grid = ProcessGrid(comm, pr, pc)
            mem = DistMatrix2D.from_global(grid, A, storage="memory")
            mapped = DistMatrix2D.from_global(grid, A, storage="memmap")
            same = mem.block.tobytes() == mapped.block.tobytes()
            return same, isinstance(mapped.block, np.memmap), mapped.block.size

        for same, is_mapped, size in run_spmd(p, program):
            assert same
            assert is_mapped == (size > 0)

    def test_generator_path_honours_storage(self):
        A = np.random.default_rng(4).random((16, 12))

        def program(comm):
            grid = ProcessGrid(comm, 2, 2)

            def gen(rows, cols, rank):
                return A[rows[0]:rows[1], cols[0]:cols[1]]

            d = DistMatrix2D.from_block_generator(
                grid, A.shape, gen, storage="memmap"
            )
            return isinstance(d.block, np.memmap)

        assert all(run_spmd(4, program))


class TestEndToEndParity:
    @pytest.mark.parametrize("backend", ["process", "socket"])
    def test_memmap_factors_byte_identical_dense_hpc2d_p4(self, backend):
        """The PR's out-of-core acceptance pin: Algorithm 3 at p=4 on dense
        input produces the same bytes whether A's blocks live in RAM or on
        memmap-backed temp files — on shared memory and over the wire."""
        A = planted_lowrank(32, 24, 3, seed=5, noise_std=0.05)
        kwargs = dict(variant="hpc2d", n_ranks=4, max_iters=4, seed=9,
                      backend=backend)
        in_memory = fit(A, 3, storage="memory", **kwargs)
        on_disk = fit(A, 3, storage="memmap", **kwargs)
        assert in_memory.W.tobytes() == on_disk.W.tobytes()
        assert in_memory.H.tobytes() == on_disk.H.tobytes()
        np.testing.assert_array_equal(
            in_memory.relative_error_history, on_disk.relative_error_history
        )

    def test_sparse_input_accepts_memmap_mode_as_noop(self):
        A = sp.random(32, 24, density=0.2, random_state=5, format="csr")
        kwargs = dict(variant="hpc2d", n_ranks=4, max_iters=3, seed=9)
        result = fit(A, 3, storage="memmap", **kwargs)
        reference = fit(A, 3, storage="memory", **kwargs)
        assert result.W.tobytes() == reference.W.tobytes()
