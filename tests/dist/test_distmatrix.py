"""Tests for the distributed data-matrix containers.

The key guarantees: every global entry lands in exactly one 2D block
(round-trip reassembly), the generator path produces bit-identical blocks to
slicing a global matrix, and the 1D double partition hands each rank
consistent row/column blocks.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.comm.backends import run_spmd
from repro.comm.grid import ProcessGrid
from repro.dist.distmatrix import DistMatrix2D, DoublePartitioned1D
from repro.util.errors import ShapeError


def spmd_blocks(p, pr, pc, program):
    """Run ``program(grid)`` on p ranks arranged as a pr x pc grid."""

    def wrapper(comm):
        return program(ProcessGrid(comm, pr, pc))

    return run_spmd(p, wrapper)


GRIDS = [(1, 1, 1), (2, 2, 1), (2, 1, 2), (4, 2, 2), (6, 3, 2), (6, 2, 3)]


class TestDistMatrix2D:
    @pytest.mark.parametrize("p,pr,pc", GRIDS)
    def test_blocks_tile_global_matrix(self, p, pr, pc):
        A = np.random.default_rng(0).random((23, 17))   # indivisible on purpose

        def program(grid):
            d = DistMatrix2D.from_global(grid, A)
            return d.row_range, d.col_range, d.block

        out = spmd_blocks(p, pr, pc, program)
        assembled = np.full(A.shape, np.nan)
        for (r0, r1), (c0, c1), block in out:
            assert np.all(np.isnan(assembled[r0:r1, c0:c1])), "blocks overlap"
            assembled[r0:r1, c0:c1] = block
        np.testing.assert_array_equal(assembled, A)

    @pytest.mark.parametrize("p,pr,pc", [(4, 2, 2), (6, 3, 2)])
    def test_sparse_blocks_match_dense_blocks(self, p, pr, pc):
        A = sp.random(30, 22, density=0.2, random_state=1, format="csr")
        dense = A.toarray()

        def program(grid):
            d = DistMatrix2D.from_global(grid, A)
            assert d.is_sparse
            assert d.local_nnz == d.block.nnz
            return d.block.toarray(), DistMatrix2D.from_global(grid, dense).block

        for sparse_block, dense_block in spmd_blocks(p, pr, pc, program):
            np.testing.assert_array_equal(sparse_block, dense_block)

    @pytest.mark.parametrize("p,pr,pc", GRIDS)
    def test_generator_path_matches_from_global(self, p, pr, pc):
        A = np.random.default_rng(2).random((19, 26))

        def gen(row_range, col_range, rank):
            return A[row_range[0]:row_range[1], col_range[0]:col_range[1]]

        def program(grid):
            direct = DistMatrix2D.from_global(grid, A)
            generated = DistMatrix2D.from_block_generator(grid, A.shape, gen)
            np.testing.assert_array_equal(generated.block, direct.block)
            assert generated.row_range == direct.row_range
            assert generated.col_range == direct.col_range
            return True

        assert all(spmd_blocks(p, pr, pc, program))

    def test_generator_wrong_shape_rejected(self):
        def bad_gen(row_range, col_range, rank):
            return np.zeros((1, 1))

        def program(grid):
            with pytest.raises(ShapeError):
                DistMatrix2D.from_block_generator(grid, (8, 8), bad_gen)
            return True

        assert all(spmd_blocks(4, 2, 2, program))

    def test_non_csr_sparse_formats_accepted(self):
        # COO (scipy.io.mmread's default) doesn't support slicing; from_global
        # must normalise the format instead of crashing.
        A = sp.coo_matrix(sp.random(20, 15, density=0.2, random_state=7))

        def program(grid):
            return DistMatrix2D.from_global(grid, A).block.toarray(), \
                DistMatrix2D.from_global(grid, A.tocsr()).block.toarray()

        for coo_block, csr_block in spmd_blocks(4, 2, 2, program):
            np.testing.assert_array_equal(coo_block, csr_block)
        d = DoublePartitioned1D.from_global(1, 3, A)
        np.testing.assert_array_equal(
            np.asarray(d.row_block.todense()), A.toarray()[7:14]
        )

    def test_duplicate_entries_are_canonicalised(self):
        # Two stored entries at one position (value 1+2=3): the norms both
        # layouts compute from .data must see the summed value, and the
        # caller's matrix must not be mutated in the process.
        A = sp.csr_matrix(
            (np.array([1.0, 2.0]), np.array([0, 0]), np.array([0, 2, 2, 2, 2])),
            shape=(4, 4),
        )
        d1 = DoublePartitioned1D.from_global(0, 2, A)
        assert float(d1.row_block.data @ d1.row_block.data) == 9.0
        assert A.nnz == 2, "caller's matrix must stay untouched"

        def program(grid):
            d = DistMatrix2D.from_global(grid, A)
            return d.frobenius_norm_squared(), d.local_nnz

        for norm, _ in spmd_blocks(4, 2, 2, program):
            assert norm == 9.0

    def test_frobenius_norm_is_global(self):
        A = np.random.default_rng(3).random((21, 15))
        expected = float(np.vdot(A, A))

        def program(grid):
            return DistMatrix2D.from_global(grid, A).frobenius_norm_squared()

        for got in spmd_blocks(6, 2, 3, program):
            assert got == pytest.approx(expected, rel=1e-12)

    def test_to_global_round_trip(self):
        A = sp.random(18, 25, density=0.3, random_state=4, format="csr")

        def program(grid):
            return DistMatrix2D.from_global(grid, A).to_global()

        for reassembled in spmd_blocks(4, 2, 2, program):
            np.testing.assert_array_equal(reassembled, A.toarray())


class TestDoublePartitioned1D:
    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_row_and_col_blocks_reassemble(self, p):
        A = np.random.default_rng(5).random((17, 13))
        by_rows = np.vstack(
            [DoublePartitioned1D.from_global(r, p, A).row_block for r in range(p)]
        )
        by_cols = np.hstack(
            [DoublePartitioned1D.from_global(r, p, A).col_block for r in range(p)]
        )
        np.testing.assert_array_equal(by_rows, A)
        np.testing.assert_array_equal(by_cols, A)

    def test_sparse_blocks_consistent_with_dense(self):
        A = sp.random(20, 14, density=0.25, random_state=6, format="csr")
        for rank in range(4):
            d = DoublePartitioned1D.from_global(rank, 4, A)
            assert d.is_sparse
            dd = DoublePartitioned1D.from_global(rank, 4, A.toarray())
            np.testing.assert_array_equal(np.asarray(d.row_block.todense()), dd.row_block)
            np.testing.assert_array_equal(np.asarray(d.col_block.todense()), dd.col_block)
            assert d.row_range == dd.row_range
            assert d.col_range == dd.col_range

    def test_ranges_are_independent_per_axis(self):
        # A 10 x 4 matrix on 3 ranks: row and column partitions differ.
        A = np.arange(40, dtype=float).reshape(10, 4)
        d = DoublePartitioned1D.from_global(1, 3, A)
        assert d.row_range == (4, 7)
        assert d.col_range == (2, 3)
        assert d.row_block.shape == (3, 4)
        assert d.col_block.shape == (10, 1)
