"""Tests for the sparse load-balance diagnostics and mitigation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.webgraph import web_graph_matrix
from repro.dist.load_balance import (
    imbalance_factor,
    nnz_per_block,
    random_permutation_balance,
    unpermute_factors,
)
from repro.util.errors import PartitionError


class TestImbalanceFactor:
    def test_uniform_dense_matrix_is_perfectly_balanced(self):
        A = np.ones((16, 16))
        report = imbalance_factor(A, 4, 4)
        assert report.imbalance == pytest.approx(1.0)
        assert report.max_nnz == report.min_nnz == 16

    def test_counts_sum_to_total_nnz(self):
        A = sp.random(40, 30, density=0.1, random_state=0, format="csr")
        for grid in ((1, 1), (2, 3), (4, 4), (7, 5)):
            counts = nnz_per_block(A, *grid)
            assert counts.shape == grid
            assert counts.sum() == A.nnz

    def test_imbalance_lower_bound(self):
        A = sp.random(50, 50, density=0.05, random_state=1, format="csr")
        for grid in ((2, 2), (5, 5)):
            assert imbalance_factor(A, *grid).imbalance >= 1.0

    def test_concentrated_matrix_maximally_imbalanced(self):
        # All nonzeros inside one block: imbalance == number of blocks.
        A = np.zeros((8, 8))
        A[:4, :4] = 1.0
        report = imbalance_factor(A, 2, 2)
        assert report.imbalance == pytest.approx(4.0)

    def test_empty_matrix_reports_one(self):
        assert imbalance_factor(np.zeros((6, 6)), 2, 2).imbalance == 1.0

    def test_blocks_match_partition_boundaries(self):
        # 5 rows over 2 blocks -> first block gets 3 rows (remainder first).
        A = np.zeros((5, 4))
        A[2, :] = 1.0   # row 2 belongs to block 0 of [0,3) / [3,5)
        counts = nnz_per_block(A, 2, 1)
        assert counts[0, 0] == 4 and counts[1, 0] == 0

    def test_invalid_grid_rejected(self):
        with pytest.raises(PartitionError):
            imbalance_factor(np.ones((4, 4)), 0, 2)


class TestRandomPermutationBalance:
    def test_permutation_is_a_relabeling(self):
        A = sp.random(25, 18, density=0.2, random_state=2, format="csr")
        permuted, row_perm, col_perm = random_permutation_balance(A, seed=3)
        assert permuted.shape == A.shape
        assert permuted.nnz == A.nnz
        np.testing.assert_array_equal(
            permuted.toarray(), A.toarray()[np.ix_(row_perm, col_perm)]
        )

    def test_dense_input_supported(self):
        A = np.random.default_rng(4).random((10, 12))
        permuted, row_perm, col_perm = random_permutation_balance(A, seed=5)
        np.testing.assert_array_equal(permuted, A[np.ix_(row_perm, col_perm)])

    def test_deterministic_in_seed(self):
        A = sp.random(20, 20, density=0.1, random_state=6, format="csr")
        p1, r1, c1 = random_permutation_balance(A, seed=7)
        p2, r2, c2 = random_permutation_balance(A, seed=7)
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(p1.toarray(), p2.toarray())

    def test_improves_adversarial_concentration(self):
        # Hubs packed into the top-left corner: the permutation must spread them.
        A = np.zeros((64, 64))
        A[:8, :8] = 1.0
        before = imbalance_factor(A, 4, 4).imbalance
        permuted, _, _ = random_permutation_balance(A, seed=8)
        after = imbalance_factor(permuted, 4, 4).imbalance
        assert before == pytest.approx(16.0)
        assert after < before

    def test_does_not_hurt_web_graph_balance(self):
        A = web_graph_matrix(1000, 10_000, seed=9)
        permuted, _, _ = random_permutation_balance(A, seed=1)
        for grid in ((2, 2), (4, 4)):
            before = imbalance_factor(A, *grid).imbalance
            after = imbalance_factor(permuted, *grid).imbalance
            assert after <= before * 1.25

    def test_unpermute_round_trips_factors(self):
        rng = np.random.default_rng(10)
        W, H = rng.random((12, 3)), rng.random((3, 9))
        row_perm, col_perm = rng.permutation(12), rng.permutation(9)
        W_back, H_back = unpermute_factors(W[row_perm], H[:, col_perm], row_perm, col_perm)
        np.testing.assert_array_equal(W_back, W)
        np.testing.assert_array_equal(H_back, H)
