"""Unit tests for deterministic per-rank seeding."""

import numpy as np
import pytest

from repro.util.seeding import per_rank_seed, spawn_rng


def test_same_inputs_same_seed():
    assert per_rank_seed(42, 3) == per_rank_seed(42, 3)


def test_different_ranks_different_seeds():
    seeds = {per_rank_seed(7, r) for r in range(200)}
    assert len(seeds) == 200


def test_different_base_seeds_different_seeds():
    assert per_rank_seed(1, 0) != per_rank_seed(2, 0)


def test_negative_rank_rejected():
    with pytest.raises(ValueError):
        per_rank_seed(0, -1)


def test_spawn_rng_reproducible():
    a = spawn_rng(5, 2).random(10)
    b = spawn_rng(5, 2).random(10)
    np.testing.assert_array_equal(a, b)


def test_spawn_rng_rank_independence():
    a = spawn_rng(5, 0).random(10)
    b = spawn_rng(5, 1).random(10)
    assert not np.allclose(a, b)


def test_large_rank_supported():
    assert per_rank_seed(0, 1500) >= 0
