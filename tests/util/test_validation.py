"""Unit tests for input validation helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.util.errors import NonNegativityError, ShapeError
from repro.util.validation import (
    as_dense,
    check_matrix,
    check_nonnegative,
    check_rank,
    is_sparse,
)
from repro.util.validation import check_factors


class TestCheckMatrix:
    def test_dense_list_is_converted_to_float64(self):
        A = check_matrix([[1, 2], [3, 4]])
        assert isinstance(A, np.ndarray)
        assert A.dtype == np.float64
        assert A.flags["C_CONTIGUOUS"]

    def test_sparse_is_converted_to_csr(self):
        A = check_matrix(sp.coo_matrix(np.eye(3)))
        assert sp.issparse(A)
        assert A.format == "csr"

    def test_sparse_rejected_when_not_allowed(self):
        with pytest.raises(ShapeError):
            check_matrix(sp.eye(3), allow_sparse=False)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            check_matrix(np.arange(5))

    def test_rejects_empty_dimension(self):
        with pytest.raises(ShapeError):
            check_matrix(np.zeros((0, 4)))

    def test_rejects_nan(self):
        A = np.ones((3, 3))
        A[1, 1] = np.nan
        with pytest.raises(ShapeError):
            check_matrix(A)

    def test_rejects_inf(self):
        A = np.ones((3, 3))
        A[0, 2] = np.inf
        with pytest.raises(ShapeError):
            check_matrix(A)


class TestCheckNonnegative:
    def test_accepts_nonnegative_dense(self):
        check_nonnegative(np.abs(np.random.default_rng(0).standard_normal((4, 4))))

    def test_rejects_negative_dense(self):
        A = np.ones((3, 3))
        A[2, 2] = -0.5
        with pytest.raises(NonNegativityError):
            check_nonnegative(A)

    def test_rejects_negative_sparse(self):
        A = sp.csr_matrix(np.array([[0.0, -1.0], [2.0, 0.0]]))
        with pytest.raises(NonNegativityError):
            check_nonnegative(A)

    def test_accepts_empty_sparse(self):
        check_nonnegative(sp.csr_matrix((5, 5)))


class TestCheckRank:
    def test_valid_rank_passes(self):
        assert check_rank(3, 10, 8) == 3

    def test_rank_zero_rejected(self):
        with pytest.raises(ShapeError):
            check_rank(0, 10, 10)

    def test_rank_above_min_dim_rejected(self):
        with pytest.raises(ShapeError):
            check_rank(9, 10, 8)


class TestCheckFactors:
    def test_shapes_must_match(self):
        W = np.zeros((5, 2))
        H = np.zeros((2, 7))
        check_factors(W, H, 5, 7, 2)
        with pytest.raises(ShapeError):
            check_factors(W, H, 6, 7, 2)
        with pytest.raises(ShapeError):
            check_factors(W, H, 5, 7, 3)


class TestConversions:
    def test_as_dense_on_sparse(self):
        A = sp.csr_matrix(np.arange(6, dtype=float).reshape(2, 3))
        np.testing.assert_array_equal(as_dense(A), np.arange(6, dtype=float).reshape(2, 3))

    def test_is_sparse(self):
        assert is_sparse(sp.eye(2))
        assert not is_sparse(np.eye(2))
