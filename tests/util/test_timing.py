"""Unit tests for the accumulating timer."""

from repro.util.timing import Timer, WallClock


class FakeClock(WallClock):
    def __init__(self):
        self.value = 0.0

    def now(self):
        return self.value


def test_timer_accumulates_and_counts():
    clock = FakeClock()
    timer = Timer(clock=clock)
    with timer:
        clock.value += 1.5
    with timer:
        clock.value += 0.5
    assert timer.total == 2.0
    assert timer.calls == 2


def test_timer_reset():
    clock = FakeClock()
    timer = Timer(clock=clock)
    with timer:
        clock.value += 1.0
    timer.reset()
    assert timer.total == 0.0
    assert timer.calls == 0
