"""Tests for MU, HALS and projected-gradient solvers."""

import numpy as np
import pytest

from repro.nls import (
    HALSUpdate,
    MultiplicativeUpdate,
    ProjectedGradient,
    available_solvers,
    make_solver,
)


def quadratic_objective(gram, rhs, x):
    """½⟨x, G x⟩ − ⟨r, x⟩ (the NLS objective up to a constant)."""
    return 0.5 * np.sum(x * (gram @ x)) - np.sum(rhs * x)


def make_problem(k, c, seed):
    rng = np.random.default_rng(seed)
    C = rng.random((5 * k, k)) + 0.01
    B = rng.random((5 * k, c))
    return C.T @ C, C.T @ B


class TestMultiplicativeUpdate:
    @pytest.mark.parametrize("seed", range(4))
    def test_objective_never_increases(self, seed):
        gram, rhs = make_problem(6, 8, seed)
        solver = MultiplicativeUpdate(inner_iters=1)
        x = np.full(rhs.shape, 0.5)
        prev = quadratic_objective(gram, rhs, x)
        for _ in range(25):
            x = solver.solve(gram, rhs, x0=x)
            current = quadratic_objective(gram, rhs, x)
            assert current <= prev + 1e-9
            prev = current

    def test_result_nonnegative_and_finite(self):
        gram, rhs = make_problem(5, 6, 11)
        x = MultiplicativeUpdate(inner_iters=5).solve(gram, rhs)
        assert np.all(x >= 0)
        assert np.all(np.isfinite(x))

    def test_zero_start_is_replaced_by_positive_constant(self):
        gram, rhs = make_problem(4, 3, 2)
        x = MultiplicativeUpdate().solve(gram, rhs, x0=None)
        assert np.all(x >= 0)

    def test_inner_iters_validation(self):
        with pytest.raises(ValueError):
            MultiplicativeUpdate(inner_iters=0)


class TestHALS:
    @pytest.mark.parametrize("seed", range(4))
    def test_objective_never_increases(self, seed):
        gram, rhs = make_problem(6, 8, 50 + seed)
        solver = HALSUpdate(inner_iters=1)
        x = np.full(rhs.shape, 0.5)
        prev = quadratic_objective(gram, rhs, x)
        for _ in range(25):
            x = solver.solve(gram, rhs, x0=x)
            current = quadratic_objective(gram, rhs, x)
            assert current <= prev + 1e-9
            prev = current

    def test_approaches_bpp_solution_with_many_sweeps(self):
        gram, rhs = make_problem(5, 4, 3)
        from repro.nls import BlockPrincipalPivoting

        exact = BlockPrincipalPivoting().solve(gram, rhs)
        approx = HALSUpdate(inner_iters=500).solve(gram, rhs, x0=np.full(rhs.shape, 0.5))
        assert quadratic_objective(gram, rhs, approx) <= quadratic_objective(gram, rhs, exact) + 1e-4

    def test_zero_diagonal_row_is_zeroed(self):
        gram = np.diag([1.0, 0.0, 2.0])
        rhs = np.ones((3, 2))
        x = HALSUpdate().solve(gram, rhs, x0=np.ones((3, 2)))
        np.testing.assert_array_equal(x[1], np.zeros(2))

    def test_inner_iters_validation(self):
        with pytest.raises(ValueError):
            HALSUpdate(inner_iters=-1)


class TestProjectedGradient:
    def test_converges_to_kkt_point(self):
        from repro.nls import check_kkt

        gram, rhs = make_problem(6, 5, 21)
        solver = ProjectedGradient(max_iters=5000, tol=1e-10)
        x = solver.solve(gram, rhs)
        assert np.all(x >= 0)
        assert check_kkt(gram, rhs, x, tol=1e-4)

    def test_matches_bpp_objective(self):
        from repro.nls import BlockPrincipalPivoting

        gram, rhs = make_problem(5, 5, 22)
        exact = BlockPrincipalPivoting().solve(gram, rhs)
        approx = ProjectedGradient(max_iters=5000, tol=1e-12).solve(gram, rhs)
        assert quadratic_objective(gram, rhs, approx) <= (
            quadratic_objective(gram, rhs, exact) + 1e-5
        )

    def test_reports_convergence_state(self):
        gram, rhs = make_problem(4, 3, 23)
        solver = ProjectedGradient(max_iters=5000, tol=1e-8)
        solver.solve(gram, rhs)
        assert solver.last_state is not None
        assert solver.last_state.converged


class TestRegistry:
    def test_available_solvers_lists_all(self):
        names = available_solvers()
        assert {"bpp", "mu", "hals", "pgrad", "admm"} <= set(names)

    def test_make_solver_by_name(self):
        assert make_solver("bpp").name == "bpp"
        assert make_solver("MU").name == "mu"
        assert make_solver("hals", inner_iters=3).inner_iters == 3

    def test_unknown_solver_raises(self):
        with pytest.raises(KeyError):
            make_solver("simplex")
