"""Tests for the ADMM NLS solver."""

import numpy as np
import pytest

from repro.nls import ADMMSolver, BlockPrincipalPivoting, check_kkt, make_solver


def make_problem(k, c, seed):
    rng = np.random.default_rng(seed)
    C = rng.standard_normal((4 * k, k))
    B = rng.standard_normal((4 * k, c))
    return C.T @ C + 1e-8 * np.eye(k), C.T @ B


class TestADMM:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bpp_solution(self, seed):
        gram, rhs = make_problem(6, 8, seed)
        exact = BlockPrincipalPivoting().solve(gram, rhs)
        admm = ADMMSolver(max_iters=2000, tol=1e-10).solve(gram, rhs)
        np.testing.assert_allclose(admm, exact, atol=1e-5, rtol=1e-4)

    def test_solution_is_feasible_and_near_kkt(self):
        gram, rhs = make_problem(8, 10, 42)
        x = ADMMSolver(max_iters=3000, tol=1e-10).solve(gram, rhs)
        assert np.all(x >= 0)
        assert check_kkt(gram, rhs, x, tol=1e-3)

    def test_warm_start_converges_faster(self):
        gram, rhs = make_problem(7, 9, 3)
        solver = ADMMSolver(max_iters=5000, tol=1e-10)
        cold = solver.solve(gram, rhs)
        cold_iters = solver.last_state.iterations
        solver.solve(gram, rhs, x0=cold)
        warm_iters = solver.last_state.iterations
        assert warm_iters <= cold_iters

    def test_explicit_rho_respected(self):
        gram, rhs = make_problem(5, 4, 1)
        x = ADMMSolver(rho=10.0, max_iters=2000, tol=1e-10).solve(gram, rhs)
        assert np.all(x >= 0)

    def test_registered_in_factory(self):
        from repro.nls import available_solvers

        assert "admm" in available_solvers()
        assert make_solver("admm").name == "admm"

    def test_plugs_into_nmf(self):
        from repro.core.api import nmf
        from repro.data.lowrank import planted_lowrank

        A = planted_lowrank(30, 24, 3, seed=5, noise_std=0.02)
        res = nmf(A, k=3, max_iters=8, solver="admm", seed=1)
        history = res.relative_error_history
        assert history[-1] <= history[0]
        assert np.all(res.W >= 0) and np.all(res.H >= 0)
