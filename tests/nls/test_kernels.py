"""The BPP kernels registry: resolution rules, byte parity, flop accounting.

The contract under test (see docs/ARCHITECTURE.md "Kernels registry"):

* ``scalar`` and ``batched`` are *byte-identical* — same factor bytes, same
  pivot counters — because both are built from the same factorization
  primitives (``np.linalg.cholesky`` + ``cho_solve``) applied to the same
  passive-set groups in the same order;
* ``numba`` agrees to solver tolerance (its hand-rolled Cholesky is a
  different instruction stream) and is gated behind a capability flag;
* every kernel tallies its Cholesky/triangular-solve flops into
  ``state.extra``, and ``bpp_flops_estimate`` stays a sane envelope of the
  measured counts.
"""

import numpy as np
import pytest

from repro.nls import (
    available_kernels,
    make_kernel,
    make_solver,
    registered_kernels,
    resolve_kernel,
)
from repro.nls.bpp import BlockPrincipalPivoting, bpp_flops_estimate
from repro.nls.kernels import cholesky_flops, triangular_solve_flops
from repro.nls.kernels_numba import NUMBA_AVAILABLE
from repro.util.errors import SolverError


def _problem(k, c, seed=0, rows=None):
    rng = np.random.default_rng(seed)
    C = rng.standard_normal((rows or 3 * k, k))
    B = rng.standard_normal((rows or 3 * k, c))
    return C.T @ C, C.T @ B


class TestRegistry:
    def test_all_kernels_registered(self):
        assert set(registered_kernels()) == {"scalar", "batched", "numba"}

    def test_available_subset_of_registered(self):
        avail = available_kernels()
        assert set(avail) <= set(registered_kernels())
        assert "scalar" in avail and "batched" in avail

    def test_numba_availability_matches_flag(self):
        assert ("numba" in available_kernels()) == NUMBA_AVAILABLE

    def test_resolve_default_is_scalar(self):
        assert resolve_kernel(None) == "scalar"

    def test_resolve_auto_prefers_numba_else_batched(self):
        expected = "numba" if NUMBA_AVAILABLE else "batched"
        assert resolve_kernel("auto") == expected

    def test_unknown_kernel_raises(self):
        with pytest.raises(SolverError, match="unknown"):
            resolve_kernel("typo")
        with pytest.raises(SolverError):
            make_kernel("typo")

    def test_unavailable_kernel_raises(self):
        if NUMBA_AVAILABLE:
            pytest.skip("numba importable on this host; nothing is unavailable")
        with pytest.raises(SolverError, match="not available"):
            make_kernel("numba")

    def test_solver_constructors_accept_kernel(self):
        for name in ("bpp", "mu", "hals", "pgrad", "admm"):
            solver = make_solver(name, kernel="batched")
            assert solver.requested_kernel == "batched"


class TestByteParity:
    """scalar vs batched: one solver call, identical bytes and counters."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k,c", [(3, 1), (8, 40), (12, 200)])
    def test_cold_start(self, k, c, seed):
        gram, rhs = _problem(k, c, seed)
        xs = BlockPrincipalPivoting(kernel="scalar").solve(gram, rhs)
        xb = BlockPrincipalPivoting(kernel="batched").solve(gram, rhs)
        assert xs.tobytes() == xb.tobytes()

    @pytest.mark.parametrize("seed", range(3))
    def test_warm_start(self, seed):
        gram, rhs = _problem(10, 64, seed)
        x0 = np.maximum(np.random.default_rng(seed + 100).standard_normal(rhs.shape), 0)
        xs = BlockPrincipalPivoting(kernel="scalar").solve(gram, rhs, x0=x0)
        xb = BlockPrincipalPivoting(kernel="batched").solve(gram, rhs, x0=x0)
        assert xs.tobytes() == xb.tobytes()

    def test_pivot_counters_match(self):
        gram, rhs = _problem(10, 120, seed=4)
        scalar, batched = (BlockPrincipalPivoting(kernel=k) for k in ("scalar", "batched"))
        scalar.solve(gram, rhs)
        batched.solve(gram, rhs)
        ss, sb = scalar.last_state, batched.last_state
        assert ss.iterations == sb.iterations
        assert ss.full_exchanges == sb.full_exchanges
        assert ss.backup_exchanges == sb.backup_exchanges
        assert ss.converged and sb.converged


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not importable")
class TestNumbaKernel:
    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_scalar_to_tolerance(self, seed):
        gram, rhs = _problem(9, 50, seed)
        xs = BlockPrincipalPivoting(kernel="scalar").solve(gram, rhs)
        xn = BlockPrincipalPivoting(kernel="numba").solve(gram, rhs)
        np.testing.assert_allclose(xn, xs, rtol=1e-6, atol=1e-8)
        assert np.all(xn >= 0)


class TestFlopAccounting:
    def test_flop_primitives(self):
        assert cholesky_flops(6) == pytest.approx(6**3 / 3.0)
        assert triangular_solve_flops(6, columns=10) == pytest.approx(2 * 36 * 10)

    def test_primitives_reexported_from_local_ops(self):
        from repro.core import local_ops

        assert local_ops.cholesky_flops is cholesky_flops
        assert local_ops.triangular_solve_flops is triangular_solve_flops

    @pytest.mark.parametrize("kernel", ["scalar", "batched"])
    def test_state_carries_tallies(self, kernel):
        gram, rhs = _problem(8, 60, seed=1)
        solver = BlockPrincipalPivoting(kernel=kernel)
        solver.solve(gram, rhs)
        extra = solver.last_state.extra
        assert extra["cholesky_flops"] > 0
        assert extra["triangular_solve_flops"] > 0

    def test_scalar_and_batched_tally_identically(self):
        # Both kernels factorize each unique passive-set pattern exactly once
        # per solve and push the same column groups through cho_solve, so the
        # tallies agree up to float summation order.
        gram, rhs = _problem(12, 200, seed=2)
        scalar, batched = (BlockPrincipalPivoting(kernel=k) for k in ("scalar", "batched"))
        scalar.solve(gram, rhs)
        batched.solve(gram, rhs)
        for key in ("cholesky_flops", "triangular_solve_flops"):
            assert scalar.last_state.extra[key] == pytest.approx(
                batched.last_state.extra[key], rel=1e-12
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_estimate_is_a_sane_envelope_of_measured(self, seed):
        # Regression pin for the grouped-solve flops estimate: with the
        # *actual* pivot-iteration count plugged in, the estimate must bound
        # the measured (tallied) flops from above — it assumes worst-case
        # passive-set sizes — while staying within two orders of magnitude
        # (the pre-fix estimate, one Cholesky per column per iteration, was
        # ~2/grouping_factor = 4x larger and drifting further with c).
        k, c = 12, 200
        gram, rhs = _problem(k, c, seed)
        solver = BlockPrincipalPivoting(kernel="batched")
        solver.solve(gram, rhs)
        state = solver.last_state
        measured = (
            state.extra["cholesky_flops"] + state.extra["triangular_solve_flops"]
        )
        estimate = bpp_flops_estimate(k, c, iterations=state.iterations)
        assert measured <= estimate
        assert measured >= 0.01 * estimate

    def test_estimate_matches_perf_model(self):
        from repro.perf.model import bpp_flops

        assert bpp_flops(16, 300, iterations=7) == pytest.approx(
            bpp_flops_estimate(16, 300, iterations=7)
        )
        # The documented closed form: iterations * (gf * c * k^3/3 + 2 c k^2).
        assert bpp_flops_estimate(10, 50, iterations=3, grouping_factor=0.4) == (
            pytest.approx(3 * (0.4 * 50 * 1000 / 3.0 + 2.0 * 50 * 100))
        )


@pytest.mark.parametrize("kernel", available_kernels())
class TestAllKernelsDegenerate:
    def test_single_column_single_variable(self, kernel):
        x = BlockPrincipalPivoting(kernel=kernel).solve(
            np.array([[2.0]]), np.array([[4.0]])
        )
        np.testing.assert_allclose(x, [[2.0]])

    def test_all_negative_rhs_gives_zero(self, kernel):
        gram, _ = _problem(5, 1, seed=0)
        rhs = -np.abs(np.random.default_rng(1).standard_normal((5, 3))) - 0.1
        x = BlockPrincipalPivoting(kernel=kernel).solve(gram, rhs)
        np.testing.assert_array_equal(x, np.zeros((5, 3)))

    def test_rank_deficient_gram(self, kernel):
        rng = np.random.default_rng(5)
        C = rng.standard_normal((12, 4))
        C = np.hstack([C, C[:, :1]])  # duplicate column -> singular Gram
        B = rng.standard_normal((12, 6))
        gram, rhs = C.T @ C, C.T @ B
        x = BlockPrincipalPivoting(kernel=kernel).solve(gram, rhs)
        assert np.all(x >= 0)
        assert np.all(np.isfinite(x))
