"""Tests for the Lawson–Hanson reference solver itself (the oracle must be right)."""

import numpy as np
import pytest

from repro.nls import active_set_nnls, check_kkt
from repro.util.errors import ShapeError


def test_known_small_problem():
    # min ||Cx - b|| with C = I: solution is the positive part of b.
    gram = np.eye(3)
    rhs = np.array([1.0, -2.0, 3.0])
    x = active_set_nnls(gram, rhs)
    np.testing.assert_allclose(x, [1.0, 0.0, 3.0])


def test_matches_scipy_nnls_on_random_problems():
    from scipy.optimize import nnls as scipy_nnls

    rng = np.random.default_rng(0)
    for _ in range(10):
        C = rng.random((25, 6))
        b = rng.standard_normal(25)
        x_ours = active_set_nnls(C.T @ C, C.T @ b)
        x_scipy, _ = scipy_nnls(C, b)
        np.testing.assert_allclose(x_ours, x_scipy, atol=1e-7)


def test_kkt_satisfied_on_batch():
    rng = np.random.default_rng(3)
    C = rng.standard_normal((30, 5))
    B = rng.standard_normal((30, 4))
    gram, rhs = C.T @ C, C.T @ B
    X = active_set_nnls(gram, rhs)
    assert X.shape == (5, 4)
    assert check_kkt(gram, rhs, X, tol=1e-7)


def test_shape_validation():
    with pytest.raises(ShapeError):
        active_set_nnls(np.zeros((2, 3)), np.zeros(2))
    with pytest.raises(ShapeError):
        active_set_nnls(np.eye(3), np.zeros(4))
