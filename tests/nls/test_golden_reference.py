"""Golden-reference NLS harness: every kernel/solver vs an exhaustive oracle.

``golden_nnls`` below is deliberately the *slowest obviously-correct* solver
one can write for ``min_{x >= 0} 1/2 xᵀGx - rᵀx``: it enumerates **every**
passive subset F of the k variables, solves the unconstrained subproblem on F
with ``lstsq``, and keeps the KKT-feasible candidate with the lowest
objective.  For a convex problem the optimum's passive set is among the 2^k
subsets, so this search cannot miss it — there is no pivoting logic to get
wrong, which is the whole point of a golden reference.

Solutions need not be unique when the Gram matrix is rank-deficient, so the
harness compares *objectives* (which are unique at the optimum) and checks
the KKT residual of each kernel's own solution, rather than comparing
iterates elementwise.  Hypothesis drives the problem generator through dense,
sparse, rank-deficient, and all-zero-column regimes; problems are built from
an explicit ``(C, B)`` pair so a zero column in C produces the matching zero
Gram row/column *and* zero RHS row (the degenerate case an NMF iteration
actually produces when a factor column dies).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nls import available_kernels, make_solver
from repro.nls.bpp import BlockPrincipalPivoting
from repro.nls.kernels_numba import NUMBA_AVAILABLE, bpp_columns

MODES = ("dense", "sparse", "rank_deficient", "zero_column")


def _build_problem(mode, k, c, rows, seed):
    rng = np.random.default_rng(seed)
    C = rng.standard_normal((rows, k))
    if mode == "sparse":
        C *= rng.random(C.shape) < 0.5  # sparse-ish factor -> sparse Gram
    elif mode == "rank_deficient" and k >= 2:
        C[:, -1] = C[:, 0]  # duplicate column -> exactly singular Gram
    elif mode == "zero_column":
        C[:, rng.integers(k)] = 0.0  # dead factor column
    B = rng.standard_normal((rows, c))
    return C.T @ C, C.T @ B


def _objective(gram, r, x):
    return 0.5 * x @ gram @ x - r @ x


def _kkt_residual(gram, rhs, X, scale):
    """max violation of Eq. 6: x >= 0, y = Gx - r >= 0, x·y = 0 (elementwise)."""
    Y = gram @ X - rhs
    return max(
        float(np.max(-X, initial=0.0)),
        float(np.max(-Y, initial=0.0)) / scale,
        float(np.max(np.abs(X * Y), initial=0.0)) / scale,
    )


def golden_nnls(gram, rhs, tol=1e-8):
    """Exhaustive-enumeration NNLS: provably optimal for k small enough."""
    k, c = rhs.shape
    scale = max(np.abs(gram).max(), np.abs(rhs).max(), 1.0)
    X = np.zeros_like(rhs, dtype=float)
    for j in range(c):
        r = rhs[:, j]
        best = None
        for mask in range(2**k):
            idx = np.flatnonzero([(mask >> i) & 1 for i in range(k)])
            x = np.zeros(k)
            if idx.size:
                sub = gram[np.ix_(idx, idx)]
                sol, *_ = np.linalg.lstsq(sub, r[idx], rcond=None)
                # The optimum's passive system is consistent; if lstsq only
                # found a least-squares (not exact) solution this subset is
                # not the optimal support and the KKT check below rejects it.
                x[idx] = sol
            if np.min(x, initial=0.0) < -tol * scale:
                continue
            x = np.maximum(x, 0.0)
            y = gram @ x - r
            if np.min(y, initial=0.0) < -tol * scale:
                continue
            if np.max(np.abs(x * y), initial=0.0) > np.sqrt(tol) * scale**2:
                continue
            obj = _objective(gram, r, x)
            if best is None or obj < best[0]:
                best = (obj, x)
        assert best is not None, "no KKT point found -- golden solver bug"
        X[:, j] = best[1]
    return X


@st.composite
def _nls_problems(draw, max_k=5, max_c=4):
    mode = draw(st.sampled_from(MODES))
    k = draw(st.integers(1, max_k))
    c = draw(st.integers(1, max_c))
    rows = draw(st.integers(k + 1, 3 * max_k))
    seed = draw(st.integers(0, 2**31 - 1))
    return _build_problem(mode, k, c, rows, seed)


class TestGoldenSolverItself:
    """The oracle must be right before anything is graded against it."""

    def test_identity_gram_is_positive_part(self):
        rhs = np.array([[1.0, -2.0], [-3.0, 4.0]])
        np.testing.assert_allclose(golden_nnls(np.eye(2), rhs),
                                   np.maximum(rhs, 0.0))

    def test_matches_scipy_nnls(self):
        from scipy.optimize import nnls as scipy_nnls

        rng = np.random.default_rng(7)
        for _ in range(8):
            C = rng.standard_normal((12, 4))
            b = rng.standard_normal(12)
            x_gold = golden_nnls(C.T @ C, (C.T @ b)[:, None])[:, 0]
            x_scipy, _ = scipy_nnls(C, b)
            np.testing.assert_allclose(x_gold, x_scipy, atol=1e-7)

    def test_handles_zero_gram(self):
        X = golden_nnls(np.zeros((3, 3)), np.zeros((3, 2)))
        np.testing.assert_array_equal(X, np.zeros((3, 2)))


@pytest.mark.parametrize("kernel", available_kernels())
class TestKernelsVsGolden:
    """Every registered BPP kernel must reproduce the golden optimum."""

    @given(problem=_nls_problems())
    @settings(max_examples=40, deadline=None)
    def test_matches_golden(self, kernel, problem):
        gram, rhs = problem
        scale = max(np.abs(gram).max(), np.abs(rhs).max(), 1.0)
        gold = golden_nnls(gram, rhs)
        x = BlockPrincipalPivoting(kernel=kernel).solve(gram, rhs)
        assert x.shape == rhs.shape
        assert np.all(x >= 0)
        assert np.all(np.isfinite(x))
        assert _kkt_residual(gram, rhs, x, scale) < 1e-6
        for j in range(rhs.shape[1]):
            got = _objective(gram, rhs[:, j], x[:, j])
            want = _objective(gram, rhs[:, j], gold[:, j])
            assert got <= want + 1e-6 * scale**2

    @pytest.mark.parametrize("mode", MODES)
    def test_each_regime_deterministically(self, kernel, mode):
        # Fixed-seed smoke of every regime, so a failure names the regime
        # directly instead of needing hypothesis shrinking output.
        gram, rhs = _build_problem(mode, k=4, c=3, rows=9, seed=20)
        scale = max(np.abs(gram).max(), np.abs(rhs).max(), 1.0)
        gold = golden_nnls(gram, rhs)
        x = BlockPrincipalPivoting(kernel=kernel).solve(gram, rhs)
        assert _kkt_residual(gram, rhs, x, scale) < 1e-6
        for j in range(rhs.shape[1]):
            assert _objective(gram, rhs[:, j], x[:, j]) <= (
                _objective(gram, rhs[:, j], gold[:, j]) + 1e-6 * scale**2
            )


class TestNumbaCoreVsGolden:
    """The numba kernel's core, exercised as pure Python when numba is absent.

    ``bpp_columns`` runs uncompiled when numba is not importable (the njit
    decorator degrades to a no-op), so the *logic* is verified on every host;
    CI's numba leg additionally runs it compiled.
    """

    @given(problem=_nls_problems())
    @settings(max_examples=(15 if not NUMBA_AVAILABLE else 40), deadline=None)
    def test_matches_golden(self, problem):
        gram, rhs = problem
        k, c = rhs.shape
        scale = max(np.abs(gram).max(), np.abs(rhs).max(), 1.0)
        gold = golden_nnls(gram, rhs)
        x = np.zeros((k, c))
        passive = np.zeros((k, c), dtype=np.bool_)
        out = bpp_columns(
            np.ascontiguousarray(gram), np.ascontiguousarray(rhs),
            x, passive, 3, 1000, 1e-12,
        )
        converged = bool(out[3])
        assert converged
        np.maximum(x, 0.0, out=x)
        assert _kkt_residual(gram, rhs, x, scale) < 1e-6
        for j in range(c):
            assert _objective(gram, rhs[:, j], x[:, j]) <= (
                _objective(gram, rhs[:, j], gold[:, j]) + 1e-6 * scale**2
            )


class TestIterativeSolversVsGolden:
    """The inexact solvers must *approach* the golden objective.

    MU/HALS/PGD/ADMM are descent methods, not exact pivoting solvers, so the
    contract is a loose objective gap after enough inner sweeps — plus the
    hard invariants (nonnegativity, finiteness) that hold at any accuracy.
    """

    @pytest.mark.parametrize("solver_name", ["mu", "hals", "pgrad", "admm"])
    def test_objective_gap_is_small(self, solver_name):
        rng = np.random.default_rng(11)
        C = rng.random((20, 4)) + 0.05
        B = rng.random((20, 3))
        gram, rhs = C.T @ C, C.T @ B
        gold = golden_nnls(gram, rhs)
        kwargs = {"inner_iters": 400} if solver_name in ("mu", "hals") else {}
        solver = make_solver(solver_name, **kwargs)
        x = solver.solve(gram, rhs)
        assert np.all(x >= 0) and np.all(np.isfinite(x))
        gap = sum(
            _objective(gram, rhs[:, j], x[:, j])
            - _objective(gram, rhs[:, j], gold[:, j])
            for j in range(rhs.shape[1])
        )
        gold_norm = abs(sum(_objective(gram, rhs[:, j], gold[:, j])
                            for j in range(rhs.shape[1])))
        assert gap >= -1e-8 * max(gold_norm, 1.0)  # golden is optimal
        assert gap <= 0.05 * max(gold_norm, 1.0)
