"""Hypothesis property tests for the NLS solvers.

The central invariants:

* BPP returns a nonnegative solution satisfying the KKT conditions (Eq. 6)
  for every well-posed problem;
* BPP matches the Lawson–Hanson oracle (both compute the exact minimizer);
* one MU or HALS sweep never increases the quadratic objective.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nls import (
    BlockPrincipalPivoting,
    HALSUpdate,
    MultiplicativeUpdate,
    active_set_nnls,
    check_kkt,
)


def _problem_strategy(max_k=8, max_c=6):
    """Generate (gram, rhs) pairs with a reasonably conditioned Gram matrix."""

    @st.composite
    def build(draw):
        k = draw(st.integers(1, max_k))
        c = draw(st.integers(1, max_c))
        rows = draw(st.integers(k + 1, 3 * max_k + 2))
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        C = rng.standard_normal((rows, k))
        B = rng.standard_normal((rows, c)) * draw(st.floats(0.1, 10.0))
        gram = C.T @ C + 1e-8 * np.eye(k)
        return gram, C.T @ B

    return build()


@given(_problem_strategy())
@settings(max_examples=80, deadline=None)
def test_bpp_satisfies_kkt_and_nonnegativity(problem):
    gram, rhs = problem
    x = BlockPrincipalPivoting().solve(gram, rhs)
    assert x.shape == rhs.shape
    assert np.all(x >= 0)
    assert np.all(np.isfinite(x))
    assert check_kkt(gram, rhs, x, tol=1e-6)


@given(_problem_strategy(max_k=6, max_c=4))
@settings(max_examples=40, deadline=None)
def test_bpp_matches_active_set_oracle(problem):
    gram, rhs = problem
    x_bpp = BlockPrincipalPivoting().solve(gram, rhs)
    x_ref = active_set_nnls(gram, rhs)
    np.testing.assert_allclose(x_bpp, x_ref, atol=1e-6, rtol=1e-6)


@given(_problem_strategy(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_mu_sweep_never_increases_objective(problem, seed):
    # MU's monotonicity guarantee applies to nonnegative data (C, B >= 0),
    # which is the regime in which the ANLS framework uses it.
    gram_raw, rhs_raw = problem
    k, c = rhs_raw.shape
    rng = np.random.default_rng(seed)
    C = rng.random((3 * k + 2, k))
    B = rng.random((3 * k + 2, c))
    gram, rhs = C.T @ C + 1e-10 * np.eye(k), C.T @ B

    def objective(x):
        return 0.5 * np.sum(x * (gram @ x)) - np.sum(rhs * x)

    x0 = np.full(rhs.shape, 0.5)
    x1 = MultiplicativeUpdate().solve(gram, rhs, x0=x0)
    assert np.all(x1 >= 0)
    assert objective(x1) <= objective(x0) + 1e-8


@given(_problem_strategy())
@settings(max_examples=60, deadline=None)
def test_hals_sweep_never_increases_objective(problem):
    gram, rhs = problem

    def objective(x):
        return 0.5 * np.sum(x * (gram @ x)) - np.sum(rhs * x)

    x0 = np.full(rhs.shape, 0.5)
    x1 = HALSUpdate().solve(gram, rhs, x0=x0)
    assert np.all(x1 >= 0)
    assert objective(x1) <= objective(x0) + 1e-8


@given(_problem_strategy(max_k=5, max_c=3), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_bpp_idempotent_from_optimal_warm_start(problem, repeats):
    """Re-solving from the optimal solution must return the same solution."""
    gram, rhs = problem
    solver = BlockPrincipalPivoting()
    x = solver.solve(gram, rhs)
    for _ in range(repeats):
        x_again = solver.solve(gram, rhs, x0=x)
        np.testing.assert_allclose(x_again, x, atol=1e-8)
