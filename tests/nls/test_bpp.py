"""Unit tests for the Block Principal Pivoting solver."""

import numpy as np
import pytest

from repro.nls import BlockPrincipalPivoting, active_set_nnls, check_kkt, kkt_residual
from repro.util.errors import ShapeError


def make_problem(k, c, seed, cond=1.0):
    """Random NLS problem in normal-equations form with a well-conditioned Gram."""
    rng = np.random.default_rng(seed)
    C = rng.standard_normal((4 * k, k)) * cond
    B = rng.standard_normal((4 * k, c))
    return C.T @ C, C.T @ B


class TestBPPCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_solution_satisfies_kkt(self, seed):
        gram, rhs = make_problem(k=8, c=12, seed=seed)
        x = BlockPrincipalPivoting().solve(gram, rhs)
        assert np.all(x >= 0)
        assert check_kkt(gram, rhs, x, tol=1e-8)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_lawson_hanson_oracle(self, seed):
        gram, rhs = make_problem(k=6, c=7, seed=100 + seed)
        x_bpp = BlockPrincipalPivoting().solve(gram, rhs)
        x_ref = active_set_nnls(gram, rhs)
        np.testing.assert_allclose(x_bpp, x_ref, atol=1e-8)

    def test_unconstrained_optimum_recovered_when_nonnegative(self):
        # If the unconstrained LS solution is already nonnegative it is the answer.
        rng = np.random.default_rng(0)
        C = rng.random((30, 5)) + 0.1
        x_true = rng.random((5, 4)) + 0.05
        B = C @ x_true
        gram, rhs = C.T @ C, C.T @ B
        x = BlockPrincipalPivoting().solve(gram, rhs)
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_zero_rhs_gives_zero_solution(self):
        gram, _ = make_problem(5, 3, 0)
        x = BlockPrincipalPivoting().solve(gram, np.zeros((5, 3)))
        np.testing.assert_array_equal(x, np.zeros((5, 3)))

    def test_negative_rhs_gives_zero_solution(self):
        # If Cᵀb is entirely nonpositive, x = 0 satisfies the KKT conditions.
        gram, rhs = make_problem(5, 3, 1)
        x = BlockPrincipalPivoting().solve(gram, -np.abs(rhs))
        np.testing.assert_array_equal(x, np.zeros((5, 3)))

    def test_single_column_vector_rhs(self):
        gram, rhs = make_problem(4, 1, 3)
        x = BlockPrincipalPivoting().solve(gram, rhs[:, 0])
        assert x.shape == (4, 1)
        assert check_kkt(gram, rhs[:, 0], x, tol=1e-8)

    def test_warm_start_gives_same_solution(self):
        gram, rhs = make_problem(7, 9, 4)
        solver = BlockPrincipalPivoting()
        cold = solver.solve(gram, rhs)
        warm = solver.solve(gram, rhs, x0=cold)
        np.testing.assert_allclose(cold, warm, atol=1e-10)

    def test_near_singular_gram_still_feasible(self):
        rng = np.random.default_rng(5)
        C = rng.random((20, 6))
        C[:, 5] = C[:, 4]  # exactly collinear columns
        B = rng.random((20, 3))
        gram, rhs = C.T @ C, C.T @ B
        x = BlockPrincipalPivoting().solve(gram, rhs)
        assert np.all(x >= 0)
        assert np.all(np.isfinite(x))
        # Objective should still be near the oracle's.
        x_ref = active_set_nnls(gram, rhs)

        def objective(x):
            return np.sum(x * (gram @ x)) - 2 * np.sum(rhs * x)

        assert objective(x) <= objective(x_ref) + 1e-6


class TestBPPDiagnostics:
    def test_state_reports_iterations(self):
        gram, rhs = make_problem(6, 10, 7)
        solver = BlockPrincipalPivoting()
        solver.solve(gram, rhs)
        assert solver.last_state is not None
        assert solver.last_state.converged
        assert solver.last_state.iterations >= 1

    def test_shape_validation(self):
        solver = BlockPrincipalPivoting()
        with pytest.raises(ShapeError):
            solver.solve(np.zeros((3, 2)), np.zeros((3, 1)))
        with pytest.raises(ShapeError):
            solver.solve(np.eye(3), np.zeros((4, 1)))
        with pytest.raises(ShapeError):
            solver.solve(np.eye(3), np.zeros((3, 2)), x0=np.zeros((3, 3)))

    def test_kkt_residual_detects_bad_point(self):
        gram, rhs = make_problem(5, 2, 9)
        bad = np.full((5, 2), 10.0)
        assert kkt_residual(gram, rhs, bad) > 1.0
