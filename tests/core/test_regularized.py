"""Tests for regularized NMF."""

import numpy as np
import pytest

from repro.core.anls import anls_nmf
from repro.core.config import NMFConfig
from repro.core.regularized import (
    Regularization,
    regularize_gram_rhs,
    regularized_nmf,
    regularized_objective,
)
from repro.data.lowrank import planted_lowrank
from repro.util.errors import ShapeError


class TestRegularization:
    def test_negative_weights_rejected(self):
        with pytest.raises(ShapeError):
            Regularization(frobenius=-1.0)
        with pytest.raises(ShapeError):
            Regularization(l1=-0.1)

    def test_is_active(self):
        assert not Regularization().is_active
        assert Regularization(frobenius=0.1).is_active
        assert Regularization(l1=0.1).is_active

    def test_gram_rhs_modification(self):
        gram = np.eye(3)
        rhs = np.ones((3, 2))
        g, r = regularize_gram_rhs(gram, rhs, Regularization(frobenius=2.0, l1=1.0))
        np.testing.assert_array_equal(g, 3.0 * np.eye(3))
        np.testing.assert_array_equal(r, np.full((3, 2), 0.5))
        # Inactive regularization returns the inputs untouched.
        g2, r2 = regularize_gram_rhs(gram, rhs, Regularization())
        assert g2 is gram and r2 is rhs


class TestRegularizedNMF:
    def test_zero_weights_match_plain_anls(self):
        A = planted_lowrank(30, 24, 3, seed=0, noise_std=0.02)
        cfg = NMFConfig(k=3, max_iters=6, seed=5)
        plain = anls_nmf(A, cfg)
        reg = regularized_nmf(A, cfg, Regularization())
        np.testing.assert_allclose(reg.W, plain.W, rtol=1e-10)
        np.testing.assert_allclose(reg.H, plain.H, rtol=1e-10)

    def test_l1_increases_factor_sparsity(self):
        A = planted_lowrank(60, 45, 5, seed=1, noise_std=0.05)
        cfg = NMFConfig(k=5, max_iters=15, seed=2)
        plain = regularized_nmf(A, cfg, Regularization())
        sparse = regularized_nmf(A, cfg, Regularization(l1=0.5))
        zero_frac_plain = np.mean(plain.H < 1e-10) + np.mean(plain.W < 1e-10)
        zero_frac_sparse = np.mean(sparse.H < 1e-10) + np.mean(sparse.W < 1e-10)
        assert zero_frac_sparse > zero_frac_plain

    def test_frobenius_shrinks_factor_norms(self):
        A = planted_lowrank(40, 30, 4, seed=3, noise_std=0.05)
        cfg = NMFConfig(k=4, max_iters=12, seed=4)
        plain = regularized_nmf(A, cfg, Regularization())
        ridge = regularized_nmf(A, cfg, Regularization(frobenius=5.0))
        assert (np.linalg.norm(ridge.W) + np.linalg.norm(ridge.H)) < (
            np.linalg.norm(plain.W) + np.linalg.norm(plain.H)
        )

    def test_penalized_objective_monotone(self):
        A = planted_lowrank(40, 30, 3, seed=5, noise_std=0.05)
        cfg = NMFConfig(k=3, max_iters=12, seed=6)
        res = regularized_nmf(A, cfg, Regularization(frobenius=0.5, l1=0.1))
        objectives = res.objective_history
        assert all(b <= a + 1e-6 * abs(a) for a, b in zip(objectives, objectives[1:]))

    def test_factors_nonnegative(self):
        A = planted_lowrank(30, 20, 3, seed=7)
        res = regularized_nmf(A, NMFConfig(k=3, max_iters=5), Regularization(l1=1.0))
        assert np.all(res.W >= 0) and np.all(res.H >= 0)

    def test_objective_helper_adds_penalties(self):
        W = np.ones((4, 2))
        H = np.ones((2, 3))
        base = regularized_objective(10.0, 2.0, W.T @ W, H @ H.T, W, H, Regularization())
        ridged = regularized_objective(
            10.0, 2.0, W.T @ W, H @ H.T, W, H, Regularization(frobenius=1.0)
        )
        assert ridged == pytest.approx(base + (8.0 + 6.0))
        l1 = regularized_objective(10.0, 2.0, W.T @ W, H @ H.T, W, H, Regularization(l1=2.0))
        assert l1 == pytest.approx(base + 2.0 * (8.0 + 6.0))
