"""Hypothesis property tests for the objective computation and the NMF invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import nmf
from repro.core.objective import frobenius_error, relative_error


@given(
    m=st.integers(2, 25),
    n=st.integers(2, 20),
    k=st.integers(1, 5),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_gram_trick_error_matches_direct_norm(m, n, k, seed):
    rng = np.random.default_rng(seed)
    A = rng.random((m, n))
    W = rng.random((m, k))
    H = rng.random((k, n))
    direct = np.linalg.norm(A - W @ H, "fro")
    via_trick = frobenius_error(A, W, H)
    np.testing.assert_allclose(via_trick, direct, rtol=1e-9, atol=1e-9)


@given(
    m=st.integers(4, 20),
    n=st.integers(4, 16),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_nmf_factors_nonnegative_and_error_bounded(m, n, seed):
    rng = np.random.default_rng(seed)
    A = rng.random((m, n))
    k = min(3, min(m, n))
    result = nmf(A, k=k, max_iters=3, seed=seed % 1000)
    assert np.all(result.W >= 0)
    assert np.all(result.H >= 0)
    # Relative error of any NMF is at most 1 (the zero factorization).
    assert 0.0 <= result.relative_error <= 1.0 + 1e-9


@given(
    m=st.integers(3, 15),
    n=st.integers(3, 12),
    k=st.integers(1, 3),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_relative_error_is_scale_invariant(m, n, k, seed):
    rng = np.random.default_rng(seed)
    A = rng.random((m, n)) + 0.1
    W = rng.random((m, k))
    H = rng.random((k, n))
    scale = 7.5
    np.testing.assert_allclose(
        relative_error(A, W, H),
        relative_error(scale * A, scale * W, H),
        rtol=1e-9,
    )
