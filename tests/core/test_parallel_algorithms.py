"""Tests for Algorithm 2 (Naive) and Algorithm 3 (HPC-NMF) individually."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import parallel_nmf
from repro.core.config import Algorithm, NMFConfig
from repro.core.hpc_nmf import resolve_grid
from repro.data.lowrank import planted_lowrank
from repro.util.errors import CommunicatorError, ShapeError


class TestNaiveParallel:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_runs_and_reduces_error(self, p):
        A = planted_lowrank(36, 28, 3, seed=0, noise_std=0.02)
        res = parallel_nmf(A, k=3, n_ranks=p, algorithm="naive", max_iters=8, seed=1)
        assert res.W.shape == (36, 3)
        assert res.n_ranks == p
        history = res.relative_error_history
        assert history[-1] <= history[0]

    def test_breakdown_has_allgather_but_no_reduce_scatter(self):
        A = planted_lowrank(30, 24, 3, seed=1)
        res = parallel_nmf(A, k=3, n_ranks=3, algorithm="naive", max_iters=3, seed=1)
        assert res.breakdown.get("AllGather") > 0
        assert res.breakdown.get("ReduceScatter") == 0.0

    def test_ledger_records_two_allgathers_per_iteration(self):
        A = planted_lowrank(30, 24, 3, seed=1)
        iters = 4
        res = parallel_nmf(
            A, k=3, n_ranks=3, algorithm="naive", max_iters=iters, seed=1, compute_error=False
        )
        assert res.ledger_summary["all_gather"]["calls"] == 2 * iters

    def test_sparse_input(self):
        A = sp.random(40, 32, density=0.15, random_state=2, format="csr")
        res = parallel_nmf(A, k=4, n_ranks=4, algorithm="naive", max_iters=4, seed=3)
        assert np.all(res.W >= 0) and np.all(res.H >= 0)


class TestHPCNMF:
    @pytest.mark.parametrize("p,expected_grid", [(1, (1, 1)), (4, (2, 2)), (6, (3, 2))])
    def test_grid_selection_squarish(self, p, expected_grid):
        A = planted_lowrank(36, 24, 3, seed=0)
        res = parallel_nmf(A, k=3, n_ranks=p, algorithm="hpc2d", max_iters=2, seed=1)
        assert res.grid_shape == expected_grid

    def test_1d_variant_uses_1d_grid(self):
        A = planted_lowrank(40, 24, 3, seed=0)
        res = parallel_nmf(A, k=3, n_ranks=4, algorithm="hpc1d", max_iters=2, seed=1)
        assert res.grid_shape == (4, 1)

    def test_explicit_grid_respected(self):
        A = planted_lowrank(36, 24, 3, seed=0)
        res = parallel_nmf(A, k=3, n_ranks=4, algorithm="hpc2d", grid=(1, 4), max_iters=2, seed=1)
        assert res.grid_shape == (1, 4)

    def test_mismatched_grid_rejected(self):
        A = planted_lowrank(36, 24, 3, seed=0)
        with pytest.raises(CommunicatorError):
            parallel_nmf(A, k=3, n_ranks=4, algorithm="hpc2d", grid=(3, 2), max_iters=2)

    @pytest.mark.parametrize("p", [1, 2, 4, 6, 9])
    def test_error_decreases_on_2d_grids(self, p):
        A = planted_lowrank(45, 36, 4, seed=2, noise_std=0.02)
        res = parallel_nmf(A, k=4, n_ranks=p, algorithm="hpc2d", max_iters=8, seed=4)
        history = res.relative_error_history
        assert history[-1] <= history[0]
        assert all(b <= a + 1e-8 for a, b in zip(history, history[1:]))

    def test_breakdown_contains_all_six_categories(self):
        A = planted_lowrank(48, 36, 3, seed=3)
        res = parallel_nmf(A, k=3, n_ranks=4, algorithm="hpc2d", max_iters=3, seed=1)
        for category in ("MM", "NLS", "Gram", "AllGather", "ReduceScatter", "AllReduce"):
            assert res.breakdown.get(category) > 0, category

    def test_ledger_collective_counts_per_iteration(self):
        A = planted_lowrank(48, 36, 3, seed=3)
        iters = 5
        res = parallel_nmf(
            A, k=3, n_ranks=4, algorithm="hpc2d", max_iters=iters, seed=1, compute_error=False
        )
        # Per iteration: 2 all-reduces (world), 2 all-gathers (row/col), 2 reduce-scatters.
        assert res.ledger_summary["all_reduce"]["calls"] == 2 * iters
        assert res.ledger_summary["all_gather"]["calls"] == 2 * iters
        assert res.ledger_summary["reduce_scatter"]["calls"] == 2 * iters

    def test_sparse_input_2d_grid(self):
        A = sp.random(60, 48, density=0.1, random_state=5, format="csr")
        res = parallel_nmf(A, k=4, n_ranks=6, algorithm="hpc2d", max_iters=4, seed=3)
        assert np.all(res.W >= 0) and np.all(res.H >= 0)
        assert res.relative_error <= 1.0

    @pytest.mark.parametrize("solver", ["bpp", "mu", "hals"])
    def test_alternative_solvers_plug_in(self, solver):
        A = planted_lowrank(40, 32, 3, seed=6, noise_std=0.01)
        res = parallel_nmf(
            A, k=3, n_ranks=4, algorithm="hpc2d", solver=solver, max_iters=6, seed=2
        )
        history = res.relative_error_history
        assert history[-1] <= history[0]

    def test_tall_skinny_matrix_gets_1d_grid_automatically(self):
        # m/p > n triggers the paper's 1D rule inside choose_grid.
        A = planted_lowrank(400, 6, 2, seed=7)
        res = parallel_nmf(A, k=2, n_ranks=4, algorithm="hpc2d", max_iters=2, seed=1)
        assert res.grid_shape == (4, 1)


class TestResolveGrid:
    def test_explicit_grid_must_match_p(self):
        cfg = NMFConfig(k=3, grid=(2, 3))
        assert resolve_grid(cfg, 100, 100, 6) == (2, 3)
        with pytest.raises(CommunicatorError):
            resolve_grid(cfg, 100, 100, 4)

    def test_hpc1d_forces_1d(self):
        cfg = NMFConfig(k=3, algorithm=Algorithm.HPC_1D)
        assert resolve_grid(cfg, 100, 100, 8) == (8, 1)

    def test_hpc2d_uses_selection_rule(self):
        cfg = NMFConfig(k=3, algorithm=Algorithm.HPC_2D)
        assert resolve_grid(cfg, 90, 90, 9) == (3, 3)


class TestAPIValidation:
    def test_invalid_n_ranks(self):
        with pytest.raises(ShapeError):
            parallel_nmf(np.ones((10, 8)), k=2, n_ranks=0)

    def test_sequential_algorithm_ignores_ranks(self):
        A = planted_lowrank(20, 16, 2, seed=8)
        res = parallel_nmf(A, k=2, n_ranks=7, algorithm="sequential", max_iters=3)
        assert res.n_ranks == 1
