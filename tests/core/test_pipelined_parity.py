"""Pipelined vs. blocking schedule parity for the Algorithm 2/3 loops.

The acceptance contract of the pipelined schedule: ``overlap=True`` and
``overlap=False`` produce byte-identical factors and identical cost ledgers
on every backend, and the pipelined run on the concurrent backends matches
the lockstep oracle bit for bit.  Anything less means the nonblocking
collectives reordered or re-rounded something.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import fit

PARALLEL_VARIANTS = ("naive", "hpc1d", "hpc2d")


def _dense(seed=0, m=60, n=44):
    rng = np.random.default_rng(seed)
    return np.abs(rng.standard_normal((m, n)))


def _sparse(seed=3, m=70, n=50):
    return sp.random(m, n, density=0.15, random_state=seed, format="csr")


def _run(A, variant, backend, p=4, **options):
    return fit(
        A, 5, variant=variant, backend=backend, n_ranks=p, max_iters=4,
        seed=11, **options,
    )


@pytest.mark.parametrize("variant", PARALLEL_VARIANTS)
@pytest.mark.parametrize("panel", ["dense", "sparse"])
def test_pipelined_equals_blocking_on_lockstep(variant, panel):
    A = _dense() if panel == "dense" else _sparse()
    blocking = _run(A, variant, "lockstep", overlap=False)
    pipelined = _run(A, variant, "lockstep", overlap=True)
    np.testing.assert_array_equal(blocking.W, pipelined.W)
    np.testing.assert_array_equal(blocking.H, pipelined.H)
    assert blocking.ledger_summary == pipelined.ledger_summary


@pytest.mark.parametrize("variant", PARALLEL_VARIANTS)
@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("panel", ["dense", "sparse"])
def test_pipelined_backends_match_lockstep_oracle(variant, backend, panel):
    A = _dense(seed=7) if panel == "dense" else _sparse(seed=9)
    oracle = _run(A, variant, "lockstep", overlap=False)
    pipelined = _run(A, variant, backend, overlap=True)
    np.testing.assert_array_equal(oracle.W, pipelined.W)
    np.testing.assert_array_equal(oracle.H, pipelined.H)
    assert oracle.ledger_summary == pipelined.ledger_summary


@pytest.mark.parametrize("variant", PARALLEL_VARIANTS)
def test_parity_with_early_stop(variant):
    """tol > 0 disables speculative issue but parity must still hold."""
    A = _dense(seed=5)
    blocking = _run(A, variant, "thread", overlap=False, tol=1e-9)
    pipelined = _run(A, variant, "thread", overlap=True, tol=1e-9)
    np.testing.assert_array_equal(blocking.W, pipelined.W)
    assert blocking.iterations == pipelined.iterations
    assert blocking.ledger_summary == pipelined.ledger_summary


@pytest.mark.parametrize("variant", PARALLEL_VARIANTS)
def test_parity_without_error_tracking(variant):
    """compute_error=False removes the overlap window after the NLS; the
    speculative gather then overlaps nothing but must stay correct."""
    A = _dense(seed=6)
    blocking = _run(A, variant, "process", overlap=False, compute_error=False)
    pipelined = _run(A, variant, "process", overlap=True, compute_error=False)
    np.testing.assert_array_equal(blocking.W, pipelined.W)
    np.testing.assert_array_equal(blocking.H, pipelined.H)
    assert blocking.ledger_summary == pipelined.ledger_summary


def test_pipelined_breakdown_total_excludes_hidden_comm():
    A = _dense(seed=8)
    res = _run(A, "hpc2d", "thread", overlap=True)
    bd = res.breakdown
    assert bd.hidden_communication >= 0.0
    assert bd.total == pytest.approx(
        sum(v for k, v in bd.seconds.items() if k != "HiddenComm")
    )


def test_overlap_flag_is_noop_for_sequential():
    A = _dense(seed=2)
    default = fit(A, 5, variant="sequential", max_iters=4, seed=11)
    off = fit(A, 5, variant="sequential", max_iters=4, seed=11, overlap=False)
    np.testing.assert_array_equal(default.W, off.W)
    np.testing.assert_array_equal(default.H, off.H)
