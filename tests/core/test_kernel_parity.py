"""Kernel parity: batched BPP must not change a single byte of any run.

The batched kernel regroups the BPP column loop but is built from the same
factorization primitives applied to the same passive-set groups in the same
order as the scalar kernel, so full factorizations — Algorithm 2 and
Algorithm 3, every backend, dense and sparse data — must produce
*byte-identical* factors and error histories.  This is the strongest possible
"the optimization changed nothing" statement, and it is what lets the
kernels registry default stay swappable without re-blessing every recorded
result.
"""

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import fit
from repro.core.config import NMFConfig
from repro.data.lowrank import planted_lowrank


@pytest.fixture(autouse=True)
def _silence_oversubscription():
    # p=4 oversubscribes small hosts; the warning has its own test in
    # tests/comm/test_process_backend.py.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


def _dense():
    return planted_lowrank(32, 24, 3, seed=5, noise_std=0.05)


def _sparse():
    return sp.random(32, 24, density=0.2, random_state=5, format="csr")


def _pair(A, *, kernels=("scalar", "batched"), **kwargs):
    return [fit(A, 3, max_iters=4, seed=9, kernel=kernel, **kwargs)
            for kernel in kernels]


@pytest.mark.parametrize("backend", ["thread", "lockstep", "process"])
@pytest.mark.parametrize("variant", ["naive", "hpc1d", "hpc2d"])
def test_batched_is_byte_identical_on_every_backend(variant, backend):
    scalar, batched = _pair(_dense(), variant=variant, n_ranks=4, backend=backend)
    assert scalar.W.tobytes() == batched.W.tobytes()
    assert scalar.H.tobytes() == batched.H.tobytes()
    np.testing.assert_array_equal(
        scalar.relative_error_history, batched.relative_error_history
    )


@pytest.mark.parametrize("variant", ["naive", "hpc1d", "hpc2d"])
def test_batched_is_byte_identical_on_sparse_data(variant):
    scalar, batched = _pair(_sparse(), variant=variant, n_ranks=4, backend="thread")
    assert scalar.W.tobytes() == batched.W.tobytes()
    assert scalar.H.tobytes() == batched.H.tobytes()
    np.testing.assert_array_equal(
        scalar.relative_error_history, batched.relative_error_history
    )


def test_batched_is_byte_identical_sequentially():
    scalar, batched = _pair(_dense(), variant="sequential")
    assert scalar.W.tobytes() == batched.W.tobytes()
    assert scalar.H.tobytes() == batched.H.tobytes()


def test_kernel_flows_through_config():
    A = _dense()
    cfg = NMFConfig(k=3, max_iters=3, seed=2, kernel="batched")
    via_config = fit(A, 3, config=cfg)
    via_kwarg = fit(A, 3, max_iters=3, seed=2, kernel="batched")
    assert via_config.W.tobytes() == via_kwarg.W.tobytes()
    assert via_config.config.kernel == "batched"


def test_auto_kernel_resolves_and_matches_bytes():
    # "auto" resolves to batched (or numba when importable); batched keeps
    # byte parity, so the dense run must match scalar exactly whenever the
    # resolution lands on batched.
    from repro.nls import resolve_kernel

    A = _dense()
    resolved = resolve_kernel("auto")
    auto = fit(A, 3, max_iters=4, seed=9, kernel="auto")
    scalar = fit(A, 3, max_iters=4, seed=9)
    if resolved == "batched":
        assert auto.W.tobytes() == scalar.W.tobytes()
    else:  # numba leg in CI: agreement is solver-tolerance, not bits
        np.testing.assert_allclose(auto.W, scalar.W, rtol=1e-5, atol=1e-7)
    assert auto.config.kernel == "auto"
