"""Tests for NMFConfig and NMFResult."""

import numpy as np
import pytest

from repro.comm.profiler import TimeBreakdown
from repro.core.config import Algorithm, NMFConfig
from repro.core.result import IterationStats, NMFResult
from repro.util.errors import ShapeError


class TestNMFConfig:
    def test_defaults(self):
        cfg = NMFConfig(k=10)
        assert cfg.solver == "bpp"
        assert cfg.algorithm == Algorithm.HPC_2D
        assert cfg.max_iters == 30

    def test_algorithm_string_coercion(self):
        cfg = NMFConfig(k=5, algorithm="naive")
        assert cfg.algorithm is Algorithm.NAIVE

    def test_invalid_values_rejected(self):
        with pytest.raises(ShapeError):
            NMFConfig(k=0)
        with pytest.raises(ShapeError):
            NMFConfig(k=2, max_iters=0)
        with pytest.raises(ShapeError):
            NMFConfig(k=2, tol=-1.0)
        with pytest.raises(ShapeError):
            NMFConfig(k=2, inner_iters=0)
        with pytest.raises(ValueError):
            NMFConfig(k=2, algorithm="not-an-algorithm")

    def test_with_options_returns_modified_copy(self):
        cfg = NMFConfig(k=5)
        cfg2 = cfg.with_options(max_iters=99, solver="mu")
        assert cfg2.max_iters == 99 and cfg2.solver == "mu"
        assert cfg.max_iters == 30  # original unchanged

    def test_make_solver_respects_inner_iters(self):
        cfg = NMFConfig(k=5, solver="hals", inner_iters=4)
        assert cfg.make_solver().inner_iters == 4
        assert NMFConfig(k=5, solver="bpp").make_solver().name == "bpp"


class TestNMFResult:
    def _result(self):
        history = [
            IterationStats(0, objective=10.0, relative_error=0.9, seconds=0.1),
            IterationStats(1, objective=4.0, relative_error=0.5, seconds=0.1),
        ]
        return NMFResult(
            W=np.ones((6, 2)),
            H=np.ones((2, 5)),
            config=NMFConfig(k=2),
            iterations=2,
            history=history,
            breakdown=TimeBreakdown.from_parts(MM=1.0, NLS=0.5),
            n_ranks=4,
            grid_shape=(2, 2),
        )

    def test_final_metrics(self):
        res = self._result()
        assert res.objective == 4.0
        assert res.relative_error == 0.5
        assert res.objective_history == [10.0, 4.0]
        assert res.relative_error_history == [0.9, 0.5]

    def test_reconstruction(self):
        res = self._result()
        np.testing.assert_array_equal(res.reconstruction(), np.full((6, 5), 2.0))

    def test_seconds_per_iteration(self):
        res = self._result()
        assert res.seconds_per_iteration == pytest.approx(1.5 / 2)

    def test_empty_history_gives_nan(self):
        res = NMFResult(
            W=np.zeros((3, 1)), H=np.zeros((1, 3)), config=NMFConfig(k=1), iterations=0
        )
        assert np.isnan(res.objective)
        assert np.isnan(res.relative_error)
        assert res.seconds_per_iteration == 0.0

    def test_summary_mentions_key_facts(self):
        text = self._result().summary()
        assert "k=2" in text
        assert "ranks: 4" in text
        assert "grid 2x2" in text
