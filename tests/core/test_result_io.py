"""Tests for NMFResult provenance fields and the save/load npz round-trip."""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import fit
from repro.core.result import NMFResult
from repro.core.symmetric import SymNMFResult
from repro.core.variants import available_variants, get_variant
from repro.data.lowrank import planted_lowrank


def _dense():
    return planted_lowrank(24, 18, 2, seed=0, noise_std=0.02)


def _sparse():
    return sp.random(24, 18, density=0.25, random_state=0, format="csr")


def _roundtrip(result, tmp_path, name="result.npz"):
    path = result.save(tmp_path / name)
    return NMFResult.load(path)


class TestRoundTrip:
    def test_dense_with_history(self, tmp_path):
        res = fit(_dense(), 2, max_iters=4, seed=1)
        loaded = _roundtrip(res, tmp_path)
        assert np.array_equal(loaded.W, res.W)
        assert np.array_equal(loaded.H, res.H)
        assert loaded.config == res.config
        assert loaded.iterations == res.iterations
        assert loaded.converged == res.converged
        assert len(loaded.history) == 4
        assert loaded.relative_error == res.relative_error
        assert loaded.history[0].seconds == res.history[0].seconds
        assert loaded.breakdown.as_dict() == res.breakdown.as_dict()

    def test_dense_without_history(self, tmp_path):
        res = fit(_dense(), 2, max_iters=3, compute_error=False)
        loaded = _roundtrip(res, tmp_path)
        assert loaded.history == []
        assert np.isnan(loaded.relative_error)
        assert np.array_equal(loaded.W, res.W)

    def test_sparse_input_parallel_run(self, tmp_path):
        res = fit(_sparse(), 2, variant="hpc2d", n_ranks=4, backend="lockstep",
                  max_iters=3, seed=2)
        loaded = _roundtrip(res, tmp_path)
        assert np.array_equal(loaded.W, res.W)
        assert loaded.n_ranks == 4
        assert loaded.grid_shape == res.grid_shape
        assert isinstance(loaded.grid_shape, tuple)
        assert loaded.ledger_summary == res.ledger_summary
        assert loaded.backend == "lockstep"

    def test_sparse_without_history(self, tmp_path):
        res = fit(_sparse(), 2, variant="naive", n_ranks=2, max_iters=2,
                  compute_error=False)
        loaded = _roundtrip(res, tmp_path)
        assert loaded.history == []
        assert loaded.variant == "naive"

    def test_symmetric_round_trips_to_subclass(self, tmp_path):
        res = fit(_dense(), 2, variant="symmetric", max_iters=3, seed=1)
        loaded = _roundtrip(res, tmp_path)
        assert isinstance(loaded, SymNMFResult)
        assert loaded.alpha == res.alpha
        assert np.array_equal(loaded.G, res.G)
        assert np.array_equal(loaded.labels, res.labels)

    def test_custom_variant_result_class_round_trips(self, tmp_path):
        # load() resolves the result class through the registry, so a
        # third-party variant with its own subclass needs no edits to load().
        from dataclasses import dataclass

        from repro.core.anls import anls_nmf
        from repro.core.variants import Variant, register_variant
        from repro.core.variants.base import _REGISTRY

        @dataclass
        class TaggedResult(NMFResult):
            tag: str = ""

        @register_variant
        class TaggedVariant(Variant):
            name = "tagged-test"
            result_class = TaggedResult

            def run(self, A, config, observers=()):
                base = anls_nmf(A, config, observers=observers)
                payload = {f.name: getattr(base, f.name)
                           for f in base.__dataclass_fields__.values()}
                return TaggedResult(**payload, tag="hello")

        try:
            res = fit(_dense(), 2, variant="tagged-test", max_iters=2)
            res.variant = "tagged-test"
            loaded = _roundtrip(res, tmp_path, "tagged.npz")
            assert isinstance(loaded, TaggedResult)
            assert loaded.tag == "hello"
        finally:
            _REGISTRY.pop("tagged-test", None)

    def test_unregistered_variant_loads_as_base_class(self, tmp_path):
        res = fit(_dense(), 2, max_iters=2)
        res.variant = "long-gone-variant"
        loaded = _roundtrip(res, tmp_path)
        assert type(loaded) is NMFResult
        assert loaded.variant == "long-gone-variant"

    def test_save_appends_npz_suffix(self, tmp_path):
        res = fit(_dense(), 2, max_iters=2)
        written = res.save(tmp_path / "bare")
        assert written.suffix == ".npz"
        assert written.exists()
        assert np.array_equal(NMFResult.load(written).W, res.W)

    def test_to_dict_metadata_is_json_serialisable(self):
        res = fit(_dense(), 2, variant="hpc2d", n_ranks=2, max_iters=2, seed=1)
        payload = res.to_dict()
        meta = {k: v for k, v in payload.items() if k not in ("W", "H")}
        text = json.dumps(meta)
        assert json.loads(text)["variant"] == "hpc2d"


class TestProvenance:
    @pytest.mark.parametrize("variant", sorted(available_variants()))
    def test_variant_and_solver_recorded(self, variant):
        parallel = get_variant(variant).parallelizable
        res = fit(_dense(), 2, variant=variant,
                  n_ranks=2 if parallel else None, max_iters=2, seed=1)
        assert res.variant == variant
        assert res.solver == "bpp"
        if parallel:
            assert res.backend == "thread"
        else:
            assert res.backend is None

    @pytest.mark.parametrize("variant", ["naive", "hpc1d", "hpc2d"])
    @pytest.mark.parametrize("backend", ["thread", "lockstep"])
    def test_backend_recorded_for_both_backends(self, variant, backend, tmp_path):
        res = fit(_dense(), 2, variant=variant, n_ranks=2, backend=backend,
                  max_iters=2, seed=1)
        assert res.backend == backend
        assert res.variant == variant
        loaded = _roundtrip(res, tmp_path, f"{variant}-{backend}.npz")
        assert loaded.backend == backend
        assert loaded.variant == variant
        assert loaded.solver == "bpp"

    def test_alternative_solver_recorded(self):
        res = fit(_dense(), 2, solver="hals", max_iters=2, seed=1)
        assert res.solver == "hals"

    def test_summary_mentions_provenance(self):
        res = fit(_dense(), 2, variant="hpc2d", n_ranks=4, backend="lockstep",
                  max_iters=2, seed=1)
        text = res.summary()
        assert "variant=hpc2d" in text
        assert "backend lockstep" in text

    def test_hand_built_result_backfills_from_config(self):
        from repro.core.config import NMFConfig

        res = NMFResult(
            W=np.ones((4, 2)), H=np.ones((2, 3)),
            config=NMFConfig(k=2, solver="mu"), iterations=1,
        )
        assert res.variant == "hpc2d"  # config default algorithm
        assert res.solver == "mu"
        assert res.backend is None  # n_ranks == 1


class TestModelLoadError:
    """load() surfaces diagnosable errors: path + missing key, never raw OSError."""

    def _saved(self, tmp_path):
        return fit(_dense(), 2, max_iters=2, seed=1).save(tmp_path / "m.npz")

    def test_missing_file_names_the_path(self, tmp_path):
        from repro.util.errors import ModelLoadError

        with pytest.raises(ModelLoadError, match="ghost.npz") as exc_info:
            NMFResult.load(tmp_path / "ghost.npz")
        assert str(exc_info.value.path) == str(tmp_path / "ghost.npz")

    def test_corrupt_archive_is_model_load_error(self, tmp_path):
        from repro.util.errors import ModelLoadError

        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ModelLoadError, match="not a readable"):
            NMFResult.load(path)

    def test_missing_array_entry_names_the_key(self, tmp_path):
        from repro.util.errors import ModelLoadError

        path = self._saved(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            kept = {k: data[k] for k in data.files if k != "H"}
        np.savez(path, **kept)
        with pytest.raises(ModelLoadError, match="'H'") as exc_info:
            NMFResult.load(path)
        assert exc_info.value.missing_key == "H"

    def test_corrupt_meta_json_names_the_key(self, tmp_path):
        from repro.util.errors import ModelLoadError

        path = self._saved(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            W, H = np.array(data["W"]), np.array(data["H"])
        np.savez(path, W=W, H=H, meta=np.asarray("{not json"))
        with pytest.raises(ModelLoadError, match="not valid JSON") as exc_info:
            NMFResult.load(path)
        assert exc_info.value.missing_key == "meta"

    def test_missing_meta_field_names_the_key(self, tmp_path):
        from repro.util.errors import ModelLoadError

        path = self._saved(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            W, H = np.array(data["W"]), np.array(data["H"])
            meta = json.loads(str(data["meta"]))
        del meta["iterations"]
        np.savez(path, W=W, H=H, meta=np.asarray(json.dumps(meta)))
        with pytest.raises(ModelLoadError, match="'iterations'") as exc_info:
            NMFResult.load(path)
        assert exc_info.value.missing_key == "iterations"

    def test_error_is_reproerror_subclass(self):
        from repro.util.errors import ModelLoadError, ReproError

        assert issubclass(ModelLoadError, ReproError)
