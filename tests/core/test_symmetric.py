"""Tests for symmetric NMF (graph clustering)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.symmetric import SymNMFResult, symmetric_nmf
from repro.util.errors import ShapeError


def block_diagonal_graph(n_per_block=30, n_blocks=3, p_in=0.6, p_out=0.02, seed=0):
    """A graph with dense diagonal blocks (planted communities)."""
    rng = np.random.default_rng(seed)
    n = n_per_block * n_blocks
    labels = np.repeat(np.arange(n_blocks), n_per_block)
    same = labels[:, None] == labels[None, :]
    probs = np.where(same, p_in, p_out)
    A = (rng.random((n, n)) < probs).astype(float)
    np.fill_diagonal(A, 0.0)
    return A, labels


class TestSymmetricNMF:
    def test_rejects_non_square(self):
        with pytest.raises(ShapeError):
            symmetric_nmf(np.ones((4, 5)), k=2)

    def test_rejects_negative_alpha(self):
        A, _ = block_diagonal_graph(10, 2)
        with pytest.raises(ShapeError):
            symmetric_nmf(A, k=2, alpha=-1.0)

    def test_indicator_shape_and_nonnegativity(self):
        A, _ = block_diagonal_graph(15, 2, seed=1)
        res = symmetric_nmf(A, k=2, max_iters=20, seed=1)
        assert isinstance(res, SymNMFResult)
        assert res.G.shape == (30, 2)
        assert np.all(res.G >= 0)
        assert res.labels.shape == (30,)

    def test_objective_decreases(self):
        A, _ = block_diagonal_graph(20, 3, seed=2)
        res = symmetric_nmf(A, k=3, max_iters=25, seed=3)
        assert res.objective_history[-1] <= res.objective_history[0]

    def test_recovers_planted_communities(self):
        A, labels = block_diagonal_graph(30, 3, p_in=0.7, p_out=0.01, seed=4)
        res = symmetric_nmf(A, k=3, max_iters=40, seed=5)
        # Cluster-label agreement up to permutation: for each found cluster,
        # the dominant true label should cover most of its members.
        correct = 0
        for cluster in range(3):
            members = np.flatnonzero(res.labels == cluster)
            if members.size:
                counts = np.bincount(labels[members], minlength=3)
                correct += counts.max()
        assert correct / labels.size > 0.9

    def test_sparse_input(self):
        A, _ = block_diagonal_graph(20, 2, seed=6)
        res_sparse = symmetric_nmf(sp.csr_matrix(A), k=2, max_iters=10, seed=7)
        assert res_sparse.G.shape == (40, 2)
        assert np.isfinite(res_sparse.objective_history[-1])

    def test_cluster_sizes_sum_to_n(self):
        A, _ = block_diagonal_graph(12, 2, seed=8)
        res = symmetric_nmf(A, k=2, max_iters=10, seed=9)
        assert res.cluster_sizes().sum() == 24

    def test_directed_input_is_symmetrized(self):
        rng = np.random.default_rng(10)
        A = (rng.random((25, 25)) < 0.2).astype(float)
        res = symmetric_nmf(A, k=2, max_iters=10, seed=11)
        assert np.all(np.isfinite(res.G))
