"""Backend parity: thread and lockstep must produce identical NMF results.

Both backends evaluate every reduction in rank order, so for a fixed seed and
grid the factor matrices must be *byte-identical* across backends — on both
algorithms (2 and 3) and both dense and sparse inputs.  This is also the
determinism contract of the lockstep backend itself: two runs, same bytes.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import parallel_nmf
from repro.core.config import NMFConfig
from repro.data.lowrank import planted_lowrank


def _dense():
    return planted_lowrank(32, 24, 3, seed=5, noise_std=0.05)


def _sparse():
    return sp.random(32, 24, density=0.2, random_state=5, format="csr")


@pytest.mark.parametrize("algorithm", ["naive", "hpc1d", "hpc2d"])
@pytest.mark.parametrize("kind", ["dense", "sparse"])
def test_thread_and_lockstep_factors_identical(algorithm, kind):
    A = _dense() if kind == "dense" else _sparse()
    kwargs = dict(n_ranks=4, algorithm=algorithm, max_iters=4, seed=9)
    via_thread = parallel_nmf(A, 3, backend="thread", **kwargs)
    via_lockstep = parallel_nmf(A, 3, backend="lockstep", **kwargs)
    assert via_thread.W.tobytes() == via_lockstep.W.tobytes()
    assert via_thread.H.tobytes() == via_lockstep.H.tobytes()
    assert via_thread.grid_shape == via_lockstep.grid_shape
    np.testing.assert_array_equal(
        via_thread.relative_error_history, via_lockstep.relative_error_history
    )


@pytest.mark.parametrize("algorithm", ["naive", "hpc2d"])
def test_lockstep_is_deterministic_run_to_run(algorithm):
    A = _dense()
    first = parallel_nmf(A, 3, n_ranks=4, algorithm=algorithm,
                         backend="lockstep", max_iters=5, seed=3)
    second = parallel_nmf(A, 3, n_ranks=4, algorithm=algorithm,
                          backend="lockstep", max_iters=5, seed=3)
    assert first.W.tobytes() == second.W.tobytes()
    assert first.H.tobytes() == second.H.tobytes()


def test_backend_flows_through_config():
    A = _dense()
    cfg = NMFConfig(k=3, max_iters=3, seed=2, backend="lockstep")
    via_config = parallel_nmf(A, 3, n_ranks=4, config=cfg)
    via_kwarg = parallel_nmf(A, 3, n_ranks=4, backend="lockstep", max_iters=3, seed=2)
    assert via_config.W.tobytes() == via_kwarg.W.tobytes()
    assert via_config.config.backend == "lockstep"


def test_unknown_backend_raises_helpful_error():
    from repro.util.errors import CommunicatorError

    with pytest.raises(CommunicatorError, match="unknown backend"):
        parallel_nmf(_dense(), 3, n_ranks=2, backend="mpi", max_iters=2)
