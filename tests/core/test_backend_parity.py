"""Backend parity: every backend must produce identical NMF results.

All backends evaluate every reduction in rank order, so for a fixed seed and
grid the factor matrices must be *byte-identical* across backends — on both
algorithms (2 and 3) and both dense and sparse inputs.  For the process
backend this additionally proves the shared-memory deposit slots move float64
payloads bit-exactly (no pickling or re-encoding on the hot path).  This is
also the determinism contract of the lockstep backend itself: two runs, same
bytes.
"""

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import parallel_nmf
from repro.core.config import NMFConfig
from repro.data.lowrank import planted_lowrank


@pytest.fixture(autouse=True)
def _silence_oversubscription():
    # p=4 oversubscribes small hosts; the warning has its own test in
    # tests/comm/test_process_backend.py.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


def _dense():
    return planted_lowrank(32, 24, 3, seed=5, noise_std=0.05)


def _sparse():
    return sp.random(32, 24, density=0.2, random_state=5, format="csr")


@pytest.mark.parametrize("other_backend", ["lockstep", "process", "socket"])
@pytest.mark.parametrize("algorithm", ["naive", "hpc1d", "hpc2d"])
@pytest.mark.parametrize("kind", ["dense", "sparse"])
def test_backends_produce_identical_factors(algorithm, kind, other_backend):
    A = _dense() if kind == "dense" else _sparse()
    kwargs = dict(n_ranks=4, algorithm=algorithm, max_iters=4, seed=9)
    via_thread = parallel_nmf(A, 3, backend="thread", **kwargs)
    via_other = parallel_nmf(A, 3, backend=other_backend, **kwargs)
    assert via_thread.W.tobytes() == via_other.W.tobytes()
    assert via_thread.H.tobytes() == via_other.H.tobytes()
    assert via_thread.grid_shape == via_other.grid_shape
    np.testing.assert_array_equal(
        via_thread.relative_error_history, via_other.relative_error_history
    )


@pytest.mark.parametrize("algorithm", ["naive", "hpc2d"])
def test_lockstep_is_deterministic_run_to_run(algorithm):
    A = _dense()
    first = parallel_nmf(A, 3, n_ranks=4, algorithm=algorithm,
                         backend="lockstep", max_iters=5, seed=3)
    second = parallel_nmf(A, 3, n_ranks=4, algorithm=algorithm,
                          backend="lockstep", max_iters=5, seed=3)
    assert first.W.tobytes() == second.W.tobytes()
    assert first.H.tobytes() == second.H.tobytes()


def test_backend_flows_through_config():
    A = _dense()
    cfg = NMFConfig(k=3, max_iters=3, seed=2, backend="lockstep")
    via_config = parallel_nmf(A, 3, n_ranks=4, config=cfg)
    via_kwarg = parallel_nmf(A, 3, n_ranks=4, backend="lockstep", max_iters=3, seed=2)
    assert via_config.W.tobytes() == via_kwarg.W.tobytes()
    assert via_config.config.backend == "lockstep"


def test_unknown_backend_raises_helpful_error():
    from repro.util.errors import CommunicatorError

    with pytest.raises(CommunicatorError, match="unknown backend"):
        parallel_nmf(_dense(), 3, n_ranks=2, backend="carrier-pigeon", max_iters=2)


def test_fit_rejects_unknown_backend_eagerly_with_suggestions():
    """The front door fails before any work, listing the registry and the
    closest name — a typo'd backend must not silently fall back."""
    from repro.core.api import fit
    from repro.util.errors import CommunicatorError

    with pytest.raises(CommunicatorError) as excinfo:
        fit(_dense(), 3, variant="hpc2d", n_ranks=2, backend="procss", max_iters=2)
    message = str(excinfo.value)
    assert "did you mean 'process'" in message
    for name in ("lockstep", "process", "thread"):
        assert name in message


def test_cli_rejects_unknown_backend_with_choice_list(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["factorize", "SSYN", "-k", "3", "--backend", "procss"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    for name in ("lockstep", "process", "thread"):
        assert name in err


def test_ssyn_acceptance_socket_matches_process_byte_for_byte():
    """The PR's wire acceptance pin: `repro factorize SSYN -k 4 --variant
    hpc2d --ranks 4 --backend socket` must produce exactly the bytes the
    process backend produces — TCP framing is transport, not arithmetic."""
    from repro.core.api import fit
    from repro.data.registry import measured_scale

    A = measured_scale("SSYN").load()
    kwargs = dict(variant="hpc2d", n_ranks=4, max_iters=3, seed=42)
    via_socket = fit(A, 4, backend="socket", **kwargs)
    via_process = fit(A, 4, backend="process", **kwargs)
    assert via_socket.W.tobytes() == via_process.W.tobytes()
    assert via_socket.H.tobytes() == via_process.H.tobytes()
    assert via_socket.grid_shape == via_process.grid_shape


@pytest.mark.parametrize("panel_comm", [False, True])
def test_pipelined_schedules_stay_byte_identical_over_the_wire(panel_comm):
    """The nonblocking CommHandle path must work unchanged over TCP: the
    pipelined (and panel-streamed) schedules give the same bytes on the
    socket backend as the blocking schedule on the thread backend."""
    from repro.core.api import fit

    A = _dense()
    kwargs = dict(variant="hpc2d", n_ranks=4, max_iters=4, seed=9)
    blocking = fit(A, 3, backend="thread", overlap=False, **kwargs)
    wired = fit(A, 3, backend="socket", overlap=True, panel_comm=panel_comm,
                **kwargs)
    assert blocking.W.tobytes() == wired.W.tobytes()
    assert blocking.H.tobytes() == wired.H.tobytes()


def test_socket_backend_observer_state_comes_home():
    """Observers must come home over the wire too (rank 0's state is shipped
    back pickled), matching the process backend's contract."""
    from repro.core.api import fit
    from repro.core.observers import HistoryRecorder

    recorder = HistoryRecorder()
    fit(_dense(), 3, variant="hpc2d", n_ranks=2, backend="socket",
        max_iters=3, seed=1, observers=[recorder])
    assert len(recorder.history) == 3
    assert [s.iteration for s in recorder.history] == [0, 1, 2]


def test_process_backend_observer_state_comes_home():
    """Stateful observers run on rank 0's process; their recorded state must
    reach the caller's objects, as it does on the in-process backends."""
    from repro.core.api import fit
    from repro.core.observers import HistoryRecorder

    recorder = HistoryRecorder()
    fit(_dense(), 3, variant="hpc2d", n_ranks=2, backend="process",
        max_iters=3, seed=1, observers=[recorder])
    assert len(recorder.history) == 3
    assert [s.iteration for s in recorder.history] == [0, 1, 2]
