"""Tests for the sequential ANLS reference (Algorithm 1)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.anls import anls_nmf
from repro.core.api import nmf
from repro.core.config import NMFConfig
from repro.data.lowrank import planted_lowrank
from repro.util.errors import NonNegativityError, ShapeError


class TestBasicBehaviour:
    def test_shapes_and_nonnegativity(self):
        A = np.abs(np.random.default_rng(0).standard_normal((40, 30)))
        res = nmf(A, k=5, max_iters=5, seed=3)
        assert res.W.shape == (40, 5)
        assert res.H.shape == (5, 30)
        assert np.all(res.W >= 0)
        assert np.all(res.H >= 0)
        assert res.iterations == 5

    def test_objective_decreases_monotonically_with_bpp(self):
        A = planted_lowrank(50, 35, 4, seed=1, noise_std=0.05)
        res = nmf(A, k=4, max_iters=15, seed=0)
        errors = res.relative_error_history
        assert all(b <= a + 1e-8 for a, b in zip(errors, errors[1:]))

    def test_recovers_planted_low_rank_structure(self):
        A = planted_lowrank(60, 45, 3, seed=2, noise_std=0.0)
        res = nmf(A, k=3, max_iters=60, seed=5)
        # Exact recovery of a planted factorization is NP-hard in general;
        # ANLS should still get within a fraction of a percent of the data.
        assert res.relative_error < 0.01

    @pytest.mark.parametrize("solver", ["bpp", "mu", "hals", "pgrad"])
    def test_all_solvers_reduce_error(self, solver):
        A = planted_lowrank(40, 30, 4, seed=3, noise_std=0.01)
        res = nmf(A, k=4, max_iters=20, solver=solver, seed=1)
        assert res.relative_error < 0.5
        history = res.relative_error_history
        assert history[-1] <= history[0]

    def test_sparse_input(self):
        A = sp.random(60, 50, density=0.1, random_state=0, format="csr")
        res = nmf(A, k=4, max_iters=5, seed=1)
        assert res.W.shape == (60, 4)
        assert res.relative_error <= 1.0

    def test_rank_one(self):
        A = np.outer(np.arange(1, 11, dtype=float), np.arange(1, 8, dtype=float))
        res = nmf(A, k=1, max_iters=20, seed=0)
        assert res.relative_error < 1e-6


class TestConfiguration:
    def test_early_stopping_with_tolerance(self):
        A = planted_lowrank(40, 30, 3, seed=4)
        res = nmf(A, k=3, max_iters=200, tol=1e-6, seed=2)
        assert res.converged
        assert res.iterations < 200

    def test_compute_error_false_skips_history(self):
        A = np.abs(np.random.default_rng(1).standard_normal((20, 15)))
        res = nmf(A, k=3, max_iters=4, compute_error=False)
        assert res.history == []
        assert np.isnan(res.relative_error)

    def test_callback_invoked_each_iteration(self):
        A = np.abs(np.random.default_rng(2).standard_normal((20, 15)))
        calls = []
        anls_nmf(A, NMFConfig(k=3, max_iters=4), callback=lambda i, e: calls.append((i, e)))
        assert [c[0] for c in calls] == [0, 1, 2, 3]

    def test_same_seed_reproducible(self):
        A = np.abs(np.random.default_rng(3).standard_normal((25, 20)))
        r1 = nmf(A, k=4, max_iters=6, seed=9)
        r2 = nmf(A, k=4, max_iters=6, seed=9)
        np.testing.assert_array_equal(r1.W, r2.W)
        np.testing.assert_array_equal(r1.H, r2.H)

    def test_different_seed_changes_result(self):
        A = np.abs(np.random.default_rng(3).standard_normal((25, 20)))
        r1 = nmf(A, k=4, max_iters=3, seed=1)
        r2 = nmf(A, k=4, max_iters=3, seed=2)
        assert not np.allclose(r1.H, r2.H)

    def test_breakdown_contains_computation_categories(self):
        A = np.abs(np.random.default_rng(5).standard_normal((30, 25)))
        res = nmf(A, k=3, max_iters=3)
        assert res.breakdown.get("MM") > 0
        assert res.breakdown.get("NLS") > 0
        assert res.breakdown.get("Gram") > 0
        assert res.breakdown.communication == 0.0


class TestValidation:
    def test_negative_input_rejected(self):
        A = np.ones((10, 10))
        A[0, 0] = -1
        with pytest.raises(NonNegativityError):
            nmf(A, k=2)

    def test_rank_too_large_rejected(self):
        with pytest.raises(ShapeError):
            nmf(np.ones((5, 4)), k=5)

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            nmf(np.ones(10), k=2)
