"""Tests for the variant registry and the ``repro.fit`` front door."""

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.core.api import NMF, fit, nmf, parallel_nmf
from repro.core.config import NMFConfig
from repro.core.symmetric import SymNMFResult
from repro.core.variants import (
    Variant,
    available_variants,
    get_variant,
    register_variant,
)
from repro.core.variants.base import _REGISTRY
from repro.data.lowrank import planted_lowrank
from repro.util.errors import ShapeError

ALL_VARIANTS = ["hpc1d", "hpc2d", "naive", "regularized", "sequential", "streaming", "symmetric"]


def _matrix():
    return planted_lowrank(24, 18, 2, seed=0, noise_std=0.02)


class TestRegistry:
    def test_seven_builtin_variants_registered(self):
        assert available_variants() == ALL_VARIANTS

    def test_get_variant_returns_singleton(self):
        assert get_variant("hpc2d") is get_variant("hpc2d")

    def test_unknown_variant_lists_available(self):
        with pytest.raises(KeyError, match="hpc2d"):
            get_variant("definitely-not-a-variant")

    def test_capability_flags(self):
        assert get_variant("hpc2d").parallelizable
        assert get_variant("naive").parallelizable
        assert not get_variant("sequential").parallelizable
        assert get_variant("symmetric").symmetric_input
        assert get_variant("regularized").supports_regularization
        assert not get_variant("streaming").sparse_ok
        assert get_variant("hpc1d").sparse_ok

    def test_extra_options_derived_from_signature(self):
        assert set(get_variant("symmetric").extra_options()) == {"alpha"}
        assert set(get_variant("streaming").extra_options()) == {
            "window", "refresh_every", "refresh_iters"
        }
        assert get_variant("hpc2d").extra_options() == ()

    def test_custom_variant_plugs_into_fit(self):
        @register_variant
        class EchoVariant(Variant):
            name = "echo-test"
            summary = "test-only"

            def run(self, A, config, observers=()):
                from repro.core.anls import anls_nmf

                return anls_nmf(A, config, observers=observers)

        try:
            result = fit(_matrix(), 2, variant="echo-test", max_iters=2)
            assert result.iterations == 2
        finally:
            _REGISTRY.pop("echo-test", None)

    def test_register_rejects_non_variant(self):
        with pytest.raises(TypeError):
            register_variant(object)


class TestFitFrontDoor:
    def test_default_variant_is_sequential(self):
        res = fit(_matrix(), 2, max_iters=3, seed=1)
        assert res.variant == "sequential"
        assert res.n_ranks == 1
        assert res.backend is None

    def test_default_variant_with_ranks_is_hpc2d(self):
        res = fit(_matrix(), 2, n_ranks=4, max_iters=3, seed=1)
        assert res.variant == "hpc2d"
        assert res.n_ranks == 4

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_every_variant_runs_through_one_code_path(self, variant):
        A = _matrix()
        n_ranks = 2 if get_variant(variant).parallelizable else None
        res = fit(A, 2, variant=variant, n_ranks=n_ranks, max_iters=3, seed=3)
        assert res.variant == variant
        assert res.iterations >= 1
        assert np.all(res.W >= 0) and np.all(res.H >= 0)

    def test_matches_legacy_sequential_entry_point(self):
        A = _matrix()
        with pytest.deprecated_call():
            legacy = nmf(A, 2, max_iters=4, seed=5)
        front = fit(A, 2, variant="sequential", max_iters=4, seed=5)
        assert legacy.W.tobytes() == front.W.tobytes()
        assert legacy.H.tobytes() == front.H.tobytes()

    def test_matches_legacy_parallel_entry_point(self):
        A = _matrix()
        with pytest.deprecated_call():
            legacy = parallel_nmf(A, 2, n_ranks=4, algorithm="hpc2d", max_iters=4, seed=5)
        front = fit(A, 2, variant="hpc2d", n_ranks=4, max_iters=4, seed=5)
        assert legacy.W.tobytes() == front.W.tobytes()
        assert legacy.H.tobytes() == front.H.tobytes()
        assert legacy.grid_shape == front.grid_shape

    def test_k_config_mismatch_raises(self):
        with pytest.raises(ShapeError, match="rank mismatch"):
            fit(_matrix(), 3, config=NMFConfig(k=2))

    def test_matching_or_omitted_k_with_config(self):
        cfg = NMFConfig(k=2, max_iters=2, seed=1)
        by_both = fit(_matrix(), 2, config=cfg)
        by_config = fit(_matrix(), config=cfg)
        assert by_both.W.tobytes() == by_config.W.tobytes()

    def test_missing_k_raises(self):
        with pytest.raises(ShapeError, match="target rank"):
            fit(_matrix())

    def test_unknown_extra_option_names_variant(self):
        with pytest.raises(TypeError, match="hpc2d.*alpha"):
            fit(_matrix(), 2, variant="hpc2d", n_ranks=2, alpha=1.0)

    def test_legacy_algorithm_keyword_selects_variant(self):
        # algorithm= is an NMFConfig field; fit must not let it slip through
        # and silently run a different algorithm than requested.
        with pytest.deprecated_call():
            res = fit(_matrix(), 2, n_ranks=2, algorithm="naive", max_iters=2)
        assert res.variant == "naive"

    def test_conflicting_algorithm_and_variant_raise(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="conflicting"):
                fit(_matrix(), 2, variant="hpc2d", n_ranks=2, algorithm="naive")

    def test_symmetric_honours_tol_and_compute_error(self):
        A = _matrix()
        early = fit(A, 2, variant="symmetric", max_iters=200, tol=1e-3, seed=1)
        assert early.converged
        assert early.iterations < 200
        silent = fit(A, 2, variant="symmetric", max_iters=3, compute_error=False)
        assert silent.history == []
        assert silent.iterations == 3

    def test_symmetric_honours_inner_iters(self):
        res = fit(_matrix(), 2, variant="symmetric", solver="hals",
                  inner_iters=3, max_iters=2)
        assert res.config.inner_iters == 3

    def test_sequential_only_variant_rejects_ranks(self):
        with pytest.raises(ShapeError, match="sequential-only"):
            fit(_matrix(), 2, variant="regularized", n_ranks=4)

    def test_sparse_rejected_by_streaming(self):
        A = sp.random(20, 16, density=0.2, random_state=0, format="csr")
        with pytest.raises(ShapeError, match="sparse"):
            fit(A, 2, variant="streaming")

    def test_symmetric_on_rectangular_uses_column_similarity(self):
        A = _matrix()  # 24 x 18
        res = fit(A, 2, variant="symmetric", max_iters=3, seed=1)
        assert isinstance(res, SymNMFResult)
        assert res.W.shape == (18, 2)  # n x k: clusters of the 18 columns
        assert res.labels.shape == (18,)

    def test_variant_specific_options_flow_through(self):
        A = _matrix()
        plain = fit(A, 2, variant="regularized", max_iters=4, seed=2)
        sparse_factors = fit(A, 2, variant="regularized", l1=1.0, max_iters=4, seed=2)
        zero_plain = np.mean(plain.H < 1e-10)
        zero_l1 = np.mean(sparse_factors.H < 1e-10)
        assert zero_l1 >= zero_plain

    def test_top_level_exports(self):
        assert repro.fit is fit
        assert repro.NMF is NMF
        assert "sequential" in repro.available_variants()


class TestEstimator:
    def test_fit_stores_result_and_returns_self(self):
        A = _matrix()
        model = NMF(k=2, max_iters=3, seed=1)
        assert model.fit(A) is model
        assert model.W_.shape == (24, 2)
        assert model.H_.shape == (2, 18)
        assert model.components_ is model.H_
        assert model.result_.variant == "sequential"

    def test_fit_transform_returns_w(self):
        A = _matrix()
        W = NMF(k=2, max_iters=3, seed=1).fit_transform(A)
        assert W.shape == (24, 2)
        assert np.all(W >= 0)

    def test_transform_projects_new_columns(self):
        A = _matrix()
        model = NMF(k=2, max_iters=5, seed=1).fit(A)
        H_new = model.transform(A[:, :5])
        assert H_new.shape == (2, 5)
        assert np.all(H_new >= 0)

    def test_transform_shape_mismatch_raises(self):
        model = NMF(k=2, max_iters=2, seed=1).fit(_matrix())
        with pytest.raises(ShapeError, match="rows"):
            model.transform(np.ones((7, 3)))

    def test_unfitted_access_raises(self):
        with pytest.raises(ShapeError, match="not fitted"):
            NMF(k=2).W_

    def test_estimator_parallel_variant(self):
        model = NMF(k=2, variant="hpc2d", n_ranks=4, backend="lockstep",
                    max_iters=3, seed=2).fit(_matrix())
        assert model.result_.variant == "hpc2d"
        assert model.result_.backend == "lockstep"
        assert model.result_.n_ranks == 4


class TestShims:
    def test_shims_warn_deprecation(self):
        A = _matrix()
        with pytest.deprecated_call():
            nmf(A, 2, max_iters=2)
        with pytest.deprecated_call():
            parallel_nmf(A, 2, n_ranks=2, max_iters=2)

    def test_parallel_shim_keeps_sequential_ranks_quirk(self):
        # The legacy entry point silently ignored n_ranks for "sequential";
        # the shim preserves that, while fit() itself rejects it.
        with pytest.deprecated_call():
            res = parallel_nmf(_matrix(), 2, n_ranks=5, algorithm="sequential", max_iters=2)
        assert res.n_ranks == 1
        with pytest.raises(ShapeError):
            fit(_matrix(), 2, variant="sequential", n_ranks=5)
