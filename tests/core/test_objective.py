"""Tests for the Gram-trick objective computation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.objective import (
    frobenius_error,
    frobenius_norm_squared,
    objective_from_grams,
    relative_error,
)


def test_frobenius_norm_squared_dense_and_sparse():
    A = np.arange(12, dtype=float).reshape(3, 4)
    assert frobenius_norm_squared(A) == pytest.approx(np.sum(A**2))
    S = sp.csr_matrix(A)
    assert frobenius_norm_squared(S) == pytest.approx(np.sum(A**2))
    assert frobenius_norm_squared(sp.csr_matrix((4, 4))) == 0.0


@pytest.mark.parametrize("seed", range(5))
def test_gram_trick_matches_direct_computation_dense(seed):
    rng = np.random.default_rng(seed)
    A = rng.random((20, 15))
    W = rng.random((20, 4))
    H = rng.random((4, 15))
    direct = np.linalg.norm(A - W @ H, "fro")
    assert frobenius_error(A, W, H) == pytest.approx(direct, rel=1e-10)


@pytest.mark.parametrize("seed", range(5))
def test_gram_trick_matches_direct_computation_sparse(seed):
    rng = np.random.default_rng(seed)
    A = sp.random(30, 25, density=0.15, random_state=seed, format="csr")
    W = rng.random((30, 3))
    H = rng.random((3, 25))
    direct = np.linalg.norm(A.toarray() - W @ H, "fro")
    assert frobenius_error(A, W, H) == pytest.approx(direct, rel=1e-10)


def test_exact_factorization_gives_zero_error():
    rng = np.random.default_rng(1)
    W = rng.random((12, 3))
    H = rng.random((3, 9))
    A = W @ H
    assert frobenius_error(A, W, H) == pytest.approx(0.0, abs=1e-7)
    assert relative_error(A, W, H) == pytest.approx(0.0, abs=1e-7)


def test_objective_clamped_at_zero():
    # Force a tiny negative value via inconsistent inputs; must clamp to 0.
    assert objective_from_grams(1.0, 0.6, np.array([[0.1]]), np.array([[1.0]])) == 0.0


def test_relative_error_of_zero_matrix():
    A = np.zeros((5, 5))
    W = np.zeros((5, 2))
    H = np.zeros((2, 5))
    assert relative_error(A, W, H) == 0.0
