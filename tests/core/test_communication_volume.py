"""The communication the algorithms actually perform must match the paper's analysis.

§4.3: Naive communicates (m + n)·k words per iteration in two all-gathers.
§5:   HPC-NMF communicates 2k² words of all-reduce plus
      ((pr−1)·nk/p + (pc−1)·mk/p) words in each of the all-gather and
      reduce-scatter pairs.

The communicator's CostLedger records the (p-1)/p·n critical-path volume of
every collective; these tests check the recorded totals against the closed
forms, which is precisely the claim of Table 2.
"""

import numpy as np
import pytest

from repro.core.api import parallel_nmf
from repro.data.synthetic import dense_synthetic


def run_and_get_ledger(A, k, p, algorithm, grid=None, iters=2):
    res = parallel_nmf(
        A,
        k,
        n_ranks=p,
        algorithm=algorithm,
        grid=grid,
        max_iters=iters,
        seed=3,
        compute_error=False,  # keep only the algorithm's own collectives
    )
    return res, res.ledger_summary


class TestNaiveVolume:
    def test_allgather_words_match_formula(self):
        m, n, k, p, iters = 48, 36, 4, 4, 3
        A = dense_synthetic(m, n, seed=0)
        res, ledger = run_and_get_ledger(A, k, p, "naive", iters=iters)
        # Two all-gathers per iteration: H (n·k words) and W (m·k words).
        expected = iters * ((p - 1) / p) * (m * k + n * k)
        assert ledger["all_gather"]["words"] == pytest.approx(expected, rel=1e-12)
        assert "reduce_scatter" not in ledger

    def test_volume_independent_of_sparsity(self):
        import scipy.sparse as sp

        m, n, k, p = 60, 40, 3, 4
        dense = dense_synthetic(m, n, seed=1)
        sparse = sp.random(m, n, density=0.05, random_state=1, format="csr")
        _, ledger_dense = run_and_get_ledger(dense, k, p, "naive")
        _, ledger_sparse = run_and_get_ledger(sparse, k, p, "naive")
        assert ledger_dense["all_gather"]["words"] == pytest.approx(
            ledger_sparse["all_gather"]["words"]
        )


class TestHPCVolume:
    @pytest.mark.parametrize("grid", [(2, 2), (4, 1), (1, 4)])
    def test_collective_words_match_section5_formulas(self, grid):
        m, n, k, p, iters = 48, 36, 4, 4, 2
        pr, pc = grid
        A = dense_synthetic(m, n, seed=0)
        res, ledger = run_and_get_ledger(A, k, p, "hpc2d", grid=grid, iters=iters)

        # All-reduce: two k×k Gram matrices per iteration over all p ranks;
        # the ledger counts 2·(p-1)/p·n words per all-reduce (send + receive).
        expected_allreduce = iters * 2 * (2 * (p - 1) / p * k * k)
        assert ledger["all_reduce"]["words"] == pytest.approx(expected_allreduce, rel=1e-12)

        # All-gathers: H_j over proc columns (pr ranks, total n·k/pc words) and
        # W_i over proc rows (pc ranks, total m·k/pr words).
        expected_allgather = iters * (
            ((pr - 1) / pr) * (n * k / pc) + ((pc - 1) / pc) * (m * k / pr)
        )
        got_allgather = ledger.get("all_gather", {"words": 0.0})["words"]
        assert got_allgather == pytest.approx(expected_allgather, rel=1e-12)

        # Reduce-scatters mirror the all-gathers with the roles of dimensions swapped.
        expected_rs = iters * (
            ((pc - 1) / pc) * (m * k / pr) + ((pr - 1) / pr) * (n * k / pc)
        )
        got_rs = ledger.get("reduce_scatter", {"words": 0.0})["words"]
        assert got_rs == pytest.approx(expected_rs, rel=1e-12)

    def test_2d_grid_moves_fewer_words_than_naive_and_1d(self):
        # The headline claim: on a squarish matrix the 2D grid communicates
        # less than both the naive algorithm and the 1D grid.
        m, n, k, p = 64, 48, 4, 4
        A = dense_synthetic(m, n, seed=2)
        _, naive = run_and_get_ledger(A, k, p, "naive")
        _, hpc1d = run_and_get_ledger(A, k, p, "hpc2d", grid=(p, 1))
        _, hpc2d = run_and_get_ledger(A, k, p, "hpc2d", grid=(2, 2))

        def total_words(ledger):
            return sum(entry["words"] for entry in ledger.values())

        assert total_words(hpc2d) < total_words(naive)
        assert total_words(hpc2d) < total_words(hpc1d)

    def test_message_counts_logarithmic(self):
        m, n, k, p = 48, 36, 3, 4
        A = dense_synthetic(m, n, seed=3)
        _, ledger = run_and_get_ledger(A, k, p, "hpc2d", grid=(2, 2), iters=1)
        total_messages = sum(entry["messages"] for entry in ledger.values())
        # 2 all-reduce (2 log p each) + 2 all-gather (log 2) + 2 reduce-scatter (log 2)
        expected = 2 * 2 * np.log2(p) + 2 * np.log2(2) + 2 * np.log2(2)
        assert total_messages == pytest.approx(expected, rel=1e-12)
