"""Panel-streamed schedule parity and error-path booking.

PR-9 contracts: the panel-streamed pipelined schedule (the default), the
PR-7 pipelined schedule with monolithic reduce-scatters (``panel_comm=False``)
and the blocking schedule produce byte-identical factors and identical cost
ledgers on every backend — including uneven ``block_counts`` panel boundaries
from non-power-of-two grids — and the error path's communication is booked:
the cross-term all-reduce lands in the ``AllReduce`` category instead of
vanishing from the breakdown.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.hpc_nmf as hpc_mod
import repro.core.naive as naive_mod
from repro.comm.communicator import SelfComm
from repro.comm.profiler import Profiler, TaskCategory
from repro.core.api import fit
from repro.core.config import NMFConfig

HPC_VARIANTS = ("hpc1d", "hpc2d")


def _dense(seed=0, m=60, n=44):
    rng = np.random.default_rng(seed)
    return np.abs(rng.standard_normal((m, n)))


def _sparse(seed=3, m=70, n=50):
    return sp.random(m, n, density=0.15, random_state=seed, format="csr")


def _run(A, variant, backend, p=4, **options):
    return fit(
        A, 5, variant=variant, backend=backend, n_ranks=p, max_iters=4,
        seed=11, **options,
    )


@pytest.mark.parametrize("variant", HPC_VARIANTS)
@pytest.mark.parametrize("backend", ["lockstep", "thread", "process"])
@pytest.mark.parametrize("panel", ["dense", "sparse"])
def test_panel_streamed_equals_monolithic_pipelined(variant, backend, panel):
    A = _dense(seed=7) if panel == "dense" else _sparse(seed=9)
    monolithic = _run(A, variant, backend, overlap=True, panel_comm=False)
    streamed = _run(A, variant, backend, overlap=True, panel_comm=True)
    np.testing.assert_array_equal(monolithic.W, streamed.W)
    np.testing.assert_array_equal(monolithic.H, streamed.H)
    assert monolithic.ledger_summary == streamed.ledger_summary


@pytest.mark.parametrize("variant", HPC_VARIANTS)
@pytest.mark.parametrize("panel", ["dense", "sparse"])
def test_panel_streamed_matches_blocking_and_oracle(variant, panel):
    A = _dense(seed=2) if panel == "dense" else _sparse(seed=5)
    oracle = _run(A, variant, "lockstep", overlap=False)
    for backend in ("thread", "process"):
        streamed = _run(A, variant, backend, overlap=True, panel_comm=True)
        np.testing.assert_array_equal(oracle.W, streamed.W)
        np.testing.assert_array_equal(oracle.H, streamed.H)
        assert oracle.ledger_summary == streamed.ledger_summary


@pytest.mark.parametrize("grid", [(2, 3), (3, 2)])
@settings(max_examples=8, deadline=None)
@given(m=st.integers(min_value=13, max_value=34), n=st.integers(min_value=11, max_value=30))
def test_uneven_panel_boundaries_stay_byte_identical(grid, m, n):
    """Non-power-of-two grids make block_counts uneven (m % pr != 0 etc.),
    driving zero-padding-free ragged panel splits through the stream."""
    A = np.abs(np.random.default_rng(m * 100 + n).standard_normal((m, n)))
    common = dict(variant="hpc2d", backend="lockstep", n_ranks=6, grid=grid,
                  max_iters=2, seed=17)
    blocking = fit(A, 3, overlap=False, **common)
    streamed = fit(A, 3, overlap=True, panel_comm=True, **common)
    np.testing.assert_array_equal(blocking.W, streamed.W)
    np.testing.assert_array_equal(blocking.H, streamed.H)
    assert blocking.ledger_summary == streamed.ledger_summary


def _capture_profilers(monkeypatch, module):
    captured = []

    class CapturingProfiler(Profiler):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            captured.append(self)

    monkeypatch.setattr(module, "Profiler", CapturingProfiler)
    return captured


def test_hpc_error_path_allreduces_are_booked(monkeypatch):
    """The cross-term allreduce_scalar counts as AllReduce wall time: at
    p=1, T iterations with error tracking book 4 + 3(T-1) AllReduce tasks
    (iteration 0: line 4, line 10, cross, gram_h_new; later iterations skip
    line 4 via the gram cache)."""
    captured = _capture_profilers(monkeypatch, hpc_mod)
    config = NMFConfig(k=4, max_iters=3, seed=1, algorithm="hpc2d")
    hpc_mod.hpc_nmf(SelfComm(), _dense(seed=4, m=24, n=18), config)
    (profiler,) = captured
    assert profiler.calls(TaskCategory.ALL_REDUCE) == 4 + 3 * (3 - 1)


def test_naive_error_path_allreduces_are_booked(monkeypatch):
    """Naive books 2 AllReduce tasks per iteration with error tracking: the
    cross term and the H-Gram reduction (its gram_h is computed redundantly,
    not reduced)."""
    captured = _capture_profilers(monkeypatch, naive_mod)
    config = NMFConfig(k=4, max_iters=3, seed=1, algorithm="naive")
    naive_mod.naive_parallel_nmf(SelfComm(), _dense(seed=4, m=24, n=18), config)
    (profiler,) = captured
    assert profiler.calls(TaskCategory.ALL_REDUCE) == 2 * 3


def test_no_per_iteration_transpose_copy():
    """The line-8 result transpose lands in the persistent w_local workspace
    buffer — the same array object every iteration, not a fresh
    ascontiguousarray copy."""
    config = NMFConfig(k=4, max_iters=3, seed=1, algorithm="hpc2d")
    comm = SelfComm()
    out = hpc_mod.hpc_nmf(comm, _dense(seed=4, m=24, n=18), config)
    assert out["W_local"] is comm.workspace.get("w_local", out["W_local"].shape)
    assert out["W_local"].flags["C_CONTIGUOUS"]
