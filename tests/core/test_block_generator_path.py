"""Tests for the scalable construction path of HPC-NMF (no global matrix anywhere).

The paper generates its synthetic data per process ("every process will have
its own prime seed ... to generate the input random matrix"); the
``block_generator`` path of :func:`repro.core.hpc_nmf.hpc_nmf` reproduces
that: each rank builds only its own ``A_ij`` and the global matrix never
exists.  These tests check that the path produces valid factorizations and
that, when the generator is defined to slice a (deterministic) virtual global
matrix, it matches the from-global path exactly.
"""

import numpy as np
import pytest

from repro.comm.backends import run_spmd
from repro.core.config import NMFConfig
from repro.core.hpc_nmf import assemble_hpc_result, hpc_nmf
from repro.data.synthetic import dense_synthetic, dense_synthetic_block, sparse_synthetic_block
from repro.util.errors import CommunicatorError


def test_generator_slicing_virtual_matrix_matches_from_global():
    m, n, k, p = 40, 32, 3, 4
    A = dense_synthetic(m, n, seed=3)
    cfg = NMFConfig(k=k, max_iters=4, seed=9)

    def sliced_generator(row_range, col_range, rank):
        return A[row_range[0]:row_range[1], col_range[0]:col_range[1]]

    per_rank_global = run_spmd(p, hpc_nmf, A, cfg)
    per_rank_generated = run_spmd(
        p, hpc_nmf, None, cfg, block_generator=sliced_generator, global_shape=(m, n)
    )
    res_global = assemble_hpc_result(per_rank_global, cfg)
    res_generated = assemble_hpc_result(per_rank_generated, cfg)
    np.testing.assert_allclose(res_generated.W, res_global.W, rtol=1e-12)
    np.testing.assert_allclose(res_generated.H, res_global.H, rtol=1e-12)


def test_per_rank_random_generation_produces_valid_factorization():
    m, n, k, p = 48, 36, 3, 4
    cfg = NMFConfig(k=k, max_iters=5, seed=2)

    def generator(row_range, col_range, rank):
        return dense_synthetic_block(row_range, col_range, rank, seed=7)

    per_rank = run_spmd(p, hpc_nmf, None, cfg, block_generator=generator, global_shape=(m, n))
    result = assemble_hpc_result(per_rank, cfg)
    assert result.W.shape == (m, k)
    assert np.all(result.W >= 0) and np.all(result.H >= 0)
    history = result.relative_error_history
    assert history[-1] <= history[0] + 1e-12


def test_sparse_per_rank_generation():
    m, n, k, p = 80, 60, 3, 4
    cfg = NMFConfig(k=k, max_iters=3, seed=4)

    def generator(row_range, col_range, rank):
        return sparse_synthetic_block(row_range, col_range, rank, density=0.1, seed=5)

    per_rank = run_spmd(p, hpc_nmf, None, cfg, block_generator=generator, global_shape=(m, n))
    result = assemble_hpc_result(per_rank, cfg)
    assert result.relative_error <= 1.0


def test_missing_generator_or_shape_rejected():
    cfg = NMFConfig(k=2, max_iters=1)

    def program(comm):
        with pytest.raises(CommunicatorError):
            hpc_nmf(comm, None, cfg)
        return True

    assert all(run_spmd(2, program))
