"""Integration tests: the parallel algorithms must match the sequential reference.

The paper's §6.1.3 initialisation protocol (same seed for H across algorithms)
guarantees that all variants perform the same computations up to roundoff; we
assert exactly that, which is the strongest correctness statement available
for the parallel implementations.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import nmf, parallel_nmf
from repro.data.lowrank import planted_lowrank
from repro.data.synthetic import dense_synthetic, sparse_synthetic


@pytest.fixture(scope="module")
def dense_A():
    return dense_synthetic(48, 36, seed=0)


@pytest.fixture(scope="module")
def sparse_A():
    return sparse_synthetic(64, 48, density=0.2, seed=1)


@pytest.fixture(scope="module")
def sequential_dense(dense_A):
    return nmf(dense_A, k=4, max_iters=6, seed=7)


@pytest.fixture(scope="module")
def sequential_sparse(sparse_A):
    return nmf(sparse_A, k=4, max_iters=6, seed=7)


class TestDenseEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6])
    def test_naive_matches_sequential(self, dense_A, sequential_dense, p):
        res = parallel_nmf(dense_A, k=4, n_ranks=p, algorithm="naive", max_iters=6, seed=7)
        np.testing.assert_allclose(res.W, sequential_dense.W, rtol=1e-6, atol=1e-8)
        np.testing.assert_allclose(res.H, sequential_dense.H, rtol=1e-6, atol=1e-8)

    @pytest.mark.parametrize("p", [1, 2, 4, 6, 9])
    def test_hpc2d_matches_sequential(self, dense_A, sequential_dense, p):
        res = parallel_nmf(dense_A, k=4, n_ranks=p, algorithm="hpc2d", max_iters=6, seed=7)
        np.testing.assert_allclose(res.W, sequential_dense.W, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(res.H, sequential_dense.H, rtol=1e-5, atol=1e-7)

    @pytest.mark.parametrize("p", [2, 4])
    def test_hpc1d_matches_sequential(self, dense_A, sequential_dense, p):
        res = parallel_nmf(dense_A, k=4, n_ranks=p, algorithm="hpc1d", max_iters=6, seed=7)
        np.testing.assert_allclose(res.W, sequential_dense.W, rtol=1e-5, atol=1e-7)

    def test_final_error_identical_across_variants(self, dense_A, sequential_dense):
        naive = parallel_nmf(dense_A, k=4, n_ranks=4, algorithm="naive", max_iters=6, seed=7)
        hpc = parallel_nmf(dense_A, k=4, n_ranks=4, algorithm="hpc2d", max_iters=6, seed=7)
        assert naive.relative_error == pytest.approx(sequential_dense.relative_error, rel=1e-6)
        assert hpc.relative_error == pytest.approx(sequential_dense.relative_error, rel=1e-6)


class TestSparseEquivalence:
    @pytest.mark.parametrize("p", [2, 4])
    def test_naive_matches_sequential(self, sparse_A, sequential_sparse, p):
        res = parallel_nmf(sparse_A, k=4, n_ranks=p, algorithm="naive", max_iters=6, seed=7)
        np.testing.assert_allclose(res.W, sequential_sparse.W, rtol=1e-6, atol=1e-8)

    @pytest.mark.parametrize("p", [2, 4, 6])
    def test_hpc2d_matches_sequential(self, sparse_A, sequential_sparse, p):
        res = parallel_nmf(sparse_A, k=4, n_ranks=p, algorithm="hpc2d", max_iters=6, seed=7)
        np.testing.assert_allclose(res.W, sequential_sparse.W, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(res.H, sequential_sparse.H, rtol=1e-5, atol=1e-7)


class TestSolverEquivalence:
    @pytest.mark.parametrize("solver", ["mu", "hals"])
    def test_iterative_solvers_also_match(self, solver):
        A = planted_lowrank(40, 30, 3, seed=9, noise_std=0.01)
        seq = nmf(A, k=3, max_iters=5, solver=solver, seed=11)
        par = parallel_nmf(A, k=3, n_ranks=4, algorithm="hpc2d", solver=solver, max_iters=5, seed=11)
        np.testing.assert_allclose(par.W, seq.W, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(par.H, seq.H, rtol=1e-5, atol=1e-7)


class TestIterationHistoryConsistency:
    def test_history_matches_between_naive_and_hpc(self, dense_A):
        naive = parallel_nmf(dense_A, k=3, n_ranks=4, algorithm="naive", max_iters=5, seed=13)
        hpc = parallel_nmf(dense_A, k=3, n_ranks=4, algorithm="hpc2d", max_iters=5, seed=13)
        np.testing.assert_allclose(
            naive.relative_error_history, hpc.relative_error_history, rtol=1e-6
        )
