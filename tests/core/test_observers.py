"""Tests for the per-iteration observer protocol (repro.core.observers)."""

import io

import numpy as np
import pytest

from repro.core.api import fit
from repro.core.config import NMFConfig
from repro.core.observers import (
    CallbackObserver,
    CheckpointEvery,
    HistoryRecorder,
    IterationEvent,
    IterationObserver,
    ProgressPrinter,
    ToleranceStop,
    WallClockBudget,
)
from repro.data.lowrank import planted_lowrank


def _matrix():
    return planted_lowrank(24, 18, 2, seed=0, noise_std=0.02)


class Recorder(IterationObserver):
    """Counts every protocol call; optionally requests a stop."""

    def __init__(self, stop_after=None):
        self.started = 0
        self.finished_results = []
        self.events = []
        self.stop_after = stop_after

    def on_start(self, config, variant):
        self.started += 1
        self.config = config
        self.variant = variant

    def on_iteration(self, event):
        self.events.append(event)
        return self.stop_after is not None and event.iteration >= self.stop_after

    def on_finish(self, result):
        self.finished_results.append(result)


class TestSequentialDispatch:
    def test_observer_sees_every_iteration(self):
        rec = Recorder()
        res = fit(_matrix(), 2, max_iters=5, seed=1, observers=[rec])
        assert rec.started == 1
        assert len(rec.events) == 5
        assert [e.iteration for e in rec.events] == [0, 1, 2, 3, 4]
        assert rec.variant == "sequential"
        assert len(rec.finished_results) == 1
        assert rec.finished_results[0] is res

    def test_event_carries_metrics_and_factors(self):
        rec = Recorder()
        fit(_matrix(), 2, max_iters=3, seed=1, observers=[rec])
        event = rec.events[-1]
        assert event.k == 2
        assert event.n_ranks == 1
        assert event.has_error
        assert event.has_factors
        assert event.W.shape == (24, 2) and event.H.shape == (2, 18)
        assert event.seconds >= 0

    def test_stop_request_honoured(self):
        rec = Recorder(stop_after=2)
        res = fit(_matrix(), 2, max_iters=50, seed=1, observers=[rec])
        assert res.iterations == 3
        assert len(rec.events) == 3

    def test_events_fire_without_error_computation(self):
        rec = Recorder()
        res = fit(_matrix(), 2, max_iters=4, compute_error=False, observers=[rec])
        assert len(rec.events) == 4
        assert not rec.events[0].has_error
        assert res.history == []

    def test_observers_do_not_change_factors(self):
        A = _matrix()
        plain = fit(A, 2, max_iters=4, seed=7)
        watched = fit(A, 2, max_iters=4, seed=7, observers=[Recorder()])
        assert plain.W.tobytes() == watched.W.tobytes()
        assert plain.H.tobytes() == watched.H.tobytes()

    @pytest.mark.parametrize("variant", ["regularized", "symmetric", "streaming"])
    def test_extension_variants_dispatch_observers(self, variant):
        rec = Recorder()
        res = fit(_matrix(), 2, variant=variant, max_iters=4, seed=1, observers=[rec])
        assert rec.variant == variant
        assert len(rec.events) == res.iterations
        assert rec.finished_results[0] is res

    def test_streaming_fires_one_event_per_frame(self):
        rec = Recorder()
        res = fit(_matrix(), 2, variant="streaming", window=6, observers=[rec])
        assert res.iterations == 18  # one per column
        assert len(rec.events) == 18


class TestSPMDDispatch:
    @pytest.mark.parametrize("backend", ["thread", "lockstep"])
    def test_rank0_only_one_event_per_iteration(self, backend):
        rec = Recorder()
        res = fit(_matrix(), 2, variant="hpc2d", n_ranks=4, backend=backend,
                  max_iters=4, seed=2, observers=[rec])
        assert rec.started == 1
        assert len(rec.events) == 4          # not 4 ranks x 4 iterations
        assert rec.events[0].n_ranks == 4
        assert not rec.events[0].has_factors  # blocks live on the ranks
        assert rec.finished_results[0] is res

    @pytest.mark.parametrize("variant", ["naive", "hpc2d"])
    @pytest.mark.parametrize("backend", ["thread", "lockstep"])
    def test_observer_stop_reaches_all_ranks(self, variant, backend):
        rec = Recorder(stop_after=1)
        res = fit(_matrix(), 2, variant=variant, n_ranks=4, backend=backend,
                  max_iters=50, seed=2, observers=[rec])
        assert res.iterations == 2
        assert len(rec.events) == 2

    def test_observed_spmd_factors_match_unobserved(self):
        A = _matrix()
        plain = fit(A, 2, variant="hpc2d", n_ranks=4, max_iters=3, seed=4)
        watched = fit(A, 2, variant="hpc2d", n_ranks=4, max_iters=3, seed=4,
                      observers=[Recorder()])
        assert plain.W.tobytes() == watched.W.tobytes()
        assert plain.H.tobytes() == watched.H.tobytes()

    def test_observed_runs_identical_across_backends(self):
        A = _matrix()
        results = {}
        for backend in ("thread", "lockstep"):
            rec = Recorder(stop_after=2)
            results[backend] = fit(A, 2, variant="hpc2d", n_ranks=4, backend=backend,
                                   max_iters=20, seed=4, observers=[rec])
        assert results["thread"].W.tobytes() == results["lockstep"].W.tobytes()
        assert results["thread"].iterations == results["lockstep"].iterations == 3


class TestBuiltinObservers:
    def test_history_recorder_matches_result_history(self):
        rec = HistoryRecorder()
        res = fit(_matrix(), 2, max_iters=5, seed=1, observers=[rec])
        assert rec.relative_errors == res.relative_error_history
        assert [s.iteration for s in rec.history] == [0, 1, 2, 3, 4]

    def test_tolerance_stop_observer(self):
        stopper = ToleranceStop(tol=1e-4)
        res = fit(_matrix(), 2, max_iters=200, seed=1, observers=[stopper])
        assert res.iterations < 200
        assert stopper.triggered_at == res.iterations - 1

    def test_tolerance_stop_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ToleranceStop(0.0)

    def test_wall_clock_budget_stops_after_first_iteration(self):
        budget = WallClockBudget(0.0)
        res = fit(_matrix(), 2, max_iters=100, seed=1, observers=[budget])
        assert res.iterations == 1
        assert budget.triggered_at == 0

    def test_wall_clock_budget_on_spmd_run(self):
        res = fit(_matrix(), 2, variant="naive", n_ranks=3, max_iters=100,
                  seed=1, observers=[WallClockBudget(0.0)])
        assert res.iterations == 1

    def test_checkpoint_every_writes_factors(self, tmp_path):
        ckpt = CheckpointEvery(2, tmp_path / "ck_{iteration}.npz")
        fit(_matrix(), 2, max_iters=5, seed=1, observers=[ckpt])
        assert len(ckpt.paths) == 2  # after iterations 1 and 3
        with np.load(ckpt.paths[-1]) as data:
            assert data["W"].shape == (24, 2)
            assert int(data["iteration"]) == 3

    def test_checkpoint_without_factors_keeps_metrics_only(self, tmp_path):
        ckpt = CheckpointEvery(1, tmp_path / "spmd_{iteration}.npz")
        fit(_matrix(), 2, variant="hpc2d", n_ranks=4, max_iters=2, seed=1,
            observers=[ckpt])
        with np.load(ckpt.paths[0]) as data:
            assert "W" not in data.files
            assert np.isfinite(float(data["relative_error"]))

    def test_progress_printer_writes_lines(self):
        stream = io.StringIO()
        fit(_matrix(), 2, max_iters=4, seed=1,
            observers=[ProgressPrinter(every=2, stream=stream)])
        out = stream.getvalue()
        assert "[sequential]" in out
        assert "iter    1" in out and "iter    3" in out
        assert "iter    0" not in out

    def test_callback_observer_fires_only_with_error(self):
        calls = []
        fit(_matrix(), 2, max_iters=3, compute_error=False,
            observers=[CallbackObserver(lambda i, e: calls.append(i))])
        assert calls == []
        fit(_matrix(), 2, max_iters=3, observers=[CallbackObserver(lambda i, e: calls.append(i))])
        assert calls == [0, 1, 2]

    def test_stateful_observers_reset_between_runs(self):
        # The NMF estimator passes the same observer objects to every fit;
        # a second run must not inherit the first run's state.
        from repro.core.api import NMF

        A = _matrix()
        B = planted_lowrank(24, 18, 2, seed=9, noise_std=0.02)
        stopper = ToleranceStop(tol=1e-4)
        rec = HistoryRecorder()
        model = NMF(k=2, max_iters=30, seed=1, observers=[stopper, rec])
        first_iters = model.fit(A).result_.iterations
        second = model.fit(B).result_
        fresh = NMF(k=2, max_iters=30, seed=1,
                    observers=[ToleranceStop(tol=1e-4)]).fit(B).result_
        assert second.iterations == fresh.iterations
        assert second.iterations > 1  # not a spurious iteration-0 stop
        assert len(rec.history) == second.iterations  # not first + second
        assert first_iters >= 1

    def test_composing_multiple_observers(self):
        rec = HistoryRecorder()
        stopper = ToleranceStop(tol=1e-3)
        res = fit(_matrix(), 2, max_iters=200, seed=1, observers=[rec, stopper])
        assert res.iterations < 200
        assert len(rec.history) == res.iterations


class TestEventDefaults:
    def test_nan_event_reports_no_error(self):
        event = IterationEvent(iteration=0, variant="sequential")
        assert not event.has_error
        assert not event.has_factors

    def test_base_observer_is_a_no_op(self):
        obs = IterationObserver()
        obs.on_start(NMFConfig(k=2), "sequential")
        assert obs.on_iteration(IterationEvent(iteration=0, variant="x")) is None
        obs.on_finish(None)
