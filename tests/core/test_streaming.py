"""Tests for the streaming (incremental) NMF extension."""

import numpy as np
import pytest

from repro.core.streaming import StreamingNMF
from repro.data.video import VideoSceneConfig, video_matrix
from repro.util.errors import ShapeError


class TestStreamingNMFBasics:
    def test_invalid_parameters(self):
        with pytest.raises(ShapeError):
            StreamingNMF(n_pixels=100, k=5, window=1)
        with pytest.raises(ShapeError):
            StreamingNMF(n_pixels=100, k=5, window=10, refresh_every=0)
        with pytest.raises(ShapeError):
            StreamingNMF(n_pixels=4, k=10, window=20)

    def test_frame_shape_validated(self):
        model = StreamingNMF(n_pixels=50, k=3, window=8)
        with pytest.raises(ShapeError):
            model.push_frame(np.zeros(49))

    def test_window_is_sliding(self):
        model = StreamingNMF(n_pixels=20, k=2, window=5, refresh_every=100, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(9):
            model.push_frame(rng.random(20))
        assert model.n_frames_in_window == 5
        assert model.frames_seen == 9
        assert model.current_window().shape == (20, 5)
        assert model.current_coefficients().shape == (2, 5)

    def test_residual_nonnegative_and_background_shape(self):
        model = StreamingNMF(n_pixels=30, k=3, window=6, seed=1)
        rng = np.random.default_rng(1)
        residual = model.push_frame(rng.random(30))
        assert residual.shape == (30,)
        assert np.all(residual >= 0)
        assert model.background().shape == (30,)


class TestStreamingOnVideo:
    def test_background_model_improves_with_refreshes(self):
        config = VideoSceneConfig(height=12, width=12, channels=1, frames=40,
                                  n_objects=2, seed=3, noise_std=0.0)
        A = video_matrix(config)
        model = StreamingNMF(n_pixels=A.shape[0], k=4, window=20,
                             refresh_every=5, refresh_iters=2, seed=4)
        errors = []
        for frame_idx in range(A.shape[1]):
            model.push_frame(A[:, frame_idx])
            if frame_idx >= 10:
                errors.append(model.window_error())
        # After the model has seen enough frames, the window error should be
        # small (the background is genuinely low rank) and must not diverge as
        # the window slides (it fluctuates slightly as objects enter/leave).
        assert errors[-1] < 0.35
        assert max(errors) < 0.4

    def test_moving_object_shows_up_in_residual(self):
        config = VideoSceneConfig(height=16, width=16, channels=1, frames=30,
                                  n_objects=1, object_size=5, seed=5, noise_std=0.0)
        A = video_matrix(config)
        model = StreamingNMF(n_pixels=A.shape[0], k=3, window=15,
                             refresh_every=5, seed=6)
        residual = None
        for frame_idx in range(A.shape[1]):
            residual = model.push_frame(A[:, frame_idx])
        # The residual of the last frame should be concentrated: its largest
        # entries (the moving object) dominate its energy.
        energy = np.sort(residual**2)[::-1]
        top_fraction = energy[: max(1, energy.size // 10)].sum() / max(energy.sum(), 1e-12)
        assert top_fraction > 0.5
