"""Tests for the synthetic video dataset (background/foreground structure)."""

import numpy as np
import pytest

from repro.core.api import nmf
from repro.data.video import (
    VideoSceneConfig,
    background_foreground_split,
    video_frames,
    video_matrix,
)


class TestVideoGeneration:
    def test_matrix_shape_is_pixels_by_frames(self):
        config = VideoSceneConfig(height=16, width=20, channels=3, frames=12)
        A = video_matrix(config)
        assert A.shape == (16 * 20 * 3, 12)
        assert config.matrix_shape == A.shape

    def test_nonnegative(self):
        A = video_matrix(height=8, width=8, frames=6)
        assert np.all(A >= 0)

    def test_deterministic_in_seed(self):
        a = video_matrix(height=8, width=8, frames=6, seed=3)
        b = video_matrix(height=8, width=8, frames=6, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(TypeError):
            video_matrix(VideoSceneConfig(), frames=3)

    def test_frames_have_moving_content(self):
        frames = video_frames(VideoSceneConfig(height=16, width=16, frames=10, seed=1))
        # Consecutive frames must differ (objects move).
        assert not np.allclose(frames[..., 0], frames[..., 5])

    def test_tall_and_skinny_aspect(self):
        config = VideoSceneConfig(height=32, width=32, frames=20)
        m, n = config.matrix_shape
        assert m > 50 * n  # the regime where the 1D grid is optimal


class TestBackgroundSubtraction:
    def test_low_rank_background_is_separable(self):
        config = VideoSceneConfig(height=16, width=16, frames=30, n_objects=2, seed=4,
                                  noise_std=0.0)
        A = video_matrix(config)
        res = nmf(A, k=4, max_iters=25, seed=0)
        background, foreground = background_foreground_split(A, res.W, res.H)
        assert background.shape == A.shape
        assert foreground.shape == A.shape
        # The rank-4 background explains most of the energy...
        assert res.relative_error < 0.35
        # ...and the foreground carries only a small fraction of it (the
        # moving rectangles occupy a small part of each frame).
        assert np.linalg.norm(foreground) < 0.6 * np.linalg.norm(A)
