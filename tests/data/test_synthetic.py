"""Tests for the DSYN/SSYN generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.synthetic import (
    dense_synthetic,
    dense_synthetic_block,
    sparse_synthetic,
    sparse_synthetic_block,
)


class TestDenseSynthetic:
    def test_shape_and_nonnegativity(self):
        A = dense_synthetic(50, 40, seed=0)
        assert A.shape == (50, 40)
        assert np.all(A >= 0)

    def test_deterministic_in_seed(self):
        np.testing.assert_array_equal(dense_synthetic(20, 10, seed=5), dense_synthetic(20, 10, seed=5))
        assert not np.allclose(dense_synthetic(20, 10, seed=5), dense_synthetic(20, 10, seed=6))

    def test_noise_changes_values_but_not_range_much(self):
        clean = dense_synthetic(100, 80, seed=1, noise_std=0.0)
        noisy = dense_synthetic(100, 80, seed=1, noise_std=0.05)
        assert not np.allclose(clean, noisy)
        assert abs(clean.mean() - noisy.mean()) < 0.05

    def test_uniform_statistics(self):
        A = dense_synthetic(200, 150, seed=2, noise_std=0.0)
        assert 0.45 < A.mean() < 0.55
        assert A.max() <= 1.0

    def test_block_generator_shape(self):
        block = dense_synthetic_block((10, 25), (3, 11), rank=2, seed=0)
        assert block.shape == (15, 8)
        assert np.all(block >= 0)

    def test_block_generator_rank_independence(self):
        b0 = dense_synthetic_block((0, 10), (0, 10), rank=0, seed=0)
        b1 = dense_synthetic_block((0, 10), (0, 10), rank=1, seed=0)
        assert not np.allclose(b0, b1)


class TestSparseSynthetic:
    def test_density_close_to_requested(self):
        A = sparse_synthetic(500, 400, density=0.01, seed=0)
        assert sp.issparse(A) and A.format == "csr"
        observed = A.nnz / (500 * 400)
        assert observed == pytest.approx(0.01, rel=0.3)

    def test_values_positive(self):
        A = sparse_synthetic(100, 100, density=0.05, seed=1)
        assert np.all(A.data > 0)

    def test_binary_values(self):
        A = sparse_synthetic(100, 100, density=0.05, seed=1, value_distribution="binary")
        assert set(np.unique(A.data)) == {1.0}

    def test_deterministic_in_seed(self):
        A = sparse_synthetic(80, 60, density=0.05, seed=3)
        B = sparse_synthetic(80, 60, density=0.05, seed=3)
        assert (A != B).nnz == 0

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            sparse_synthetic(10, 10, density=0.0)
        with pytest.raises(ValueError):
            sparse_synthetic(10, 10, density=1.5)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            sparse_synthetic(10, 10, density=0.1, value_distribution="poisson")

    def test_block_generator(self):
        blk = sparse_synthetic_block((0, 50), (10, 60), rank=3, density=0.05, seed=0)
        assert blk.shape == (50, 50)
        assert sp.issparse(blk)
