"""Tests for the dataset registry and the planted low-rank generator."""

import numpy as np
import pytest

from repro.data.lowrank import planted_lowrank
from repro.data.registry import (
    DATASETS,
    PAPER_DATASETS,
    DatasetSpec,
    load_dataset,
    measured_scale,
    paper_scale,
)


class TestRegistry:
    def test_every_paper_dataset_has_both_scales(self):
        for name, (paper_key, small_key) in PAPER_DATASETS.items():
            assert paper_key in DATASETS
            assert small_key in DATASETS

    def test_paper_scale_dimensions_match_the_paper(self):
        assert (paper_scale("DSYN").m, paper_scale("DSYN").n) == (172_800, 115_200)
        assert (paper_scale("SSYN").m, paper_scale("SSYN").n) == (172_800, 115_200)
        assert (paper_scale("Video").m, paper_scale("Video").n) == (1_013_400, 2_400)
        assert paper_scale("Webbase").m == 1_000_005
        assert paper_scale("Webbase").nnz_estimate == pytest.approx(3_105_536, rel=1e-6)

    def test_paper_scale_specs_are_model_only(self):
        with pytest.raises(ValueError):
            paper_scale("DSYN").load()

    @pytest.mark.parametrize("name", ["DSYN", "SSYN", "Video", "Webbase"])
    def test_measured_scale_datasets_materialise(self, name):
        spec = measured_scale(name)
        A = spec.load()
        assert A.shape == (spec.m, spec.n)
        if spec.is_sparse:
            assert A.nnz > 0

    def test_load_dataset_by_key(self):
        A = load_dataset("dsyn-small")
        assert A.shape == (864, 576)
        with pytest.raises(KeyError):
            load_dataset("no-such-dataset")

    def test_nnz_estimate_dense(self):
        spec = DatasetSpec(name="x", kind="dense", m=10, n=20)
        assert spec.nnz_estimate == 200


class TestPlantedLowRank:
    def test_exact_rank_structure(self):
        A, W, H = planted_lowrank(30, 20, 4, seed=0, return_factors=True)
        assert np.linalg.matrix_rank(A) == 4
        np.testing.assert_allclose(A, W @ H)

    def test_nonnegative_with_noise(self):
        A = planted_lowrank(30, 20, 3, seed=1, noise_std=0.1)
        assert np.all(A >= 0)

    def test_sparsity_of_factors(self):
        _, W, H = planted_lowrank(200, 150, 5, seed=2, sparsity=0.5, return_factors=True)
        assert np.mean(W == 0) > 0.3
        assert np.mean(H == 0) > 0.3

    def test_deterministic(self):
        np.testing.assert_array_equal(
            planted_lowrank(15, 10, 2, seed=3), planted_lowrank(15, 10, 2, seed=3)
        )
