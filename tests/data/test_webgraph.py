"""Tests for the synthetic web-graph generator."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.webgraph import degree_statistics, web_graph_matrix


class TestWebGraph:
    def test_shape_and_format(self):
        A = web_graph_matrix(500, 2000, seed=0)
        assert A.shape == (500, 500)
        assert sp.issparse(A) and A.format == "csr"

    def test_edge_count_close_to_target(self):
        A = web_graph_matrix(2000, 10000, seed=1)
        assert A.nnz == pytest.approx(10000, rel=0.15)

    def test_no_self_loops(self):
        A = web_graph_matrix(300, 1500, seed=2)
        assert A.diagonal().sum() == 0.0

    def test_binary_by_default_weighted_on_request(self):
        A = web_graph_matrix(300, 1500, seed=3)
        assert set(np.unique(A.data)) == {1.0}
        B = web_graph_matrix(300, 1500, seed=3, weighted=True)
        assert np.all(B.data > 0)
        assert np.any(B.data != 1.0)

    def test_heavy_tailed_in_degree(self):
        A = web_graph_matrix(3000, 20000, seed=4)
        stats = degree_statistics(A)
        # A heavy tail means the max degree is far above the mean.
        assert stats["in_max"] > 8 * stats["in_mean"]

    def test_deterministic_in_seed(self):
        A = web_graph_matrix(400, 1200, seed=7)
        B = web_graph_matrix(400, 1200, seed=7)
        assert (A != B).nnz == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            web_graph_matrix(1, 10)
        with pytest.raises(ValueError):
            web_graph_matrix(10, 0)

    def test_nmf_runs_on_graph_adjacency(self):
        from repro.core.api import parallel_nmf

        A = web_graph_matrix(400, 3000, seed=5)
        res = parallel_nmf(A, k=4, n_ranks=4, algorithm="hpc2d", max_iters=4, seed=1)
        assert res.W.shape == (400, 4)
        assert res.relative_error <= 1.0
