"""Integration: ``fit(A, k, variant="auto", grid="auto")`` consults the planner.

The acceptance criteria of the planning layer: auto mode picks the
§5-optimal grid (validated against the brute-force argmin), records the
chosen plan with its predicted breakdown in the result provenance, and the
plan survives the npz round-trip.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import NMF, NMFResult, fit
from repro.comm.grid import factor_pairs
from repro.perf.machine import edison_machine
from repro.perf.model import hpc_breakdown
from repro.plan import ExecutionPlan, ProblemSpec
from repro.util.errors import ShapeError


@pytest.fixture(scope="module")
def tall():
    # m/p > n for p = 4: the paper's 1D regime.
    return np.abs(np.random.default_rng(7).standard_normal((320, 12)))


class TestAutoVariant:
    def test_tall_skinny_lands_on_1d_grid(self, tall):
        result = fit(tall, 3, variant="auto", grid="auto", n_ranks=4, max_iters=2)
        assert result.variant == "hpc2d"
        assert result.grid_shape == (4, 1)
        assert result.plan is not None
        assert result.plan.grid == (4, 1)

    def test_chosen_grid_is_brute_force_argmin(self, tall):
        result = fit(tall, 3, variant="auto", grid="auto", n_ranks=4, max_iters=2)
        machine = edison_machine()
        problem = ProblemSpec.from_matrix(tall, 3)
        brute_force = min(
            hpc_breakdown(problem, 3, 4, grid=grid, machine=machine).total
            for grid in factor_pairs(4)
        )
        assert result.plan.breakdown.total == pytest.approx(brute_force, rel=1e-12)

    def test_plan_provenance_is_complete(self, tall):
        result = fit(
            tall, 3, variant="auto", grid="auto", n_ranks=4,
            backend="lockstep", max_iters=2,
        )
        plan = result.plan
        assert isinstance(plan, ExecutionPlan)
        assert plan.variant == result.variant
        assert plan.n_ranks == result.n_ranks == 4
        assert plan.backend == "lockstep"
        assert plan.solver == result.solver
        assert plan.machine == "edison"
        assert plan.breakdown.total > 0
        assert plan.words_per_iteration > 0
        assert (plan.problem.m, plan.problem.n) == tall.shape
        assert "plan:" in result.summary()

    def test_auto_single_rank_is_sequential(self, tall):
        result = fit(tall, 3, variant="auto", max_iters=2)
        assert result.variant == "sequential"
        assert result.plan.variant == "sequential"
        assert result.plan.grid is None

    def test_auto_matches_explicit_run(self, tall):
        auto = fit(tall, 3, variant="auto", grid="auto", n_ranks=4, max_iters=3, seed=5)
        explicit = fit(tall, 3, variant="hpc2d", grid=(4, 1), n_ranks=4, max_iters=3, seed=5)
        np.testing.assert_array_equal(auto.W, explicit.W)
        np.testing.assert_array_equal(auto.H, explicit.H)

    def test_sparse_input_plans_sparse_costs(self):
        A = sp.random(600, 90, density=0.05, format="csr", random_state=3)
        A.data = np.abs(A.data)
        result = fit(A, 3, variant="auto", grid="auto", n_ranks=2, max_iters=2)
        assert result.plan.problem.is_sparse
        assert result.plan.problem.nnz_estimate == A.nnz

    def test_explicit_runs_record_no_plan(self, tall):
        result = fit(tall, 3, variant="hpc2d", n_ranks=4, max_iters=2)
        assert result.plan is None


class TestAutoGridOnly:
    def test_fixed_variant_auto_grid(self, tall):
        result = fit(tall, 3, variant="hpc1d", grid="auto", n_ranks=4, max_iters=2)
        assert result.variant == "hpc1d"
        assert result.plan.variant == "hpc1d"
        assert result.plan.grid == (4, 1)

    def test_auto_grid_without_variant_uses_the_default_variant(self, tall):
        # grid="auto" alone must work: the n_ranks>1 default (hpc2d) is planned.
        result = fit(tall, 3, grid="auto", n_ranks=4, max_iters=2)
        assert result.variant == "hpc2d"
        assert result.plan.grid == (4, 1) == result.grid_shape

    def test_auto_variant_honours_an_explicit_grid(self, tall):
        # variant="auto" with a pinned grid must run a variant on that grid,
        # never silently drop it for a grid-free candidate.
        result = fit(tall, 3, variant="auto", grid=(2, 2), n_ranks=4, max_iters=2)
        assert result.plan.grid == (2, 2)
        assert result.grid_shape == (2, 2)

    def test_auto_variant_rejects_a_grid_that_does_not_factor_p(self, tall):
        with pytest.raises(ValueError, match="does not match p"):
            fit(tall, 3, variant="auto", grid=(3, 3), n_ranks=4, max_iters=2)

    def test_bogus_grid_string_rejected(self, tall):
        with pytest.raises(TypeError, match="auto"):
            fit(tall, 3, variant="hpc2d", grid="best", n_ranks=4, max_iters=2)

    def test_auto_requires_a_rank(self, tall):
        with pytest.raises(ShapeError, match="target rank"):
            fit(tall, variant="auto", max_iters=2)


class TestPlanRoundTrip:
    def test_plan_survives_save_load(self, tall, tmp_path):
        result = fit(tall, 3, variant="auto", grid="auto", n_ranks=4, max_iters=2)
        path = result.save(tmp_path / "auto.npz")
        restored = NMFResult.load(path)
        assert restored.plan == result.plan

    def test_planless_result_loads_with_none(self, tall, tmp_path):
        result = fit(tall, 3, variant="sequential", max_iters=2)
        path = result.save(tmp_path / "plain.npz")
        assert NMFResult.load(path).plan is None


class TestEstimatorAuto:
    def test_nmf_estimator_forwards_auto(self, tall):
        model = NMF(k=3, variant="auto", grid="auto", n_ranks=4, max_iters=2).fit(tall)
        assert model.result_.plan is not None
        assert model.result_.variant == "hpc2d"
