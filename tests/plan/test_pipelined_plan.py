"""Pipelined-schedule pricing: pipelined_breakdown and planner candidates."""

import pytest

from repro.perf.machine import edison_machine
from repro.perf.model import hpc_breakdown, naive_breakdown, pipelined_breakdown
from repro.plan import plan_candidates, render_plan_table
from repro.plan.planner import ExecutionPlan
from repro.plan.problem import ProblemSpec

PROBLEM = ProblemSpec(m=4000, n=3000, k=20)


def test_pipelined_breakdown_moves_time_to_hidden():
    machine = edison_machine()
    blocking = hpc_breakdown(PROBLEM, 20, 4, machine=machine)
    overlapped = pipelined_breakdown(blocking, "hpc2d", "process", machine)
    hidden = overlapped.hidden_communication
    assert hidden > 0.0
    # Exposed total shrinks by exactly the hidden amount; computation is
    # untouched.  Panel streaming makes the reduce-scatters overlappable too.
    assert overlapped.total == pytest.approx(blocking.total - hidden)
    assert overlapped.computation == pytest.approx(blocking.computation)
    assert overlapped.get("ReduceScatter") < blocking.get("ReduceScatter")
    assert overlapped.get("AllGather") < blocking.get("AllGather")


def test_pipelined_breakdown_is_identity_when_nothing_overlaps():
    machine = edison_machine()
    blocking = naive_breakdown(PROBLEM, 20, 4, machine=machine)
    # lockstep hides nothing; unknown backends price conservatively.
    assert pipelined_breakdown(blocking, "naive", "lockstep", machine) is blocking
    assert pipelined_breakdown(blocking, "naive", None, machine) is blocking
    assert pipelined_breakdown(blocking, "sequential", "process", machine) is blocking


def test_hidden_capped_by_computation():
    machine = edison_machine().with_options(
        overlap_efficiency={"process": 1.0}
    )
    # A communication-dominated breakdown: almost no compute to hide behind.
    from repro.comm.profiler import TimeBreakdown

    blocking = TimeBreakdown.from_parts(MM=0.001, Gram=0.0, NLS=0.0, AllGather=10.0)
    overlapped = pipelined_breakdown(blocking, "hpc2d", "process", machine)
    assert overlapped.hidden_communication == pytest.approx(0.001)


def test_planner_emits_pipelined_candidates_only_with_backend():
    default = plan_candidates(PROBLEM, 4)
    assert all(plan.schedule == "blocking" for plan in default)

    with_backend = plan_candidates(PROBLEM, 4, backend="process")
    schedules = {plan.schedule for plan in with_backend}
    assert schedules == {"blocking", "pipelined"}
    best = with_backend[0]
    assert best.schedule == "pipelined"
    # Same bytes move either way: word volume matches the blocking twin.
    twin = next(
        p for p in with_backend
        if p.schedule == "blocking" and p.variant == best.variant
        and p.grid == best.grid
    )
    assert best.words_per_iteration == twin.words_per_iteration
    assert best.seconds_per_iteration < twin.seconds_per_iteration
    assert "pipelined" in best.summary()

    lockstep = plan_candidates(PROBLEM, 4, backend="lockstep")
    assert all(plan.schedule == "blocking" for plan in lockstep)


def test_plan_roundtrip_and_table_rendering():
    plans = plan_candidates(PROBLEM, 4, backend="process")
    best = plans[0]
    assert ExecutionPlan.from_dict(best.to_dict()) == best
    # Legacy payloads without a schedule key default to blocking.
    payload = best.to_dict()
    del payload["schedule"]
    assert ExecutionPlan.from_dict(payload).schedule == "blocking"

    table = render_plan_table(plans)
    assert "schedule" in table and "exposed" in table and "hidden" in table

    blocking_only = plan_candidates(PROBLEM, 4)
    assert "schedule" not in render_plan_table(blocking_only)
