"""Tests for ProblemSpec and the spec-coercion helper."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.registry import paper_scale
from repro.plan.problem import ProblemSpec, as_problem
from repro.util.errors import ShapeError


class TestConstruction:
    def test_dense_defaults(self):
        problem = ProblemSpec(m=100, n=60, k=5)
        assert not problem.is_sparse
        assert problem.nnz_estimate == 100 * 60
        assert problem.density == 1.0

    def test_sparse_carries_nnz(self):
        problem = ProblemSpec(m=100, n=60, k=5, nnz=120)
        assert problem.is_sparse
        assert problem.nnz_estimate == 120
        assert problem.density == pytest.approx(120 / 6000)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(m=0, n=10, k=1),
            dict(m=10, n=0, k=1),
            dict(m=10, n=10, k=0),
            dict(m=10, n=10, k=1, nnz=-1.0),
            dict(m=10, n=10, k=1, nnz=101.0),
        ],
    )
    def test_invalid_dimensions_rejected(self, kwargs):
        with pytest.raises(ShapeError):
            ProblemSpec(**kwargs)

    def test_with_rank(self):
        problem = ProblemSpec(m=10, n=10, k=2)
        assert problem.with_rank(2) is problem
        assert problem.with_rank(5).k == 5

    def test_round_trips_through_dict(self):
        problem = ProblemSpec(m=7, n=9, k=3, nnz=12.0, name="toy")
        assert ProblemSpec.from_dict(problem.to_dict()) == problem


class TestFromMatrix:
    def test_dense_ndarray(self):
        A = np.ones((40, 30))
        problem = ProblemSpec.from_matrix(A, 4)
        assert (problem.m, problem.n, problem.k) == (40, 30, 4)
        assert not problem.is_sparse
        assert problem.dtype == "float64"

    def test_sparse_counts_actual_nnz(self):
        A = sp.random(50, 40, density=0.1, format="csr", random_state=0)
        problem = ProblemSpec.from_matrix(A, 4)
        assert problem.is_sparse
        assert problem.nnz_estimate == A.nnz

    def test_list_input_coerced(self):
        problem = ProblemSpec.from_matrix([[1.0, 2.0], [3.0, 4.0]], 1)
        assert (problem.m, problem.n) == (2, 2)

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            ProblemSpec.from_matrix(np.ones(5), 1)


class TestDatasetAdapter:
    def test_paper_specs_adapt(self):
        for name in ("SSYN", "DSYN", "Video", "Webbase"):
            spec = paper_scale(name)
            problem = ProblemSpec.from_dataset(spec, 50)
            assert (problem.m, problem.n) == (spec.m, spec.n)
            assert problem.is_sparse == spec.is_sparse
            assert problem.nnz_estimate == pytest.approx(spec.nnz_estimate)
            assert problem.name == spec.name


class TestAsProblem:
    def test_passthrough_and_rerank(self):
        problem = ProblemSpec(m=10, n=10, k=2)
        assert as_problem(problem) is problem
        assert as_problem(problem, 5).k == 5

    def test_dataset_requires_k(self):
        with pytest.raises(ShapeError, match="rank"):
            as_problem(paper_scale("SSYN"))

    def test_matrix_coercion(self):
        assert as_problem(np.ones((6, 4)), 2).m == 6

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            as_problem(object(), 2)
