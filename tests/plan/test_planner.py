"""Tests for the planner: candidate enumeration, optimality, tie-breaking.

The optimality properties are the §5 claims turned into assertions: the
chosen grid must be the brute-force argmin of the modeled cost over *all*
factorizations of ``p``, and in the tall-and-skinny regime ``m ≫ n`` the
argmin collapses to the paper's 1D-like ``pr ≈ p`` grid.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.grid import factor_pairs
from repro.perf.machine import edison_machine
from repro.perf.model import hpc_breakdown
from repro.plan import (
    ExecutionPlan,
    ProblemSpec,
    make_plan,
    plan_candidates,
    render_plan_table,
)


@pytest.fixture(scope="module")
def machine():
    return edison_machine()


class TestCandidateEnumeration:
    def test_all_factorizations_plus_grid_free_variants(self, machine):
        problem = ProblemSpec(m=5000, n=3000, k=10)
        plans = plan_candidates(problem, 12, machine=machine)
        hpc2d = [p for p in plans if p.variant == "hpc2d"]
        assert len(hpc2d) == len(factor_pairs(12))
        assert {p.grid for p in hpc2d} == set(factor_pairs(12))
        assert sum(p.variant == "hpc1d" for p in plans) == 1
        assert sum(p.variant == "naive" for p in plans) == 1
        # Sequential cannot run on 12 ranks, so it must not be a candidate.
        assert all(p.variant != "sequential" for p in plans)

    def test_sorted_by_predicted_total(self, machine):
        plans = plan_candidates(ProblemSpec(m=5000, n=3000, k=10), 12, machine=machine)
        totals = [p.breakdown.total for p in plans]
        assert totals == sorted(totals)

    def test_variant_restriction(self, machine):
        plans = plan_candidates(
            ProblemSpec(m=5000, n=3000, k=10), 12, machine=machine, variants=["hpc1d"]
        )
        assert {p.variant for p in plans} == {"hpc1d"}

    def test_grid_pinning_excludes_grid_free_variants(self, machine):
        # A pinned grid is a constraint naive/sequential cannot honour, so
        # only gridded candidates on exactly that grid survive.
        plans = plan_candidates(
            ProblemSpec(m=5000, n=3000, k=10), 12, machine=machine, grid=(3, 4)
        )
        assert plans
        assert all(p.grid == (3, 4) for p in plans)

    def test_pinned_grid_must_factor_p(self, machine):
        with pytest.raises(ValueError, match="does not match p"):
            plan_candidates(
                ProblemSpec(m=5000, n=3000, k=10), 12, machine=machine, grid=(3, 3)
            )

    def test_unplannable_problem_raises(self, machine):
        # streaming has no cost hook; restricting to it leaves nothing.
        with pytest.raises(ValueError, match="no registered variant"):
            plan_candidates(
                ProblemSpec(m=100, n=50, k=3), 4, machine=machine, variants=["streaming"]
            )

    def test_invalid_rank_count(self, machine):
        with pytest.raises(ValueError):
            plan_candidates(ProblemSpec(m=10, n=10, k=2), 0, machine=machine)


class TestOptimality:
    @given(
        m=st.integers(64, 50_000),
        n=st.integers(64, 50_000),
        k=st.integers(2, 64),
        p=st.sampled_from([2, 4, 6, 8, 12, 16, 24, 36, 60]),
    )
    @settings(max_examples=60, deadline=None)
    def test_chosen_grid_is_brute_force_argmin(self, m, n, k, p):
        machine = edison_machine()
        problem = ProblemSpec(m=m, n=n, k=k)
        plan = make_plan(problem, p, machine=machine, variants=["hpc2d"])
        brute_force = min(
            hpc_breakdown(problem, k, p, grid=grid, machine=machine).total
            for grid in factor_pairs(p)
        )
        assert plan.breakdown.total == pytest.approx(brute_force, rel=1e-12)

    @given(
        n=st.integers(8, 200),
        k=st.integers(2, 16),
        p=st.sampled_from([2, 4, 8, 16, 32]),
        aspect=st.integers(2, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_tall_skinny_converges_to_1d_regime(self, n, k, p, aspect):
        # m ≫ n (beyond the m/p > n threshold): within the HPC family, §5
        # prescribes pr = p, pc = 1, and the cost argmin must agree.
        m = aspect * p * n + 1
        plan = make_plan(
            ProblemSpec(m=m, n=n, k=k), p, machine=edison_machine(), variants=["hpc2d"]
        )
        assert plan.grid == (p, 1)

    def test_large_tall_skinny_full_planner_goes_1d_hpc(self, machine):
        # At paper-like sizes (bandwidth-dominated, not latency-dominated)
        # the unrestricted planner also picks HPC on the 1D grid; tiny
        # problems may legitimately fall back to naive (fewer collectives).
        problem = ProblemSpec(m=1_000_000, n=2_400, k=50)  # Video-like shape
        plan = make_plan(problem, 16, machine=machine)
        assert plan.variant == "hpc2d"
        assert plan.grid == (16, 1)

    def test_single_rank_ties_resolve_to_sequential(self, machine):
        # At p = 1 every modeled candidate costs the same; the planner must
        # prefer the simplest execution.
        plan = make_plan(ProblemSpec(m=400, n=300, k=5), 1, machine=machine)
        assert plan.variant == "sequential"
        assert plan.grid is None
        assert plan.words_per_iteration == 0.0

    def test_squarish_problem_prefers_2d_over_1d_and_naive(self, machine):
        problem = ProblemSpec(m=20_000, n=20_000, k=50, nnz=4e6)
        plan = make_plan(problem, 36, machine=machine)
        assert plan.variant == "hpc2d"
        pr, pc = plan.grid
        assert pr > 1 and pc > 1  # genuinely 2D, per the §5 square rule


class TestExecutionPlan:
    def test_round_trips_through_dict(self, machine):
        plan = make_plan(ProblemSpec(m=900, n=300, k=8, name="toy"), 6, machine=machine)
        restored = ExecutionPlan.from_dict(plan.to_dict())
        assert restored == plan

    def test_summary_names_the_choice(self, machine):
        plan = make_plan(ProblemSpec(m=900, n=300, k=8), 6, machine=machine)
        text = plan.summary()
        assert plan.variant in text
        assert "s/iter" in text
        assert machine.name in text

    def test_kernel_recorded_and_round_tripped(self, machine):
        plan = make_plan(ProblemSpec(m=900, n=300, k=8), 6,
                         machine=machine, kernel="batched")
        assert plan.kernel == "batched"
        assert "kernel=batched" in plan.summary()
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan
        # Payloads written before the kernel field existed still load.
        legacy = plan.to_dict()
        del legacy["kernel"]
        assert ExecutionPlan.from_dict(legacy).kernel is None

    def test_faster_kernel_lowers_predicted_cost(self, machine):
        spec = ProblemSpec(m=2000, n=1500, k=12)
        scalar = make_plan(spec, 6, machine=machine, kernel="scalar")
        batched = make_plan(spec, 6, machine=machine, kernel="batched")
        assert batched.seconds_per_iteration < scalar.seconds_per_iteration

    def test_auto_kernel_resolves_before_pricing(self, machine):
        from repro.nls import resolve_kernel

        plan = make_plan(ProblemSpec(m=900, n=300, k=8), 6,
                         machine=machine, kernel="auto")
        assert plan.kernel == resolve_kernel("auto")

    def test_unknown_kernel_rejected(self, machine):
        from repro.util.errors import SolverError

        with pytest.raises(SolverError, match="unknown"):
            make_plan(ProblemSpec(m=900, n=300, k=8), 6,
                      machine=machine, kernel="typo")


class TestRenderPlanTable:
    def test_table_contains_all_candidates_and_star(self, machine):
        plans = plan_candidates(ProblemSpec(m=5000, n=3000, k=10), 12, machine=machine)
        text = render_plan_table(plans)
        assert text.splitlines()[0].startswith("Execution plan candidates")
        assert "*" in text
        assert "words/iter" in text
        for variant in ("hpc2d", "hpc1d", "naive"):
            assert variant in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_plan_table([])


class TestWireBackendPricing:
    """`repro plan --backend socket` prices plans at the wire's alpha-beta."""

    def test_wire_backend_stamps_the_machine_name(self, machine):
        problem = ProblemSpec(m=5000, n=3000, k=10)
        plans = plan_candidates(problem, 4, machine=machine, backend="socket")
        assert all(plan.machine == "edison+socket" for plan in plans)
        mpi_plans = plan_candidates(problem, 4, machine=machine, backend="mpi")
        assert all(plan.machine == "edison+mpi" for plan in mpi_plans)

    def test_in_process_backend_pricing_is_unchanged(self, machine):
        problem = ProblemSpec(m=5000, n=3000, k=10)
        bare = plan_candidates(problem, 4, machine=machine)
        in_process = plan_candidates(problem, 4, machine=machine,
                                     backend="process")
        assert all(plan.machine == "edison" for plan in bare + in_process)
        # The blocking candidates must cost exactly the same with and
        # without an in-process backend named (byte-stable pricing).
        blocking = [p for p in in_process if p.schedule == "blocking"]
        by_key = {(p.variant, p.grid): p.breakdown.total for p in bare}
        for plan in blocking:
            assert plan.breakdown.total == by_key[(plan.variant, plan.grid)]

    def test_wire_pricing_changes_the_communication_term(self, machine):
        """The repricing must surface in the predicted communication seconds,
        not just in a renamed header: TCP's ~20x fatter alpha dominates when
        messages are small, so a latency-bound problem must cost strictly
        more over the socket wire than in process (for bandwidth-bound
        problems the loopback link can legitimately be *cheaper* than
        Edison's modeled per-core share, so no blanket ordering exists)."""

        def blocking_comm(problem, backend):
            plans = plan_candidates(
                problem, 4, machine=machine, backend=backend,
                variants=["hpc2d"], grid=(2, 2),
            )
            plan = next(p for p in plans if p.schedule == "blocking")
            return plan.breakdown.communication

        latency_bound = ProblemSpec(m=120, n=80, k=2)
        assert blocking_comm(latency_bound, "socket") > (
            blocking_comm(latency_bound, "process")
        )
        bandwidth_bound = ProblemSpec(m=5000, n=3000, k=10)
        assert blocking_comm(bandwidth_bound, "socket") != (
            blocking_comm(bandwidth_bound, "process")
        )

    def test_make_plan_accepts_wire_backend(self, machine):
        plan = make_plan(ProblemSpec(m=4000, n=3000, k=10), 4,
                         machine=machine, backend="socket")
        assert plan.backend == "socket"
        assert plan.machine == "edison+socket"
