"""The serving load-test panel: row shape, hot-path speedups, committed floor."""

import json
import warnings
from pathlib import Path

import pytest

from repro.bench import render_baseline, run_baseline, run_serve_panel


@pytest.fixture(autouse=True)
def _silence_oversubscription():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


@pytest.fixture(scope="module")
def panel():
    # Deliberately small: 2 clients x 2 requests x 8 columns keeps the panel
    # fast; throughput NUMBERS are not asserted, only structure and positivity.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return run_serve_panel(scale="tiny", clients=2, requests_per_client=2,
                               columns_per_request=8, repeats=1, seed=0)


class TestServePanel:
    def test_panel_shape(self, panel):
        assert panel["panel"] == "serve"
        assert panel["clients"] == 2
        assert panel["batch_columns"] == 16
        kernels = [row["kernel"] for row in panel["rows"]]
        assert kernels == ["scalar", "batched"]

    def test_rows_carry_hotpath_and_e2e_metrics(self, panel):
        for row in panel["rows"]:
            assert row["hotpath_wall_s"] > 0
            assert row["hotpath_columns_per_s"] > 0
            assert row["e2e_wall_s"] > 0
            assert row["requests_per_s"] > 0
            assert row["columns_per_s"] > 0
            assert row["requests"] == 4
            assert row["columns"] == 32
            assert row["latency_p50_s"] > 0
            assert row["latency_p99_s"] >= row["latency_p50_s"]

    def test_speedups_are_hotpath_ratios(self, panel):
        scalar, batched = panel["rows"]
        assert scalar["speedup_vs_scalar"] == 1.0
        expected = (batched["hotpath_columns_per_s"]
                    / scalar["hotpath_columns_per_s"])
        assert batched["speedup_vs_scalar"] == pytest.approx(expected)
        assert batched["e2e_speedup_vs_scalar"] > 0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_serve_panel(scale="galactic")


class TestBaselineIntegration:
    def test_run_baseline_attaches_serve_panel(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            payload = run_baseline(scale="tiny", p=2, panels=(), kernels=False,
                                   repeats=1, serve=True)
        assert payload["serve"]["panel"] == "serve"
        assert "serve:batched_vs_scalar" in payload["speedups"]
        table = render_baseline(payload)
        assert "serve" in table
        assert "p99" in table

    def test_committed_baseline_gates_the_serve_hot_path(self):
        committed = json.loads(
            (Path(__file__).resolve().parents[2]
             / "benchmarks" / "baselines" / "BENCH_baseline.json").read_text()
        )
        floor = next(f for f in committed["floors"]
                     if f["metric"] == "serve:batched_vs_scalar")
        assert floor["min"] >= 2.0
        assert floor["requires_cpus"] >= 4
        assert "hot path" in floor["rationale"]
