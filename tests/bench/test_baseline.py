"""The repro.bench baseline writer: payload shape, artifact IO, floor checks."""

import json
import warnings

import pytest

from repro.bench import (
    SCALES,
    check_baseline,
    load_baseline,
    render_baseline,
    run_baseline,
    write_baseline,
)


@pytest.fixture(autouse=True)
def _silence_oversubscription():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


@pytest.fixture(scope="module")
def measured():
    # One real (tiny, dense-only, single-repeat) measurement shared by the
    # module: p=2 keeps the fork cost negligible even on 1-CPU hosts.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        # serve=False: the serving panel has its own module (test_serve_panel).
        return run_baseline(scale="tiny", p=2, panels=("dense",), repeats=1,
                            serve=False)


class TestRunBaseline:
    def test_payload_shape(self, measured):
        assert measured["schema"] == 1
        assert measured["p"] == 2
        assert measured["cpu_count"] >= 1
        (panel,) = measured["panels"]
        assert panel["panel"] == "dense"
        variants = [(r["variant"], r["backend"]) for r in panel["rows"]]
        assert variants == [
            ("sequential", None), ("hpc2d", "thread"), ("hpc2d", "process"),
        ]
        for row in panel["rows"]:
            assert row["wall_s"] > 0
            assert row["iters_per_s"] > 0
        assert measured["panels"][0]["rows"][0]["speedup_vs_sequential"] == 1.0

    def test_headline_speedups_present(self, measured):
        speedups = measured["speedups"]
        assert "dense:process_vs_thread" in speedups
        assert "dense:thread_vs_sequential" in speedups
        assert "dense:process_vs_sequential" in speedups
        assert all(v > 0 for v in speedups.values())

    def test_kernel_panel_attached(self, measured):
        kernels = measured["kernels"]
        assert kernels["panel"] == "dense"
        names = [row["kernel"] for row in kernels["rows"]]
        assert "scalar" in names and "batched" in names
        for row in kernels["rows"]:
            assert row["wall_s"] > 0
            assert row["columns_per_s"] > 0
        scalar_row = next(r for r in kernels["rows"] if r["kernel"] == "scalar")
        assert scalar_row["speedup_vs_scalar"] == 1.0
        assert "bpp_batched_vs_scalar" in measured["speedups"]

    def test_overlap_panel_measures_three_schedules(self, measured):
        overlap = measured["overlap"]
        assert overlap["panel"] == "dense"
        for row in overlap["rows"]:
            for key in ("wall_blocking_s", "wall_pipelined_s", "wall_panel_s"):
                assert row[key] > 0
            assert row["pipelined_vs_blocking"] == pytest.approx(
                row["wall_blocking_s"] / row["wall_pipelined_s"]
            )
            assert row["panel_vs_pipelined"] == pytest.approx(
                row["wall_pipelined_s"] / row["wall_panel_s"]
            )
            assert row["panel_vs_blocking"] == pytest.approx(
                row["wall_blocking_s"] / row["wall_panel_s"]
            )
            # Exposed-vs-hidden split per schedule, for the BENCH artifact.
            assert set(row["comm_split"]) == {"blocking", "pipelined", "panel"}
            for split in row["comm_split"].values():
                assert split["exposed_comm_s"] >= 0.0
                assert split["hidden_comm_s"] >= 0.0
            # The blocking schedule hides nothing by construction.
            assert row["comm_split"]["blocking"]["hidden_comm_s"] == 0.0
        speedups = measured["speedups"]
        assert "dense:process_pipelined_vs_blocking" in speedups
        assert "dense:process_panel_vs_pipelined" in speedups
        assert "dense:thread_panel_vs_pipelined" in speedups

    def test_kernel_panel_can_be_skipped(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            payload = run_baseline(scale="tiny", p=2, panels=(), kernels=False,
                                   serve=False)
        assert "kernels" not in payload
        assert "serve" not in payload
        assert not any(m.startswith("bpp_") for m in payload["speedups"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_baseline(scale="galactic")

    def test_scales_cover_dense_and_sparse(self):
        for scale, panels in SCALES.items():
            assert set(panels) == {"dense", "sparse"}, scale


class TestArtifactIO:
    def test_write_and_load_round_trip(self, measured, tmp_path):
        path = write_baseline(measured, tmp_path)
        assert path.name == "BENCH_tiny_p2.json"
        assert load_baseline(path) == measured

    def test_custom_label(self, measured, tmp_path):
        assert write_baseline(measured, tmp_path, label="x").name == "BENCH_x.json"

    def test_render_mentions_every_row(self, measured):
        table = render_baseline(measured)
        assert "sequential" in table
        assert "process" in table
        assert "dense:process_vs_thread" in table

    def test_render_mentions_kernel_panel(self, measured):
        table = render_baseline(measured)
        assert "BPP kernels" in table
        assert "batched" in table
        assert "bpp_batched_vs_scalar" in table

    def test_render_mentions_overlap_panel(self, measured):
        table = render_baseline(measured)
        assert "panel-streamed" in table
        assert "pan/pipe" in table
        assert "dense:process_panel_vs_pipelined" in table


class TestCheckBaseline:
    def test_failing_floor_is_reported(self):
        measured = {"cpu_count": 8, "speedups": {"dense:process_vs_thread": 1.1}}
        baseline = {"floors": [
            {"metric": "dense:process_vs_thread", "min": 1.5, "requires_cpus": 4},
        ]}
        failures, skipped = check_baseline(measured, baseline)
        assert skipped == []
        assert len(failures) == 1 and "regressed" in failures[0]

    def test_passing_floor(self):
        measured = {"cpu_count": 8, "speedups": {"dense:process_vs_thread": 2.0}}
        baseline = {"floors": [
            {"metric": "dense:process_vs_thread", "min": 1.5, "requires_cpus": 4},
        ]}
        assert check_baseline(measured, baseline) == ([], [])

    def test_floor_skipped_loudly_when_host_lacks_cpus(self):
        measured = {"cpu_count": 1, "speedups": {"dense:process_vs_thread": 0.7}}
        baseline = {"floors": [
            {"metric": "dense:process_vs_thread", "min": 1.5, "requires_cpus": 4},
        ]}
        failures, skipped = check_baseline(measured, baseline)
        assert failures == []
        assert len(skipped) == 1 and "4 CPUs" in skipped[0]

    def test_missing_metric_fails(self):
        measured = {"cpu_count": 8, "speedups": {}}
        baseline = {"floors": [{"metric": "nope", "min": 1.0}]}
        failures, _ = check_baseline(measured, baseline)
        assert failures == ["nope missing from the measured payload"]

    def test_committed_baseline_parses_and_gates_the_dense_panel(self):
        from pathlib import Path

        committed = json.loads(
            (Path(__file__).resolve().parents[2]
             / "benchmarks" / "baselines" / "BENCH_baseline.json").read_text()
        )
        metrics = {f["metric"] for f in committed["floors"]}
        assert "dense:process_vs_thread" in metrics
        floor = next(f for f in committed["floors"]
                     if f["metric"] == "dense:process_vs_thread")
        assert floor["min"] >= 1.5
        assert floor["requires_cpus"] >= 4

    def test_committed_baseline_gates_the_batched_kernel(self):
        from pathlib import Path

        committed = json.loads(
            (Path(__file__).resolve().parents[2]
             / "benchmarks" / "baselines" / "BENCH_baseline.json").read_text()
        )
        floor = next(f for f in committed["floors"]
                     if f["metric"] == "bpp_batched_vs_scalar")
        assert floor["min"] >= 2.0
        assert floor["requires_cpus"] >= 4

    def test_committed_baseline_gates_panel_streaming(self):
        from pathlib import Path

        committed = json.loads(
            (Path(__file__).resolve().parents[2]
             / "benchmarks" / "baselines" / "BENCH_baseline.json").read_text()
        )
        floor = next(f for f in committed["floors"]
                     if f["metric"] == "dense:process_panel_vs_pipelined")
        assert floor["min"] >= 1.0
        assert floor["requires_cpus"] >= 4
