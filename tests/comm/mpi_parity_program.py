"""Byte-parity of the mpi backend, replayed under a real ``mpirun`` world.

CI's wire-backends mpi leg launches this as::

    PYTHONPATH=src mpirun -n 4 --oversubscribe python tests/comm/mpi_parity_program.py

Every MPI process runs the whole script: the mpi-backend fits use this
process's own rank inside the shared MPI world, while the thread-backend
references are recomputed identically in each process (small matrices, cheap
by design).  The contract is the same one the in-process backends pin in
``tests/core/test_backend_parity.py`` — for a fixed seed, every backend's
factors are *byte-identical*, because reductions gather contributions and
combine them in rank order rather than trusting the transport's reduction
tree.  A mismatch raises, the process exits nonzero, and mpirun fails the CI
step.
"""

import sys
import warnings

import numpy as np
import scipy.sparse as sp
from mpi4py import MPI

from repro.core.api import parallel_nmf
from repro.data.lowrank import planted_lowrank


def main() -> int:
    world = MPI.COMM_WORLD
    p = world.Get_size()
    if p < 2:
        print("run me under mpirun with at least 2 ranks", file=sys.stderr)
        return 2

    dense = planted_lowrank(32, 24, 3, seed=5, noise_std=0.05)
    sparse = sp.random(32, 24, density=0.2, random_state=5, format="csr")
    checked = 0
    with warnings.catch_warnings():
        # p ranks of threads inside each MPI process oversubscribe any host.
        warnings.simplefilter("ignore", RuntimeWarning)
        for algorithm in ("naive", "hpc1d", "hpc2d"):
            for label, A in (("dense", dense), ("sparse", sparse)):
                kwargs = dict(n_ranks=p, algorithm=algorithm, max_iters=4, seed=9)
                via_mpi = parallel_nmf(A, 3, backend="mpi", **kwargs)
                via_thread = parallel_nmf(A, 3, backend="thread", **kwargs)
                assert via_mpi.W.tobytes() == via_thread.W.tobytes(), (
                    f"{algorithm}/{label}: W bytes diverge over MPI"
                )
                assert via_mpi.H.tobytes() == via_thread.H.tobytes(), (
                    f"{algorithm}/{label}: H bytes diverge over MPI"
                )
                assert via_mpi.grid_shape == via_thread.grid_shape
                np.testing.assert_array_equal(
                    via_mpi.relative_error_history,
                    via_thread.relative_error_history,
                )
                checked += 1
        # The nonblocking CommHandle path (the pipelined schedule is the
        # default above; this pins the blocking one too).
        blocking = parallel_nmf(dense, 3, backend="mpi", n_ranks=p,
                                algorithm="hpc2d", max_iters=4, seed=9,
                                overlap=False)
        pipelined = parallel_nmf(dense, 3, backend="mpi", n_ranks=p,
                                 algorithm="hpc2d", max_iters=4, seed=9,
                                 overlap=True)
        assert blocking.W.tobytes() == pipelined.W.tobytes()
        assert blocking.H.tobytes() == pipelined.H.tobytes()
        checked += 1

    if world.Get_rank() == 0:
        print(f"mpi parity OK: {checked} configurations byte-identical "
              f"across mpi and thread backends at p={p}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
