"""Unit tests for processor grids and the grid-selection rule of §5."""

import numpy as np
import pytest

from repro.comm import ProcessGrid, choose_grid, run_spmd
from repro.comm.grid import GridShape, factor_pairs
from repro.util.errors import CommunicatorError


class TestChooseGrid:
    def test_square_matrix_square_process_count(self):
        assert choose_grid(1000, 1000, 16) == (4, 4)

    def test_tall_skinny_uses_1d_grid(self):
        # m/p > n forces pr = p, pc = 1 (the Video regime).
        assert choose_grid(1_013_400, 2_400, 216) == (216, 1)

    def test_wide_matrix_uses_1d_column_grid(self):
        assert choose_grid(2_400, 1_013_400, 216) == (1, 216)

    def test_rectangular_prefers_proportional_grid(self):
        # m:n = 3:1, p = 12 -> the best grid keeps m/pr ~= n/pc: (6, 2).
        assert choose_grid(3000, 1000, 12) == (6, 2)

    def test_paper_dsyn_grid_is_squarish(self):
        pr, pc = choose_grid(172_800, 115_200, 600)
        assert pr * pc == 600
        # m/pr and n/pc should be within a factor ~2 of each other.
        ratio = (172_800 / pr) / (115_200 / pc)
        assert 0.5 <= ratio <= 2.0

    def test_single_process(self):
        assert choose_grid(50, 40, 1) == (1, 1)

    def test_invalid_inputs(self):
        with pytest.raises(CommunicatorError):
            choose_grid(10, 10, 0)
        with pytest.raises(CommunicatorError):
            choose_grid(0, 10, 2)

    def test_factor_pairs_cover_all_divisors(self):
        assert factor_pairs(12) == [(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)]


class TestGridShape:
    def test_coords_roundtrip(self):
        shape = GridShape(3, 4)
        for rank in range(12):
            i, j = shape.coords(rank)
            assert shape.rank_of(i, j) == rank

    def test_out_of_range(self):
        shape = GridShape(2, 2)
        with pytest.raises(CommunicatorError):
            shape.coords(4)
        with pytest.raises(CommunicatorError):
            shape.rank_of(2, 0)

    def test_is_1d(self):
        assert GridShape(4, 1).is_1d
        assert GridShape(1, 4).is_1d
        assert not GridShape(2, 2).is_1d


class TestProcessGrid:
    @pytest.mark.parametrize("pr,pc", [(2, 3), (3, 2), (1, 4), (4, 1), (2, 2)])
    def test_row_and_column_communicators(self, pr, pc):
        def program(comm):
            grid = ProcessGrid(comm, pr, pc)
            assert grid.size == pr * pc
            assert grid.row_comm.size == pc
            assert grid.col_comm.size == pr
            i, j = grid.coords
            assert grid.rank == i * pc + j
            assert grid.row_comm.rank == j
            assert grid.col_comm.rank == i
            # Row communicator sees exactly the ranks of this grid row.
            gathered = grid.row_comm.allgather(np.array([float(grid.rank)]))
            assert [int(g[0]) for g in gathered] == [i * pc + jj for jj in range(pc)]
            return True

        assert all(run_spmd(pr * pc, program))

    def test_size_mismatch_raises(self):
        def program(comm):
            with pytest.raises(CommunicatorError):
                ProcessGrid(comm, 2, 3)
            return True

        assert all(run_spmd(4, program))
