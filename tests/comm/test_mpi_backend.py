"""The mpi backend's registry contract, with and without mpi4py installed.

Mirrors the numba-kernel pattern: the module always imports, exposes
``MPI4PY_AVAILABLE``, and when mpi4py is absent the backend degrades to a
*reason-bearing* registry entry — ``available_backends()`` excludes it and
asking for it by name raises a :class:`CommunicatorError` that says what to
install and how to launch, instead of the unknown-backend typo message.

The real 4-rank wire run cannot happen inside pytest (ranks come from
``mpirun``, not fork); CI's mpi leg replays the byte-parity suite via
``mpirun -n 4 python tests/comm/mpi_parity_program.py``.
"""

import pytest

from repro.comm.backends import available_backends, get_backend_class
from repro.comm.backends.mpi import MPI4PY_AVAILABLE, MPIBackend
from repro.util.errors import CommunicatorError


class TestWithoutMpi4py:
    """Graceful degradation: proven for real on hosts without mpi4py."""

    @pytest.mark.skipif(MPI4PY_AVAILABLE, reason="mpi4py is installed")
    def test_mpi_is_not_listed_available(self):
        assert "mpi" not in available_backends()
        assert "socket" in available_backends()  # the wire fallback stays

    @pytest.mark.skipif(MPI4PY_AVAILABLE, reason="mpi4py is installed")
    def test_asking_for_mpi_names_the_missing_dependency(self):
        with pytest.raises(CommunicatorError, match="not available") as excinfo:
            get_backend_class("mpi")
        message = str(excinfo.value)
        assert "mpi4py" in message        # what to install
        assert "mpirun" in message        # how to launch once installed
        assert "lockstep" in message      # what works instead

    @pytest.mark.skipif(MPI4PY_AVAILABLE, reason="mpi4py is installed")
    def test_unavailable_is_not_the_typo_message(self):
        with pytest.raises(CommunicatorError) as excinfo:
            get_backend_class("mpi")
        assert "unknown backend" not in str(excinfo.value)


class TestWithMpi4py:
    """The CI mpi leg runs these with mpi4py really installed."""

    @pytest.mark.skipif(not MPI4PY_AVAILABLE, reason="mpi4py not installed")
    def test_mpi_is_registered_with_wire_capabilities(self):
        from repro.comm.backends import backend_capabilities

        assert "mpi" in available_backends()
        assert get_backend_class("mpi") is MPIBackend
        caps = backend_capabilities()["mpi"]
        assert caps["wire_transport"] is True
        assert caps["cross_process"] is True

    @pytest.mark.skipif(not MPI4PY_AVAILABLE, reason="mpi4py not installed")
    def test_single_rank_runs_inline_under_one_process(self):
        # pytest itself is a 1-process MPI world; n_ranks=1 must work inline.
        assert MPIBackend(1).run(lambda comm: comm.allreduce_scalar(2.0)) == [2.0]

    @pytest.mark.skipif(not MPI4PY_AVAILABLE, reason="mpi4py not installed")
    def test_world_size_mismatch_explains_the_launch_command(self):
        from mpi4py import MPI

        if MPI.COMM_WORLD.Get_size() != 1:  # pragma: no cover - mpirun runs
            pytest.skip("already inside an mpirun world")
        with pytest.raises(CommunicatorError, match="mpirun -n 4"):
            MPIBackend(4).run(lambda comm: None)
