"""Panel-streamed reduce-scatter: byte-identity and ledger purity.

The contract under test (see repro/comm/panels.py): streaming a
reduce-scatter as one nonblocking per-panel collective per rank produces a
result byte-identical to the monolithic blocking call on every backend, and
books exactly the same single ledger entry — same calls, words, messages and
reduction flops — no matter how many physical panels carried it.
"""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.comm.communicator import SelfComm
from repro.comm.cost import CostLedger
from repro.comm.panels import panel_slices, stream_reduce_scatter
from repro.comm.profiler import Profiler, TaskCategory

BACKENDS = ("lockstep", "thread", "process")


def test_panel_slices_partition_the_axis():
    counts = [3, 0, 4, 2]
    slices = panel_slices(counts)
    assert slices == [slice(0, 3), slice(3, 3), slice(3, 7), slice(7, 9)]
    x = np.arange(9)
    np.testing.assert_array_equal(np.concatenate([x[s] for s in slices]), x)


def _stream_program(comm, counts, axis):
    """Blocking vs streamed reduce-scatter of the same input; compare all."""
    rng = np.random.default_rng(510 + comm.rank)
    total = sum(counts)
    shape = (total, 3) if axis == 0 else (3, total)
    full = rng.standard_normal(shape)
    slices = panel_slices(counts)
    my_shape = (counts[comm.rank], 3) if axis == 0 else (3, counts[comm.rank])
    out = np.empty(my_shape)

    blocking_ledger = CostLedger()
    comm.attach_ledger(blocking_ledger)
    blocking = comm.reduce_scatter(full, counts=counts, axis=axis)

    streamed_ledger = CostLedger()
    comm.attach_ledger(streamed_ledger)
    profiler = Profiler()

    def compute_panel(t):
        return full[slices[t]] if axis == 0 else full[:, slices[t]]

    streamed = stream_reduce_scatter(
        comm, compute_panel, counts, axis=axis, out=out, profiler=profiler
    )
    comm.shutdown_nonblocking()
    return {
        "identical": np.array_equal(blocking, streamed)
        and blocking.dtype == streamed.dtype,
        "uses_out": streamed is out,
        "ledgers_equal": blocking_ledger.summary() == streamed_ledger.summary(),
        "ledger_calls": streamed_ledger.calls_for("reduce_scatter"),
        "mm_calls": profiler.calls(TaskCategory.MM),
        "rs_calls": profiler.calls(TaskCategory.REDUCE_SCATTER),
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("axis", [0, 1])
@pytest.mark.parametrize("counts", [[2, 2, 2, 2], [3, 1, 4, 2]])
def test_streamed_matches_monolithic(backend, axis, counts):
    p = len(counts)
    for report in run_spmd(p, _stream_program, counts, axis, backend=backend):
        assert report["identical"]
        assert report["uses_out"]
        assert report["ledgers_equal"]
        # One modeled collective, regardless of the p physical panels.
        assert report["ledger_calls"] == 1
        # Every panel's GEMM and wait is booked.
        assert report["mm_calls"] == p
        assert report["rs_calls"] == p


@pytest.mark.parametrize("axis", [0, 1])
def test_streamed_handles_zero_count_panels(axis):
    # A rank with nothing to receive still runs the same collective schedule.
    counts = [0, 5, 2, 3]
    for report in run_spmd(4, _stream_program, counts, axis, backend="lockstep"):
        assert report["identical"]
        assert report["ledgers_equal"]
        assert report["ledger_calls"] == 1


def test_streamed_size_one_is_silent():
    # The blocking size-1 fast path records nothing; the stream must match.
    comm = SelfComm()
    ledger = CostLedger()
    comm.attach_ledger(ledger)
    full = np.arange(12.0).reshape(6, 2)
    out = np.empty((6, 2))
    result = stream_reduce_scatter(
        comm, lambda t: full, [6], axis=0, out=out
    )
    np.testing.assert_array_equal(result, full)
    assert ledger.summary() == {}


def test_counts_must_match_communicator_size():
    comm = SelfComm()
    with pytest.raises(ValueError, match="one panel per rank"):
        stream_reduce_scatter(
            comm, lambda t: np.zeros((3, 2)), [3, 2], axis=0, out=None
        )


def test_panel_extent_is_validated():
    comm = SelfComm()
    with pytest.raises(ValueError, match="expected counts"):
        stream_reduce_scatter(
            comm, lambda t: np.zeros((4, 2)), [6], axis=0, out=None
        )
