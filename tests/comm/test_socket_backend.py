"""The socket SPMD backend: the same collectives over a real TCP wire.

The contract under test: one process per rank, persistent length-prefixed
TCP connections, and the identical ``Comm`` surface the in-process backends
run — identical collective results (including post-fork ``split``
sub-communicators and the nonblocking ``CommHandle`` path), configurable
timeouts that raise :class:`CommunicatorError` naming the unresponsive peer,
and fault containment: a rank killed mid-collective must not hang the
survivors, and the error they see must name the dead peer.
"""

import os
import warnings

import numpy as np
import pytest

from repro.comm.backends import (
    Backend,
    available_backends,
    backend_capabilities,
    get_backend_class,
    run_spmd,
)
from repro.comm.backends.socket import SocketBackend, _WireSlots
from repro.util.errors import CommunicatorError


@pytest.fixture(autouse=True)
def _silence_oversubscription():
    # This suite deliberately runs more ranks than the host may have CPUs;
    # the warning itself is asserted in tests/comm/test_process_backend.py.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


def _collective_program(comm):
    local = np.arange(3.0) + 10 * comm.rank
    total = comm.allreduce(local)
    gathered = comm.allgatherv(np.array([float(comm.rank)]))
    piece = comm.reduce_scatter(np.arange(comm.size, dtype=float))
    sub = comm.split(color=comm.rank % 2)
    subsum = sub.allreduce_scalar(comm.rank)
    reused = comm.workspace.get("acc", (3,))
    comm.allreduce(local, out=reused)
    return total.tolist(), gathered.tolist(), piece.tolist(), subsum, reused.tolist()


def _nonblocking_program(comm):
    """The pipelined loops' exact pattern: issue, overlap, wait."""
    handle = comm.iallreduce(np.arange(4.0) + comm.rank)
    local = float(np.sum(np.arange(10.0) * comm.rank))  # overlapped compute
    total = handle.wait()
    gather = comm.iallgatherv(np.full(2, float(comm.rank)))
    scatter = comm.ireduce_scatter(np.arange(2.0 * comm.size))
    return total.tolist(), local, gather.wait().tolist(), scatter.wait().tolist()


class TestRegistry:
    def test_socket_backend_is_registered(self):
        assert "socket" in available_backends()
        assert get_backend_class("socket") is SocketBackend
        assert issubclass(SocketBackend, Backend)

    def test_capability_flags(self):
        caps = backend_capabilities()
        assert caps["socket"]["wire_transport"] is True
        assert caps["socket"]["parallel_python"] is True
        assert caps["socket"]["cross_process"] is True
        # The in-process substrates never serialize onto a byte stream.
        assert caps["thread"]["wire_transport"] is False
        assert caps["process"]["wire_transport"] is False
        assert caps["lockstep"]["wire_transport"] is False

    def test_wire_slots_refuse_shared_memory_semantics(self):
        slots = _WireSlots(4)
        assert len(slots) == 4
        with pytest.raises(CommunicatorError, match="no shared deposit slots"):
            slots[0]
        with pytest.raises(CommunicatorError, match="no shared deposit slots"):
            slots[1] = object()


class TestSocketBackend:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_matches_thread_backend(self, p):
        """Collectives (incl. non-power-of-two groups and post-fork splits)
        produce the same values over TCP as over shared memory."""
        via_socket = run_spmd(p, _collective_program, backend="socket")
        via_thread = run_spmd(p, _collective_program, backend="thread")
        assert via_socket == via_thread

    @pytest.mark.parametrize("p", [2, 3])
    def test_nonblocking_handles_match_thread_backend(self, p):
        """The CommHandle path (iallreduce/iallgatherv/ireduce_scatter) must
        work unchanged over the wire — the pipelined schedules depend on it."""
        via_socket = run_spmd(p, _nonblocking_program, backend="socket")
        via_thread = run_spmd(p, _nonblocking_program, backend="thread")
        assert via_socket == via_thread

    def test_point_to_point_ring(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        assert run_spmd(4, program, backend="socket") == [3, 0, 1, 2]

    def test_object_payloads_cross_the_wire(self):
        def program(comm):
            meta = comm.allgather_object({"rank": comm.rank, "tag": "x" * comm.rank})
            broadcast = comm.bcast({"from": comm.rank} if comm.rank == 1 else None,
                                   root=1)
            return [m["rank"] for m in meta], broadcast["from"]

        assert run_spmd(3, program, backend="socket") == [([0, 1, 2], 1)] * 3

    def test_large_array_crosses_in_one_frame(self):
        def program(comm):
            big = np.full(300_000, float(comm.rank + 1))  # 2.4 MB per frame
            return float(comm.allreduce(big)[0])

        assert run_spmd(3, program, backend="socket") == [6.0, 6.0, 6.0]

    def test_exception_propagates_with_real_failure_preferred(self):
        def program(comm):
            comm.barrier()
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(3, program, backend="socket")

    def test_recv_timeout_raises_naming_the_silent_peer(self):
        def program(comm):
            if comm.rank == 1:
                # Nobody ever sends: must time out, not hang, and the error
                # must say who rank 1 was waiting for.
                comm.recv(source=0, tag=7, timeout=0.3)
            return True

        with pytest.raises(CommunicatorError, match="timed out") as excinfo:
            run_spmd(2, program, backend="socket")
        assert "rank 0" in str(excinfo.value)

    def test_dead_rank_is_detected_and_named(self):
        """A rank killed mid-collective must not hang its peers, and the
        reported failure must name the dead rank and its exit code."""

        def program(comm):
            if comm.rank == 2:
                os._exit(3)
            comm.allreduce(np.ones(4))
            return True

        with pytest.raises(CommunicatorError, match="rank 2") as excinfo:
            run_spmd(4, program, backend="socket")
        assert "exit code 3" in str(excinfo.value)

    def test_survivors_see_an_abort_naming_the_dead_peer(self):
        """Fault injection from the survivor's seat: the CommunicatorError a
        blocked rank gets when a peer dies mid-collective must name that
        peer, not just say the collective failed."""

        def program(comm):
            if comm.rank == 2:
                os._exit(9)
            try:
                comm.allreduce(np.ones(8))
            except CommunicatorError as exc:
                # Re-raise as a non-communicator error so raise_first_failure
                # prefers it over the parent's died-without-reporting record
                # and the survivor-side message becomes assertable here.
                raise RuntimeError(f"survivor saw: {exc}") from exc
            return "collective unexpectedly succeeded"

        with pytest.raises(RuntimeError, match="survivor saw:") as excinfo:
            run_spmd(4, program, backend="socket")
        assert "rank 2" in str(excinfo.value)

    def test_timeouts_are_configurable(self):
        backend = SocketBackend(2, timeout=5.0, connect_timeout=2.5)
        assert backend.timeout == 5.0
        assert backend.connect_timeout == 2.5
        assert backend.run(lambda comm: comm.allreduce_scalar(1.0)) == [2.0, 2.0]

    def test_single_rank_runs_inline(self):
        backend = SocketBackend(1)
        assert backend.run(lambda comm: (os.getpid(), comm.size)) == [(os.getpid(), 1)]

    def test_grid_split_over_the_wire(self):
        """Row/column sub-communicators (the 2D grid's backbone) work after
        the world group was wired up: split must build fresh mailboxes."""

        def program(comm):
            row = comm.split(color=comm.rank // 2)
            col = comm.split(color=comm.rank % 2)
            return row.allreduce_scalar(comm.rank), col.allreduce_scalar(comm.rank)

        assert run_spmd(4, program, backend="socket") == [
            (1.0, 2.0), (1.0, 4.0), (5.0, 2.0), (5.0, 4.0),
        ]
