"""Unit tests for the alpha-beta-gamma cost model and the ledger."""

import math

import pytest

from repro.comm.cost import EDISON, AlphaBetaGamma, CollectiveCost, CostLedger


@pytest.fixture
def machine():
    return AlphaBetaGamma(alpha=1e-6, beta=1e-9, gamma=1e-11, name="test")


class TestCollectiveCost:
    def test_costs_are_zero_for_single_process(self, machine):
        coll = CollectiveCost(machine)
        assert coll.all_gather(1, 1000) == 0.0
        assert coll.reduce_scatter(1, 1000) == 0.0
        assert coll.all_reduce(1, 1000) == 0.0
        assert coll.broadcast(1, 1000) == 0.0

    def test_all_gather_formula(self, machine):
        coll = CollectiveCost(machine)
        p, n = 8, 1_000_000
        expected = machine.alpha * 3 + machine.beta * (7 / 8) * n
        assert coll.all_gather(p, n) == pytest.approx(expected)

    def test_reduce_scatter_adds_gamma_term(self, machine):
        coll = CollectiveCost(machine)
        p, n = 4, 1000
        expected = machine.alpha * 2 + (machine.beta + machine.gamma) * (3 / 4) * n
        assert coll.reduce_scatter(p, n) == pytest.approx(expected)

    def test_all_reduce_is_double_latency(self, machine):
        coll = CollectiveCost(machine)
        p, n = 16, 500
        expected = 2 * machine.alpha * 4 + (2 * machine.beta + machine.gamma) * (15 / 16) * n
        assert coll.all_reduce(p, n) == pytest.approx(expected)

    def test_all_reduce_costlier_than_all_gather(self, machine):
        coll = CollectiveCost(machine)
        assert coll.all_reduce(8, 1000) > coll.all_gather(8, 1000)

    def test_point_to_point(self, machine):
        coll = CollectiveCost(machine)
        assert coll.point_to_point(100) == pytest.approx(machine.alpha + 100 * machine.beta)

    def test_non_power_of_two_uses_log2(self, machine):
        coll = CollectiveCost(machine)
        p = 6
        cost = coll.all_gather(p, 0)
        assert cost == pytest.approx(machine.alpha * math.log2(6))


class TestEdisonPreset:
    def test_flop_rate_is_per_core_peak(self):
        assert EDISON.flops_per_second == pytest.approx(19.2e9)

    def test_latency_microseconds(self):
        assert EDISON.alpha == pytest.approx(1.3e-6)

    def test_message_and_flop_costs(self):
        assert EDISON.message_cost(0) == EDISON.alpha
        assert EDISON.flop_cost(19.2e9) == pytest.approx(1.0)


class TestCostLedger:
    def test_record_and_totals(self):
        ledger = CostLedger()
        ledger.record("all_gather", p=4, n_words=100)
        ledger.record("all_reduce", p=4, n_words=10)
        ledger.record("reduce_scatter", p=4, n_words=40)
        assert ledger.calls_for("all_gather") == 1
        assert ledger.words_for("all_gather") == pytest.approx(75.0)
        assert ledger.words_for("all_reduce") == pytest.approx(2 * 7.5)
        assert ledger.words_for("reduce_scatter") == pytest.approx(30.0)
        assert ledger.total_messages > 0

    def test_single_process_records_nothing(self):
        ledger = CostLedger()
        ledger.record("all_gather", p=1, n_words=100)
        assert ledger.total_words == 0.0
        assert ledger.calls_for("all_gather") == 0

    def test_merge_sums_entries(self):
        a, b = CostLedger(), CostLedger()
        a.record("all_gather", 4, 100)
        b.record("all_gather", 4, 100)
        b.record("broadcast", 4, 50)
        merged = a.merge(b)
        assert merged.words_for("all_gather") == pytest.approx(150.0)
        assert merged.calls_for("broadcast") == 1
        # Originals untouched.
        assert a.words_for("all_gather") == pytest.approx(75.0)

    def test_summary_is_plain_dict(self):
        ledger = CostLedger()
        ledger.record("all_reduce", 8, 64)
        summary = ledger.summary()
        assert set(summary) == {"all_reduce"}
        assert summary["all_reduce"]["calls"] == 1

    def test_reset(self):
        ledger = CostLedger()
        ledger.record("send", 2, 10)
        ledger.reset()
        assert ledger.total_words == 0.0
