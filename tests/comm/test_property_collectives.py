"""Hypothesis property tests for the communicator collectives.

Invariants: for any rank count, any array shape and any data, the collectives
must equal their numpy single-process references, and reductions must be
bitwise identical on every rank.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import ReduceOp, run_spmd


array_shapes = st.tuples(st.integers(1, 6), st.integers(1, 5))


@given(
    p=st.integers(1, 6),
    shape=array_shapes,
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_allreduce_equals_numpy_sum(p, shape, seed):
    def program(comm):
        rng = np.random.default_rng(seed + comm.rank)
        local = rng.standard_normal(shape)
        return comm.allreduce(local), local

    results = run_spmd(p, program)
    expected = sum(local for _, local in results)
    for total, _ in results:
        np.testing.assert_allclose(total, expected, rtol=1e-12)


@given(
    p=st.integers(1, 6),
    cols=st.integers(1, 4),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_allgatherv_equals_concatenation(p, cols, seed):
    def program(comm):
        rng = np.random.default_rng(seed + comm.rank)
        local = rng.standard_normal((comm.rank + 1, cols))
        return comm.allgatherv(local, axis=0), local

    results = run_spmd(p, program)
    expected = np.concatenate([local for _, local in results], axis=0)
    for gathered, _ in results:
        np.testing.assert_array_equal(gathered, expected)


@given(
    p=st.integers(1, 5),
    rows_per_rank=st.integers(1, 4),
    seed=st.integers(0, 2**31 - 1),
    op=st.sampled_from([ReduceOp.SUM, ReduceOp.MAX, ReduceOp.MIN]),
)
@settings(max_examples=25, deadline=None)
def test_reduce_scatter_is_allreduce_then_slice(p, rows_per_rank, seed, op):
    total_rows = p * rows_per_rank

    def program(comm):
        rng = np.random.default_rng(seed + 31 * comm.rank)
        local = rng.standard_normal((total_rows, 2))
        piece = comm.reduce_scatter(local, op=op)
        full = comm.allreduce(local, op=op)
        return piece, full

    results = run_spmd(p, program)
    for rank, (piece, full) in enumerate(results):
        lo, hi = rank * rows_per_rank, (rank + 1) * rows_per_rank
        np.testing.assert_allclose(piece, full[lo:hi], rtol=1e-12)


@given(p=st.integers(2, 6), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_broadcast_delivers_roots_data(p, seed):
    root = seed % p

    def program(comm):
        payload = np.arange(8, dtype=float) * (comm.rank + 1) if comm.rank == root else None
        return comm.bcast(payload, root=root)

    results = run_spmd(p, program)
    expected = np.arange(8, dtype=float) * (root + 1)
    for value in results:
        np.testing.assert_array_equal(value, expected)
