"""The multi-process SPMD backend: shared-memory collectives, failure paths.

The contract under test: the process backend is a drop-in substrate for the
same ``Comm`` the other backends run — identical collective results
(including the ``out=``/workspace fast paths and post-fork ``split``
sub-communicators), faithful failure propagation, and detection of ranks
that die without reporting.
"""

import os
import warnings

import numpy as np
import pytest

from repro.comm.backends import (
    Backend,
    ProcessBackend,
    available_backends,
    backend_capabilities,
    get_backend_class,
    run_spmd,
)
from repro.util.errors import CommunicatorError


@pytest.fixture(autouse=True)
def _silence_oversubscription():
    # This suite deliberately runs more ranks than the host may have CPUs;
    # the oversubscription warning itself is asserted in its own test.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


def _collective_program(comm):
    local = np.arange(3.0) + 10 * comm.rank
    total = comm.allreduce(local)
    gathered = comm.allgatherv(np.array([float(comm.rank)]))
    piece = comm.reduce_scatter(np.arange(comm.size, dtype=float))
    sub = comm.split(color=comm.rank % 2)
    subsum = sub.allreduce_scalar(comm.rank)
    reused = comm.workspace.get("acc", (3,))
    comm.allreduce(local, out=reused)
    return total.tolist(), gathered.tolist(), piece.tolist(), subsum, reused.tolist()


class TestRegistry:
    def test_process_backend_is_registered(self):
        assert "process" in available_backends()
        assert get_backend_class("process") is ProcessBackend
        assert issubclass(ProcessBackend, Backend)

    def test_capability_flags(self):
        caps = backend_capabilities()
        assert caps["process"]["parallel_python"] is True
        assert caps["process"]["cross_process"] is True
        assert caps["thread"]["parallel_python"] is False
        assert caps["lockstep"]["deterministic_schedule"] is True
        assert caps["lockstep"]["simulates_large_grids"] is True

    def test_unknown_backend_suggests_close_match(self):
        with pytest.raises(CommunicatorError, match="did you mean 'process'"):
            get_backend_class("proces")


class TestProcessBackend:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5])
    def test_matches_thread_backend(self, p):
        """Collectives (incl. non-power-of-two groups and post-fork splits)
        produce the same values as the in-process substrate."""
        via_process = run_spmd(p, _collective_program, backend="process")
        via_thread = run_spmd(p, _collective_program, backend="thread")
        assert via_process == via_thread

    def test_point_to_point_ring(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        assert run_spmd(5, program, backend="process") == [4, 0, 1, 2, 3]

    def test_slot_growth_beyond_initial_capacity(self):
        """A deposit larger than the shared segment grows it by generation."""

        def program(comm):
            big = np.full(50_000, float(comm.rank + 1))  # 400 kB > 64 kB slots
            return float(comm.allreduce(big)[0])

        backend = ProcessBackend(3, slot_bytes=1 << 16)
        assert backend.run(program) == [6.0, 6.0, 6.0]

    def test_bcast_and_allgather_object_results_survive_later_collectives(self):
        """Slot reads must be detached before they escape: a bcast/gathered
        array must not be rewritten when its owner's segment is reused."""

        def program(comm):
            broadcast = comm.bcast(np.arange(4.0) + comm.rank, root=0)
            gathered = comm.allgather_object(np.full(4, float(comm.rank)))
            comm.allreduce(np.full(4, 99.0))  # reuses every deposit segment
            ok_bcast = broadcast.tolist() == [0.0, 1.0, 2.0, 3.0]
            ok_gather = all(
                g.tolist() == [float(r)] * 4 for r, g in enumerate(gathered)
            )
            return ok_bcast and ok_gather

        assert all(run_spmd(3, program, backend="process"))

    def test_object_payloads_fall_back_to_pickle(self):
        def program(comm):
            meta = comm.allgather_object({"rank": comm.rank, "tag": "x" * comm.rank})
            return [m["rank"] for m in meta]

        assert run_spmd(3, program, backend="process") == [[0, 1, 2]] * 3

    def test_exception_propagates_with_real_failure_preferred(self):
        def program(comm):
            comm.barrier()
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(3, program, backend="process")

    def test_dead_rank_is_detected_and_named(self):
        """A rank that dies without reporting (killed, segfaulted) must not
        hang its peers, and the error must name the dead rank."""

        def program(comm):
            if comm.rank == 2:
                os._exit(3)
            comm.barrier()
            return True

        with pytest.raises(CommunicatorError, match="rank 2") as excinfo:
            run_spmd(4, program, backend="process")
        assert "exit code 3" in str(excinfo.value)

    def test_no_shared_memory_leaked(self):
        before = {f for f in os.listdir("/dev/shm") if f.startswith("repro-")}
        run_spmd(3, _collective_program, backend="process")
        after = {f for f in os.listdir("/dev/shm") if f.startswith("repro-")}
        assert after <= before

    def test_oversubscription_warns(self):
        from repro.comm.backends.process import available_cpus

        with pytest.warns(RuntimeWarning, match="oversubscribe"):
            ProcessBackend(available_cpus() + 1)

    def test_fit_oversubscription_warns_instead_of_silently_running(self):
        from repro.comm.backends.process import available_cpus
        from repro.core.api import fit

        cpus = available_cpus()
        if cpus > 8:
            pytest.skip("would fork cpu_count+1 processes on a large host")
        A = np.abs(np.random.default_rng(0).standard_normal((24, 16)))
        with pytest.warns(RuntimeWarning, match="oversubscribe"):
            result = fit(A, 2, variant="hpc2d", n_ranks=cpus + 1,
                         backend="process", max_iters=2, seed=1)
        assert result.n_ranks == cpus + 1  # warned, but still ran

    def test_single_rank_runs_inline(self):
        backend = ProcessBackend(1)
        assert backend.run(lambda comm: (os.getpid(), comm.size)) == [(os.getpid(), 1)]
