"""Reusable collective workspaces and the ``out=`` receive-buffer paths."""

import numpy as np
import pytest

from repro.comm import CollectiveWorkspace, ReduceOp, run_spmd
from repro.util.errors import CommunicatorError


class TestCollectiveWorkspace:
    def test_same_name_returns_same_buffer(self):
        ws = CollectiveWorkspace()
        a = ws.get("gram", (3, 3))
        b = ws.get("gram", (3, 3))
        assert a is b
        assert len(ws) == 1

    def test_distinct_names_never_alias(self):
        ws = CollectiveWorkspace()
        assert ws.get("gram_w", (3, 3)) is not ws.get("gram_h", (3, 3))

    def test_reallocates_on_shape_or_dtype_change(self):
        ws = CollectiveWorkspace()
        a = ws.get("buf", (2, 2))
        b = ws.get("buf", (4, 2))
        assert a is not b and b.shape == (4, 2)
        c = ws.get("buf", (4, 2), dtype=np.float32)
        assert c is not b and c.dtype == np.float32

    def test_scalar_shape_and_accounting(self):
        ws = CollectiveWorkspace()
        buf = ws.get("v", 5)
        assert buf.shape == (5,)
        assert ws.nbytes == buf.nbytes
        ws.clear()
        assert len(ws) == 0


class TestOutBuffers:
    @pytest.mark.parametrize("p", [1, 3, 4])
    def test_allreduce_out_is_returned_and_reused(self, p):
        def program(comm):
            ws = comm.workspace
            out = ws.get("sum", (2, 2))
            local = np.full((2, 2), float(comm.rank + 1))
            first = comm.allreduce(local, out=out)
            second = comm.allreduce(2 * local, out=out)
            return first is out, second is out, out.copy()

        expected = 2 * sum(float(r + 1) for r in range(p))
        for was_out1, was_out2, final in run_spmd(p, program, backend="lockstep"):
            assert was_out1 and was_out2
            np.testing.assert_allclose(final, np.full((2, 2), expected))

    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_allgatherv_out_matches_plain(self, p):
        def program(comm):
            local = np.arange(2.0 * (comm.rank + 1)).reshape(comm.rank + 1, 2)
            plain = comm.allgatherv(local, axis=0)
            out = comm.workspace.get("gathered", plain.shape)
            buffered = comm.allgatherv(local, axis=0, out=out)
            return buffered is out, np.array_equal(plain, buffered)

        for was_out, equal in run_spmd(p, program, backend="lockstep"):
            assert was_out and equal

    @pytest.mark.parametrize("p", [1, 4])
    def test_reduce_scatter_out_matches_plain(self, p):
        def program(comm):
            rng = np.random.default_rng(comm.rank)
            local = rng.random((p * 2, 3))
            plain = comm.reduce_scatter(local, op=ReduceOp.SUM)
            out = comm.workspace.get("piece", plain.shape)
            buffered = comm.reduce_scatter(local, op=ReduceOp.SUM, out=out)
            return buffered is out, np.allclose(plain, buffered)

        for was_out, close in run_spmd(p, program, backend="lockstep"):
            assert was_out and close

    def test_out_aliasing_input_rejected(self):
        # The guard fires before any deposit/barrier, so every rank raises
        # symmetrically and no rank is left blocked.
        def program(comm):
            local = np.ones((2, 2))
            with pytest.raises(CommunicatorError, match="share memory"):
                comm.allreduce(local, out=local)
            big = np.ones((4, 2))
            with pytest.raises(CommunicatorError, match="share memory"):
                comm.reduce_scatter(big, out=big[:2])
            return True

        assert all(run_spmd(2, program, backend="lockstep"))

    def test_combine_out_shape_checked(self):
        with pytest.raises(CommunicatorError, match="shape"):
            ReduceOp.SUM.combine([np.ones((2, 2))], out=np.empty((3, 3)))

    @pytest.mark.parametrize("p", [1, 2])
    def test_lossy_out_dtype_rejected_at_any_size(self, p):
        """p=1 fast paths must enforce the same safe-cast rule as p>1."""

        def program(comm):
            bad = np.empty((2, 2), dtype=np.float32)
            for call in (
                lambda: comm.allreduce(np.ones((2, 2)), out=bad),
                lambda: comm.reduce_scatter(np.ones((2 * comm.size, 2)),
                                            out=np.empty((2, 2), dtype=np.float32)),
                lambda: comm.allgatherv(np.ones((2, 2)),
                                        out=np.empty((2 * comm.size, 2),
                                                     dtype=np.float32)),
            ):
                with pytest.raises(CommunicatorError, match="dtype"):
                    call()
            return True

        assert all(run_spmd(p, program, backend="lockstep"))

    def test_combine_out_lossy_dtype_rejected(self):
        with pytest.raises(CommunicatorError, match="dtype"):
            ReduceOp.SUM.combine(
                [np.ones((2, 2))], out=np.empty((2, 2), dtype=np.float32)
            )
        # Widening casts are fine (int contributions into a float buffer).
        out = np.empty((2,), dtype=np.float64)
        result = ReduceOp.SUM.combine([np.array([1, 2]), np.array([3, 4])], out=out)
        assert result is out
        np.testing.assert_array_equal(out, [4.0, 6.0])

    @pytest.mark.parametrize("p", [1, 3])
    def test_allgatherv_wrong_shape_out_rejected(self, p):
        def program(comm):
            local = np.ones((2, 3))
            # Wrong non-axis dimension: rejected before any deposit.
            with pytest.raises(CommunicatorError, match="incompatible"):
                comm.allgatherv(local, axis=0, out=np.empty((2 * comm.size, 4)))
            # Wrong axis length: raised as CommunicatorError, not a raw
            # numpy error, and the communicator stays usable.
            with pytest.raises(CommunicatorError, match="shape"):
                comm.allgatherv(local, axis=0, out=np.empty((2 * comm.size + 1, 3)))
            gathered = comm.allgatherv(local, axis=0)
            return gathered.shape == (2 * comm.size, 3)

        assert all(run_spmd(p, program, backend="lockstep"))

    @pytest.mark.parametrize("backend", ["thread", "lockstep"])
    def test_bad_out_on_subcommunicator_errors_instead_of_hanging(self, backend):
        """A mid-collective failure must reach the closing barrier so peers on
        the sub-communicator are released rather than blocked forever."""

        def program(comm):
            sub = comm.split(color=0)
            bad = np.empty((2 * sub.size, 2), dtype=np.float32)  # lossy dtype
            with pytest.raises(CommunicatorError, match="dtype"):
                sub.allgatherv(np.ones((2, 2)), out=bad)
            # The sub-communicator must still be usable afterwards.
            total = sub.allreduce(np.ones(2))
            return float(total[0])

        results = run_spmd(3, program, backend=backend)
        assert results == [3.0, 3.0, 3.0]

    def test_workspace_is_per_communicator(self):
        def program(comm):
            sub = comm.split(color=0)
            return comm.workspace is not sub.workspace

        assert all(run_spmd(2, program, backend="lockstep"))
