"""The pluggable execution backends: registry, thread, and lockstep."""

import threading

import numpy as np
import pytest

from repro.comm.backends import (
    Backend,
    LockstepBackend,
    ThreadBackend,
    available_backends,
    get_backend_class,
    make_backend,
    register_backend,
    run_spmd,
)
from repro.util.errors import CommunicatorError


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        names = available_backends()
        assert "thread" in names
        assert "lockstep" in names

    def test_get_backend_class(self):
        assert get_backend_class("thread") is ThreadBackend
        assert get_backend_class("lockstep") is LockstepBackend

    def test_unknown_backend_error_lists_available(self):
        with pytest.raises(CommunicatorError, match="lockstep.*thread"):
            get_backend_class("carrier-pigeon")

    def test_make_backend_from_name_class_and_instance(self):
        assert isinstance(make_backend("lockstep", 3), LockstepBackend)
        assert isinstance(make_backend(ThreadBackend, 3), ThreadBackend)
        instance = LockstepBackend(3)
        assert make_backend(instance, 3) is instance

    def test_make_backend_rejects_mismatched_instance(self):
        with pytest.raises(CommunicatorError, match="sized for 2 ranks"):
            make_backend(LockstepBackend(2), 4)

    def test_register_custom_backend(self):
        class EagerBackend(ThreadBackend):
            pass

        register_backend("eager-test", EagerBackend)
        try:
            results = run_spmd(2, lambda comm: comm.rank, backend="eager-test")
            assert results == [0, 1]
        finally:
            from repro.comm.backends import base

            base._REGISTRY.pop("eager-test", None)

    def test_invalid_n_ranks(self):
        with pytest.raises(CommunicatorError):
            LockstepBackend(0)


def _collective_program(comm):
    local = np.arange(3.0) + 10 * comm.rank
    total = comm.allreduce(local)
    gathered = comm.allgatherv(np.array([float(comm.rank)]))
    piece = comm.reduce_scatter(np.arange(comm.size, dtype=float))
    sub = comm.split(color=comm.rank % 2)
    subsum = sub.allreduce_scalar(comm.rank)
    return total.tolist(), gathered.tolist(), piece.tolist(), subsum


class TestLockstepBackend:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_matches_thread_backend(self, p):
        lockstep = run_spmd(p, _collective_program, backend="lockstep")
        thread = run_spmd(p, _collective_program, backend="thread")
        assert lockstep == thread

    def test_never_more_than_one_rank_running(self):
        backend = LockstepBackend(8)
        backend.run(_collective_program)
        assert backend.max_concurrency == 1

    def test_schedule_trace_is_reproducible(self):
        first = LockstepBackend(5)
        second = LockstepBackend(5)
        first.run(_collective_program)
        second.run(_collective_program)
        assert first.schedule_trace == second.schedule_trace
        assert first.schedule_trace[0] == 0  # rank order, rank 0 first

    def test_point_to_point_ring(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        assert run_spmd(5, program, backend="lockstep") == [4, 0, 1, 2, 3]

    def test_exception_propagates(self):
        def program(comm):
            comm.barrier()
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(3, program, backend="lockstep")

    @pytest.mark.parametrize("backend", ["thread", "lockstep"])
    def test_real_failure_preferred_over_peer_abort_echoes(self, backend):
        """The failing rank's exception wins even when lower ranks only saw
        the broken barrier / abort echo."""

        def program(comm):
            if comm.rank == 2:
                raise ValueError("the real bug on rank 2")
            comm.barrier()

        with pytest.raises(ValueError, match="the real bug on rank 2"):
            run_spmd(4, program, backend=backend)

    def test_deadlock_detected_with_diagnosis(self):
        def program(comm):
            if comm.rank == 0:
                return comm.recv(source=1)
            comm.barrier()

        with pytest.raises(CommunicatorError, match="deadlock") as excinfo:
            run_spmd(2, program, backend="lockstep")
        message = str(excinfo.value)
        assert "rank 0" in message and "recv" in message
        assert "rank 1" in message and "barrier" in message

    def test_early_finish_while_peers_wait_is_a_deadlock(self):
        def program(comm):
            if comm.rank == 1:
                return "bye"
            comm.barrier()

        with pytest.raises(CommunicatorError, match="finished"):
            run_spmd(2, program, backend="lockstep")

    def test_simulates_256_ranks_on_a_16x16_grid(self):
        """Acceptance: p = 256 HPC-NMF completes with one runnable rank."""
        from repro.core.api import parallel_nmf

        A = np.abs(np.random.default_rng(0).standard_normal((256, 256)))
        backend_threads_before = threading.active_count()
        res = parallel_nmf(
            A,
            2,
            n_ranks=256,
            algorithm="hpc2d",
            grid=(16, 16),
            backend="lockstep",
            max_iters=3,
            compute_error=False,
            seed=7,
        )
        assert res.grid_shape == (16, 16)
        assert res.n_ranks == 256
        assert res.W.shape == (256, 2) and res.H.shape == (2, 256)
        # All carrier threads are gone; none of them ever ran concurrently
        # (the per-run assertion lives in test_never_more_than_one_rank_running;
        # here we check the backend leaves no thread pool behind).
        assert threading.active_count() == backend_threads_before

    def test_backend_is_subclass_contract(self):
        assert issubclass(LockstepBackend, Backend)
        assert issubclass(ThreadBackend, Backend)


class TestRecvDiagnostics:
    def test_timeout_error_names_ranks_tag_and_timeout(self):
        def program(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=7, timeout=0.05)
            return True

        with pytest.raises(CommunicatorError) as excinfo:
            run_spmd(2, program, backend="thread")
        message = str(excinfo.value)
        assert "source rank 1" in message
        assert "destination rank 0" in message
        assert "tag 7" in message
        assert "0.05" in message

    def test_mismatched_tag_still_reported(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1), dest=1, tag=3)
            else:
                with pytest.raises(CommunicatorError, match="expected tag 9"):
                    comm.recv(source=0, tag=9)
            return True

        assert all(run_spmd(2, program, backend="lockstep"))
