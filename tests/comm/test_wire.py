"""The wire-frame codec: every payload must round-trip bit-exactly.

The socket backend's byte-identity guarantee rests on this codec — a frame
that perturbs a single array byte would silently break cross-backend parity.
The codec is pure (bytes in, bytes out), so these tests exercise it without
any sockets: hypothesis drives arbitrary keys, dtypes and shapes through
``encode_frame``/``decode_frame``, and :func:`read_frame` is layered over an
in-memory stream the way the backend layers it over a blocking connection.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.wire import (
    KIND_OBJECT,
    MAX_FRAME_BYTES,
    PREAMBLE,
    decode_frame,
    encode_frame,
    read_frame,
    recv_exact,
)
from repro.util.errors import CommunicatorError

RAW_DTYPES = ["<f8", "<f4", "<i8", "<i4", "<u2", "|b1", "<c16"]

keys = st.one_of(
    st.integers(),
    st.text(max_size=8),
    st.tuples(st.text(max_size=4), st.integers(0, 99), st.integers(0, 99)),
)


def _stream_reader(frames: bytes):
    """Bind read_frame to an in-memory byte stream, as the backend binds it
    to a blocking socket."""
    stream = io.BytesIO(frames)

    def read_exact(n: int) -> bytes:
        data = stream.read(n)
        if len(data) != n:
            raise ConnectionError(f"stream ended after {len(data)} of {n} bytes")
        return data

    return read_exact


class TestArrayRoundTrip:
    @given(
        key=keys,
        dtype=st.sampled_from(RAW_DTYPES),
        shape=st.one_of(
            st.tuples(st.integers(0, 7)),
            st.tuples(st.integers(0, 5), st.integers(0, 4)),
            st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)),
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_arrays_round_trip_bit_exactly(self, key, dtype, shape, seed):
        rng = np.random.default_rng(seed)
        arr = rng.standard_normal(shape).astype(np.dtype(dtype), copy=False)
        out_key, out = decode_frame(encode_frame(key, arr))
        assert out_key == key
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert out.tobytes() == arr.tobytes()  # bit-exact, incl. NaN patterns

    def test_decoded_array_is_fresh_and_writable(self):
        arr = np.arange(6.0).reshape(2, 3)
        _, out = decode_frame(encode_frame("k", arr))
        out += 1.0  # collectives combine into received arrays in place
        assert out.flags.writeable and out.flags.c_contiguous

    def test_noncontiguous_input_is_canonicalized(self):
        arr = np.arange(24.0).reshape(4, 6)[::2, ::3]
        _, out = decode_frame(encode_frame("k", arr))
        np.testing.assert_array_equal(out, arr)

    def test_nan_and_inf_survive(self):
        arr = np.array([np.nan, np.inf, -np.inf, -0.0])
        _, out = decode_frame(encode_frame("k", arr))
        assert out.tobytes() == arr.tobytes()


class TestObjectRoundTrip:
    @given(
        key=keys,
        payload=st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(max_size=12),
            lambda inner: st.lists(inner, max_size=4)
            | st.dictionaries(st.text(max_size=4), inner, max_size=4),
            max_leaves=12,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_objects_round_trip(self, key, payload):
        assert decode_frame(encode_frame(key, payload)) == (key, payload)

    def test_object_dtype_arrays_take_the_pickle_path(self):
        arr = np.array([{"a": 1}, None], dtype=object)
        _, out = decode_frame(encode_frame("k", arr))
        assert isinstance(out, np.ndarray) and out.dtype == object
        assert out[0] == {"a": 1} and out[1] is None

    def test_structured_dtype_arrays_take_the_pickle_path(self):
        arr = np.array([(1, 2.0)], dtype=[("a", "<i4"), ("b", "<f8")])
        _, out = decode_frame(encode_frame("k", arr))
        assert out.dtype.names == ("a", "b")
        assert out.tobytes() == arr.tobytes()


class TestMalformedFrames:
    def test_truncated_preamble(self):
        with pytest.raises(CommunicatorError, match="truncated"):
            decode_frame(b"\x01\x02")

    def test_truncated_payload(self):
        frame = encode_frame("k", np.arange(4.0))
        with pytest.raises(CommunicatorError, match="length mismatch"):
            decode_frame(frame[:-3])

    def test_trailing_garbage(self):
        frame = encode_frame("k", np.arange(4.0))
        with pytest.raises(CommunicatorError, match="length mismatch"):
            decode_frame(frame + b"xx")

    def test_oversized_length_prefix_is_refused_before_allocation(self):
        buf = PREAMBLE.pack(4, MAX_FRAME_BYTES + 1) + b"head"
        with pytest.raises(CommunicatorError, match="over the"):
            decode_frame(buf)
        with pytest.raises(CommunicatorError, match="over the"):
            read_frame(_stream_reader(buf))

    def test_corrupted_header_is_a_communicator_error(self):
        frame = bytearray(encode_frame("k", [1, 2, 3]))
        header_len, _ = PREAMBLE.unpack_from(bytes(frame), 0)
        for i in range(PREAMBLE.size, PREAMBLE.size + header_len):
            frame[i] ^= 0xFF
        with pytest.raises(CommunicatorError, match="header"):
            decode_frame(bytes(frame))

    def test_array_payload_shorter_than_header_declares(self):
        import pickle

        from repro.comm.wire import KIND_ARRAY

        header = pickle.dumps(("k", KIND_ARRAY, "<f8", (4,)))
        body = b"\x00" * 16  # header says 32
        buf = PREAMBLE.pack(len(header), len(body)) + header + body
        with pytest.raises(CommunicatorError, match="declares"):
            decode_frame(buf)

    def test_unknown_kind_is_refused(self):
        import pickle

        header = pickle.dumps(("k", 99, None, None))
        body = pickle.dumps("x")
        buf = PREAMBLE.pack(len(header), len(body)) + header + body
        with pytest.raises(CommunicatorError, match="unknown wire-frame"):
            decode_frame(buf)


class TestStreaming:
    @given(
        payloads=st.lists(
            st.one_of(st.integers(), st.text(max_size=6)), min_size=1, max_size=6
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_back_to_back_frames_demux_in_order(self, payloads):
        stream = b"".join(
            encode_frame(("msg", i), p) for i, p in enumerate(payloads)
        )
        read_exact = _stream_reader(stream)
        for i, expected in enumerate(payloads):
            assert read_frame(read_exact) == (("msg", i), expected)

    def test_read_frame_raises_on_mid_frame_eof(self):
        frame = encode_frame("k", np.arange(128.0))
        with pytest.raises(ConnectionError, match="ended after"):
            read_frame(_stream_reader(frame[: len(frame) // 2]))

    def test_empty_object_frame_has_no_payload_read(self):
        # KIND_OBJECT with an empty tuple still round-trips through read_frame.
        key, out = read_frame(_stream_reader(encode_frame("k", ())))
        assert (key, out) == ("k", ())
        assert KIND_OBJECT == 2  # layout constant is part of the wire contract

    def test_recv_exact_reassembles_fragmented_stream(self):
        class Chunky:
            """A socket that returns one byte per recv call."""

            def __init__(self, data):
                self.data, self.pos = data, 0

            def recv(self, n):
                if self.pos >= len(self.data):
                    return b""
                chunk = self.data[self.pos:self.pos + 1]
                self.pos += 1
                return chunk

        frame = encode_frame("k", np.arange(5.0))
        sock = Chunky(frame)
        assert recv_exact(sock, len(frame)) == frame
        with pytest.raises(ConnectionError, match="connection closed"):
            recv_exact(sock, 1)

    def test_recv_exact_zero_bytes_reads_nothing(self):
        class Exploding:
            def recv(self, n):  # pragma: no cover - must never be called
                raise AssertionError("recv_exact(0) must not touch the socket")

        assert recv_exact(Exploding(), 0) == b""
