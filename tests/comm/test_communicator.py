"""Unit tests for the SPMD communicator's native collectives."""

import numpy as np
import pytest

from repro.comm import Comm, ReduceOp, run_spmd
from repro.comm.cost import CostLedger
from repro.util.errors import CommunicatorError


@pytest.mark.parametrize("p", [1, 2, 3, 4, 7])
def test_allgather_returns_all_blocks_in_rank_order(p):
    def program(comm):
        local = np.full((2, 3), float(comm.rank))
        gathered = comm.allgather(local)
        assert len(gathered) == comm.size
        for r, block in enumerate(gathered):
            np.testing.assert_array_equal(block, np.full((2, 3), float(r)))
        return True

    assert all(run_spmd(p, program))


@pytest.mark.parametrize("p", [1, 2, 4, 5])
def test_allgatherv_concatenates_unequal_blocks(p):
    def program(comm):
        rows = comm.rank + 1
        local = np.arange(rows * 2, dtype=float).reshape(rows, 2) + 100 * comm.rank
        full = comm.allgatherv(local, axis=0)
        expected = np.concatenate(
            [np.arange((r + 1) * 2, dtype=float).reshape(r + 1, 2) + 100 * r for r in range(comm.size)],
            axis=0,
        )
        np.testing.assert_array_equal(full, expected)
        return True

    assert all(run_spmd(p, program))


@pytest.mark.parametrize("p", [1, 2, 3, 6])
def test_allreduce_sum_matches_numpy(p):
    def program(comm):
        rng = np.random.default_rng(comm.rank)
        local = rng.standard_normal((4, 4))
        total = comm.allreduce(local)
        expected = sum(np.random.default_rng(r).standard_normal((4, 4)) for r in range(comm.size))
        np.testing.assert_allclose(total, expected, rtol=1e-12)
        return True

    assert all(run_spmd(p, program))


@pytest.mark.parametrize("op,npfunc", [
    (ReduceOp.MAX, np.maximum),
    (ReduceOp.MIN, np.minimum),
])
def test_allreduce_max_min(op, npfunc):
    def program(comm):
        local = np.array([float(comm.rank), float(-comm.rank)])
        out = comm.allreduce(local, op=op)
        contributions = [np.array([float(r), float(-r)]) for r in range(comm.size)]
        expected = contributions[0]
        for c in contributions[1:]:
            expected = npfunc(expected, c)
        np.testing.assert_array_equal(out, expected)
        return True

    assert all(run_spmd(4, program))


@pytest.mark.parametrize("p", [1, 2, 3, 4])
def test_reduce_scatter_even_split(p):
    def program(comm):
        local = np.full((comm.size * 2, 3), float(comm.rank + 1))
        mine = comm.reduce_scatter(local)
        total = sum(r + 1 for r in range(comm.size))
        assert mine.shape == (2, 3)
        np.testing.assert_array_equal(mine, np.full((2, 3), float(total)))
        return True

    assert all(run_spmd(p, program))


def test_reduce_scatter_uneven_counts():
    counts = [3, 1, 2, 4]

    def program(comm):
        local = np.arange(10, dtype=float) * (comm.rank + 1)
        mine = comm.reduce_scatter(local, counts=counts)
        factor = sum(r + 1 for r in range(comm.size))
        offsets = np.concatenate(([0], np.cumsum(counts)))
        lo, hi = offsets[comm.rank], offsets[comm.rank + 1]
        np.testing.assert_allclose(mine, np.arange(10, dtype=float)[lo:hi] * factor)
        return True

    assert all(run_spmd(4, program))


def test_reduce_scatter_rejects_bad_counts():
    def program(comm):
        local = np.zeros(10)
        with pytest.raises(CommunicatorError):
            comm.reduce_scatter(local, counts=[5, 6])
        return True

    assert all(run_spmd(2, program))


@pytest.mark.parametrize("p", [2, 5])
def test_bcast_from_nonzero_root(p):
    def program(comm):
        root = comm.size - 1
        payload = np.arange(6, dtype=float) if comm.rank == root else None
        out = comm.bcast(payload, root=root)
        np.testing.assert_array_equal(out, np.arange(6, dtype=float))
        return True

    assert all(run_spmd(p, program))


def test_gather_and_scatter_roundtrip():
    def program(comm):
        local = np.array([comm.rank, comm.rank * 10], dtype=float)
        gathered = comm.gather(local, root=0)
        if comm.rank == 0:
            assert len(gathered) == comm.size
            back = comm.scatter(gathered, root=0)
        else:
            assert gathered is None
            back = comm.scatter(None, root=0)
        np.testing.assert_array_equal(back, local)
        return True

    assert all(run_spmd(3, program))


def test_send_recv_pairwise_exchange():
    def program(comm):
        partner = comm.size - 1 - comm.rank
        payload = np.full(4, float(comm.rank))
        if partner != comm.rank:
            comm.send(payload, dest=partner, tag=7)
            got = comm.recv(source=partner, tag=7)
            np.testing.assert_array_equal(got, np.full(4, float(partner)))
        return True

    assert all(run_spmd(4, program))


def test_send_to_self_raises():
    def program(comm):
        with pytest.raises(CommunicatorError):
            comm.send(np.zeros(1), dest=comm.rank)
        return True

    assert all(run_spmd(2, program))


def test_split_into_rows_and_columns():
    pr, pc = 2, 3

    def program(comm):
        i, j = divmod(comm.rank, pc)
        row_comm = comm.split(color=i, key=j)
        col_comm = comm.split(color=j, key=i)
        assert row_comm.size == pc and row_comm.rank == j
        assert col_comm.size == pr and col_comm.rank == i
        # Collectives on the sub-communicators see only group members.
        row_vals = row_comm.allgather(np.array([float(comm.rank)]))
        assert [int(v[0]) for v in row_vals] == [i * pc + jj for jj in range(pc)]
        col_vals = col_comm.allgather(np.array([float(comm.rank)]))
        assert [int(v[0]) for v in col_vals] == [ii * pc + j for ii in range(pr)]
        return True

    assert all(run_spmd(pr * pc, program))


def test_rank_exception_propagates_to_caller():
    def program(comm):
        if comm.rank == 1:
            raise ValueError("boom on rank 1")
        comm.barrier()
        return True

    with pytest.raises((ValueError, CommunicatorError)):
        run_spmd(3, program)


def test_allreduce_deterministic_across_ranks():
    """All ranks must observe bitwise-identical reduction results."""

    def program(comm):
        rng = np.random.default_rng(1234 + comm.rank)
        local = rng.standard_normal((8, 8))
        out = comm.allreduce(local)
        digests = comm.allgather_object(out.tobytes())
        assert all(d == digests[0] for d in digests)
        return True

    assert all(run_spmd(4, program))


def test_ledger_records_collective_volume():
    ledgers = [CostLedger() for _ in range(4)]

    def program(comm):
        comm.attach_ledger(ledgers[comm.rank])
        comm.allreduce(np.zeros((5, 5)))
        comm.allgather(np.zeros(10))
        comm.reduce_scatter(np.zeros(8))
        return True

    assert all(run_spmd(4, program))
    for ledger in ledgers:
        assert ledger.calls_for("all_reduce") == 1
        assert ledger.calls_for("all_gather") == 1
        assert ledger.calls_for("reduce_scatter") == 1
        # all-reduce volume: 2 * (p-1)/p * n = 2 * 3/4 * 25
        assert ledger.words_for("all_reduce") == pytest.approx(2 * 0.75 * 25)
        assert ledger.words_for("reduce_scatter") == pytest.approx(0.75 * 8)


def test_allreduce_scalar():
    def program(comm):
        return comm.allreduce_scalar(float(comm.rank + 1))

    results = run_spmd(4, program)
    assert results == [10.0] * 4
