"""Unit tests for the per-task profiler and TimeBreakdown containers."""

import pytest

from repro.comm.profiler import (
    Profiler,
    TaskCategory,
    TimeBreakdown,
    max_over_ranks,
    mean_over_ranks,
)
from repro.util.timing import WallClock


class FakeClock(WallClock):
    def __init__(self):
        self.value = 0.0

    def now(self):
        return self.value


def test_profiler_accumulates_per_category():
    clock = FakeClock()
    profiler = Profiler(clock=clock)
    with profiler.task(TaskCategory.MM):
        clock.value += 2.0
    with profiler.task(TaskCategory.MM):
        clock.value += 1.0
    with profiler.task(TaskCategory.NLS):
        clock.value += 0.5
    assert profiler.seconds(TaskCategory.MM) == pytest.approx(3.0)
    assert profiler.seconds(TaskCategory.NLS) == pytest.approx(0.5)
    assert profiler.calls(TaskCategory.MM) == 2


def test_profiler_add_and_reset():
    profiler = Profiler()
    profiler.add(TaskCategory.ALL_REDUCE, 1.25)
    assert profiler.snapshot().get(TaskCategory.ALL_REDUCE) == pytest.approx(1.25)
    profiler.reset()
    assert profiler.snapshot().total == 0.0


def test_breakdown_computation_vs_communication():
    b = TimeBreakdown.from_parts(MM=1.0, NLS=2.0, Gram=0.5, AllGather=0.25, AllReduce=0.25)
    assert b.computation == pytest.approx(3.5)
    assert b.communication == pytest.approx(0.5)
    assert b.total == pytest.approx(4.0)


def test_breakdown_addition_and_scaling():
    a = TimeBreakdown.from_parts(MM=1.0)
    b = TimeBreakdown.from_parts(MM=2.0, NLS=1.0)
    combined = a + b
    assert combined.get(TaskCategory.MM) == pytest.approx(3.0)
    assert combined.get(TaskCategory.NLS) == pytest.approx(1.0)
    halved = combined.scaled(0.5)
    assert halved.get(TaskCategory.MM) == pytest.approx(1.5)


def test_breakdown_unknown_category_rejected():
    with pytest.raises(KeyError):
        TimeBreakdown.from_parts(Bogus=1.0)


def test_breakdown_zeros_covers_figure_categories():
    zeros = TimeBreakdown.zeros()
    for cat in TaskCategory.figure_order():
        assert zeros.get(cat) == 0.0
    assert zeros.total == 0.0


def test_max_and_mean_over_ranks():
    b0 = TimeBreakdown.from_parts(MM=1.0, NLS=4.0)
    b1 = TimeBreakdown.from_parts(MM=3.0, NLS=2.0)
    critical = max_over_ranks([b0, b1])
    assert critical.get(TaskCategory.MM) == pytest.approx(3.0)
    assert critical.get(TaskCategory.NLS) == pytest.approx(4.0)
    average = mean_over_ranks([b0, b1])
    assert average.get(TaskCategory.MM) == pytest.approx(2.0)
    assert max_over_ranks([]).total == 0.0
    assert mean_over_ranks([]).total == 0.0
