"""Nonblocking collectives: byte-identity, handles, pinning, ledger purity.

The contract under test (see repro/comm/nonblocking.py): a nonblocking
collective returns a handle whose ``wait()`` yields a result byte-identical
to the blocking call on every backend; workspace buffers handed to ``out=``
are pinned while the operation is in flight; and the cost ledger records
exactly the entries the blocking schedule would.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import ReduceOp, run_spmd
from repro.comm.profiler import Profiler, TaskCategory
from repro.comm.cost import CostLedger
from repro.comm.nonblocking import finish
from repro.util.errors import WorkspacePinnedError

BACKENDS = ("lockstep", "thread", "process")


def _ops_program(comm):
    """Run all three nonblocking ops and their blocking twins; compare bytes."""
    rng = np.random.default_rng(1234 + comm.rank)
    gathered = rng.standard_normal((3, 4))
    reduced = rng.standard_normal((5, 5))
    scattered = rng.standard_normal((comm.size * 2, 3))

    blocking = (
        comm.allgatherv(gathered, axis=0),
        comm.allreduce(reduced),
        comm.reduce_scatter(scattered, axis=0),
    )
    handles = (
        comm.iallgatherv(gathered, axis=0),
        comm.iallreduce(reduced),
        comm.ireduce_scatter(scattered, axis=0),
    )
    results = tuple(h.wait() for h in handles)
    identical = all(
        np.array_equal(b, r) and b.dtype == r.dtype
        for b, r in zip(blocking, results)
    )
    # wait() is idempotent: the same array comes back, no blocking.
    stable = all(h.wait() is r for h, r in zip(handles, results))
    done = all(h.done and h.test() for h in handles)
    comm.shutdown_nonblocking()
    return identical and stable and done


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("p", [1, 3, 4])
def test_nonblocking_matches_blocking(backend, p):
    assert all(run_spmd(p, _ops_program, backend=backend))


@pytest.mark.parametrize("backend", BACKENDS)
def test_out_buffers_and_max_reduction(backend):
    def program(comm):
        rng = np.random.default_rng(7 + comm.rank)
        local = rng.standard_normal((4, 4))
        out = np.empty((4, 4))
        blocking = comm.allreduce(local, op=ReduceOp.MAX)
        result = comm.iallreduce(local, op=ReduceOp.MAX, out=out).wait()
        comm.shutdown_nonblocking()
        return result is out and np.array_equal(blocking, result)

    assert all(run_spmd(4, program, backend=backend))


@pytest.mark.parametrize("backend", BACKENDS)
def test_workspace_pinned_error(backend):
    def program(comm):
        rng = np.random.default_rng(comm.rank)
        local = rng.standard_normal((2, 3))
        buf = comm.workspace.get("gathered", (comm.size * 2, 3))
        handle = comm.iallgatherv(local, axis=0, out=buf)
        try:
            comm.workspace.get("gathered", (comm.size * 2, 3))
        except WorkspacePinnedError as exc:
            error = exc
        else:
            error = None
        handle.wait()
        # Unpinned after wait: the buffer is available again.
        again = comm.workspace.get("gathered", (comm.size * 2, 3))
        comm.shutdown_nonblocking()
        return error, again is buf, comm.rank

    for error, reusable, rank in run_spmd(3, program, backend=backend):
        assert error is not None, "get() on a pinned buffer must raise"
        assert error.buffer_name == "gathered"
        assert error.op == "iallgatherv"
        assert error.rank == rank
        assert isinstance(error.tag, int)
        assert reusable


@pytest.mark.parametrize("backend", BACKENDS)
def test_ledger_identical_to_blocking(backend):
    def program(comm, nonblocking):
        rng = np.random.default_rng(42 + comm.rank)
        a = rng.standard_normal((2, 4))
        b = rng.standard_normal((3, 3))
        c = rng.standard_normal((comm.size, 2))
        ledger = CostLedger()
        comm.attach_ledger(ledger)
        if nonblocking:
            for h in (
                comm.iallgatherv(a, axis=0),
                comm.iallreduce(b),
                comm.ireduce_scatter(c, axis=0),
            ):
                h.wait()
            comm.shutdown_nonblocking()
        else:
            comm.allgatherv(a, axis=0)
            comm.allreduce(b)
            comm.reduce_scatter(c, axis=0)
        return {
            op: (ledger.calls_for(op), ledger.words_for(op))
            for op in ("all_gather", "all_reduce", "reduce_scatter")
        }

    blocking = run_spmd(4, lambda c: program(c, False), backend=backend)
    pipelined = run_spmd(4, lambda c: program(c, True), backend=backend)
    assert blocking == pipelined


@pytest.mark.parametrize("backend", BACKENDS)
def test_finish_books_exposed_and_hidden(backend):
    def program(comm):
        profiler = Profiler()
        local = np.full((3, 3), float(comm.rank))
        result = finish(
            comm.iallreduce(local), profiler, TaskCategory.ALL_REDUCE
        )
        comm.shutdown_nonblocking()
        breakdown = profiler.snapshot()
        return (
            np.array_equal(result, comm.allreduce(local)),
            breakdown.exposed_communication,
            breakdown.hidden_communication,
            breakdown.total,
        )

    for identical, exposed, hidden, total in run_spmd(4, program, backend=backend):
        assert identical
        assert exposed >= 0.0 and hidden >= 0.0
        # HiddenComm never inflates the critical-path total.
        assert total == pytest.approx(exposed)


def test_ensure_nonblocking_modes():
    def program(comm):
        started = comm.ensure_nonblocking()
        again = comm.ensure_nonblocking()
        comm.shutdown_nonblocking()
        comm.shutdown_nonblocking()  # idempotent
        return started, again

    # Helper backends really start a runner; lockstep (and size-1 worlds)
    # complete eagerly and never do.
    assert run_spmd(2, program, backend="thread") == [(True, True)] * 2
    assert run_spmd(2, program, backend="lockstep") == [(False, False)] * 2
    assert run_spmd(1, program, backend="thread") == [(False, False)]


@given(
    interleaving=st.lists(st.sampled_from(["test", "wait"]), min_size=1, max_size=6),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_handle_survives_any_test_wait_interleaving(interleaving, seed):
    """Any sequence of test()/wait() calls yields one stable result."""

    def program(comm):
        rng = np.random.default_rng(seed + comm.rank)
        local = rng.standard_normal((3, 2))
        expected = comm.allreduce(local)
        handle = comm.iallreduce(local)
        result = None
        for call in interleaving:
            if call == "wait":
                result = handle.wait()
            elif handle.test():
                result = handle.wait()  # returns instantly once done
        if result is None:
            result = handle.wait()
        ok = np.array_equal(result, expected) and handle.wait() is result
        comm.shutdown_nonblocking()
        return ok

    assert all(run_spmd(3, program, backend="thread"))


def test_overlapping_handles_on_one_communicator():
    """Several in-flight handles on one comm complete in issue order."""

    def program(comm):
        rng = np.random.default_rng(99 + comm.rank)
        arrays = [rng.standard_normal((2, 2)) for _ in range(5)]
        expected = [comm.allreduce(a) for a in arrays]
        handles = [comm.iallreduce(a) for a in arrays]
        ok = all(
            np.array_equal(h.wait(), e) for h, e in zip(handles, expected)
        )
        comm.shutdown_nonblocking()
        return ok

    assert all(run_spmd(4, program, backend="thread"))
