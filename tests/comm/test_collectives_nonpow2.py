"""Property tests: the point-to-point collectives on non-power-of-two sizes.

The fold/unfold adaptation (MPICH's scheme) must make every collective agree
with the plain numpy reference for communicator sizes that are *not* powers
of two — the regime the original recursive-doubling/halving algorithms do
not cover.  Runs on the lockstep backend so each hypothesis example is
deterministic and cheap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import ReduceOp, run_spmd
from repro.comm.collectives import (
    recursive_doubling_allgather,
    recursive_halving_reduce_scatter,
    reduce_scatter_allgather_allreduce,
    ring_allgather,
)

NON_POWER_OF_TWO_SIZES = [3, 5, 6, 7]


def _locals(p, rows, cols, seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((rows, cols)) for _ in range(p)]


@pytest.mark.parametrize("p", NON_POWER_OF_TWO_SIZES)
@given(rows=st.integers(1, 4), cols=st.integers(1, 3), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_ring_allgather_matches_reference(p, rows, cols, seed):
    locals_ = _locals(p, rows, cols, seed)

    def program(comm):
        return ring_allgather(comm, locals_[comm.rank])

    for gathered in run_spmd(p, program, backend="lockstep"):
        assert len(gathered) == p
        for block, reference in zip(gathered, locals_):
            np.testing.assert_array_equal(block, reference)


@pytest.mark.parametrize("p", NON_POWER_OF_TWO_SIZES)
@given(rows=st.integers(1, 4), cols=st.integers(1, 3), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_recursive_doubling_allgather_matches_reference(p, rows, cols, seed):
    locals_ = _locals(p, rows, cols, seed)

    def program(comm):
        return recursive_doubling_allgather(comm, locals_[comm.rank])

    for gathered in run_spmd(p, program, backend="lockstep"):
        assert len(gathered) == p
        for block, reference in zip(gathered, locals_):
            np.testing.assert_array_equal(block, reference)


@pytest.mark.parametrize("p", NON_POWER_OF_TWO_SIZES)
@given(
    blocks=st.integers(1, 3),
    extra=st.integers(0, 4),
    cols=st.integers(1, 3),
    seed=st.integers(0, 2**31 - 1),
    op=st.sampled_from([ReduceOp.SUM, ReduceOp.MAX, ReduceOp.MIN]),
)
@settings(max_examples=10, deadline=None)
def test_recursive_halving_reduce_scatter_matches_reference(p, blocks, extra, cols, seed, op):
    # Total length deliberately not a multiple of p whenever extra > 0.
    rows = p * blocks + extra
    locals_ = _locals(p, rows, cols, seed)
    reduced = locals_[0]
    for a in locals_[1:]:
        reduced = op.combine([reduced, a])
    base, rem = divmod(rows, p)
    counts = [base + (1 if r < rem else 0) for r in range(p)]
    offsets = np.concatenate(([0], np.cumsum(counts)))

    def program(comm):
        return recursive_halving_reduce_scatter(comm, locals_[comm.rank], op=op)

    results = run_spmd(p, program, backend="lockstep")
    for rank, piece in enumerate(results):
        lo, hi = offsets[rank], offsets[rank + 1]
        np.testing.assert_allclose(piece, reduced[lo:hi], rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("p", NON_POWER_OF_TWO_SIZES)
@given(rows=st.integers(1, 5), cols=st.integers(1, 3), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_rabenseifner_allreduce_matches_reference(p, rows, cols, seed):
    locals_ = _locals(p, rows, cols, seed)
    expected = sum(locals_)

    def program(comm):
        return reduce_scatter_allgather_allreduce(comm, locals_[comm.rank])

    for total in run_spmd(p, program, backend="lockstep"):
        np.testing.assert_allclose(total, expected, rtol=1e-12, atol=1e-12)
