"""The ``repro.comm.backend`` compat shim must warn, loudly and correctly."""

import warnings

import pytest


def test_shim_attribute_access_emits_deprecation_warning():
    import repro.comm.backend as shim
    import repro.comm.backends as backends

    with pytest.warns(DeprecationWarning, match="repro.comm.backends"):
        run_spmd = shim.run_spmd
    assert run_spmd is backends.run_spmd


def test_shim_from_import_warns_and_resolves_every_public_name():
    import repro.comm.backend as shim
    import repro.comm.backends as backends

    for name in shim.__all__:
        with pytest.warns(DeprecationWarning, match=name):
            value = getattr(shim, name)
        assert value is getattr(backends, name)


def test_shim_unknown_attribute_raises_without_warning():
    import repro.comm.backend as shim

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with pytest.raises(AttributeError, match="no_such_thing"):
            shim.no_such_thing
