"""The point-to-point collective algorithms must agree with the native ones."""

import numpy as np
import pytest

from repro.comm import ReduceOp, run_spmd
from repro.comm.collectives import (
    binomial_broadcast,
    recursive_doubling_allgather,
    recursive_doubling_allreduce,
    recursive_halving_reduce_scatter,
    reduce_scatter_allgather_allreduce,
    ring_allgather,
)


@pytest.mark.parametrize("p", [1, 2, 3, 4, 6])
def test_ring_allgather_matches_native(p):
    def program(comm):
        rng = np.random.default_rng(comm.rank)
        local = rng.random((3, 2))
        via_ring = ring_allgather(comm, local)
        via_native = comm.allgather(local)
        for a, b in zip(via_ring, via_native):
            np.testing.assert_array_equal(a, b)
        return True

    assert all(run_spmd(p, program))


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8])
def test_recursive_doubling_allgather_matches_native(p):
    def program(comm):
        local = np.arange(4, dtype=float) + 10 * comm.rank
        blocks = recursive_doubling_allgather(comm, local)
        native = comm.allgather(local)
        for a, b in zip(blocks, native):
            np.testing.assert_array_equal(a, b)
        return True

    assert all(run_spmd(p, program))


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 6, 7, 8])
def test_recursive_halving_reduce_scatter_matches_native(p):
    def program(comm):
        rng = np.random.default_rng(100 + comm.rank)
        local = rng.random((p * 3, 2))
        mine = recursive_halving_reduce_scatter(comm, local)
        native = comm.reduce_scatter(local)
        np.testing.assert_allclose(mine, native, rtol=1e-12)
        return True

    assert all(run_spmd(p, program))


@pytest.mark.parametrize("p", [1, 2, 3, 5, 6, 8])
def test_recursive_doubling_allreduce_matches_native(p):
    def program(comm):
        rng = np.random.default_rng(7 + comm.rank)
        local = rng.random((5, 3))
        out = recursive_doubling_allreduce(comm, local)
        native = comm.allreduce(local)
        np.testing.assert_allclose(out, native, rtol=1e-12)
        return True

    assert all(run_spmd(p, program))


@pytest.mark.parametrize("p", [1, 2, 3, 5, 6, 7, 8])
def test_rabenseifner_allreduce_matches_native(p):
    def program(comm):
        rng = np.random.default_rng(42 + comm.rank)
        local = rng.random((7, 3))  # deliberately not divisible by p
        out = reduce_scatter_allgather_allreduce(comm, local)
        native = comm.allreduce(local)
        np.testing.assert_allclose(out, native, rtol=1e-12)
        return True

    assert all(run_spmd(p, program))


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("root", [0, "last"])
def test_binomial_broadcast_delivers_to_all(p, root):
    root_rank = (p - 1) if root == "last" else 0

    def program(comm):
        payload = np.arange(9, dtype=float).reshape(3, 3) if comm.rank == root_rank else None
        out = binomial_broadcast(comm, payload, root=root_rank)
        np.testing.assert_array_equal(out, np.arange(9, dtype=float).reshape(3, 3))
        return True

    assert all(run_spmd(p, program))


def test_max_reduce_scatter():
    def program(comm):
        local = np.arange(8, dtype=float) * (comm.rank + 1)
        mine = recursive_halving_reduce_scatter(comm, local, op=ReduceOp.MAX)
        native = comm.reduce_scatter(local, op=ReduceOp.MAX)
        np.testing.assert_array_equal(mine, native)
        return True

    assert all(run_spmd(4, program))
