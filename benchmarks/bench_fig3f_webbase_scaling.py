"""Figure 3f: Webbase graph — strong scaling at k = 50.

The paper reports a superlinear 28x speedup from 24 to 600 cores (an NLS
cache effect); the model cannot capture cache superlinearity, but the strong
downward scaling and the NLS-dominated composition of the bars reproduce.
"""

from benchmarks.figure_harness import run_scaling_figure


def test_fig3f_webbase_scaling(benchmark, write_artifact):
    target, text = run_scaling_figure("3f", "Webbase", write_artifact)
    assert "Webbase" in text
    breakdown = benchmark.pedantic(target, rounds=1, iterations=1)
    assert breakdown.total > 0
