"""Ablation: native shared-memory collectives vs point-to-point algorithms.

The cost model charges the optimal-collective costs of §2.3; this benchmark
executes both the native collectives and the textbook point-to-point
algorithms (ring all-gather, recursive-halving reduce-scatter, Rabenseifner
all-reduce) on the same data and records their wall clock, demonstrating the
substrate the model describes in executable form.
"""

import numpy as np
import pytest

from repro.comm import ReduceOp, run_spmd
from repro.comm.collectives import (
    recursive_halving_reduce_scatter,
    reduce_scatter_allgather_allreduce,
    ring_allgather,
)


P = 4
WORDS = 50_000


def _native_program(comm):
    rng = np.random.default_rng(comm.rank)
    data = rng.random(WORDS)
    comm.allgather(data)
    comm.reduce_scatter(np.tile(data, P))
    comm.allreduce(data)
    return True


def _p2p_program(comm):
    rng = np.random.default_rng(comm.rank)
    data = rng.random(WORDS)
    ring_allgather(comm, data)
    recursive_halving_reduce_scatter(comm, np.tile(data, P))
    reduce_scatter_allgather_allreduce(comm, data, op=ReduceOp.SUM)
    return True


@pytest.mark.parametrize("flavour,program", [("native", _native_program), ("p2p", _p2p_program)])
def test_collectives_ablation(benchmark, write_artifact, flavour, program):
    def run():
        return run_spmd(P, program)

    results = benchmark(run)
    assert all(results)
    write_artifact(
        f"ablation_collectives_{flavour}.txt",
        f"collective flavour: {flavour}\nranks: {P}\nvector words: {WORDS}\n"
        "timing recorded by pytest-benchmark (see its table output)\n",
    )
