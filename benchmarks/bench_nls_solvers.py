"""Micro-benchmarks of the local NLS solvers (the "NLS" task of Figure 3).

The multi-right-hand-side problem sizes mirror what one rank of HPC-NMF sees:
a k×k Gram matrix with k in {10..50} and a few hundred columns.  The BPP
benchmarks are additionally parametrized over the registered kernels
(``scalar`` vs ``batched`` vs ``numba`` when importable), which is where the
passive-set-grouping payoff shows up.
"""

import numpy as np
import pytest

from repro.nls import available_kernels, make_solver


def _problem(k, c, seed=0):
    rng = np.random.default_rng(seed)
    C = rng.random((4 * k, k)) + 0.01
    B = rng.random((4 * k, c))
    return C.T @ C, C.T @ B


@pytest.mark.parametrize("k", [10, 30, 50])
@pytest.mark.parametrize("solver_name", ["bpp", "mu", "hals"])
def test_nls_solver_speed(benchmark, solver_name, k):
    gram, rhs = _problem(k, c=400)
    solver = make_solver(solver_name)
    x = benchmark(solver.solve, gram, rhs)
    assert x.shape == rhs.shape
    assert np.all(x >= 0)


@pytest.mark.parametrize("kernel", available_kernels())
@pytest.mark.parametrize("k", [10, 30, 50])
def test_bpp_kernel_speed(benchmark, kernel, k):
    """Scalar vs batched (vs numba) BPP on the same multi-RHS problem."""
    gram, rhs = _problem(k, c=400)
    solver = make_solver("bpp", kernel=kernel)
    solver.solve(gram, rhs)  # warm-up: JIT compilation for the numba kernel
    x = benchmark(solver.solve, gram, rhs)
    assert x.shape == rhs.shape
    assert np.all(x >= 0)


@pytest.mark.parametrize("kernel", available_kernels())
def test_bpp_many_small_columns(benchmark, kernel):
    """The Webbase regime: many columns, small k."""
    gram, rhs = _problem(10, c=3000, seed=3)
    solver = make_solver("bpp", kernel=kernel)
    solver.solve(gram, rhs)
    x = benchmark(solver.solve, gram, rhs)
    assert np.all(x >= 0)
