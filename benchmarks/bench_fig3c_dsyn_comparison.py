"""Figure 3c: dense synthetic (DSYN) — per-iteration time vs rank k at 600 cores."""

from benchmarks.figure_harness import run_comparison_figure


def test_fig3c_dsyn_comparison(benchmark, write_artifact):
    target, text = run_comparison_figure("3c", "DSYN", write_artifact)
    assert "DSYN" in text
    breakdown = benchmark.pedantic(target, rounds=1, iterations=1)
    assert breakdown.total > 0
