"""Figure 3g: Video matrix — per-iteration time vs rank k at 600 cores.

The Video matrix is tall and skinny, so the 1D and auto-selected grids
coincide and both HPC variants are computation bound — the paper's
explanation for why 1D and 2D perform comparably here.
"""

from benchmarks.figure_harness import run_comparison_figure


def test_fig3g_video_comparison(benchmark, write_artifact):
    target, text = run_comparison_figure("3g", "Video", write_artifact, measured_ranks=2)
    assert "Video" in text
    breakdown = benchmark.pedantic(target, rounds=1, iterations=1)
    assert breakdown.total > 0
