"""Speedup-trajectory guard: compare this run's BENCH_*.json to the last main run.

The committed floors in ``benchmarks/baselines/BENCH_baseline.json`` are hard
minima — deliberately conservative, so they only catch catastrophic
regressions.  This script catches *drift*: it compares the headline
``speedups`` map of the freshly measured ``BENCH_*.json`` against the same
map from the previous successful main-branch CI run (downloaded as the
``bench-baseline`` artifact) and fails when any shared headline regresses by
more than ``--threshold`` (default 20%).

On main pushes CI also calls it with ``--append`` to extend the committed
``benchmarks/baselines/TRAJECTORY.jsonl`` — one JSON line per main run with
the commit SHA and the full speedups map, so the repo carries its own
performance history and floor-raising PRs can cite measured headroom.

Usage (what .github/workflows/ci.yml runs)::

    python benchmarks/trajectory.py --current bench-artifacts \
        --previous prev-bench [--append benchmarks/baselines/TRAJECTORY.jsonl]

Exit status: 0 when no shared headline regresses (including the no-previous
bootstrap case, which is reported but never fatal); 1 on regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DEFAULT_THRESHOLD = 0.2  # fail when current < previous * (1 - 0.2)


def find_bench_payload(directory: Path) -> Optional[Path]:
    """Newest ``BENCH_*.json`` under ``directory`` (recursive), or ``None``.

    Artifact downloads unpack into subdirectories, so the search recurses;
    ties break toward the most recently modified file.
    """
    candidates = sorted(
        directory.rglob("BENCH_*.json"),
        key=lambda p: (p.stat().st_mtime, p.name),
    )
    return candidates[-1] if candidates else None


def load_speedups(path: Path) -> Dict[str, float]:
    payload = json.loads(path.read_text())
    speedups = payload.get("speedups", {})
    return {str(k): float(v) for k, v in speedups.items()}


def compare(
    current: Dict[str, float],
    previous: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[Tuple[str, float, float, float, bool]]]:
    """Diff the headline speedups shared by both runs.

    Returns ``(regressions, rows)``: ``regressions`` are human-readable
    failure strings (empty = pass); ``rows`` are
    ``(metric, previous, current, ratio, regressed)`` for every metric in
    both maps, sorted by metric name, for the diff table.  Metrics present
    in only one run are never regressions — panels come and go with the
    measuring host's CPU count.
    """
    regressions: List[str] = []
    rows: List[Tuple[str, float, float, float, bool]] = []
    for metric in sorted(set(current) & set(previous)):
        prev, curr = previous[metric], current[metric]
        ratio = curr / prev if prev > 0 else float("inf")
        regressed = curr < prev * (1.0 - threshold)
        rows.append((metric, prev, curr, ratio, regressed))
        if regressed:
            regressions.append(
                f"{metric}: {prev:.3f}x -> {curr:.3f}x "
                f"({(1.0 - curr / prev) * 100.0:.1f}% drop, allowed {threshold * 100.0:.0f}%)"
            )
    return regressions, rows


def render_table(rows: List[Tuple[str, float, float, float, bool]]) -> str:
    header = f"{'metric':<44} {'previous':>10} {'current':>10} {'ratio':>8}  status"
    lines = [header, "-" * len(header)]
    for metric, prev, curr, ratio, regressed in rows:
        status = "REGRESSED" if regressed else "ok"
        lines.append(
            f"{metric:<44} {prev:>9.3f}x {curr:>9.3f}x {ratio:>7.3f}x  {status}"
        )
    return "\n".join(lines)


def append_trajectory(path: Path, bench_path: Path, speedups: Dict[str, float]) -> None:
    """Append one JSONL record for this run to the committed trajectory."""
    payload = json.loads(bench_path.read_text())
    record = {
        "sha": os.environ.get("GITHUB_SHA", "local"),
        "created": payload.get("created"),
        "scale": payload.get("scale"),
        "p": payload.get("p"),
        "cpu_count": payload.get("cpu_count"),
        "speedups": speedups,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"trajectory: appended {record['sha'][:12]} to {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a headline speedup drifts below the previous main run"
    )
    parser.add_argument(
        "--current", required=True, type=Path,
        help="directory holding this run's BENCH_*.json",
    )
    parser.add_argument(
        "--previous", required=True, type=Path,
        help="directory holding the previous main run's artifact "
             "(missing or empty = bootstrap, exits 0)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional drop per headline (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--append", type=Path, default=None,
        help="also append this run's speedups to the given TRAJECTORY.jsonl",
    )
    args = parser.parse_args(argv)

    current_path = find_bench_payload(args.current)
    if current_path is None:
        print(f"trajectory: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 1
    current = load_speedups(current_path)
    print(f"trajectory: current  = {current_path} ({len(current)} headline speedups)")

    if args.append is not None:
        append_trajectory(args.append, current_path, current)

    previous_path = (
        find_bench_payload(args.previous) if args.previous.is_dir() else None
    )
    if previous_path is None:
        print(
            "trajectory: no previous bench-baseline artifact — first run on this "
            "branch or artifact expired; nothing to compare (not a failure)."
        )
        return 0
    previous = load_speedups(previous_path)
    print(f"trajectory: previous = {previous_path} ({len(previous)} headline speedups)")

    regressions, rows = compare(current, previous, args.threshold)
    if not rows:
        print("trajectory: no shared headline metrics between the two runs.")
        return 0
    print()
    print(render_table(rows))
    print()
    if regressions:
        print(
            f"trajectory: {len(regressions)} headline(s) regressed more than "
            f"{args.threshold * 100.0:.0f}% vs the previous main run:",
            file=sys.stderr,
        )
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("trajectory: all shared headlines within tolerance.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
