"""Figure 3e: Webbase graph — per-iteration time vs rank k at 600 cores.

This is the panel the paper singles out as NLS-bound: the local BPP solves
dominate and scale super-linearly with k, so the stacked bars are not linear
in k.  The modeled NLS term reproduces that behaviour.
"""

from benchmarks.figure_harness import run_comparison_figure


def test_fig3e_webbase_comparison(benchmark, write_artifact):
    target, text = run_comparison_figure("3e", "Webbase", write_artifact)
    assert "Webbase" in text
    breakdown = benchmark.pedantic(target, rounds=1, iterations=1)
    assert breakdown.total > 0
