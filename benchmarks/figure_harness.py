"""Common driver used by the per-figure benchmark files.

Each of the paper's eight Figure-3 panels is one call to
:func:`run_comparison_figure` or :func:`run_scaling_figure` with the panel's
dataset; each call

1. regenerates the panel's series with the analytic model at paper scale
   (600 cores / the paper's core counts) and writes it to
   ``benchmarks/results/``,
2. runs the *measured* analogue — the same three algorithms, on the
   scaled-down dataset, on the SPMD thread backend — and writes that series
   next to it, and
3. returns a pytest-benchmark callable that re-runs the most interesting
   measured configuration so the harness records a real timing distribution.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence, Tuple

from repro.core.variants import available_variants
from repro.perf.experiments import (
    PAPER_VARIANTS,
    ExperimentResult,
    comparison_vs_k,
    measured_breakdown,
    strong_scaling,
)
from repro.perf.report import render_breakdown_table, to_csv
from repro.data.registry import measured_scale

# The measured-mode runs go through repro.fit's variant registry; fail loudly
# at import time if the benchmarked variants were ever unregistered.
_missing = [v for v in PAPER_VARIANTS if v not in available_variants()]
if _missing:  # pragma: no cover - registry regression guard
    raise RuntimeError(f"benchmarked variants missing from the registry: {_missing}")


def _resolve_backend(backend: Optional[str]) -> str:
    """Measured-mode SPMD backend: explicit argument, else $REPRO_BENCH_BACKEND.

    The environment hook lets CI smoke-run the figures on the deterministic
    lockstep backend without touching the per-figure benchmark files.
    """
    return backend or os.environ.get("REPRO_BENCH_BACKEND", "thread")


def _headline_speedups(result: ExperimentResult) -> str:
    lines = ["", "Naive / HPC-NMF-2D per-iteration speedups:"]
    speedups = result.speedup("naive", "hpc2d")
    for (k, p), ratio in sorted(speedups.items()):
        lines.append(f"  k={k:>3}  p={p:>4}  speedup={ratio:5.2f}x")
    return "\n".join(lines)


def run_comparison_figure(
    figure: str,
    dataset: str,
    write_artifact: Callable[[str, str], object],
    measured_ks: Sequence[int] = (2, 4, 8),
    measured_ranks: int = 4,
    backend: Optional[str] = None,
) -> Tuple[Callable[[], object], str]:
    """Regenerate one 'comparison vs k' panel (Figure 3 a/c/e/g).

    Returns ``(benchmark_callable, summary_text)``.
    """
    backend = _resolve_backend(backend)
    modeled = comparison_vs_k(dataset, mode="modeled")
    measured = comparison_vs_k(
        dataset,
        mode="measured",
        ks=list(measured_ks),
        cores=measured_ranks,
        measured_iterations=2,
        backend=backend,
    )
    text = "\n\n".join(
        [
            f"Figure {figure}: {dataset} comparison (per-iteration seconds)",
            "== modeled at paper scale (600 cores) ==",
            render_breakdown_table(modeled, x_axis="k"),
            _headline_speedups(modeled),
            "== measured on the SPMD backend (scaled-down dataset) ==",
            render_breakdown_table(measured, x_axis="k"),
            _headline_speedups(measured),
        ]
    )
    write_artifact(f"fig{figure}_{dataset.lower()}_comparison.txt", text)
    write_artifact(f"fig{figure}_{dataset.lower()}_comparison_modeled.csv", to_csv(modeled))
    write_artifact(f"fig{figure}_{dataset.lower()}_comparison_measured.csv", to_csv(measured))

    spec = measured_scale(dataset)

    def benchmark_target():
        return measured_breakdown(
            spec, "hpc2d", k=max(measured_ks), n_ranks=measured_ranks,
            iterations=1, backend=backend,
        )

    return benchmark_target, text


def run_scaling_figure(
    figure: str,
    dataset: str,
    write_artifact: Callable[[str, str], object],
    measured_rank_counts: Sequence[int] = (1, 2, 4),
    measured_k: int = 8,
    backend: Optional[str] = None,
) -> Tuple[Callable[[], object], str]:
    """Regenerate one 'strong scaling' panel (Figure 3 b/d/f/h)."""
    backend = _resolve_backend(backend)
    modeled = strong_scaling(dataset, mode="modeled", k=50)
    measured = strong_scaling(
        dataset,
        mode="measured",
        k=measured_k,
        core_counts=list(measured_rank_counts),
        measured_iterations=2,
        backend=backend,
    )
    text = "\n\n".join(
        [
            f"Figure {figure}: {dataset} strong scaling (per-iteration seconds, k=50 modeled)",
            "== modeled at paper scale ==",
            render_breakdown_table(modeled, x_axis="p"),
            "== measured on the SPMD backend (scaled-down dataset) ==",
            render_breakdown_table(measured, x_axis="p"),
        ]
    )
    write_artifact(f"fig{figure}_{dataset.lower()}_scaling.txt", text)
    write_artifact(f"fig{figure}_{dataset.lower()}_scaling_modeled.csv", to_csv(modeled))
    write_artifact(f"fig{figure}_{dataset.lower()}_scaling_measured.csv", to_csv(measured))

    spec = measured_scale(dataset)

    def benchmark_target():
        return measured_breakdown(
            spec,
            "hpc2d",
            k=min(measured_k, 8),
            n_ranks=max(measured_rank_counts),
            iterations=1,
            backend=backend,
        )

    return benchmark_target, text
