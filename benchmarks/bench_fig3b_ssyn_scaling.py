"""Figure 3b: sparse synthetic (SSYN) — strong scaling at k = 50.

The paper reports a 23x speedup for HPC-NMF-2D going from 24 to 600 cores on
this dataset; the modeled series reproduces the downward trend and the
measured series shows the same behaviour at laptop scale.
"""

from benchmarks.figure_harness import run_scaling_figure


def test_fig3b_ssyn_scaling(benchmark, write_artifact):
    target, text = run_scaling_figure("3b", "SSYN", write_artifact)
    assert "strong scaling" in text
    breakdown = benchmark.pedantic(target, rounds=1, iterations=1)
    assert breakdown.total > 0
