"""Ablation: local NLS solver (BPP vs MU vs HALS vs projected gradient).

§7 of the paper argues BPP costs more per iteration but needs fewer
iterations.  This ablation fixes a wall-clock-comparable setting (same data,
same seed, same outer iteration count) and reports both the per-iteration cost
and the relative error reached, so the per-iteration-cost / convergence-rate
trade-off the paper describes is visible.
"""

from repro.core.api import fit
from repro.data.lowrank import planted_lowrank


SOLVERS = ["bpp", "mu", "hals", "pgrad", "admm"]


def test_solver_ablation(benchmark, write_artifact):
    A = planted_lowrank(240, 180, 8, seed=4, noise_std=0.02)
    iters = 10
    rows = [
        "Local NLS solver ablation (planted rank-8, 240x180, p=4, 10 outer iterations)",
        f"{'solver':>8}  {'sec/iter':>10}  {'rel.err @10':>12}  {'NLS share':>10}",
    ]
    errors = {}
    for solver in SOLVERS:
        res = fit(
            A, 8, n_ranks=4, variant="hpc2d", solver=solver, max_iters=iters, seed=6
        )
        errors[solver] = res.relative_error
        nls_share = res.breakdown.get("NLS") / res.breakdown.total
        rows.append(
            f"{solver:>8}  {res.seconds_per_iteration:>10.4f}  {res.relative_error:>12.4f}"
            f"  {nls_share:>10.2%}"
        )
    text = "\n".join(rows)
    write_artifact("ablation_solver.txt", text)

    # BPP (exact subproblem solves) must reach at least as low an error in the
    # same number of outer iterations as the inexact one-sweep solvers.
    assert errors["bpp"] <= min(errors["mu"], errors["hals"]) + 1e-6

    def run_bpp():
        return fit(
            A, 8, n_ranks=4, variant="hpc2d", solver="bpp", max_iters=2,
            compute_error=False, seed=6,
        )

    result = benchmark.pedantic(run_bpp, rounds=1, iterations=1)
    assert result.iterations == 2
