"""Table 2: asymptotic per-iteration costs of Naive vs HPC-NMF vs the lower bound.

Evaluates the closed-form flop/word/message/memory expressions for the
paper's dense-synthetic dimensions across the paper's core counts, writes the
table, and checks the two claims Table 2 encodes: HPC-NMF's bandwidth matches
the lower bound to within a constant, and improves on Naive's ``(m+n)k``.

The pytest-benchmark measurement attached to this file times the *actual*
communication of one HPC-NMF iteration at laptop scale (the words recorded by
the cost ledger are asserted against the same closed forms in the unit tests).
"""

import numpy as np

from repro.core.api import fit
from repro.data.registry import paper_scale
from repro.data.synthetic import dense_synthetic
from repro.perf.model import table2_costs


def _render_table2() -> str:
    spec = paper_scale("DSYN")
    k = 50
    lines = [
        "Table 2 analogue: leading-order per-iteration costs (dense case, DSYN dims, k=50)",
        f"{'p':>5}  {'algorithm':>12}  {'flops':>14}  {'words':>12}  {'messages':>9}  {'memory':>14}",
    ]
    for p in (24, 96, 216, 384, 600):
        costs = table2_costs(spec.m, spec.n, k, p)
        for name, row in costs.items():
            lines.append(
                f"{p:>5}  {name:>12}  {row['flops']:>14.4g}  {row['words']:>12.4g}"
                f"  {row['messages']:>9.2f}  {row['memory']:>14.4g}"
            )
    return "\n".join(lines)


def test_table2_costs(benchmark, write_artifact):
    text = _render_table2()
    write_artifact("table2_costs.txt", text)

    # The two claims of Table 2, checked across the paper's core counts.
    spec = paper_scale("DSYN")
    for p in (24, 96, 216, 384, 600):
        costs = table2_costs(spec.m, spec.n, 50, p)
        assert costs["hpc"]["words"] <= costs["naive"]["words"]
        assert costs["lower_bound"]["words"] <= costs["hpc"]["words"] * (1 + 1e-9)

    # Real measurement: one HPC-NMF iteration on a small dense matrix; the
    # communication it performs is the quantity Table 2 bounds.
    A = dense_synthetic(256, 192, seed=0)

    def one_iteration():
        return fit(
            A, 8, n_ranks=4, variant="hpc2d", max_iters=1, compute_error=False, seed=1
        )

    result = benchmark.pedantic(one_iteration, rounds=1, iterations=1)
    assert sum(e["words"] for e in result.ledger_summary.values()) > 0
