"""Figure 3d: dense synthetic (DSYN) — strong scaling at k = 50 (216/384/600 cores).

The dense datasets do not fit on fewer than 9 Edison nodes, so (as in the
paper) the modeled sweep starts at 216 cores.
"""

from benchmarks.figure_harness import run_scaling_figure


def test_fig3d_dsyn_scaling(benchmark, write_artifact):
    target, text = run_scaling_figure("3d", "DSYN", write_artifact)
    assert "DSYN" in text
    breakdown = benchmark.pedantic(target, rounds=1, iterations=1)
    assert breakdown.total > 0
