"""Ablation: nonzero load balance of the sparse 2D distribution (§7 future work).

Measures the nonzero imbalance of the web-graph matrix across processor grids
with and without the random-permutation mitigation, and times the HPC-NMF
factorization in both layouts, quantifying the effect the paper's future-work
section anticipates.
"""

from repro.core.api import fit
from repro.data.webgraph import web_graph_matrix
from repro.dist.load_balance import imbalance_factor, random_permutation_balance


def test_load_balance_ablation(benchmark, write_artifact):
    A = web_graph_matrix(4_000, 40_000, seed=9)
    permuted, _, _ = random_permutation_balance(A, seed=1)

    rows = ["Sparse load-balance ablation (web graph, 4000 nodes, ~40k edges)",
            f"{'layout':>12}  {'grid':>6}  {'imbalance':>10}"]
    reports = {}
    for label, matrix in (("original", A), ("permuted", permuted)):
        for grid in ((2, 2), (4, 4), (8, 8)):
            report = imbalance_factor(matrix, *grid)
            reports[(label, grid)] = report.imbalance
            rows.append(f"{label:>12}  {grid[0]}x{grid[1]:<4}  {report.imbalance:>10.2f}")

    rows.append("")
    rows.append("Per-iteration wall clock (k=8, 4 ranks, HPC-NMF-2D):")
    timings = {}
    for label, matrix in (("original", A), ("permuted", permuted)):
        res = fit(matrix, 8, n_ranks=4, variant="hpc2d", max_iters=2,
                           compute_error=False, seed=2)
        timings[label] = res.seconds_per_iteration
        rows.append(f"  {label:>10}: {res.seconds_per_iteration:.4f} s/iter")

    write_artifact("ablation_load_balance.txt", "\n".join(rows))

    # The permutation must not make the balance worse on any grid.
    for grid in ((2, 2), (4, 4), (8, 8)):
        assert reports[("permuted", grid)] <= reports[("original", grid)] * 1.25

    def run_permuted():
        return fit(permuted, 8, n_ranks=4, variant="hpc2d", max_iters=1,
                            compute_error=False, seed=2)

    result = benchmark.pedantic(run_permuted, rounds=1, iterations=1)
    assert result.iterations == 1
