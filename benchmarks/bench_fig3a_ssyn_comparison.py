"""Figure 3a: sparse synthetic (SSYN) — per-iteration time vs rank k at 600 cores.

Reproduces the panel in which the paper reports its largest Naive-to-HPC-2D
speedup (4.4x at k=10, a communication-bound configuration).
"""

from benchmarks.figure_harness import run_comparison_figure


def test_fig3a_ssyn_comparison(benchmark, write_artifact):
    target, text = run_comparison_figure("3a", "SSYN", write_artifact)
    assert "HPC-NMF-2D" in text
    breakdown = benchmark.pedantic(target, rounds=1, iterations=1)
    assert breakdown.total > 0
