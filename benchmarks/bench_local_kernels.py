"""Micro-benchmarks of the local computation kernels (MM and Gram tasks).

These are the per-rank building blocks of lines 3, 6, 9 and 12 of
Algorithm 3; the dense/sparse pair shows the ``2·m·n·k`` vs ``2·nnz·k`` flop
difference the cost analysis relies on.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.local_ops import gram, matmul_a_ht, matmul_wt_a


@pytest.fixture(scope="module")
def dense_block():
    return np.random.default_rng(0).random((2000, 1500))


@pytest.fixture(scope="module")
def sparse_block():
    return sp.random(2000, 1500, density=0.01, random_state=0, format="csr")


@pytest.fixture(scope="module")
def factor_k32():
    return np.random.default_rng(1).random((1500, 32))


def test_mm_dense_a_ht(benchmark, dense_block, factor_k32):
    out = benchmark(matmul_a_ht, dense_block, factor_k32)
    assert out.shape == (2000, 32)


def test_mm_sparse_a_ht(benchmark, sparse_block, factor_k32):
    out = benchmark(matmul_a_ht, sparse_block, factor_k32)
    assert out.shape == (2000, 32)


def test_mm_dense_wt_a(benchmark, dense_block):
    W = np.random.default_rng(2).random((2000, 32))
    out = benchmark(matmul_wt_a, W, dense_block)
    assert out.shape == (32, 1500)


def test_mm_sparse_wt_a(benchmark, sparse_block):
    W = np.random.default_rng(2).random((2000, 32))
    out = benchmark(matmul_wt_a, W, sparse_block)
    assert out.shape == (32, 1500)


def test_gram_of_h_block(benchmark):
    H = np.random.default_rng(3).random((32, 20000))
    out = benchmark(gram, H, False)
    assert out.shape == (32, 32)


def test_gram_of_w_block(benchmark):
    W = np.random.default_rng(4).random((20000, 32))
    out = benchmark(gram, W, True)
    assert out.shape == (32, 32)
