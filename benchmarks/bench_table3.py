"""Table 3: per-iteration running times for k = 50 across datasets/algorithms/cores.

Writes the modeled paper-scale grid (the direct analogue of the paper's
Table 3) and a measured laptop-scale grid, and benchmarks one representative
cell of the measured grid.
"""

from repro.perf.experiments import table3_grid
from repro.perf.report import render_table3
from repro.data.registry import measured_scale
from repro.perf.experiments import measured_breakdown


def test_table3_per_iteration_times(benchmark, write_artifact):
    modeled = table3_grid(mode="modeled", k=50)
    text_modeled = render_table3(modeled, k=50)

    measured = table3_grid(
        mode="measured", k=8, core_counts=[1, 2, 4], measured_iterations=2
    )
    text_measured = render_table3(measured, k=8)

    write_artifact(
        "table3_per_iteration_times.txt",
        "== modeled at paper scale ==\n"
        + text_modeled
        + "\n\n== measured on the SPMD backend (scaled-down datasets, k=8) ==\n"
        + text_measured,
    )

    # Headline orderings of the paper's Table 3 at 600 cores.
    for dataset in ("DSYN", "SSYN", "Video", "Webbase"):
        assert modeled["hpc2d"][dataset][600] < modeled["naive"][dataset][600]

    # Benchmark one representative measured cell (SSYN, HPC-2D, 4 ranks).
    spec = measured_scale("SSYN")

    def cell():
        return measured_breakdown(spec, "hpc2d", k=8, n_ranks=4, iterations=1)

    breakdown = benchmark.pedantic(cell, rounds=1, iterations=1)
    assert breakdown.total > 0
