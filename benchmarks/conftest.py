"""Shared fixtures for the benchmark harness.

Every benchmark writes its reproduction artifact (the figure/table series) to
``benchmarks/results/`` so the numbers are inspectable after a
``pytest benchmarks/ --benchmark-only`` run, and additionally times a
representative computation with pytest-benchmark.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_artifact(results_dir):
    """Return a writer ``write(name, text)`` that stores a result artifact."""

    def write(name: str, text: str) -> Path:
        path = results_dir / name
        path.write_text(text)
        return path

    return write
