"""Ablation: processor grid shape (the §5 grid-selection rule).

Runs HPC-NMF with every factorization of p on a squarish measured-scale
matrix and reports the communication volume and wall-clock per grid,
confirming that the paper's rule (m/pr ~= n/pc) minimizes the words moved.
"""

import numpy as np

from repro.comm.grid import choose_grid, factor_pairs
from repro.core.api import fit
from repro.data.synthetic import dense_synthetic


def _run_grid(A, k, p, grid):
    res = fit(
        A, k, n_ranks=p, variant="hpc2d", grid=grid, max_iters=2,
        compute_error=False, seed=3,
    )
    words = sum(e["words"] for e in res.ledger_summary.values())
    return res, words


def test_grid_shape_ablation(benchmark, write_artifact):
    m, n, k, p = 288, 192, 8, 8
    A = dense_synthetic(m, n, seed=2)

    rows = ["Grid-shape ablation (dense 288x192, k=8, p=8)",
            f"{'grid':>8}  {'words/iter':>12}  {'seconds/iter':>12}"]
    volumes = {}
    for grid in factor_pairs(p):
        res, words = _run_grid(A, k, p, grid)
        per_iter_words = words / res.iterations
        volumes[grid] = per_iter_words
        rows.append(
            f"{grid[0]}x{grid[1]:<6}  {per_iter_words:>12.1f}  {res.seconds_per_iteration:>12.4f}"
        )
    chosen = choose_grid(m, n, p)
    rows.append(f"rule of §5 selects: {chosen[0]}x{chosen[1]}")
    text = "\n".join(rows)
    write_artifact("ablation_grid_shape.txt", text)

    # The paper's rule must pick (one of) the volume-minimising grids.
    best = min(volumes.values())
    assert volumes[chosen] <= best * 1.01

    def run_chosen():
        return _run_grid(A, k, p, chosen)[0]

    result = benchmark.pedantic(run_chosen, rounds=1, iterations=1)
    assert result.grid_shape == chosen
