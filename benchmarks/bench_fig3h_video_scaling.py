"""Figure 3h: Video matrix — strong scaling at k = 50 (216/384/600 cores)."""

from benchmarks.figure_harness import run_scaling_figure


def test_fig3h_video_scaling(benchmark, write_artifact):
    target, text = run_scaling_figure("3h", "Video", write_artifact, measured_rank_counts=(1, 2, 4))
    assert "Video" in text
    breakdown = benchmark.pedantic(target, rounds=1, iterations=1)
    assert breakdown.total > 0
