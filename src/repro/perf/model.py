"""Closed-form per-iteration cost model (paper §4.3, §5 and Table 2).

For each algorithm variant the model produces a per-task
:class:`~repro.comm.profiler.TimeBreakdown` — the same six categories as the
paper's Figure 3 — from the dataset dimensions, the rank ``k``, the process
count ``p`` (and grid ``pr × pc``), and a
:class:`~repro.perf.machine.MachineSpec`.

Computation terms
-----------------
* **MM** — multiplying the local data block by a factor block, twice per
  iteration: ``4 m n k / p`` flops dense, ``4 nnz k / p`` sparse.
* **Gram** — local Gram contributions: HPC-NMF computes ``(m + n) k² / p``
  flops; Naive computes the *full* ``(m + n) k²`` redundantly on every rank
  (drawback (2) of §4.3).
* **NLS** — ``C_BPP((m+n)/p, k)``, modeled as ``bpp_iterations`` pivot rounds
  of one k×k Cholesky plus back-substitution over the local columns.

Communication terms (§2.3 collective costs)
-------------------------------------------
* Naive: two all-gathers of the whole factors, ``alpha·2 log p +
  beta·(p-1)/p·(m+n)k`` total.
* HPC-NMF: two all-reduces of ``k²`` words, two all-gathers and two
  reduce-scatters whose word counts are ``(pr-1)nk/p + (pc-1)mk/p`` each
  (the §5 expressions); with the optimal grid this is ``O(√(mnk²/p))``, and
  with the 1D grid ``O(nk)``.
"""

from __future__ import annotations

import enum
import math
from typing import Optional, Tuple

from repro.comm.grid import choose_grid
from repro.comm.profiler import TaskCategory, TimeBreakdown
from repro.data.registry import DatasetSpec
from repro.perf.machine import MachineSpec, edison_machine


class AlgorithmVariant(str, enum.Enum):
    """The three implementations compared in the paper's evaluation."""

    NAIVE = "naive"
    HPC_1D = "hpc1d"
    HPC_2D = "hpc2d"

    @property
    def label(self) -> str:
        return {"naive": "Naive", "hpc1d": "HPC-NMF-1D", "hpc2d": "HPC-NMF-2D"}[self.value]


# ---------------------------------------------------------------------------
# flop counts
# ---------------------------------------------------------------------------

def dense_flops_per_iteration(m: int, n: int, k: int, p: int) -> float:
    """Leading-order local matmul flops per iteration, dense case (``4mnk/p``)."""
    return 4.0 * m * n * k / p


def sparse_flops_per_iteration(nnz: float, k: int, p: int) -> float:
    """Leading-order local matmul flops per iteration, sparse case (``4·nnz·k/p``)."""
    return 4.0 * nnz * k / p


def bpp_flops(k: int, columns: float, iterations: float, grouping_factor: float = 0.5) -> float:
    """Model of ``C_BPP(k, c)``: per pivot round, a k×k Cholesky for every
    column whose passive set is unique plus a triangular back-substitution for
    every column.

    ``grouping_factor`` is the fraction of columns that cannot share a
    factorization with another column (1.0 = every column pays its own
    ``k³/3``; 0.0 = perfect grouping).  The paper leaves ``C_BPP`` symbolic;
    this estimate gives the NLS bars a realistic magnitude (between quadratic
    and cubic in k per column), which is what produces the paper's observation
    that the Webbase problem is NLS-bound and that its time does not scale
    linearly with k.
    """
    per_round = grouping_factor * columns * (k**3) / 3.0 + 2.0 * columns * k**2
    return iterations * per_round


# ---------------------------------------------------------------------------
# per-variant breakdowns
# ---------------------------------------------------------------------------

def _mm_seconds(spec: DatasetSpec, machine: MachineSpec, k: int, p: int) -> float:
    if spec.is_sparse:
        return machine.sparse_mm_seconds(sparse_flops_per_iteration(spec.nnz_estimate, k, p))
    return machine.dense_mm_seconds(dense_flops_per_iteration(spec.m, spec.n, k, p))


def _nls_seconds(spec: DatasetSpec, machine: MachineSpec, k: int, p: int) -> float:
    columns = (spec.m + spec.n) / p
    return machine.nls_seconds(
        bpp_flops(k, columns, machine.bpp_iterations, machine.bpp_grouping_factor)
    )


def naive_breakdown(
    spec: DatasetSpec,
    k: int,
    p: int,
    machine: Optional[MachineSpec] = None,
) -> TimeBreakdown:
    """Per-iteration, per-task predicted seconds for Algorithm 2 (Naive)."""
    machine = machine or edison_machine()
    coll = machine.collectives()
    m, n = spec.m, spec.n

    mm = _mm_seconds(spec, machine, k, p)
    gram = machine.gram_seconds((m + n) * k**2)       # redundant: not divided by p
    nls = _nls_seconds(spec, machine, k, p)
    # Two all-gathers: W (m×k words) and H (n×k words).
    all_gather = coll.all_gather(p, m * k) + coll.all_gather(p, n * k)

    return TimeBreakdown.from_parts(
        MM=mm,
        Gram=gram,
        NLS=nls,
        AllGather=all_gather,
        ReduceScatter=0.0,
        AllReduce=0.0,
    )


def hpc_breakdown(
    spec: DatasetSpec,
    k: int,
    p: int,
    grid: Optional[Tuple[int, int]] = None,
    machine: Optional[MachineSpec] = None,
) -> TimeBreakdown:
    """Per-iteration, per-task predicted seconds for Algorithm 3 on a grid.

    ``grid=None`` applies the paper's grid-selection rule; pass ``(p, 1)`` for
    the HPC-NMF-1D variant the paper benchmarks.
    """
    machine = machine or edison_machine()
    coll = machine.collectives()
    m, n = spec.m, spec.n
    if grid is None:
        grid = choose_grid(m, n, p)
    pr, pc = grid
    if pr * pc != p:
        raise ValueError(f"grid {pr}x{pc} does not match p={p}")

    mm = _mm_seconds(spec, machine, k, p)
    gram = machine.gram_seconds((m + n) * k**2 / p)
    nls = _nls_seconds(spec, machine, k, p)

    # Lines 4 and 10: two all-reduces of the k×k Gram matrices over all p ranks.
    all_reduce = 2.0 * coll.all_reduce(p, k * k)

    # Lines 5 and 11: all-gather H_j over proc columns (pr ranks, n k / pc
    # gathered words) and W_i over proc rows (pc ranks, m k / pr words).
    all_gather = coll.all_gather(pr, n * k / pc) + coll.all_gather(pc, m * k / pr)

    # Lines 7 and 13: reduce-scatter V (m k / pr words over pc ranks) and
    # Y (n k / pc words over pr ranks).
    reduce_scatter = coll.reduce_scatter(pc, m * k / pr) + coll.reduce_scatter(pr, n * k / pc)

    return TimeBreakdown.from_parts(
        MM=mm,
        Gram=gram,
        NLS=nls,
        AllGather=all_gather,
        ReduceScatter=reduce_scatter,
        AllReduce=all_reduce,
    )


def predicted_breakdown(
    variant: AlgorithmVariant,
    spec: DatasetSpec,
    k: int,
    p: int,
    machine: Optional[MachineSpec] = None,
) -> TimeBreakdown:
    """Dispatch to the right closed form for an algorithm variant."""
    variant = AlgorithmVariant(variant)
    if variant == AlgorithmVariant.NAIVE:
        return naive_breakdown(spec, k, p, machine=machine)
    if variant == AlgorithmVariant.HPC_1D:
        return hpc_breakdown(spec, k, p, grid=(p, 1), machine=machine)
    return hpc_breakdown(spec, k, p, grid=None, machine=machine)


# ---------------------------------------------------------------------------
# Table 2: asymptotic costs
# ---------------------------------------------------------------------------

def table2_costs(m: int, n: int, k: int, p: int) -> dict:
    """Evaluate the asymptotic expressions of Table 2 (dense case), in
    flops/words/messages/words-of-memory per iteration.

    Only the leading terms that appear in the table are evaluated (constants
    dropped, ``C_BPP`` omitted), so the entries are directly comparable with
    the paper's table and with the communication lower bound.
    """
    tall = m / p > n
    hpc_words = n * k if tall else math.sqrt(m * n * k * k / p)
    lower_bound_words = min(math.sqrt(m * n * k * k / p), n * k)
    return {
        "naive": {
            "flops": m * n * k / p + (m + n) * k**2,
            "words": (m + n) * k,
            "messages": math.log2(p) if p > 1 else 0.0,
            "memory": m * n / p + (m + n) * k,
        },
        "hpc": {
            "flops": m * n * k / p,
            "words": hpc_words,
            "messages": math.log2(p) if p > 1 else 0.0,
            "memory": m * n / p + (m * k / p if tall else math.sqrt(m * n * k * k / p)) + (n * k if tall else 0.0),
        },
        "lower_bound": {
            "flops": m * n * k / p,
            "words": lower_bound_words,
            "messages": math.log2(p) if p > 1 else 0.0,
            "memory": m * n / p + (m + n) * k / p,
        },
    }
