"""Closed-form per-iteration cost model (paper §4.3, §5 and Table 2).

For each algorithm variant the model produces a per-task
:class:`~repro.comm.profiler.TimeBreakdown` — the same six categories as the
paper's Figure 3 — from a :class:`~repro.plan.problem.ProblemSpec` (any
problem dimensions, not just the paper datasets; a
:class:`~repro.data.registry.DatasetSpec` or an in-memory matrix is coerced
automatically), the process count ``p`` (and grid ``pr × pc``), and a
:class:`~repro.perf.machine.MachineSpec`.

This module holds the closed forms only.  *Which* closed form prices which
variant lives on the variant registry — each
:class:`~repro.core.variants.Variant` descriptor exposes
``predicted_breakdown(problem, p, grid, machine)`` — and the planning layer
(:mod:`repro.plan`) consumes that interface; :func:`predicted_breakdown`
here is the registry-dispatching convenience the experiment harness calls.

Computation terms
-----------------
* **MM** — multiplying the local data block by a factor block, twice per
  iteration: ``4 m n k / p`` flops dense, ``4 nnz k / p`` sparse (derived
  from :func:`repro.core.local_ops.dense_matmul_flops` /
  :func:`~repro.core.local_ops.sparse_matmul_flops`, the single source of
  truth for the §4.3 matmul counts).
* **Gram** — local Gram contributions: HPC-NMF computes ``(m + n) k² / p``
  flops; Naive computes the *full* ``(m + n) k²`` redundantly on every rank
  (drawback (2) of §4.3).
* **NLS** — ``C_BPP((m+n)/p, k)``, modeled as ``bpp_iterations`` pivot rounds
  of one k×k Cholesky plus back-substitution over the local columns.

Communication terms (§2.3 collective costs)
-------------------------------------------
* Naive: two all-gathers of the whole factors, ``alpha·2 log p +
  beta·(p-1)/p·(m+n)k`` total.
* HPC-NMF: two all-reduces of ``k²`` words, two all-gathers and two
  reduce-scatters whose word counts are ``(pr-1)nk/p + (pc-1)mk/p`` each
  (the §5 expressions); with the optimal grid this is ``O(√(mnk²/p))``, and
  with the 1D grid ``O(nk)``.
"""

from __future__ import annotations

import enum
import math
import warnings
from typing import Optional, Tuple

from repro.comm.grid import choose_grid
from repro.comm.profiler import TaskCategory, TimeBreakdown
from repro.core.local_ops import dense_matmul_flops, sparse_matmul_flops
from repro.nls.bpp import bpp_flops_estimate
from repro.perf.machine import MachineSpec, edison_machine
from repro.plan.problem import ProblemSpec, as_problem

__all__ = [
    "bpp_flops",
    "dense_flops_per_iteration",
    "sparse_flops_per_iteration",
    "naive_breakdown",
    "hpc_breakdown",
    "naive_words_per_iteration",
    "hpc_words_per_iteration",
    "pipelined_breakdown",
    "predicted_breakdown",
    "table2_costs",
    "OVERLAPPABLE_FRACTIONS",
]


# ---------------------------------------------------------------------------
# flop counts
# ---------------------------------------------------------------------------

def dense_flops_per_iteration(m: int, n: int, k: int, p: int) -> float:
    """Leading-order local matmul flops per iteration, dense case (``4mnk/p``).

    Two local multiplies per iteration (``A_ij Hᵀ`` and ``Wᵀ A_ij``), each
    counted by :func:`repro.core.local_ops.dense_matmul_flops`.
    """
    return 2.0 * dense_matmul_flops(m, n, k) / p


def sparse_flops_per_iteration(nnz: float, k: int, p: int) -> float:
    """Leading-order local matmul flops per iteration, sparse case (``4·nnz·k/p``)."""
    return 2.0 * sparse_matmul_flops(nnz, k) / p


def bpp_flops(k: int, columns: float, iterations: float, grouping_factor: float = 0.5) -> float:
    """Model of ``C_BPP(k, c)``: per pivot round, a k×k Cholesky for every
    column whose passive set is unique plus a triangular back-substitution for
    every column.

    ``grouping_factor`` is the fraction of columns that cannot share a
    factorization with another column (1.0 = every column pays its own
    ``k³/3``; 0.0 = perfect grouping).  The paper leaves ``C_BPP`` symbolic;
    this estimate gives the NLS bars a realistic magnitude (between quadratic
    and cubic in k per column), which is what produces the paper's observation
    that the Webbase problem is NLS-bound and that its time does not scale
    linearly with k.

    The formula itself lives next to the kernels that realise it
    (:func:`repro.nls.bpp.bpp_flops_estimate`); this is the model-side alias.
    """
    return bpp_flops_estimate(
        k, columns, iterations=iterations, grouping_factor=grouping_factor
    )


# ---------------------------------------------------------------------------
# per-variant breakdowns
# ---------------------------------------------------------------------------

def _mm_seconds(problem: ProblemSpec, machine: MachineSpec, k: int, p: int) -> float:
    if problem.is_sparse:
        return machine.sparse_mm_seconds(sparse_flops_per_iteration(problem.nnz_estimate, k, p))
    return machine.dense_mm_seconds(dense_flops_per_iteration(problem.m, problem.n, k, p))


def _nls_seconds(problem: ProblemSpec, machine: MachineSpec, k: int, p: int) -> float:
    columns = (problem.m + problem.n) / p
    return machine.nls_seconds(
        bpp_flops(k, columns, machine.bpp_iterations, machine.bpp_grouping_factor)
    )


def naive_breakdown(
    spec,
    k: int,
    p: int,
    machine: Optional[MachineSpec] = None,
) -> TimeBreakdown:
    """Per-iteration, per-task predicted seconds for Algorithm 2 (Naive).

    ``spec`` may be a :class:`~repro.plan.problem.ProblemSpec`, a registered
    :class:`~repro.data.registry.DatasetSpec`, or an in-memory matrix.
    """
    problem = as_problem(spec, k)
    machine = machine or edison_machine()
    coll = machine.collectives()
    m, n = problem.m, problem.n

    mm = _mm_seconds(problem, machine, k, p)
    gram = machine.gram_seconds((m + n) * k**2)       # redundant: not divided by p
    nls = _nls_seconds(problem, machine, k, p)
    # Two all-gathers: W (m×k words) and H (n×k words).
    all_gather = coll.all_gather(p, m * k) + coll.all_gather(p, n * k)

    return TimeBreakdown.from_parts(
        MM=mm,
        Gram=gram,
        NLS=nls,
        AllGather=all_gather,
        ReduceScatter=0.0,
        AllReduce=0.0,
    )


def hpc_breakdown(
    spec,
    k: int,
    p: int,
    grid: Optional[Tuple[int, int]] = None,
    machine: Optional[MachineSpec] = None,
) -> TimeBreakdown:
    """Per-iteration, per-task predicted seconds for Algorithm 3 on a grid.

    ``grid=None`` applies the paper's grid-selection rule; pass ``(p, 1)`` for
    the HPC-NMF-1D variant the paper benchmarks.  ``spec`` is coerced like in
    :func:`naive_breakdown`.
    """
    problem = as_problem(spec, k)
    machine = machine or edison_machine()
    coll = machine.collectives()
    m, n = problem.m, problem.n
    if grid is None:
        grid = choose_grid(m, n, p)
    pr, pc = grid
    if pr * pc != p:
        raise ValueError(f"grid {pr}x{pc} does not match p={p}")

    mm = _mm_seconds(problem, machine, k, p)
    gram = machine.gram_seconds((m + n) * k**2 / p)
    nls = _nls_seconds(problem, machine, k, p)

    # Lines 4 and 10: two all-reduces of the k×k Gram matrices over all p ranks.
    all_reduce = 2.0 * coll.all_reduce(p, k * k)

    # Lines 5 and 11: all-gather H_j over proc columns (pr ranks, n k / pc
    # gathered words) and W_i over proc rows (pc ranks, m k / pr words).
    all_gather = coll.all_gather(pr, n * k / pc) + coll.all_gather(pc, m * k / pr)

    # Lines 7 and 13: reduce-scatter V (m k / pr words over pc ranks) and
    # Y (n k / pc words over pr ranks).
    reduce_scatter = coll.reduce_scatter(pc, m * k / pr) + coll.reduce_scatter(pr, n * k / pc)

    return TimeBreakdown.from_parts(
        MM=mm,
        Gram=gram,
        NLS=nls,
        AllGather=all_gather,
        ReduceScatter=reduce_scatter,
        AllReduce=all_reduce,
    )


# ---------------------------------------------------------------------------
# pipelined-schedule pricing (nonblocking collectives)
# ---------------------------------------------------------------------------

#: Fraction of each collective category the pipelined schedule *can* overlap
#: with local compute, per variant.  Mirrors where the loops actually issue
#: nonblocking operations: the HPC loops pipeline both factor all-gathers
#: (line 5 overlaps the error path + lines 3-4, line 11 overlaps lines 9-10),
#: *panel-stream* both reduce-scatters (the line-6/line-12 MMs are tiled
#: along the scatter boundaries and each panel's ireduce_scatter rides behind
#: the next panel's GEMM — see :mod:`repro.comm.panels`), and issue both the
#: line-4 Gram all-reduce and the error path's H-Gram all-reduce nonblocking
#: (the latter stays in flight across the iteration boundary as next
#: iteration's gram_h; line 10's all-reduce stays blocking because line 11
#: consumes W_i immediately after, keeping the all-reduce budget at roughly
#: half).  Naive pipelines the H gather (half its all-gather budget — the W
#: gather's result is consumed immediately) and its error-path all-reduce
#: (its whole all-reduce budget; it has no reduce-scatters).
OVERLAPPABLE_FRACTIONS = {
    "naive": {
        TaskCategory.ALL_GATHER.value: 0.5,
        TaskCategory.ALL_REDUCE.value: 1.0,
    },
    "hpc1d": {
        TaskCategory.ALL_GATHER.value: 1.0,
        TaskCategory.REDUCE_SCATTER.value: 1.0,
        TaskCategory.ALL_REDUCE.value: 0.5,
    },
    "hpc2d": {
        TaskCategory.ALL_GATHER.value: 1.0,
        TaskCategory.REDUCE_SCATTER.value: 1.0,
        TaskCategory.ALL_REDUCE.value: 0.5,
    },
}


def pipelined_breakdown(
    breakdown: TimeBreakdown,
    variant: str,
    backend: Optional[str],
    machine: Optional[MachineSpec] = None,
) -> TimeBreakdown:
    """Re-price a blocking-schedule prediction for the pipelined schedule.

    The overlappable portion of each collective category (per
    :data:`OVERLAPPABLE_FRACTIONS`), scaled by the backend's
    :meth:`~repro.perf.machine.MachineSpec.overlap_fraction`, moves out of
    the exposed collective categories into ``HiddenComm`` — capped by the
    breakdown's computation time, since communication can only hide behind
    compute that actually exists.  Total exposed time therefore shrinks by
    exactly the hidden amount; variants or backends with nothing to overlap
    return the original breakdown unchanged.
    """
    machine = machine or edison_machine()
    name = str(getattr(variant, "value", variant)).lower()
    fractions = OVERLAPPABLE_FRACTIONS.get(name, {})
    efficiency = machine.overlap_fraction(backend)
    overlappable = {
        cat: frac * breakdown.get(cat) for cat, frac in fractions.items()
    }
    candidate = efficiency * sum(overlappable.values())
    hidden = min(candidate, breakdown.computation)
    if hidden <= 0.0:
        return breakdown
    # Distribute the hidden time over the categories it came from.
    scale = hidden / sum(overlappable.values())
    seconds = dict(breakdown.seconds)
    for cat, amount in overlappable.items():
        seconds[cat] = seconds.get(cat, 0.0) - scale * amount
    seconds[TaskCategory.HIDDEN_COMM.value] = (
        seconds.get(TaskCategory.HIDDEN_COMM.value, 0.0) + hidden
    )
    return TimeBreakdown(seconds)


# ---------------------------------------------------------------------------
# per-variant communication volume (the words Table 2 bounds)
# ---------------------------------------------------------------------------

def naive_words_per_iteration(spec, k: int, p: int) -> float:
    """Critical-path words one rank moves per Naive iteration.

    Two all-gathers of the full factors: ``(p-1)/p · (m+n)k`` — the ledger
    convention of :class:`~repro.comm.cost.CostLedger`.
    """
    problem = as_problem(spec, k)
    if p <= 1:
        return 0.0
    return (p - 1) / p * (problem.m + problem.n) * k


def hpc_words_per_iteration(
    spec, k: int, p: int, grid: Optional[Tuple[int, int]] = None
) -> float:
    """Critical-path words one rank moves per HPC-NMF iteration on a grid.

    The §5 expression in ledger convention: the factor all-gathers and
    reduce-scatters move ``(pr-1)/pr · nk/pc + (pc-1)/pc · mk/pr`` words
    each, and the two ``k²`` all-reduces move ``2·(p-1)/p·k²`` each.
    """
    problem = as_problem(spec, k)
    if p <= 1:
        return 0.0
    if grid is None:
        grid = choose_grid(problem.m, problem.n, p)
    pr, pc = grid
    if pr * pc != p:
        raise ValueError(f"grid {pr}x{pc} does not match p={p}")
    factor_words = 0.0
    if pr > 1:
        factor_words += (pr - 1) / pr * problem.n * k / pc
    if pc > 1:
        factor_words += (pc - 1) / pc * problem.m * k / pr
    all_reduce_words = 2.0 * (p - 1) / p * k * k
    # ×2: each factor's all-gather has a mirroring reduce-scatter (and there
    # are two all-reduces), exactly as the CostLedger records them.
    return 2.0 * factor_words + 2.0 * all_reduce_words


def predicted_breakdown(
    variant,
    spec,
    k: int,
    p: int,
    machine: Optional[MachineSpec] = None,
) -> TimeBreakdown:
    """Predicted per-iteration breakdown of a registered variant.

    ``variant`` is a variant registry name (the deprecated
    ``AlgorithmVariant`` enum members still work — their values *are* the
    registry names).  Dispatch goes through the variant registry's per-variant
    cost hooks, the same unification the execution path uses: no if/elif
    dispatch table here.
    """
    from repro.core.variants import get_variant

    name = str(getattr(variant, "value", variant)).lower()
    problem = as_problem(spec, k)
    breakdown = get_variant(name).predicted_breakdown(problem, p, machine=machine)
    if breakdown is None:
        raise ValueError(
            f"variant {name!r} does not expose an analytic cost model "
            "(Variant.predicted_breakdown returned None)"
        )
    return breakdown


# ---------------------------------------------------------------------------
# Table 2: asymptotic costs
# ---------------------------------------------------------------------------

def table2_costs(m: int, n: int, k: int, p: int) -> dict:
    """Evaluate the asymptotic expressions of Table 2 (dense case), in
    flops/words/messages/words-of-memory per iteration.

    Only the leading terms that appear in the table are evaluated (constants
    dropped, ``C_BPP`` omitted), so the entries are directly comparable with
    the paper's table and with the communication lower bound.
    """
    tall = m / p > n
    hpc_words = n * k if tall else math.sqrt(m * n * k * k / p)
    lower_bound_words = min(math.sqrt(m * n * k * k / p), n * k)
    return {
        "naive": {
            "flops": m * n * k / p + (m + n) * k**2,
            "words": (m + n) * k,
            "messages": math.log2(p) if p > 1 else 0.0,
            "memory": m * n / p + (m + n) * k,
        },
        "hpc": {
            "flops": m * n * k / p,
            "words": hpc_words,
            "messages": math.log2(p) if p > 1 else 0.0,
            "memory": m * n / p + (m * k / p if tall else math.sqrt(m * n * k * k / p)) + (n * k if tall else 0.0),
        },
        "lower_bound": {
            "flops": m * n * k / p,
            "words": lower_bound_words,
            "messages": math.log2(p) if p > 1 else 0.0,
            "memory": m * n / p + (m + n) * k / p,
        },
    }


# ---------------------------------------------------------------------------
# deprecated alias (pre-registry variant taxonomy)
# ---------------------------------------------------------------------------

_algorithm_variant_enum = None


def _deprecated_algorithm_variant():
    """Build (once) the legacy enum; its values are the registry names."""
    global _algorithm_variant_enum
    if _algorithm_variant_enum is None:

        class AlgorithmVariant(str, enum.Enum):
            """Deprecated: the three paper variants, now variant registry names."""

            NAIVE = "naive"
            HPC_1D = "hpc1d"
            HPC_2D = "hpc2d"

            @property
            def label(self) -> str:
                from repro.core.variants import get_variant

                return get_variant(self.value).label

        _algorithm_variant_enum = AlgorithmVariant
    return _algorithm_variant_enum


def __getattr__(name: str):
    """Deprecation shim: ``AlgorithmVariant`` lives on as a warned alias.

    The enum duplicated the variant registry's taxonomy; new code passes
    registry names (``"naive"``, ``"hpc1d"``, ``"hpc2d"``) directly.  This
    mirrors the ``nmf``/``parallel_nmf`` shim convention.
    """
    if name == "AlgorithmVariant":
        warnings.warn(
            "repro.perf.model.AlgorithmVariant is deprecated; pass variant "
            "registry names ('naive', 'hpc1d', 'hpc2d') instead — see "
            "repro.core.variants.available_variants()",
            DeprecationWarning,
            stacklevel=2,
        )
        return _deprecated_algorithm_variant()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
