"""Experiment drivers regenerating the paper's figures and tables.

Each of the paper's plots is a grid of (algorithm variant × x-axis value)
points, where every point is a per-iteration time broken into the six task
categories:

* Figure 3 a/c/e/g — *comparison*: fix p = 600 cores, sweep k ∈ {10..50};
* Figure 3 b/d/f/h — *strong scaling*: fix k = 50, sweep the core count;
* Table 3 — the total per-iteration seconds of every (dataset, algorithm,
  cores) combination at k = 50.

:func:`comparison_vs_k` and :func:`strong_scaling` produce those grids in
either **modeled** mode (closed forms at paper scale — the default, since a
single machine cannot time 600 cores) or **measured** mode (real runs of the
scaled-down datasets on the SPMD backend).  The benchmark harness under
``benchmarks/`` calls these drivers and prints the same series the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.comm.profiler import TimeBreakdown
from repro.core.api import fit
from repro.data.registry import DatasetSpec, measured_scale, paper_scale
from repro.perf.machine import MachineSpec, edison_machine
from repro.core.variants import variant_name as _variant_name
from repro.perf.model import predicted_breakdown

#: The three variants the paper's evaluation compares, by registry name.
PAPER_VARIANTS: tuple = ("naive", "hpc1d", "hpc2d")

#: Core counts used by the paper's scaling experiments.
PAPER_CORE_COUNTS = [24, 96, 216, 384, 600]
#: Dense datasets only fit on 9+ nodes in the paper, so their sweep starts at 216.
PAPER_CORE_COUNTS_DENSE = [216, 384, 600]
#: Rank sweep of the comparison experiments.
PAPER_RANKS = [10, 20, 30, 40, 50]
#: Core count of the comparison experiments.
PAPER_COMPARISON_CORES = 600

#: Rank / core counts used by the measured (laptop-scale) analogues.
MEASURED_RANKS = [4, 8, 12, 16]
MEASURED_CORE_COUNTS = [1, 2, 4, 8]
MEASURED_COMPARISON_RANKS = 4

@dataclass
class ComparisonPoint:
    """One bar of a Figure-3-style plot."""

    dataset: str
    variant: str  # variant registry name
    k: int
    p: int
    breakdown: TimeBreakdown
    mode: str  # "modeled" or "measured"

    @property
    def total(self) -> float:
        return self.breakdown.total

    @property
    def variant_label(self) -> str:
        """Display label from the variant registry (paper legend spelling)."""
        from repro.core.variants import get_variant

        return get_variant(self.variant).label


@dataclass
class ExperimentResult:
    """A collection of comparison points plus the experiment metadata."""

    name: str
    points: List[ComparisonPoint] = field(default_factory=list)

    def totals(self) -> Dict[tuple, float]:
        return {(pt.variant, pt.k, pt.p): pt.total for pt in self.points}

    def for_variant(self, variant) -> List[ComparisonPoint]:
        name = _variant_name(variant)
        return [pt for pt in self.points if pt.variant == name]

    def speedup(self, baseline, against) -> Dict[tuple, float]:
        """Per (k, p) ratio baseline_total / against_total (e.g. Naive / HPC-2D)."""
        base = {(pt.k, pt.p): pt.total for pt in self.for_variant(baseline)}
        other = {(pt.k, pt.p): pt.total for pt in self.for_variant(against)}
        return {key: base[key] / other[key] for key in base if key in other and other[key] > 0}


# ---------------------------------------------------------------------------
# measured mode
# ---------------------------------------------------------------------------

def measured_breakdown(
    spec: DatasetSpec,
    variant: str,
    k: int,
    n_ranks: int,
    iterations: int = 3,
    seed: int = 1,
    backend: str = "thread",
) -> TimeBreakdown:
    """Run the algorithm for real on an SPMD backend; per-iteration breakdown.

    The error computation is disabled so the measured categories contain only
    the six tasks of the paper's breakdown.  ``backend`` selects the
    execution substrate (``"thread"`` for real overlap, ``"lockstep"`` for
    deterministic runs and rank counts beyond the machine).  ``variant`` is a
    variant-registry name, so the run goes straight through
    :func:`repro.fit` — no dispatch table here.
    """
    A = spec.load()
    result = fit(
        A,
        k,
        variant=_variant_name(variant),
        n_ranks=n_ranks,
        backend=backend,
        max_iters=iterations,
        compute_error=False,
        seed=seed,
    )
    return result.breakdown.scaled(1.0 / max(result.iterations, 1))


# ---------------------------------------------------------------------------
# figure drivers
# ---------------------------------------------------------------------------

def comparison_vs_k(
    dataset: str,
    mode: str = "modeled",
    ks: Optional[Sequence[int]] = None,
    cores: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
    variants: Sequence[str] = PAPER_VARIANTS,
    measured_iterations: int = 3,
    backend: str = "thread",
) -> ExperimentResult:
    """Figure 3 a/c/e/g: per-iteration time vs rank ``k`` at a fixed core count.

    ``dataset`` is one of ``"DSYN"``, ``"SSYN"``, ``"Video"``, ``"Webbase"``;
    ``backend`` selects the SPMD substrate for measured mode.
    """
    machine = machine or edison_machine()
    if mode == "modeled":
        spec = paper_scale(dataset)
        ks = list(ks or PAPER_RANKS)
        p = cores or PAPER_COMPARISON_CORES
    elif mode == "measured":
        spec = measured_scale(dataset)
        ks = list(ks or MEASURED_RANKS)
        p = cores or MEASURED_COMPARISON_RANKS
    else:
        raise ValueError(f"mode must be 'modeled' or 'measured', got {mode!r}")

    result = ExperimentResult(name=f"comparison_vs_k[{dataset},{mode},p={p}]")
    for variant in variants:
        variant = _variant_name(variant)
        for k in ks:
            if mode == "modeled":
                breakdown = predicted_breakdown(variant, spec, k, p, machine=machine)
            else:
                breakdown = measured_breakdown(
                    spec, variant, k, p, iterations=measured_iterations, backend=backend
                )
            result.points.append(
                ComparisonPoint(
                    dataset=dataset, variant=variant, k=k, p=p, breakdown=breakdown, mode=mode
                )
            )
    return result


def strong_scaling(
    dataset: str,
    mode: str = "modeled",
    k: int = 50,
    core_counts: Optional[Sequence[int]] = None,
    machine: Optional[MachineSpec] = None,
    variants: Sequence[str] = PAPER_VARIANTS,
    measured_iterations: int = 3,
    backend: str = "thread",
) -> ExperimentResult:
    """Figure 3 b/d/f/h: per-iteration time vs core count at fixed ``k``."""
    machine = machine or edison_machine()
    if mode == "modeled":
        spec = paper_scale(dataset)
        if core_counts is None:
            core_counts = (
                PAPER_CORE_COUNTS_DENSE if not spec.is_sparse else PAPER_CORE_COUNTS
            )
    elif mode == "measured":
        spec = measured_scale(dataset)
        core_counts = core_counts or MEASURED_CORE_COUNTS
        k = min(k, 8)
    else:
        raise ValueError(f"mode must be 'modeled' or 'measured', got {mode!r}")

    result = ExperimentResult(name=f"strong_scaling[{dataset},{mode},k={k}]")
    for variant in variants:
        variant = _variant_name(variant)
        for p in core_counts:
            if mode == "modeled":
                breakdown = predicted_breakdown(variant, spec, k, p, machine=machine)
            else:
                breakdown = measured_breakdown(
                    spec, variant, k, p, iterations=measured_iterations, backend=backend
                )
            result.points.append(
                ComparisonPoint(
                    dataset=dataset, variant=variant, k=k, p=p, breakdown=breakdown, mode=mode
                )
            )
    return result


def table3_grid(
    mode: str = "modeled",
    k: int = 50,
    machine: Optional[MachineSpec] = None,
    datasets: Sequence[str] = ("DSYN", "SSYN", "Video", "Webbase"),
    core_counts: Optional[Sequence[int]] = None,
    measured_iterations: int = 3,
    backend: str = "thread",
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Table 3: per-iteration seconds for every (algorithm, dataset, cores).

    Returns ``{variant: {dataset: {cores: seconds}}}``.  In modeled mode, the
    dense datasets are skipped below 216 cores exactly as in the paper (they
    do not fit in the memory of fewer nodes).
    """
    machine = machine or edison_machine()
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    for variant in PAPER_VARIANTS:
        out[variant] = {}
        for dataset in datasets:
            if mode == "modeled":
                spec = paper_scale(dataset)
                counts = core_counts or (
                    PAPER_CORE_COUNTS if spec.is_sparse else PAPER_CORE_COUNTS_DENSE
                )
            else:
                spec = measured_scale(dataset)
                counts = core_counts or MEASURED_CORE_COUNTS
            column: Dict[int, float] = {}
            for p in counts:
                if mode == "modeled":
                    breakdown = predicted_breakdown(variant, spec, k, p, machine=machine)
                else:
                    breakdown = measured_breakdown(
                        spec, variant, min(k, 8), p,
                        iterations=measured_iterations, backend=backend,
                    )
                column[p] = breakdown.total
            out[variant][dataset] = column
    return out
