"""Performance model and experiment harness.

Two modes regenerate the paper's evaluation:

* **modeled** — evaluate the closed-form per-iteration, per-task costs of
  Naive / HPC-NMF-1D / HPC-NMF-2D (the formulas of §4.3, §5 and Table 2)
  under an alpha-beta-gamma machine calibrated to Edison, at the paper's data
  sizes and core counts.  This reproduces the *shape* of Figure 3 and Table 3
  (who wins, by what factor, where the crossovers fall).
* **measured** — actually run the three algorithms on the SPMD thread backend
  with scaled-down datasets and report real wall-clock breakdowns.

:mod:`repro.perf.model` holds the closed forms, :mod:`repro.perf.experiments`
the drivers for each figure/table, and :mod:`repro.perf.report` the CSV/ASCII
rendering used by the benchmark harness.
"""

from repro.perf.machine import MachineSpec, EDISON_NODE, edison_machine
from repro.perf.model import (
    AlgorithmVariant,
    dense_flops_per_iteration,
    naive_breakdown,
    hpc_breakdown,
    predicted_breakdown,
    table2_costs,
)
from repro.perf.experiments import (
    ComparisonPoint,
    comparison_vs_k,
    strong_scaling,
    table3_grid,
    measured_breakdown,
)
from repro.perf.report import render_breakdown_table, render_table3, to_csv

__all__ = [
    "MachineSpec",
    "EDISON_NODE",
    "edison_machine",
    "AlgorithmVariant",
    "dense_flops_per_iteration",
    "naive_breakdown",
    "hpc_breakdown",
    "predicted_breakdown",
    "table2_costs",
    "ComparisonPoint",
    "comparison_vs_k",
    "strong_scaling",
    "table3_grid",
    "measured_breakdown",
    "render_breakdown_table",
    "render_table3",
    "to_csv",
]
