"""Performance model and experiment harness.

Two modes regenerate the paper's evaluation:

* **modeled** — evaluate the closed-form per-iteration, per-task costs of
  Naive / HPC-NMF-1D / HPC-NMF-2D (the formulas of §4.3, §5 and Table 2)
  under an alpha-beta-gamma machine calibrated to Edison, at the paper's data
  sizes and core counts.  This reproduces the *shape* of Figure 3 and Table 3
  (who wins, by what factor, where the crossovers fall).
* **measured** — actually run the three algorithms on the SPMD thread backend
  with scaled-down datasets and report real wall-clock breakdowns.

:mod:`repro.perf.model` holds the closed forms; *which* closed form prices
which variant lives on the variant registry (each
:class:`~repro.core.variants.Variant` exposes ``predicted_breakdown``),
which is also what the planning layer (:mod:`repro.plan`) consumes to pick
variants and grids at ``fit(..., variant="auto")`` time.
:mod:`repro.perf.experiments` holds the drivers for each figure/table, and
:mod:`repro.perf.report` the CSV/ASCII rendering used by the benchmark
harness.
"""

from repro.perf.machine import (
    EDISON_NODE,
    MachineSpec,
    edison_machine,
    laptop_machine,
)
from repro.perf.model import (
    dense_flops_per_iteration,
    sparse_flops_per_iteration,
    naive_breakdown,
    naive_words_per_iteration,
    hpc_breakdown,
    hpc_words_per_iteration,
    predicted_breakdown,
    table2_costs,
)
from repro.perf.experiments import (
    PAPER_VARIANTS,
    ComparisonPoint,
    comparison_vs_k,
    strong_scaling,
    table3_grid,
    measured_breakdown,
)
from repro.perf.report import render_breakdown_table, render_table3, to_csv

__all__ = [
    "MachineSpec",
    "EDISON_NODE",
    "edison_machine",
    "laptop_machine",
    # NB: the deprecated AlgorithmVariant alias stays importable by name via
    # __getattr__ below but is deliberately NOT in __all__, so star imports
    # do not trip its DeprecationWarning.
    "PAPER_VARIANTS",
    "dense_flops_per_iteration",
    "sparse_flops_per_iteration",
    "naive_breakdown",
    "naive_words_per_iteration",
    "hpc_breakdown",
    "hpc_words_per_iteration",
    "predicted_breakdown",
    "table2_costs",
    "ComparisonPoint",
    "comparison_vs_k",
    "strong_scaling",
    "table3_grid",
    "measured_breakdown",
    "render_breakdown_table",
    "render_table3",
    "to_csv",
]


def __getattr__(name: str):
    """Forward the deprecated ``AlgorithmVariant`` alias (warns in model)."""
    if name == "AlgorithmVariant":
        from repro.perf import model

        return model.AlgorithmVariant
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
