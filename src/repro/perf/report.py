"""Rendering of experiment results as ASCII tables and CSV.

matplotlib is unavailable in the reproduction environment, so the "figures"
are emitted as the underlying stacked-bar data: one row per (variant, x-axis
value) with one column per task category, in the same order as the paper's
legend.  The CSV form is convenient for plotting elsewhere.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List

from repro.comm.profiler import TaskCategory
from repro.perf.experiments import ComparisonPoint, ExperimentResult

#: Category order used in the paper's stacked bars (legend order of Fig. 3).
CATEGORY_ORDER = [
    TaskCategory.NLS,
    TaskCategory.MM,
    TaskCategory.GRAM,
    TaskCategory.ALL_GATHER,
    TaskCategory.REDUCE_SCATTER,
    TaskCategory.ALL_REDUCE,
]


def _format_row(cells: Iterable[str], widths: List[int]) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def render_breakdown_table(result: ExperimentResult, x_axis: str = "k") -> str:
    """Render an :class:`ExperimentResult` as a fixed-width text table.

    ``x_axis`` selects which point attribute labels the rows ("k" for the
    comparison experiments, "p" for the scaling experiments).
    """
    headers = ["variant", x_axis] + [c.value for c in CATEGORY_ORDER] + ["total"]
    rows: List[List[str]] = []
    for pt in result.points:
        x_value = getattr(pt, x_axis)
        row = [pt.variant_label, str(x_value)]
        row += [f"{pt.breakdown.get(c):.4f}" for c in CATEGORY_ORDER]
        row += [f"{pt.total:.4f}"]
        rows.append(row)
    widths = [max(len(headers[i]), max((len(r[i]) for r in rows), default=0)) for i in range(len(headers))]
    lines = [result.name, _format_row(headers, widths), _format_row(["-" * w for w in widths], widths)]
    lines += [_format_row(r, widths) for r in rows]
    return "\n".join(lines)


def to_csv(result: ExperimentResult) -> str:
    """CSV form of an experiment result (one row per point, per-task columns)."""
    buffer = io.StringIO()
    headers = ["dataset", "variant", "k", "p", "mode"] + [c.value for c in CATEGORY_ORDER] + ["total"]
    buffer.write(",".join(headers) + "\n")
    for pt in result.points:
        cells = [pt.dataset, pt.variant, str(pt.k), str(pt.p), pt.mode]
        cells += [f"{pt.breakdown.get(c):.6g}" for c in CATEGORY_ORDER]
        cells += [f"{pt.total:.6g}"]
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()


def render_table3(table: Dict[str, Dict[str, Dict[int, float]]], k: int = 50) -> str:
    """Render the Table 3 grid: per-iteration seconds by cores/dataset/algorithm."""
    variants = list(table)
    datasets: List[str] = []
    core_counts: List[int] = []
    for per_dataset in table.values():
        for dataset, column in per_dataset.items():
            if dataset not in datasets:
                datasets.append(dataset)
            for p in column:
                if p not in core_counts:
                    core_counts.append(p)
    core_counts.sort()

    headers = ["cores"] + [f"{v}:{d}" for v in variants for d in datasets]
    rows = []
    for p in core_counts:
        row = [str(p)]
        for v in variants:
            for d in datasets:
                value = table[v].get(d, {}).get(p)
                row.append(f"{value:.4f}" if value is not None else "-")
        rows.append(row)
    widths = [max(len(headers[i]), max(len(r[i]) for r in rows)) for i in range(len(headers))]
    lines = [
        f"Table 3 analogue: per-iteration seconds (k={k})",
        _format_row(headers, widths),
        _format_row(["-" * w for w in widths], widths),
    ]
    lines += [_format_row(r, widths) for r in rows]
    return "\n".join(lines)
