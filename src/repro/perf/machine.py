"""Machine description used by the analytic performance model.

The paper's experiments ran on NERSC "Edison" (§6.1.2): Cray XC30, two
12-core 2.4 GHz Ivy Bridge sockets per node (460.8 Gflop/s/node peak), 64 GB
per node, Aries dragonfly interconnect.  The model works per *process* (the
paper runs one MPI rank per core), so the relevant constants are

* ``gamma`` — seconds per flop for one core (peak 19.2 Gflop/s),
* ``alpha`` — per-message latency (~1.3 microseconds for Aries MPI),
* ``beta`` — seconds per 8-byte word of interconnect bandwidth available to
  one process (the ~8 GB/s node injection bandwidth shared by 24 ranks).

Peak flop rates are never achieved by real kernels, and *how far* from peak
differs strongly between a big DGEMM (the MM task), a rank-k update (Gram), a
stream of tiny Cholesky solves inside BPP (NLS), and a sparse SpMM.  The
:class:`MachineSpec` therefore carries per-kernel efficiency factors; the
defaults were chosen once so the modeled per-iteration times land in the same
range as the paper's Table 3 and are *not* fitted per experiment (see
EXPERIMENTS.md for the calibration note).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Mapping, Optional

from repro.comm.cost import EDISON, LAPTOP, AlphaBetaGamma, CollectiveCost

#: Raw Edison node-level numbers used to derive the per-core constants.
EDISON_NODE = {
    "cores_per_node": 24,
    "peak_gflops_per_node": 460.8,
    "injection_bandwidth_gbps": 8.0,
    "mpi_latency_us": 1.3,
}

#: Assumed NLS throughput of each BPP kernel relative to ``scalar``, used when
#: a spec carries no measured ratios (``MachineSpec.calibrate`` measures the
#: real ones).  ``scalar`` is 1.0 by definition, so default pricing is
#: unchanged for code that never asks about kernels.
DEFAULT_KERNEL_SPEEDUPS: Mapping[str, float] = {
    "scalar": 1.0,
    "batched": 2.5,
    "numba": 6.0,
}

#: Fraction of *overlappable* communication each backend actually hides when
#: the pipelined schedule runs (see :mod:`repro.comm.nonblocking`).  The
#: process backend's helper threads make real progress while the main process
#: computes (pipes + shared memory release the GIL); the thread backend only
#: overlaps where BLAS releases the GIL; lockstep completes nonblocking ops
#: eagerly at issue, so nothing is ever hidden.
DEFAULT_OVERLAP_EFFICIENCY: Mapping[str, float] = {
    "process": 0.7,
    "thread": 0.3,
    "lockstep": 0.0,
    # Socket reader threads block in recv (releasing the GIL), so frames
    # genuinely land while the main thread computes; serialization still
    # costs some of the window.
    "socket": 0.6,
    # The mpi backend completes nonblocking handles eagerly at issue
    # (helper threads would need MPI_THREAD_MULTIPLE), so nothing hides.
    "mpi": 0.0,
}

#: Per-link (alpha seconds, beta seconds-per-word) for backends whose
#: collectives cross a real wire, used by :meth:`MachineSpec.for_backend` to
#: price ``repro plan --backend socket|mpi``.  In-process backends have **no**
#: entry on purpose: they communicate at the machine's own memory constants,
#: so their pricing stays byte-stable.  The socket defaults describe loopback
#: TCP through the frame codec (tens-of-microseconds latency, a few GB/s);
#: the mpi defaults reuse the Edison Aries constants (§6.1.2).
#: ``MachineSpec.calibrate(rate_links=True)`` replaces the socket entry with
#: a measured 2-rank ping/stream probe.
DEFAULT_LINK_COSTS: Mapping[str, tuple] = {
    "socket": (3.0e-5, 8.0 / 2.0e9),
    "mpi": (EDISON_NODE["mpi_latency_us"] * 1e-6,
            8.0 / (EDISON_NODE["injection_bandwidth_gbps"] * 1e9
                   / EDISON_NODE["cores_per_node"])),
}


@dataclass(frozen=True)
class MachineSpec:
    """Alpha-beta-gamma constants plus per-kernel efficiency factors."""

    network: AlphaBetaGamma
    #: Fraction of peak flop rate achieved by large dense matmuls (MM task).
    dense_mm_efficiency: float = 0.70
    #: Effective flop rate fraction for sparse matmuls (SpMM is memory bound).
    sparse_mm_efficiency: float = 0.08
    #: Fraction of peak achieved by the k×k Gram updates.
    gram_efficiency: float = 0.50
    #: Fraction of peak achieved inside BPP (tiny Cholesky solves, branching).
    nls_efficiency: float = 0.05
    #: Average number of BPP pivot iterations per NLS solve.
    bpp_iterations: float = 10.0
    #: Fraction of columns whose passive set is unique (cannot share a Cholesky).
    bpp_grouping_factor: float = 0.5
    #: Measured NLS throughput of each BPP kernel relative to ``scalar``
    #: (``None`` = use :data:`DEFAULT_KERNEL_SPEEDUPS`).  Filled in by
    #: :meth:`calibrate`; read by :meth:`kernel_speedup` / :meth:`for_kernel`.
    kernel_speedups: Optional[Mapping[str, float]] = None
    #: Per-backend fraction of overlappable communication hidden by the
    #: pipelined schedule (``None`` = :data:`DEFAULT_OVERLAP_EFFICIENCY`).
    #: Read by :meth:`overlap_fraction`; the planner uses it to split a
    #: predicted breakdown into exposed vs. hidden communication.
    overlap_efficiency: Optional[Mapping[str, float]] = None
    #: Per-backend wire (alpha, beta) overrides (``None`` =
    #: :data:`DEFAULT_LINK_COSTS`).  Only wire backends have entries; read by
    #: :meth:`link_cost` / :meth:`for_backend`, filled by
    #: ``calibrate(rate_links=True)``.
    link_costs: Optional[Mapping[str, tuple]] = None

    @property
    def name(self) -> str:
        return self.network.name

    def collectives(self) -> CollectiveCost:
        return CollectiveCost(self.network)

    def dense_mm_seconds(self, flops: float) -> float:
        return flops * self.network.gamma / self.dense_mm_efficiency

    def sparse_mm_seconds(self, flops: float) -> float:
        return flops * self.network.gamma / self.sparse_mm_efficiency

    def gram_seconds(self, flops: float) -> float:
        return flops * self.network.gamma / self.gram_efficiency

    def nls_seconds(self, flops: float, kernel: Optional[str] = None) -> float:
        seconds = flops * self.network.gamma / self.nls_efficiency
        if kernel is not None:
            seconds /= self.kernel_speedup(kernel)
        return seconds

    def kernel_speedup(self, kernel: str) -> float:
        """NLS throughput of a BPP kernel relative to ``scalar`` (>= 0).

        Unknown kernel names price like ``scalar`` (ratio 1.0) rather than
        raising — the planner validates names before pricing.
        """
        table = self.kernel_speedups or DEFAULT_KERNEL_SPEEDUPS
        return float(table.get(kernel, 1.0))

    def overlap_fraction(self, backend: Optional[str]) -> float:
        """Fraction of overlappable comm the backend hides, in ``[0, 1]``.

        Unknown backend names (and ``None``) price as 0.0 — no overlap —
        so the blocking prediction is the conservative default.
        """
        if backend is None:
            return 0.0
        table = self.overlap_efficiency or DEFAULT_OVERLAP_EFFICIENCY
        return float(min(1.0, max(0.0, table.get(backend, 0.0))))

    def link_cost(self, backend: Optional[str]) -> Optional[tuple]:
        """The wire ``(alpha, beta)`` of ``backend``, or ``None`` if in-process.

        Backends without an entry (thread/process/lockstep, unknown names,
        ``None``) communicate at the machine's own network constants.
        """
        if backend is None:
            return None
        table = self.link_costs or DEFAULT_LINK_COSTS
        entry = table.get(backend)
        if entry is None:
            return None
        alpha, beta = entry
        return (float(alpha), float(beta))

    def for_backend(self, backend: Optional[str]) -> "MachineSpec":
        """A spec whose network term reflects the given backend's wire.

        The planner's counterpart to :meth:`for_kernel`: when ``backend`` has
        a per-link entry (the socket and mpi wire backends), the returned
        spec's ``alpha``/``beta`` are swapped for the link's latency and
        bandwidth (``gamma`` — the compute rate — is untouched) and the name
        gains a ``+backend`` suffix so plan tables show what was priced.
        Backends with no entry return ``self`` unchanged, keeping in-process
        pricing byte-stable.
        """
        link = self.link_cost(backend)
        if link is None:
            return self
        alpha, beta = link
        network = AlphaBetaGamma(
            alpha=alpha,
            beta=beta,
            gamma=self.network.gamma,
            name=f"{self.network.name}+{backend}",
        )
        return self.with_options(network=network)

    def for_kernel(self, kernel: Optional[str]) -> "MachineSpec":
        """A spec whose NLS efficiency reflects the given BPP kernel.

        This is how the planner threads the kernel choice through the variant
        cost hooks without changing their signatures: the returned spec's
        ``nls_efficiency`` is scaled by the kernel's speedup ratio, so every
        downstream ``nls_seconds`` call prices the chosen engine.  ``None``
        or ``scalar`` (ratio 1.0) return ``self`` unchanged, keeping default
        pricing byte-stable.
        """
        if kernel is None:
            return self
        ratio = self.kernel_speedup(kernel)
        if ratio == 1.0:
            return self
        return self.with_options(nls_efficiency=self.nls_efficiency * ratio)

    def with_options(self, **kwargs) -> "MachineSpec":
        return replace(self, **kwargs)

    @classmethod
    def calibrate(
        cls,
        size: int = 384,
        repeats: int = 3,
        seed: int = 0,
        ranks: int = 1,
        rate_kernels: bool = True,
        rate_overlap: bool = False,
        rate_links: bool = False,
    ) -> "MachineSpec":
        """Micro-benchmark *this* host and return a spec priced to it.

        Two quick measurements (well under a second in total):

        * a ``size × size`` GEMM, timed best-of-``repeats`` — its achieved
          flop rate becomes ``gamma`` (so ``dense_mm_efficiency`` is 1.0 by
          construction: gamma already reflects a real kernel, not peak);
        * a ``size²``-double buffer copy — its per-word time becomes
          ``beta``, the in-process stand-in for interconnect bandwidth
          (rank-to-rank "communication" on the SPMD backends is a memcpy).

        With ``ranks > 1`` the GEMM is instead timed on the ``"process"``
        backend with ``ranks`` OS processes running it *concurrently*, so
        ``gamma`` reflects the per-rank flop rate under real contention
        (shared caches, memory bandwidth, SMT) — the number
        ``fit(variant="auto")`` should cost parallel plans against, rather
        than the single-rank rate times ``p``.  The slowest rank's best
        time is used: an SPMD iteration finishes when the last rank does.

        ``alpha`` is fixed at 100 ns, a deposit-slot handoff rather than a
        NIC round-trip.  The relative kernel efficiencies (sparse MM, Gram,
        NLS) keep their defaults — they describe kernel *shapes*, not the
        host.

        With ``rate_kernels`` (the default) every *available* BPP kernel is
        additionally timed on a representative NLS problem and the measured
        throughput ratios are stored in :attr:`kernel_speedups`, so
        ``repro plan --machine local --kernel ...`` prices the actual engines
        on this host (including numba's JIT-compiled one when importable —
        its one-off compilation happens during warm-up, outside the timing).

        With ``rate_overlap`` the *achieved* compute/communication hiding
        ratio of the pipelined schedule is additionally measured per backend
        (see :func:`_overlap_probe`): a two-rank SPMD program times an
        all-reduce alone, a GEMM followed by a blocking all-reduce, and the
        same GEMM with the all-reduce in flight (``iallreduce`` → GEMM →
        wait); the hidden fraction ``(t_block - t_pipe) / t_comm`` is stored
        in :attr:`overlap_efficiency` for the ``thread`` and ``process``
        backends (``lockstep`` is pinned at 0.0 — it completes nonblocking
        ops eagerly at issue, by design).  These measured values replace the
        static :data:`DEFAULT_OVERLAP_EFFICIENCY` guesses in
        ``pipelined_breakdown()`` and the planner's pipelined twin
        candidates.  A backend whose probe fails keeps its static default
        (with a :class:`RuntimeWarning`).  The deterministic Edison constants
        (:func:`edison_machine`) remain the default everywhere; calibration
        is opt-in (``repro plan --machine local``, ``fit(...,
        machine=MachineSpec.calibrate())``) so tests and figure regeneration
        stay reproducible.

        With ``rate_links`` the socket wire is additionally measured with a
        2-rank ping/stream probe on the socket backend (see
        :func:`_link_probe`): small-message round-trips give the per-frame
        latency ``alpha``, a streamed 1 MiB payload gives the per-word
        ``beta``; the measured pair replaces the static
        :data:`DEFAULT_LINK_COSTS` socket entry in :attr:`link_costs`, so
        ``repro plan --machine local --backend socket`` prices this host's
        actual wire.  A failed probe keeps the static defaults (with a
        :class:`RuntimeWarning`).
        """
        import numpy as np

        from repro.core.local_ops import dense_matmul_flops

        flops = dense_matmul_flops(size, size, size)
        gamma, name = None, "local-calibrated"
        if ranks > 1:
            from repro.comm.backends import run_spmd

            try:
                per_rank_best = run_spmd(
                    ranks, _gemm_probe, size, repeats, seed,
                    name="calibrate", backend="process",
                )
            except Exception as exc:  # noqa: BLE001 - probe is best-effort
                # No fork on this platform, fork refused (rlimits, memory
                # pressure), or the probe ranks failed: degrade to the
                # single-rank probe rather than turning a pricing request
                # into an executor error.
                import warnings

                warnings.warn(
                    f"parallel calibration on the process backend failed "
                    f"({exc}); falling back to a single-rank GEMM probe",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                gamma = max(per_rank_best) / flops
                name = f"local-calibrated-p{ranks}"
        if gamma is None:
            gamma = _gemm_probe(None, size, repeats, seed) / flops

        rng = np.random.default_rng(seed)
        src = rng.standard_normal(size * size)
        dst = np.empty_like(src)
        np.copyto(dst, src)  # warm-up
        copy_best = min(_timed(lambda: np.copyto(dst, src)) for _ in range(repeats))
        beta = copy_best / src.size

        kernel_speedups = None
        if rate_kernels:
            from repro.nls import available_kernels, make_solver

            kk, cc = 10, 128
            C = rng.standard_normal((2 * kk, kk))
            B = rng.standard_normal((2 * kk, cc))
            gram_mat = C.T @ C
            rhs = C.T @ B
            times = {}
            for kern in available_kernels():
                solver = make_solver("bpp", kernel=kern)
                solver.solve(gram_mat, rhs)  # warm-up (JIT compile for numba)
                times[kern] = min(
                    _timed(lambda: solver.solve(gram_mat, rhs))
                    for _ in range(max(repeats, 1))
                )
            scalar_time = times["scalar"]
            kernel_speedups = {k: scalar_time / t for k, t in times.items()}

        overlap_efficiency = None
        if rate_overlap:
            from repro.comm.backends import run_spmd

            overlap_efficiency = dict(DEFAULT_OVERLAP_EFFICIENCY)
            overlap_efficiency["lockstep"] = 0.0  # eager completion at issue
            for backend in ("thread", "process"):
                try:
                    per_rank = run_spmd(
                        2, _overlap_probe, size, repeats, seed,
                        name="calibrate-overlap", backend=backend,
                    )
                except Exception as exc:  # noqa: BLE001 - probe is best-effort
                    import warnings

                    warnings.warn(
                        f"overlap calibration on the {backend} backend failed "
                        f"({exc}); keeping the static default "
                        f"{DEFAULT_OVERLAP_EFFICIENCY[backend]}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                else:
                    # An SPMD iteration finishes when the last rank does, so
                    # the fleet-wide hidden fraction is the worst rank's.
                    overlap_efficiency[backend] = min(per_rank)

        link_costs = None
        if rate_links:
            from repro.comm.backends import run_spmd

            try:
                per_rank = run_spmd(
                    2, _link_probe, repeats,
                    name="calibrate-link", backend="socket",
                )
            except Exception as exc:  # noqa: BLE001 - probe is best-effort
                import warnings

                warnings.warn(
                    f"link calibration on the socket backend failed ({exc}); "
                    "keeping the static DEFAULT_LINK_COSTS entries",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                link_costs = dict(DEFAULT_LINK_COSTS)
                link_costs["socket"] = per_rank[0]

        network = AlphaBetaGamma(alpha=1.0e-7, beta=beta, gamma=gamma, name=name)
        return cls(
            network=network,
            dense_mm_efficiency=1.0,
            kernel_speedups=kernel_speedups,
            overlap_efficiency=overlap_efficiency,
            link_costs=link_costs,
        )


def _gemm_probe(comm, size: int, repeats: int, seed: int) -> float:
    """Best-of-``repeats`` seconds for one ``size × size`` GEMM on this rank.

    Runs standalone (``comm=None``) or as an SPMD program: with a
    communicator the ranks align on a barrier after warm-up so the timed
    GEMMs genuinely contend, and each rank draws its data from the package's
    deterministic per-rank seeding.
    """
    import numpy as np

    from repro.util.seeding import per_rank_seed

    rank = comm.rank if comm is not None else 0
    rng = np.random.default_rng(per_rank_seed(seed, rank))
    x = rng.standard_normal((size, size))
    y = rng.standard_normal((size, size))
    x @ y  # warm-up: BLAS thread pools, page faults
    if comm is not None:
        comm.barrier()
    return min(_timed(lambda: x @ y) for _ in range(repeats))


def _overlap_probe(comm, size: int, repeats: int, seed: int) -> float:
    """Measured fraction of an all-reduce this backend hides behind a GEMM.

    SPMD program (2 ranks): times, best-of-``repeats`` with a barrier before
    every sample so the ranks genuinely contend,

    * ``t_comm`` — a blocking ``size × size`` all-reduce alone,
    * ``t_block`` — a ``size × size`` GEMM followed by the blocking
      all-reduce (the unpipelined schedule),
    * ``t_pipe`` — the all-reduce issued nonblocking, the GEMM, then the
      wait (the pipelined schedule).

    The achieved hiding ratio is ``(t_block - t_pipe) / t_comm``, clamped to
    ``[0, 1]``: 1.0 means the collective vanished entirely behind the GEMM,
    0.0 means pipelining bought nothing.  The communicator is silent (no
    ledger attached) and its helper threads are shut down before returning.
    """
    import numpy as np

    from repro.util.seeding import per_rank_seed

    rng = np.random.default_rng(per_rank_seed(seed, comm.rank))
    x = rng.standard_normal((size, size))
    y = rng.standard_normal((size, size))
    msg = rng.standard_normal((size, size))
    out = np.empty_like(msg)

    comm.ensure_nonblocking()
    try:
        # Warm-up: BLAS pools, page faults, helper-thread spin-up.
        x @ y
        comm.allreduce(msg, out=out)
        comm.iallreduce(msg, out=out).wait()

        def sample(fn):
            comm.barrier()
            return _timed(fn)

        def pipelined():
            handle = comm.iallreduce(msg, out=out)
            x @ y
            handle.wait()

        def blocked():
            x @ y
            comm.allreduce(msg, out=out)

        t_comm = min(sample(lambda: comm.allreduce(msg, out=out)) for _ in range(repeats))
        t_block = min(sample(blocked) for _ in range(repeats))
        t_pipe = min(sample(pipelined) for _ in range(repeats))
    finally:
        comm.shutdown_nonblocking()

    if t_comm <= 0.0:
        return 0.0
    return float(min(1.0, max(0.0, (t_block - t_pipe) / t_comm)))


def _link_probe(comm, repeats: int):
    """2-rank ping/stream probe measuring the socket wire's ``(alpha, beta)``.

    Rank 0 measures and returns the pair; rank 1 echoes and returns ``None``.

    * *Ping*: ``n_pings`` round-trips of a 1-word message, best-of-``repeats``;
      half the per-message round-trip is the frame latency ``alpha``
      (connect, frame encode/decode, kernel crossing).
    * *Stream*: a 1 MiB array one way plus a 1-word ack, best-of-``repeats``;
      the time beyond one round-trip divided by the word count is ``beta``.
    """
    import numpy as np

    small = np.zeros(1)
    big = np.zeros(131072)  # 1 MiB of float64
    n_pings = 20
    comm.barrier()
    if comm.rank == 0:
        def ping():
            for _ in range(n_pings):
                comm.send(small, dest=1, tag=1)
                comm.recv(source=1, tag=2)

        def stream():
            comm.send(big, dest=1, tag=3)
            comm.recv(source=1, tag=4)

        ping()  # warm-up: buffers, reader-thread scheduling
        rtt = min(_timed(ping) for _ in range(repeats)) / n_pings
        stream()  # warm-up
        t_stream = min(_timed(stream) for _ in range(repeats))
        alpha = rtt / 2.0
        beta = max(t_stream - rtt, 1e-12) / big.size
        return (float(alpha), float(beta))
    for _ in range(repeats + 1):
        for _ in range(n_pings):
            comm.recv(source=0, tag=1)
            comm.send(small, dest=0, tag=2)
    for _ in range(repeats + 1):
        comm.recv(source=0, tag=3)
        comm.send(small, dest=0, tag=4)
    return None


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def edison_machine(**overrides) -> MachineSpec:
    """The default Edison-calibrated machine model."""
    return MachineSpec(network=EDISON).with_options(**overrides) if overrides else MachineSpec(network=EDISON)


def laptop_machine(**overrides) -> MachineSpec:
    """A communication-friendly laptop-like preset (examples, what-if plans)."""
    spec = MachineSpec(network=LAPTOP)
    return spec.with_options(**overrides) if overrides else spec
