"""Machine description used by the analytic performance model.

The paper's experiments ran on NERSC "Edison" (§6.1.2): Cray XC30, two
12-core 2.4 GHz Ivy Bridge sockets per node (460.8 Gflop/s/node peak), 64 GB
per node, Aries dragonfly interconnect.  The model works per *process* (the
paper runs one MPI rank per core), so the relevant constants are

* ``gamma`` — seconds per flop for one core (peak 19.2 Gflop/s),
* ``alpha`` — per-message latency (~1.3 microseconds for Aries MPI),
* ``beta`` — seconds per 8-byte word of interconnect bandwidth available to
  one process (the ~8 GB/s node injection bandwidth shared by 24 ranks).

Peak flop rates are never achieved by real kernels, and *how far* from peak
differs strongly between a big DGEMM (the MM task), a rank-k update (Gram), a
stream of tiny Cholesky solves inside BPP (NLS), and a sparse SpMM.  The
:class:`MachineSpec` therefore carries per-kernel efficiency factors; the
defaults were chosen once so the modeled per-iteration times land in the same
range as the paper's Table 3 and are *not* fitted per experiment (see
EXPERIMENTS.md for the calibration note).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.comm.cost import EDISON, AlphaBetaGamma, CollectiveCost

#: Raw Edison node-level numbers used to derive the per-core constants.
EDISON_NODE = {
    "cores_per_node": 24,
    "peak_gflops_per_node": 460.8,
    "injection_bandwidth_gbps": 8.0,
    "mpi_latency_us": 1.3,
}


@dataclass(frozen=True)
class MachineSpec:
    """Alpha-beta-gamma constants plus per-kernel efficiency factors."""

    network: AlphaBetaGamma
    #: Fraction of peak flop rate achieved by large dense matmuls (MM task).
    dense_mm_efficiency: float = 0.70
    #: Effective flop rate fraction for sparse matmuls (SpMM is memory bound).
    sparse_mm_efficiency: float = 0.08
    #: Fraction of peak achieved by the k×k Gram updates.
    gram_efficiency: float = 0.50
    #: Fraction of peak achieved inside BPP (tiny Cholesky solves, branching).
    nls_efficiency: float = 0.05
    #: Average number of BPP pivot iterations per NLS solve.
    bpp_iterations: float = 10.0
    #: Fraction of columns whose passive set is unique (cannot share a Cholesky).
    bpp_grouping_factor: float = 0.5

    @property
    def name(self) -> str:
        return self.network.name

    def collectives(self) -> CollectiveCost:
        return CollectiveCost(self.network)

    def dense_mm_seconds(self, flops: float) -> float:
        return flops * self.network.gamma / self.dense_mm_efficiency

    def sparse_mm_seconds(self, flops: float) -> float:
        return flops * self.network.gamma / self.sparse_mm_efficiency

    def gram_seconds(self, flops: float) -> float:
        return flops * self.network.gamma / self.gram_efficiency

    def nls_seconds(self, flops: float) -> float:
        return flops * self.network.gamma / self.nls_efficiency

    def with_options(self, **kwargs) -> "MachineSpec":
        return replace(self, **kwargs)


def edison_machine(**overrides) -> MachineSpec:
    """The default Edison-calibrated machine model."""
    return MachineSpec(network=EDISON).with_options(**overrides) if overrides else MachineSpec(network=EDISON)
