"""Length-prefixed frame codec for the wire backends (:mod:`repro.comm.backends.socket`).

A *frame* is the unit in which the socket backend moves one keyed payload —
a barrier token, a point-to-point message, an abort notice — between two
rank processes over a TCP stream.  The layout is designed so array payloads
(the per-iteration collectives' traffic) cross the wire as raw bytes with a
tiny pickled header, while arbitrary Python payloads (the ``split``
metadata, exception notices) fall back to pickling:

.. code-block:: text

    +----------------+----------------+-----------------+-----------------+
    | header_len u32 | payload_len u64| header (pickle) | payload (bytes) |
    +----------------+----------------+-----------------+-----------------+
      little-endian     little-endian

    header  := (key, kind, dtype_str, shape)
    payload := raw C-order array bytes     (kind == KIND_ARRAY)
             | pickle bytes                (kind == KIND_OBJECT)

``key`` is any picklable routing key (the backend uses tuples such as
``("bar", uid, epoch, round, src)`` and ``("msg", uid, src)``); ``dtype_str``
and ``shape`` are ``None`` for object payloads.  Arrays with object or
structured dtypes take the pickle path — raw bytes would not round-trip
them.  Decoding always returns a fresh *writable* array, never a view of the
receive buffer.

The codec is pure (bytes in, bytes out) so it is unit-testable without any
sockets; :func:`read_frame` layers it over any ``read_exact(n) -> bytes``
callable, which the backend binds to a blocking socket and the tests bind to
an in-memory buffer.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable, Tuple

import numpy as np

from repro.util.errors import CommunicatorError

#: Frame preamble: u32 header length, u64 payload length (little-endian).
PREAMBLE = struct.Struct("<IQ")

#: Payload kinds carried in the pickled header.
KIND_ARRAY = 1
KIND_OBJECT = 2

#: Refuse to decode frames claiming more than this many payload bytes — a
#: corrupted or adversarial length prefix must not drive a multi-gigabyte
#: allocation before the stream is even read.
MAX_FRAME_BYTES = 1 << 34  # 16 GiB


def _is_raw_array(payload: Any) -> bool:
    """Whether ``payload`` can cross the wire as raw bytes + (dtype, shape)."""
    return (
        isinstance(payload, np.ndarray)
        and not payload.dtype.hasobject
        and payload.dtype.names is None
    )


def encode_frame(key: Any, payload: Any) -> bytes:
    """Serialize one ``(key, payload)`` into a self-delimiting frame."""
    if _is_raw_array(payload):
        arr = np.ascontiguousarray(payload)
        header = pickle.dumps(
            (key, KIND_ARRAY, arr.dtype.str, arr.shape),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        body = arr.tobytes()  # C-order raw bytes; empty arrays give b""
    else:
        header = pickle.dumps(
            (key, KIND_OBJECT, None, None), protocol=pickle.HIGHEST_PROTOCOL
        )
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return PREAMBLE.pack(len(header), len(body)) + header + body


def _decode_body(header: bytes, body: bytes) -> Tuple[Any, Any]:
    try:
        key, kind, dtype_str, shape = pickle.loads(header)
    except Exception as exc:
        raise CommunicatorError(f"undecodable wire-frame header: {exc}") from exc
    if kind == KIND_ARRAY:
        dtype = np.dtype(dtype_str)
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if expected != len(body):
            raise CommunicatorError(
                f"wire-frame array payload carries {len(body)} bytes but its "
                f"header declares dtype {dtype_str} shape {tuple(shape)} "
                f"({expected} bytes)"
            )
        # Fresh writable array: the receive buffer is reused by the reader,
        # and collective bodies may combine into received arrays in place.
        arr = np.empty(shape, dtype=dtype)
        if arr.size:
            arr.view(np.uint8).reshape(-1)[:] = np.frombuffer(body, dtype=np.uint8)
        return key, arr
    if kind == KIND_OBJECT:
        return key, pickle.loads(body)
    raise CommunicatorError(f"unknown wire-frame payload kind {kind!r}")


def decode_frame(buf: bytes) -> Tuple[Any, Any]:
    """Decode one complete frame from ``buf`` (must contain exactly one frame)."""
    if len(buf) < PREAMBLE.size:
        raise CommunicatorError(
            f"truncated wire frame: {len(buf)} bytes, preamble needs {PREAMBLE.size}"
        )
    header_len, payload_len = PREAMBLE.unpack_from(buf, 0)
    if payload_len > MAX_FRAME_BYTES:
        raise CommunicatorError(
            f"wire frame declares {payload_len} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupted stream?)"
        )
    end = PREAMBLE.size + header_len + payload_len
    if len(buf) != end:
        raise CommunicatorError(
            f"wire frame length mismatch: buffer holds {len(buf)} bytes, "
            f"frame declares {end}"
        )
    header = buf[PREAMBLE.size:PREAMBLE.size + header_len]
    body = buf[PREAMBLE.size + header_len:end]
    return _decode_body(header, body)


def read_frame(read_exact: Callable[[int], bytes]) -> Tuple[Any, Any]:
    """Read and decode one frame through ``read_exact(n) -> n bytes``.

    ``read_exact`` must either return exactly ``n`` bytes or raise; the
    socket backend binds it to a blocking connection via :func:`recv_exact`.
    """
    preamble = read_exact(PREAMBLE.size)
    header_len, payload_len = PREAMBLE.unpack(preamble)
    if payload_len > MAX_FRAME_BYTES:
        raise CommunicatorError(
            f"wire frame declares {payload_len} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupted stream?)"
        )
    header = read_exact(header_len)
    body = read_exact(payload_len) if payload_len else b""
    return _decode_body(header, body)


def recv_exact(sock, n: int) -> bytes:
    """Receive exactly ``n`` bytes from a (blocking) socket.

    Raises :class:`ConnectionError` on EOF mid-frame — the reader thread
    turns that into an abort naming the dead peer.
    """
    if n == 0:
        return b""
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(min(n - len(chunks), 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed after {len(chunks)} of {n} expected bytes"
            )
        chunks += chunk
    return bytes(chunks)
