"""Backwards-compatible alias for :mod:`repro.comm.backends` (deprecated).

The execution substrate grew from a single hard-coded thread backend into the
pluggable :mod:`repro.comm.backends` package (``"thread"``, ``"lockstep"``,
``"process"``, and a registry for future MPI-style backends).  This module
keeps the original import path working::

    from repro.comm.backend import ThreadBackend, run_spmd

but every attribute access now emits a :class:`DeprecationWarning` (the same
module-``__getattr__`` convention as ``repro.perf.model.AlgorithmVariant``).
New code should import from :mod:`repro.comm.backends` (or
:mod:`repro.comm`) directly.
"""

from __future__ import annotations

import warnings

__all__ = [
    "Backend",
    "LockstepBackend",
    "ProcessBackend",
    "SharedGroupState",
    "ThreadBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "run_spmd",
]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            "repro.comm.backend is deprecated; import "
            f"{name!r} from repro.comm.backends instead",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.comm.backends as backends

        return getattr(backends, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
