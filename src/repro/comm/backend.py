"""Backwards-compatible alias for :mod:`repro.comm.backends`.

The execution substrate grew from a single hard-coded thread backend into the
pluggable :mod:`repro.comm.backends` package (``"thread"``, ``"lockstep"``,
and a registry for future multiprocessing/MPI backends).  This module keeps
the original import path working::

    from repro.comm.backend import ThreadBackend, run_spmd

New code should import from :mod:`repro.comm.backends` (or
:mod:`repro.comm`) directly.
"""

from repro.comm.backends import (
    Backend,
    LockstepBackend,
    SharedGroupState,
    ThreadBackend,
    available_backends,
    make_backend,
    register_backend,
    run_spmd,
)

__all__ = [
    "Backend",
    "LockstepBackend",
    "SharedGroupState",
    "ThreadBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "run_spmd",
]
