"""SPMD execution backend.

The paper's algorithms are SPMD programs: every MPI rank runs the same code
on its own block of the data.  :class:`ThreadBackend` reproduces that model in
a single Python process by running one thread per rank.  Ranks exchange numpy
buffers through shared memory slots guarded by reusable barriers, and
point-to-point messages flow through per-(source, destination) queues.

Threads are an adequate stand-in for MPI processes here because

* the heavy numerical kernels (BLAS matmuls, Cholesky factorizations inside
  BPP) release the GIL, so ranks genuinely overlap where it matters, and
* the purpose of the substrate is to execute the *communication structure* of
  Algorithms 2 and 3 faithfully — who owns what, what is sent where — which
  is independent of whether ranks are threads or processes.

Use :func:`run_spmd` for the common case::

    def program(comm, payload):
        ...
        return local_result

    results = run_spmd(n_ranks, program, payload)   # list, one per rank
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import CommunicatorError


@dataclass
class _RankFailure:
    """Marker carrying an exception raised inside one rank's program."""

    rank: int
    exception: BaseException


class SharedGroupState:
    """Shared-memory state for one communicator group.

    One instance is shared by all ranks of a communicator.  It provides

    * ``slots`` — a list with one deposit slot per rank, used by the
      native collectives (deposit, barrier, read, barrier);
    * ``barrier`` — a reusable :class:`threading.Barrier` sized to the group;
    * ``mailboxes`` — per (src, dst) FIFO queues for point-to-point messages;
    * ``registry`` + ``lock`` — a scratch dict used to create sub-group state
      exactly once during ``split``.
    """

    def __init__(self, size: int):
        if size < 1:
            raise CommunicatorError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self.slots: List[Any] = [None] * size
        self.barrier = threading.Barrier(size)
        self.lock = threading.Lock()
        self.registry: Dict[Any, Any] = {}
        self._mailboxes: Dict[Tuple[int, int], "queue.SimpleQueue"] = {}
        self._mailbox_lock = threading.Lock()

    def mailbox(self, src: int, dst: int) -> "queue.SimpleQueue":
        key = (src, dst)
        with self._mailbox_lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = queue.SimpleQueue()
                self._mailboxes[key] = box
            return box

    def wait(self) -> None:
        """Block until every rank of the group reaches this point."""
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError as exc:  # pragma: no cover - only on rank crash
            raise CommunicatorError("a peer rank failed; barrier broken") from exc

    def abort(self) -> None:
        """Break the barrier so peer ranks do not hang after a failure."""
        self.barrier.abort()


class ThreadBackend:
    """Launches an SPMD program on ``n_ranks`` threads and collects results.

    Parameters
    ----------
    n_ranks:
        Number of SPMD ranks (threads) to run.
    name:
        Optional label used in thread names, helpful when debugging.
    """

    def __init__(self, n_ranks: int, name: str = "spmd"):
        if n_ranks < 1:
            raise CommunicatorError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.name = name

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Run ``program(comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values in rank order.  If any rank raises,
        the first exception (by rank) is re-raised in the caller after all
        threads have stopped.
        """
        # Imported here to avoid a circular import at module load time.
        from repro.comm.communicator import Comm

        state = SharedGroupState(self.n_ranks)
        results: List[Any] = [None] * self.n_ranks

        def worker(rank: int) -> None:
            comm = Comm(state=state, rank=rank, group_ranks=tuple(range(self.n_ranks)))
            try:
                results[rank] = program(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - must not hang peers
                results[rank] = _RankFailure(rank, exc)
                state.abort()

        if self.n_ranks == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(rank,), name=f"{self.name}-rank{rank}")
                for rank in range(self.n_ranks)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        failures = [r for r in results if isinstance(r, _RankFailure)]
        if failures:
            first = min(failures, key=lambda f: f.rank)
            raise first.exception
        return results


def run_spmd(
    n_ranks: int,
    program: Callable[..., Any],
    *args: Any,
    name: str = "spmd",
    **kwargs: Any,
) -> List[Any]:
    """Convenience wrapper: run ``program(comm, *args, **kwargs)`` on ``n_ranks`` ranks."""
    return ThreadBackend(n_ranks, name=name).run(program, *args, **kwargs)
