"""The multi-process SPMD backend: true parallelism over shared memory.

:class:`ProcessBackend` runs one OS process per rank, so the ranks escape the
GIL and genuinely execute concurrently — including the pure-Python hot spots
(the BPP active-set bookkeeping inside NLS) that the thread backend can only
interleave.  This is the substrate that can actually *observe* the speedups
the paper's §6 evaluation measures, rather than merely verifying the
communication structure of Algorithms 2 and 3.

Design
------
The algorithms in :mod:`repro.core` only ever talk to
:class:`~repro.comm.communicator.Comm`, and ``Comm``'s native collectives
follow a deposit / barrier / read / barrier protocol against the group
state's ``slots``.  The process backend therefore swaps in a group state
whose pieces cross process boundaries:

* **deposit slots** live in :mod:`multiprocessing.shared_memory` segments,
  one per world rank (single writer, any reader).  A deposit writes a small
  fixed header (kind, dtype, shape) followed by the raw array bytes; a read
  returns a zero-copy :class:`numpy.ndarray` **view** of the peer's segment.
  No pickling happens for array payloads, so the per-iteration collectives —
  including their ``out=`` / :attr:`Comm.workspace` fast paths — move bytes
  exactly once, shared memory to caller buffer.  Non-array payloads (the
  ``split`` metadata, ``scatter``'s block lists) fall back to pickling into
  the same segment; they are setup-phase, not hot-path.
* **segments grow by generation**: a deposit larger than the current segment
  creates a fresh, doubled segment named ``<session>-r<rank>-g<gen>`` and
  publishes the new generation number in a tiny shared control array;
  readers re-attach by name when they observe a bumped generation.
* **barriers** are dissemination barriers over per-rank message queues
  (``log2 p`` rounds of tokens), so sub-communicators created *after* the
  fork — the processor grid's row/column communicators — synchronize without
  needing pre-created OS primitives.
* **point-to-point** messages ride the same per-destination queue, tagged by
  (group, source); the receiver buffers out-of-order tokens, preserving
  per-sender FIFO order.

Failure handling: a rank that raises broadcasts an abort token and ships its
exception to the parent; the parent also watches for ranks that die without
reporting (killed, segfaulted) and injects a
:class:`~repro.util.errors.CommunicatorError` **naming the dead rank** into
the survivors, which unwind as :class:`PeerAbortError` echoes so
:func:`raise_first_failure` surfaces the root cause.

The backend requires the ``fork`` start method (the SPMD programs close over
unpicklable state — matrices, configs, observers — which fork inherits for
free) and is therefore POSIX-only; :func:`make_backend` raises a clear
:class:`~repro.util.errors.CommunicatorError` elsewhere.  Determinism: all
reductions still run in rank order inside ``Comm``, so for a fixed seed the
factors are byte-identical to the thread and lockstep backends (asserted by
the parity tests).
"""

from __future__ import annotations

import os
import pickle
import queue
import struct
import threading
import time
import uuid
import warnings
from collections import deque
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.backends.base import (
    Backend,
    PeerAbortError,
    SharedGroupState,
    _RankFailure,
    raise_first_failure,
    register_backend,
)
from repro.util.errors import CommunicatorError

#: Fixed slot header: kind, payload bytes, ndim, 16 shape entries, dtype str.
_HEADER_FMT = "<3q16q64s"
_HEADER_BYTES = 256
assert struct.calcsize(_HEADER_FMT) <= _HEADER_BYTES
_MAX_DIMS = 16
_DTYPE_BYTES = 64

_KIND_EMPTY, _KIND_ARRAY, _KIND_PICKLE = 0, 1, 2

#: Key prefix of abort tokens (never collides with barrier/message keys,
#: which are tuples).
_ABORT = "__abort__"

#: Initial per-rank deposit-slot capacity; grows by doubling on demand.
DEFAULT_SLOT_BYTES = 1 << 20


def available_cpus() -> int:
    """CPUs actually available to this process (affinity/cgroup aware).

    ``os.cpu_count()`` reports the host's logical CPUs, which overstates what
    a container pinned to a subset of cores can use — that would both hide
    real oversubscription and make CI speedup floors fire on hardware that
    cannot meet them.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment by name without re-registering ownership.

    Python 3.13 grew a ``track`` parameter (attachments would otherwise be
    double-registered with the resource tracker and double-unlinked);
    earlier versions never tracked attachments.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


class _ProcessRuntime:
    """Fork-inherited plumbing shared by the parent and every rank process.

    Created in the parent *before* the fork, so the queues, the control
    segment and the generation-0 data segments are plain inherited OS
    resources.  After the fork each process calls :meth:`bind` with its rank;
    everything mutable past that point (token buffers, segment caches, barrier
    epochs) is per-process state.
    """

    def __init__(self, ctx, n_ranks: int, slot_bytes: int, timeout: float):
        self.n_ranks = n_ranks
        self.timeout = timeout
        self.session = f"repro-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        #: One incoming token queue per world rank (barrier + p2p traffic).
        self.queues = [ctx.Queue() for _ in range(n_ranks)]
        #: Published data-segment generation per world rank (shared int64s).
        self.control = shared_memory.SharedMemory(
            create=True, name=f"{self.session}-ctl", size=8 * n_ranks
        )
        self.generations = np.ndarray((n_ranks,), dtype=np.int64, buffer=self.control.buf)
        self.generations[:] = 0
        #: Generation-0 deposit segments, created pre-fork and inherited.
        self._segments: Dict[Tuple[int, int], shared_memory.SharedMemory] = {
            (r, 0): shared_memory.SharedMemory(
                create=True, name=self._segment_name(r, 0), size=slot_bytes
            )
            for r in range(n_ranks)
        }
        # -- per-process state (reset by bind() in each child) --------------
        self.rank: Optional[int] = None  # None = the parent/monitor process
        self._buffers: Dict[Any, deque] = {}
        # Token demux is shared by the rank's main thread and the nonblocking
        # helper threads: the condition guards _buffers, _draining elects a
        # single queue drainer at a time (the rank has exactly one incoming
        # queue), and waiters for already-buffered keys wake on notify_all.
        # Created pre-fork while single-threaded, so fork inheritance is safe.
        self._buf_cond = threading.Condition()
        self._draining = False
        self._epochs: Dict[Any, int] = {}
        self._grown: List[shared_memory.SharedMemory] = []
        self._aborted = False
        self._abort_reason: Optional[str] = None

    def _segment_name(self, rank: int, generation: int) -> str:
        return f"{self.session}-r{rank}-g{generation}"

    def bind(self, rank: int) -> None:
        """Adopt ``rank``'s identity in a freshly forked child."""
        self.rank = rank

    # -- deposit slots ------------------------------------------------------
    def _segment(self, rank: int) -> shared_memory.SharedMemory:
        """The current-generation segment of ``rank``, attaching if it grew."""
        generation = int(self.generations[rank])
        key = (rank, generation)
        seg = self._segments.get(key)
        if seg is None:
            seg = _attach_segment(self._segment_name(rank, generation))
            self._segments[key] = seg
        return seg

    def _writable_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        """This rank's segment, grown (new generation) if ``nbytes`` won't fit."""
        rank = self.rank
        assert rank is not None, "only bound rank processes deposit"
        seg = self._segment(rank)
        if seg.size < nbytes:
            generation = int(self.generations[rank]) + 1
            grown = shared_memory.SharedMemory(
                create=True,
                name=self._segment_name(rank, generation),
                size=max(nbytes, 2 * seg.size),
            )
            self._segments[(rank, generation)] = grown
            self._grown.append(grown)
            # Publish *after* the segment exists; peers only look for the new
            # name once they read the bumped generation (and only after the
            # post-deposit barrier, which orders these writes for them).
            self.generations[rank] = generation
            return grown
        return seg

    def deposit(self, value: Any) -> None:
        """Write ``value`` into this rank's slot (arrays raw, the rest pickled)."""
        if (
            isinstance(value, np.ndarray)
            and not value.dtype.hasobject
            and value.dtype.names is None
            and value.ndim <= _MAX_DIMS
            and len(value.dtype.str.encode("ascii", "replace")) <= _DTYPE_BYTES
        ):
            arr = np.ascontiguousarray(value)
            seg = self._writable_segment(_HEADER_BYTES + arr.nbytes)
            shape = list(arr.shape) + [0] * (_MAX_DIMS - arr.ndim)
            struct.pack_into(
                _HEADER_FMT, seg.buf, 0,
                _KIND_ARRAY, arr.nbytes, arr.ndim, *shape,
                arr.dtype.str.encode("ascii"),
            )
            if arr.nbytes:
                view = np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=_HEADER_BYTES
                )
                np.copyto(view, arr)
                del view
            return
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        seg = self._writable_segment(_HEADER_BYTES + len(blob))
        struct.pack_into(
            _HEADER_FMT, seg.buf, 0,
            _KIND_PICKLE, len(blob), 0, *([0] * _MAX_DIMS), b"",
        )
        seg.buf[_HEADER_BYTES:_HEADER_BYTES + len(blob)] = blob

    def read_slot(self, rank: int) -> Any:
        """Read ``rank``'s deposit: a zero-copy array view, or the unpickled object."""
        seg = self._segment(rank)
        unpacked = struct.unpack_from(_HEADER_FMT, seg.buf, 0)
        kind, nbytes, ndim = unpacked[0], unpacked[1], unpacked[2]
        if kind == _KIND_ARRAY:
            shape = tuple(unpacked[3:3 + ndim])
            dtype = np.dtype(unpacked[19].rstrip(b"\x00").decode("ascii"))
            return np.ndarray(shape, dtype=dtype, buffer=seg.buf, offset=_HEADER_BYTES)
        if kind == _KIND_PICKLE:
            return pickle.loads(bytes(seg.buf[_HEADER_BYTES:_HEADER_BYTES + nbytes]))
        raise CommunicatorError(
            f"rank {self.rank} read rank {rank}'s deposit slot before any deposit "
            "(collective protocol violation)"
        )

    # -- token transport (barriers + point-to-point) ------------------------
    def send_token(self, dst: int, key: Any, payload: Any) -> None:
        if dst == self.rank:
            with self._buf_cond:
                self._buffers.setdefault(key, deque()).append(payload)
                self._buf_cond.notify_all()
            return
        self.queues[dst].put((key, payload))

    #: Drain slice for the elected queue reader: short enough that a waiter
    #: whose token was stolen into the buffer sees it promptly, long enough
    #: that an idle wait is not a busy loop.
    _DRAIN_SLICE = 0.05

    def recv_token(self, key: Any, timeout: float, empty_on_timeout: bool = False) -> Any:
        """Wait for a token matching ``key``, buffering out-of-order arrivals.

        Thread-safe: the rank's main thread (barriers, blocking p2p) and its
        nonblocking helper threads may wait concurrently.  One caller at a
        time is elected to drain the rank's single incoming queue in short
        slices; everything it pulls is buffered by key under the condition,
        so the other waiters wake via ``notify_all`` when their key lands.
        """
        deadline = time.monotonic() + timeout
        own = self.queues[self.rank]
        with self._buf_cond:
            while True:
                bucket = self._buffers.get(key)
                if bucket:
                    return bucket.popleft()
                if self._aborted:
                    self._raise_abort()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if empty_on_timeout:
                        raise queue.Empty
                    raise CommunicatorError(
                        f"rank {self.rank} timed out after {timeout:g}s waiting "
                        f"for token {key!r}; a peer rank likely crashed or is stuck"
                    )
                if self._draining:
                    # Another thread holds the queue; sleep until it buffers
                    # something (or our slice elapses and we re-check).
                    self._buf_cond.wait(timeout=min(remaining, self._DRAIN_SLICE))
                    continue
                self._draining = True
                self._buf_cond.release()
                got = None
                try:
                    try:
                        got = own.get(timeout=min(remaining, self._DRAIN_SLICE))
                    except queue.Empty:
                        pass
                finally:
                    self._buf_cond.acquire()
                    self._draining = False
                if got is None:
                    self._buf_cond.notify_all()
                    continue
                got_key, payload = got
                if got_key == _ABORT:
                    self._aborted = True
                    self._abort_reason = payload
                    self._buf_cond.notify_all()
                    self._raise_abort()
                self._buffers.setdefault(got_key, deque()).append(payload)
                self._buf_cond.notify_all()

    def _raise_abort(self) -> None:
        raise PeerAbortError(self._abort_reason or "a peer rank failed; run aborted")

    def broadcast_abort(self, reason: str) -> None:
        """Wake every rank (blocked or not) with an abort token."""
        with self._buf_cond:
            self._aborted = True
            self._abort_reason = reason
            self._buf_cond.notify_all()
        for r in range(self.n_ranks):
            if r != self.rank:
                self.queues[r].put((_ABORT, reason))

    # -- dissemination barrier ----------------------------------------------
    def barrier(self, uid: Any, members: Tuple[int, ...]) -> None:
        """Synchronize the ``members`` group (log2 rounds of shifted tokens)."""
        n = len(members)
        if n == 1:
            if self._aborted:
                self._raise_abort()
            return
        me = members.index(self.rank)
        epoch = self._epochs.get(uid, 0)
        self._epochs[uid] = epoch + 1
        distance, round_no = 1, 0
        while distance < n:
            dst = members[(me + distance) % n]
            src = members[(me - distance) % n]
            self.send_token(dst, ("bar", uid, epoch, round_no, self.rank), None)
            self.recv_token(("bar", uid, epoch, round_no, src), timeout=self.timeout)
            distance *= 2
            round_no += 1

    # -- cleanup ------------------------------------------------------------
    def release_grown(self) -> None:
        """Unlink the segments this (child) process created by growing its slot.

        Safe at program end: the closing barrier of every collective
        guarantees peers finished reading, and unlinking only removes the
        name — peers' existing attachments stay mapped.
        """
        for seg in self._grown:
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._grown = []

    def release_parent(self) -> None:
        """Unlink everything the parent created, plus orphans of killed ranks."""
        for rank in range(self.n_ranks):
            # Grown segments are normally unlinked by their creating child;
            # sweep survivors (e.g. a rank killed mid-run) by name.
            for generation in range(1, int(self.generations[rank]) + 1):
                key = (rank, generation)
                if key in self._segments:
                    continue
                try:
                    orphan = _attach_segment(self._segment_name(rank, generation))
                except FileNotFoundError:
                    continue
                try:
                    orphan.unlink()
                    orphan.close()
                except Exception:  # pragma: no cover - best-effort sweep
                    pass
        for seg in self._segments.values():
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
            try:
                seg.close()
            except BufferError:  # pragma: no cover - a live view pins the map
                pass
        # Drop the numpy view before closing its backing buffer.
        del self.generations
        try:
            self.control.unlink()
            self.control.close()
        except (FileNotFoundError, BufferError):  # pragma: no cover
            pass
        for q in self.queues:
            q.cancel_join_thread()
            q.close()


class _ProcessSlots:
    """Group-local view of the per-world-rank shared-memory deposit slots."""

    def __init__(self, runtime: _ProcessRuntime, members: Tuple[int, ...]):
        self._runtime = runtime
        self._members = members

    def __setitem__(self, local_rank: int, value: Any) -> None:
        world = self._members[local_rank]
        if world != self._runtime.rank:
            raise CommunicatorError(
                f"rank {self._runtime.rank} attempted to write rank {world}'s "
                "deposit slot; slots are single-writer"
            )
        self._runtime.deposit(value)

    def __getitem__(self, local_rank: int) -> Any:
        return self._runtime.read_slot(self._members[local_rank])

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return (self[i] for i in range(len(self._members)))


class _ProcessMailbox:
    """FIFO (src → dst) channel over the destination rank's token queue."""

    def __init__(self, runtime: _ProcessRuntime, uid: Any, src: int, dst: int):
        self._runtime = runtime
        self._key = ("msg", uid, src)
        self._dst = dst

    def put(self, item: Any) -> None:
        self._runtime.send_token(self._dst, self._key, item)

    def get(self, timeout: Optional[float] = None) -> Any:
        effective = self._runtime.timeout if timeout is None else timeout
        # queue.Empty on timeout matches Comm.recv's diagnostic handling.
        return self._runtime.recv_token(self._key, effective, empty_on_timeout=True)


class ProcessGroupState(SharedGroupState):
    """Group state whose slots, barriers and mailboxes cross process boundaries.

    The deposit / barrier / read / barrier protocol of the native collectives
    is inherited from :class:`Comm` unchanged; only the substrate differs —
    shared-memory slots, dissemination barriers, queue-backed mailboxes.
    """

    def __init__(
        self,
        size: int,
        runtime: _ProcessRuntime,
        uid: Any,
        members: Tuple[int, ...],
    ):
        super().__init__(size)
        if len(members) != size:
            raise CommunicatorError(
                f"group of size {size} constructed with {len(members)} members"
            )
        self.runtime = runtime
        self.uid = uid
        self.members = tuple(members)
        self.slots = _ProcessSlots(runtime, self.members)

    def _new_mailbox(self, src: int, dst: int) -> _ProcessMailbox:
        return _ProcessMailbox(
            self.runtime, self.uid, self.members[src], self.members[dst]
        )

    def make_subgroup(self, size, members=None, reg_key=None) -> "ProcessGroupState":
        if members is None:
            raise CommunicatorError(
                "process-backend subgroups need the member ranks; update the "
                "caller to pass make_subgroup(size, members=..., reg_key=...)"
            )
        world_members = tuple(self.members[i] for i in members)
        return ProcessGroupState(
            size, self.runtime, (self.uid, reg_key), world_members
        )

    def wait(self) -> None:
        self.runtime.barrier(self.uid, self.members)

    def abort(self) -> None:
        self.runtime.broadcast_abort(
            f"rank {self.runtime.rank} failed; peers aborted"
        )


def _picklable_exception(rank: int, exc: BaseException) -> BaseException:
    """The exception itself if it survives pickling, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return CommunicatorError(
            f"rank {rank} failed with unpicklable {type(exc).__name__}: {exc}"
        )


class ProcessBackend(Backend):
    """Launches an SPMD program on ``n_ranks`` OS processes (fork + shared memory).

    Parameters
    ----------
    n_ranks:
        Number of SPMD ranks (processes).  Exceeding the host's CPU count
        emits a :class:`RuntimeWarning` — the ranks still run, but
        oversubscribed, which defeats the point of a process backend.
    name:
        Label used in process names and diagnostics.
    slot_bytes:
        Initial capacity of each rank's shared-memory deposit slot; grown
        automatically (doubling) when a larger array is deposited.
    timeout:
        Seconds a rank waits on a barrier token before declaring the group
        stuck (a generous bound on the slowest rank's compute phase).
    """

    parallel_python = True
    cross_process = True

    def __init__(
        self,
        n_ranks: int,
        name: str = "spmd",
        *,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        timeout: float = 300.0,
    ):
        super().__init__(n_ranks, name=name)
        self.slot_bytes = int(slot_bytes)
        self.timeout = float(timeout)
        cpus = available_cpus()
        if n_ranks > cpus:
            warnings.warn(
                f"process backend: {n_ranks} ranks oversubscribe the "
                f"{cpus} available CPU(s); ranks will time-slice rather than "
                "run concurrently (consider n_ranks <= cpu count, or the "
                "'lockstep' backend for large simulated grids)",
                RuntimeWarning,
                stacklevel=2,
            )

    @staticmethod
    def _fork_context():
        import multiprocessing as mp

        try:
            return mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise CommunicatorError(
                "the 'process' backend requires the fork start method "
                "(POSIX only); use the 'thread' or 'lockstep' backend here"
            ) from None

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        # Imported here to avoid a circular import at module load time.
        from repro.comm.communicator import Comm

        if self.n_ranks == 1:
            # A single rank needs no cross-process machinery; run inline on
            # ordinary in-process group state, like the other backends.
            comm = Comm(state=SharedGroupState(1), rank=0, group_ranks=(0,))
            return [program(comm, *args, **kwargs)]

        ctx = self._fork_context()
        runtime = _ProcessRuntime(ctx, self.n_ranks, self.slot_bytes, self.timeout)
        world = ProcessGroupState(
            self.n_ranks, runtime, uid=("world",), members=tuple(range(self.n_ranks))
        )
        result_queue = ctx.Queue()
        observers = kwargs.get("observers") or ()

        def worker(rank: int) -> None:
            runtime.bind(rank)
            comm = Comm(
                state=world, rank=rank, group_ranks=tuple(range(self.n_ranks))
            )
            try:
                value = program(comm, *args, **kwargs)
                extra = None
                if rank == 0 and observers:
                    # Ship rank 0's observer state home so stateful observers
                    # (history recorders, checkpointers) behave as they do on
                    # the in-process backends.  Best-effort: unpicklable
                    # observers simply keep their parent-side state.
                    try:
                        states = [getattr(o, "__dict__", None) for o in observers]
                        pickle.dumps(states)
                        extra = states
                    except Exception:
                        extra = None
                result_queue.put((rank, "ok", value, extra))
            except BaseException as exc:  # noqa: BLE001 - must not strand peers
                runtime.broadcast_abort(
                    f"rank {rank} failed: {type(exc).__name__}: {exc}"
                )
                result_queue.put((rank, "err", _picklable_exception(rank, exc), None))
            finally:
                runtime.release_grown()

        processes = [
            ctx.Process(target=worker, args=(rank,), name=f"{self.name}-rank{rank}")
            for rank in range(self.n_ranks)
        ]
        for proc in processes:
            proc.start()

        results: List[Any] = [None] * self.n_ranks
        collected = [False] * self.n_ranks
        observer_states = None
        try:
            while not all(collected):
                try:
                    rank, status, payload, extra = result_queue.get(timeout=0.1)
                except queue.Empty:
                    self._reap_dead_ranks(
                        processes, collected, results, result_queue, runtime
                    )
                    continue
                collected[rank] = True
                if status == "ok":
                    results[rank] = payload
                    if rank == 0:
                        observer_states = extra
                else:
                    results[rank] = _RankFailure(rank, payload)
            for proc in processes:
                proc.join()
        finally:
            for proc in processes:
                if proc.is_alive():  # pragma: no cover - defensive teardown
                    proc.terminate()
                    proc.join()
            result_queue.cancel_join_thread()
            result_queue.close()
            runtime.release_parent()

        if observer_states is not None:
            for observer, state in zip(observers, observer_states):
                if isinstance(state, dict):
                    observer.__dict__.update(state)
        raise_first_failure(results)
        return results

    def _reap_dead_ranks(
        self, processes, collected, results, result_queue, runtime
    ) -> None:
        """Detect ranks that died without reporting and unblock their peers."""
        for rank, proc in enumerate(processes):
            if collected[rank] or proc.is_alive() or proc.exitcode is None:
                continue
            # The process is gone; give any in-flight result a moment to
            # drain through the queue's feeder thread before declaring death.
            deadline = time.monotonic() + 1.0
            drained = False
            while time.monotonic() < deadline:
                try:
                    got = result_queue.get(timeout=0.1)
                except queue.Empty:
                    continue
                other_rank, status, payload, extra = got
                collected[other_rank] = True
                if status == "ok":
                    results[other_rank] = payload
                else:
                    results[other_rank] = _RankFailure(other_rank, payload)
                if other_rank == rank:
                    drained = True
                    break
            if drained:
                continue
            message = (
                f"rank {rank} (pid {proc.pid}) died with exit code "
                f"{proc.exitcode} before returning its result; "
                "surviving ranks were aborted"
            )
            collected[rank] = True
            results[rank] = _RankFailure(rank, CommunicatorError(message))
            runtime.broadcast_abort(message)


register_backend("process", ProcessBackend)
