"""The MPI wire backend: the Backend ABC mapped onto real MPI via ``mpi4py``.

Import-guarded like the numba kernels (:mod:`repro.nls.kernels_numba`): when
``mpi4py`` is not installed the module still imports cleanly, sets
:data:`MPI4PY_AVAILABLE` to ``False`` and registers the name as
*unavailable* — ``--backend mpi`` then fails with an actionable message
instead of a generic "unknown backend", and ``available_backends()`` simply
omits it.

Unlike every other backend, MPI ranks are not launched *by* this process:
the job is started externally (``mpirun -n 4 python program.py``) and every
rank executes the whole script.  :meth:`MPIBackend.run` therefore checks
that ``MPI.COMM_WORLD`` matches the requested ``n_ranks`` and raises a
:class:`~repro.util.errors.CommunicatorError` telling the user the exact
``mpirun`` invocation otherwise.  Each rank returns the full rank-ordered
result list (collected with an MPI allgather), so calling code behaves
identically on every rank.

Byte-identity: data-movement collectives (allgather, bcast, gather,
scatter) map directly onto ``mpi4py``'s pickle-based collectives — they
move bytes exactly.  Reductions deliberately do **not** use ``MPI.SUM``:
MPI's internal reduction-tree order differs from the native backends'
rank-order combine, so :class:`MPIComm` inherits the socket backend's
gather-all-then-combine-in-rank-order implementation (its
:meth:`~repro.comm.backends.socket.SocketComm._gather_all` hook re-routed
through ``mpicomm.allgather``), keeping factors byte-identical to
thread/process/lockstep/socket.

Nonblocking collectives run in **eager** mode (the lockstep precedent):
``CommHandle`` completes at issue time, because helper-thread progress would
require ``MPI_THREAD_MULTIPLE``, which many MPI builds do not provide.  The
capability flags and ``DEFAULT_OVERLAP_EFFICIENCY["mpi"] = 0.0`` declare
exactly that degradation.
"""

from __future__ import annotations

import queue
import time
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.comm.backends.base import (
    Backend,
    SharedGroupState,
    register_backend,
    register_unavailable_backend,
)
from repro.comm.backends.socket import SocketComm, _WireSlots
from repro.comm.communicator import Comm, _nwords
from repro.util.errors import CommunicatorError

try:  # pragma: no cover - exercised by the CI mpi leg
    from mpi4py import MPI

    MPI4PY_AVAILABLE = True
except ImportError:  # pragma: no cover - default environment
    MPI = None
    MPI4PY_AVAILABLE = False

#: MPI tag carrying the point-to-point mailbox traffic.  The repro-level
#: message tag travels inside the payload tuple, exactly as the in-process
#: mailboxes carry ``(tag, payload)``.
_P2P_TAG = 7001
#: Seconds between Iprobe polls while a mailbox get waits for a message.
_POLL_INTERVAL = 0.0005


class _MPIMailbox:
    """FIFO (src → dst) channel over MPI point-to-point messages."""

    def __init__(self, mpicomm, src: int, dst: int):
        self._mpicomm = mpicomm
        self._src = src
        self._dst = dst

    def put(self, item: Any) -> None:
        self._mpicomm.send(item, dest=self._dst, tag=_P2P_TAG)

    def get(self, timeout: Optional[float] = None) -> Any:
        effective = 60.0 if timeout is None else timeout
        deadline = time.monotonic() + effective
        # mpi4py has no timed recv; poll so Comm.recv's timeout diagnostics
        # (queue.Empty -> CommunicatorError naming the source) keep working.
        while not self._mpicomm.Iprobe(source=self._src, tag=_P2P_TAG):
            if time.monotonic() >= deadline:
                raise queue.Empty
            time.sleep(_POLL_INTERVAL)
        return self._mpicomm.recv(source=self._src, tag=_P2P_TAG)


class MPIGroupState(SharedGroupState):
    """Group state backed by one (duplicated) mpi4py communicator."""

    #: Eager nonblocking completion: helper threads would need
    #: MPI_THREAD_MULTIPLE, which is not guaranteed (see module docstring).
    nonblocking_mode = "eager"

    def __init__(self, mpicomm):
        super().__init__(mpicomm.Get_size())
        self.mpicomm = mpicomm
        self.slots = _WireSlots(self.size)

    def _new_mailbox(self, src: int, dst: int) -> _MPIMailbox:
        return _MPIMailbox(self.mpicomm, src, dst)

    def make_subgroup(self, size, members=None, reg_key=None):
        raise CommunicatorError(
            "MPI sub-groups are created with MPI_Comm_split; MPIComm.split "
            "must be used instead of the registry-based make_subgroup path"
        )

    def wait(self) -> None:
        self.mpicomm.Barrier()

    def abort(self) -> None:  # pragma: no cover - only reached on rank failure
        self.mpicomm.Abort(1)


class MPIComm(SocketComm):
    """A :class:`~repro.comm.communicator.Comm` over real MPI collectives.

    Data movement uses ``mpi4py`` collectives directly; reductions inherit
    the socket backend's gather-then-rank-order-combine (via the
    :meth:`_gather_all` hook) for byte identity with every other backend.
    """

    def _make_comm(self, state, rank, group_ranks, parent):
        return MPIComm(state=state, rank=rank, group_ranks=group_ranks, parent=parent)

    def _gather_all(self, array: np.ndarray) -> List[np.ndarray]:
        parts = self._state.mpicomm.allgather(array)
        return [np.asarray(p) for p in parts]

    # -- native MPI data movement -------------------------------------------
    def allgather_object(self, obj: Any) -> List[Any]:
        if self.size == 1:
            return [obj]
        items = self._state.mpicomm.allgather(obj)
        self._record("all_gather", _nwords(obj) * self.size)
        return list(items)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.size == 1:
            return obj
        value = self._state.mpicomm.bcast(obj, root=root)
        self._record("broadcast", _nwords(value))
        return value

    def gather(self, array: np.ndarray, root: int = 0) -> Optional[List[np.ndarray]]:
        array = np.asarray(array)
        if self.size == 1:
            return [array]
        parts = self._state.mpicomm.gather(array, root=root)
        self._record("gather", _nwords(array) * self.size)
        if parts is None:
            return None
        return [np.asarray(p) for p in parts]

    def scatter(
        self, arrays: Optional[Sequence[np.ndarray]], root: int = 0
    ) -> np.ndarray:
        if self.size == 1:
            assert arrays is not None
            return np.asarray(arrays[0])
        if self.rank == root and (arrays is None or len(arrays) != self.size):
            raise CommunicatorError(
                f"root must provide exactly {self.size} arrays to scatter"
            )
        mine = np.asarray(self._state.mpicomm.scatter(arrays, root=root))
        self._record("scatter", _nwords(mine) * self.size)
        return mine

    # -- communicator management --------------------------------------------
    def split(self, color: int, key: Optional[int] = None) -> "MPIComm":
        """Partition via ``MPI_Comm_split`` (same ordering as the base split)."""
        if key is None:
            key = self.rank
        info = self.allgather_object((int(color), int(key), self.rank))
        members = sorted(
            [(k, r) for (c, k, r) in info if c == int(color)],
            key=lambda kr: (kr[0], kr[1]),
        )
        group_local_ranks = [r for _, r in members]
        new_rank = group_local_ranks.index(self.rank)
        group_world_ranks = tuple(self._group_ranks[r] for r in group_local_ranks)
        sub_mpicomm = self._state.mpicomm.Split(int(color), new_rank)
        sub_state = MPIGroupState(sub_mpicomm)
        return MPIComm(
            state=sub_state,
            rank=new_rank,
            group_ranks=group_world_ranks,
            parent=self,
        )


class MPIBackend(Backend):
    """Runs an SPMD program on the ranks of an externally launched MPI job.

    The job must already be running under ``mpirun``/``srun`` with exactly
    ``n_ranks`` processes; :meth:`run` raises a clear error (with the exact
    ``mpirun`` command) when ``MPI.COMM_WORLD`` is sized differently.
    """

    parallel_python = True
    cross_process = True
    wire_transport = True

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        world = MPI.COMM_WORLD
        world_size = world.Get_size()
        if self.n_ranks == 1 and world_size == 1:
            comm = Comm(state=SharedGroupState(1), rank=0, group_ranks=(0,))
            return [program(comm, *args, **kwargs)]
        if world_size != self.n_ranks:
            raise CommunicatorError(
                f"the 'mpi' backend needs an MPI job with exactly "
                f"{self.n_ranks} rank(s), but MPI.COMM_WORLD has {world_size}; "
                f"launch with e.g. `mpirun -n {self.n_ranks} python "
                "your_program.py` (the in-repo alternatives 'socket' and "
                "'process' launch their own ranks)"
            )
        # Dup so the program's traffic never collides with other libraries'
        # use of COMM_WORLD.
        state = MPIGroupState(world.Dup())
        comm = MPIComm(
            state=state,
            rank=state.mpicomm.Get_rank(),
            group_ranks=tuple(range(world_size)),
        )
        try:
            value = program(comm, *args, **kwargs)
        except BaseException:  # noqa: BLE001 - a hung collective is worse
            import traceback

            traceback.print_exc()
            world.Abort(1)
            raise  # pragma: no cover - Abort does not return
        # Every rank returns the full rank-ordered result list, so caller
        # code behaves identically regardless of which rank it runs on.
        return list(state.mpicomm.allgather(value))


if MPI4PY_AVAILABLE:  # pragma: no cover - exercised by the CI mpi leg
    register_backend("mpi", MPIBackend)
else:
    register_unavailable_backend(
        "mpi",
        "mpi4py is not installed; install an MPI implementation and mpi4py "
        "(e.g. `apt-get install libopenmpi-dev openmpi-bin && pip install "
        "mpi4py`) and launch under `mpirun -n <ranks>`",
    )
