"""The TCP wire backend: one OS process per rank over a real socket mesh.

:class:`SocketBackend` is the first substrate whose ranks communicate the way
a distributed-memory machine does — length-prefixed frames over persistent
TCP connections (see :mod:`repro.comm.wire` for the frame layout) instead of
shared memory.  Today the ranks are forked onto one host and connect over
loopback; because nothing below :class:`_SocketRuntime` assumes a shared
kernel, pointing the rank mesh at a ``--hosts`` rank file is a launcher
change, not a transport change (tracked as future work in ROADMAP.md).

Design
------
* **Mesh construction.**  The parent binds one listening socket per rank on
  ``127.0.0.1:0`` *before* forking, so every child knows every port and the
  kernel backlog absorbs early connectors.  After the fork, rank ``r`` keeps
  its own listener, *connects* to every rank ``s < r`` (announcing itself
  with a hello frame) and *accepts* from every rank ``t > r`` — a full mesh
  of ``p(p-1)/2`` persistent ``TCP_NODELAY`` connections.
* **Frame demux.**  One daemon reader thread per peer connection decodes
  incoming frames and buckets them by key under a shared condition; waiting
  is purely key-based, so the rank's main thread and its nonblocking helper
  threads (:mod:`repro.comm.nonblocking`) can block on different tokens
  concurrently.  Sends take a per-peer lock, so frames never interleave.
* **Collectives.**  The native :class:`~repro.comm.communicator.Comm`
  collectives need shared deposit slots, which do not exist on a wire.
  :class:`SocketComm` therefore overrides them with point-to-point
  algorithms from :mod:`repro.comm.collectives`: gathers ride
  :func:`~repro.comm.collectives.recursive_doubling_allgather` (bitwise
  exact — it only moves bytes), and the reductions gather the full
  contributions the same way, then apply the native rank-order
  ``ReduceOp.combine`` locally — the exact recipe the nonblocking helper
  bodies already use, so the factors stay **byte-identical** to the thread /
  process / lockstep backends (recursive halving's pairwise partial sums
  would not be).  The physical p2p traffic is silenced on the cost ledger
  and each collective books the one modeled §2.3 entry instead, so ledgers
  match the other backends entry for entry.
* **Failure handling.**  A reader that sees EOF or a reset raises an abort
  *naming the dead peer*; every blocked waiter wakes immediately with a
  :class:`~repro.util.errors.CommunicatorError` subclass carrying that name.
  Recv timeouts (``timeout=``) and mesh-construction timeouts
  (``connect_timeout=``) also name the peer they were waiting for.  The
  parent additionally reaps ranks that die without reporting, exactly like
  the process backend.

Capability flags: ``parallel_python`` and ``cross_process`` (forked OS
processes), plus ``wire_transport`` — the collectives genuinely serialize
onto a byte stream, so this backend's measurements transfer to multi-node
deployments in a way the shared-memory backends' cannot.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket as socketlib
import threading
import time
import uuid
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.backends.base import (
    Backend,
    PeerAbortError,
    SharedGroupState,
    _RankFailure,
    raise_first_failure,
    register_backend,
)
from repro.comm.backends.process import (
    _picklable_exception,
    available_cpus,
)
from repro.comm.collectives import recursive_doubling_allgather
from repro.comm.communicator import (
    Comm,
    ReduceOp,
    _nwords,
    _require_safe_cast,
)
from repro.comm.wire import encode_frame, read_frame, recv_exact
from repro.util.errors import CommunicatorError

#: Key of abort frames (never collides with the tuple-typed token keys).
_ABORT = "__abort__"
#: Key of the connection-handshake frame announcing the connecting rank.
_HELLO = "__hello__"

#: Default seconds a rank waits on a barrier/recv token before declaring the
#: group stuck, and for the full mesh to come up.
DEFAULT_TIMEOUT = 300.0
DEFAULT_CONNECT_TIMEOUT = 30.0


class _SocketRuntime:
    """Fork-inherited wire plumbing shared by the parent and every rank.

    Created in the parent before the fork so the listening sockets (and
    their ports) are plain inherited resources; everything mutable past
    :meth:`bind` — connections, reader threads, token buffers — is
    per-process state.
    """

    def __init__(self, n_ranks: int, timeout: float, connect_timeout: float):
        self.n_ranks = n_ranks
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.session = f"repro-socket-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        #: One pre-bound listener per rank; children keep only their own.
        self.listeners = [
            socketlib.create_server(("127.0.0.1", 0), backlog=max(n_ranks, 8))
            for _ in range(n_ranks)
        ]
        self.ports = [sock.getsockname()[1] for sock in self.listeners]
        # -- per-process state (populated by bind() in each child) -----------
        self.rank: Optional[int] = None
        self._conns: Dict[int, socketlib.socket] = {}
        self._send_locks: Dict[int, threading.Lock] = {}
        self._readers: List[threading.Thread] = []
        self._buffers: Dict[Any, deque] = {}
        self._cond = threading.Condition()
        self._aborted = False
        self._abort_reason: Optional[str] = None
        self._closing = False
        self._epochs: Dict[Any, int] = {}

    # -- mesh construction ---------------------------------------------------
    def bind(self, rank: int) -> None:
        """Adopt ``rank``'s identity: build this rank's side of the TCP mesh."""
        self.rank = rank
        for other, listener in enumerate(self.listeners):
            if other != rank:
                listener.close()
        own = self.listeners[rank]
        own.settimeout(self.connect_timeout)

        accepted: Dict[int, socketlib.socket] = {}
        accept_error: List[BaseException] = []
        expected_from = set(range(rank + 1, self.n_ranks))

        def acceptor() -> None:
            try:
                while len(accepted) < len(expected_from):
                    conn, _ = own.accept()
                    conn.settimeout(self.connect_timeout)
                    key, peer = read_frame(lambda n: recv_exact(conn, n))
                    if key != _HELLO or peer not in expected_from or peer in accepted:
                        conn.close()
                        raise CommunicatorError(
                            f"rank {rank} received a malformed hello "
                            f"({key!r}, {peer!r}) while building the mesh"
                        )
                    accepted[peer] = conn
            except BaseException as exc:  # noqa: BLE001 - reported by bind()
                accept_error.append(exc)

        accept_thread = None
        if expected_from:
            accept_thread = threading.Thread(
                target=acceptor, name=f"{self.session}-r{rank}-accept", daemon=True
            )
            accept_thread.start()

        try:
            for peer in range(rank):
                try:
                    conn = socketlib.create_connection(
                        ("127.0.0.1", self.ports[peer]), timeout=self.connect_timeout
                    )
                except OSError as exc:
                    raise CommunicatorError(
                        f"rank {rank} could not connect to peer rank {peer} on "
                        f"port {self.ports[peer]} within "
                        f"{self.connect_timeout:g}s: {exc}"
                    ) from exc
                conn.sendall(encode_frame(_HELLO, rank))
                self._register(peer, conn)
            if accept_thread is not None:
                accept_thread.join(self.connect_timeout)
                if accept_thread.is_alive():
                    missing = sorted(expected_from - set(accepted))
                    raise CommunicatorError(
                        f"rank {rank} timed out after {self.connect_timeout:g}s "
                        f"waiting for peer rank(s) {missing} to connect while "
                        "building the socket mesh"
                    )
                if accept_error:
                    raise CommunicatorError(
                        f"rank {rank} failed to accept its peers: {accept_error[0]}"
                    ) from accept_error[0]
                for peer, conn in accepted.items():
                    self._register(peer, conn)
        finally:
            own.close()

        for peer in sorted(self._conns):
            reader = threading.Thread(
                target=self._reader,
                args=(peer, self._conns[peer]),
                name=f"{self.session}-r{rank}-from{peer}",
                daemon=True,
            )
            reader.start()
            self._readers.append(reader)

    def _register(self, peer: int, conn: socketlib.socket) -> None:
        conn.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY, 1)
        conn.settimeout(None)  # reader threads block; EOF ends them
        self._conns[peer] = conn
        self._send_locks[peer] = threading.Lock()

    def close_listeners(self) -> None:
        """Parent-side cleanup after the fork: the children own the mesh now."""
        for listener in self.listeners:
            try:
                listener.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass

    # -- frame demux ---------------------------------------------------------
    def _reader(self, peer: int, conn: socketlib.socket) -> None:
        """Decode frames from ``peer`` forever, bucketing tokens by key."""
        try:
            while True:
                key, payload = read_frame(lambda n: recv_exact(conn, n))
                with self._cond:
                    if key == _ABORT:
                        self._aborted = True
                        self._abort_reason = payload
                    else:
                        self._buffers.setdefault(key, deque()).append(payload)
                    self._cond.notify_all()
        except (ConnectionError, OSError, CommunicatorError):
            with self._cond:
                if not self._closing and not self._aborted:
                    self._aborted = True
                    self._abort_reason = (
                        f"rank {self.rank} lost the connection to peer rank "
                        f"{peer} (connection closed mid-stream); peer rank "
                        f"{peer} likely crashed or was killed"
                    )
                self._cond.notify_all()

    # -- token transport -----------------------------------------------------
    def send_token(self, dst: int, key: Any, payload: Any) -> None:
        if dst == self.rank:
            with self._cond:
                self._buffers.setdefault(key, deque()).append(payload)
                self._cond.notify_all()
            return
        frame = encode_frame(key, payload)
        conn = self._conns[dst]
        try:
            with self._send_locks[dst]:
                conn.sendall(frame)
        except OSError as exc:
            raise PeerAbortError(
                f"rank {self.rank} could not send to peer rank {dst} "
                f"({exc}); peer rank {dst} likely crashed or was killed"
            ) from exc

    def recv_token(
        self, key: Any, timeout: float, empty_on_timeout: bool = False
    ) -> Any:
        """Wait for a token matching ``key`` (reader threads fill the buckets)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                bucket = self._buffers.get(key)
                if bucket:
                    return bucket.popleft()
                if self._aborted:
                    raise PeerAbortError(
                        self._abort_reason or "a peer rank failed; run aborted"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if empty_on_timeout:
                        raise queue.Empty
                    raise CommunicatorError(
                        f"rank {self.rank} timed out after {timeout:g}s waiting "
                        f"for wire token {key!r}; a peer rank likely crashed or "
                        "is stuck"
                    )
                self._cond.wait(remaining)

    def broadcast_abort(self, reason: str) -> None:
        """Wake every rank (local waiters and all peers) with an abort notice."""
        with self._cond:
            self._aborted = True
            self._abort_reason = reason
            self._cond.notify_all()
        for peer in list(self._conns):
            try:
                with self._send_locks[peer]:
                    self._conns[peer].sendall(encode_frame(_ABORT, reason))
            except OSError:  # peer already gone; its readers saw EOF
                pass

    # -- dissemination barrier -----------------------------------------------
    def barrier(self, uid: Any, members: Tuple[int, ...]) -> None:
        """Synchronize the ``members`` group (log2 rounds of shifted tokens)."""
        n = len(members)
        if n == 1:
            with self._cond:
                if self._aborted:
                    raise PeerAbortError(
                        self._abort_reason or "a peer rank failed; run aborted"
                    )
            return
        me = members.index(self.rank)
        epoch = self._epochs.get(uid, 0)
        self._epochs[uid] = epoch + 1
        distance, round_no = 1, 0
        while distance < n:
            dst = members[(me + distance) % n]
            src = members[(me - distance) % n]
            self.send_token(dst, ("bar", uid, epoch, round_no, self.rank), None)
            self.recv_token(("bar", uid, epoch, round_no, src), timeout=self.timeout)
            distance *= 2
            round_no += 1

    # -- teardown ------------------------------------------------------------
    def close(self) -> None:
        """Tear down this rank's side of the mesh (peers see clean EOFs)."""
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        for conn in self._conns.values():
            try:
                conn.shutdown(socketlib.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        for reader in self._readers:
            reader.join(timeout=1.0)


class _WireSlots:
    """Deposit slots do not exist on a wire; any touch is a protocol bug."""

    def __init__(self, size: int):
        self._size = size

    def __len__(self) -> int:
        return self._size

    def _refuse(self) -> None:
        raise CommunicatorError(
            "the socket backend has no shared deposit slots; a collective "
            "fell through to the slot-based base implementation (SocketComm "
            "must override it with a point-to-point algorithm)"
        )

    def __getitem__(self, index):
        self._refuse()

    def __setitem__(self, index, value):
        self._refuse()


class _SocketMailbox:
    """FIFO (src → dst) channel over the destination rank's frame stream."""

    def __init__(self, runtime: _SocketRuntime, uid: Any, src: int, dst: int):
        self._runtime = runtime
        self._key = ("msg", uid, src)
        self._dst = dst

    def put(self, item: Any) -> None:
        self._runtime.send_token(self._dst, self._key, item)

    def get(self, timeout: Optional[float] = None) -> Any:
        effective = self._runtime.timeout if timeout is None else timeout
        # queue.Empty on timeout matches Comm.recv's diagnostic handling.
        return self._runtime.recv_token(self._key, effective, empty_on_timeout=True)


class SocketGroupState(SharedGroupState):
    """Group state whose barriers and mailboxes ride the TCP mesh.

    ``slots`` is a refusal guard: the wire has no shared memory, so
    :class:`SocketComm` overrides every slot-based collective.
    """

    def __init__(
        self,
        size: int,
        runtime: _SocketRuntime,
        uid: Any,
        members: Tuple[int, ...],
    ):
        super().__init__(size)
        if len(members) != size:
            raise CommunicatorError(
                f"group of size {size} constructed with {len(members)} members"
            )
        self.runtime = runtime
        self.uid = uid
        self.members = tuple(members)
        self.slots = _WireSlots(size)

    def _new_mailbox(self, src: int, dst: int) -> _SocketMailbox:
        return _SocketMailbox(
            self.runtime, self.uid, self.members[src], self.members[dst]
        )

    def make_subgroup(self, size, members=None, reg_key=None) -> "SocketGroupState":
        if members is None:
            raise CommunicatorError(
                "socket-backend subgroups need the member ranks; update the "
                "caller to pass make_subgroup(size, members=..., reg_key=...)"
            )
        world_members = tuple(self.members[i] for i in members)
        return SocketGroupState(size, self.runtime, (self.uid, reg_key), world_members)

    def wait(self) -> None:
        self.runtime.barrier(self.uid, self.members)

    def abort(self) -> None:
        self.runtime.broadcast_abort(
            f"rank {self.runtime.rank} failed; peers aborted"
        )


#: Tag for the object-collective star exchanges (setup-phase metadata only);
#: outside the per-round tag ranges used by repro.comm.collectives.
_OBJ_TAG = 2002


class SocketComm(Comm):
    """A :class:`Comm` whose collectives run point-to-point over TCP.

    Gathers use :func:`recursive_doubling_allgather` (moves bytes only, so
    bitwise exact); reductions gather the full contributions and combine
    them locally in rank order — byte-identical to the native slot-based
    collectives on every backend.  Physical p2p traffic is silenced on the
    ledger; each collective books the single modeled §2.3 entry the native
    implementation would have recorded.
    """

    def _make_comm(self, state, rank, group_ranks, parent):
        return SocketComm(
            state=state, rank=rank, group_ranks=group_ranks, parent=parent
        )

    def _gather_all(self, array: np.ndarray) -> List[np.ndarray]:
        """All contributions in rank order, physical traffic silenced."""
        with self._silenced():
            return recursive_doubling_allgather(self, array)

    # -- object collectives (setup-phase metadata) ---------------------------
    def allgather_object(self, obj: Any) -> List[Any]:
        if self.size == 1:
            return [obj]
        with self._silenced():
            if self.rank == 0:
                items = [obj] + [
                    self.recv(source=r, tag=_OBJ_TAG) for r in range(1, self.size)
                ]
                for r in range(1, self.size):
                    self.send(items, dest=r, tag=_OBJ_TAG)
            else:
                self.send(obj, dest=0, tag=_OBJ_TAG)
                items = self.recv(source=0, tag=_OBJ_TAG)
        self._record("all_gather", _nwords(obj) * self.size)
        return list(items)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.size == 1:
            return obj
        with self._silenced():
            if self.rank == root:
                for r in range(self.size):
                    if r != root:
                        self.send(obj, dest=r, tag=_OBJ_TAG)
                value = obj
            else:
                value = self.recv(source=root, tag=_OBJ_TAG)
        self._record("broadcast", _nwords(value))
        return value

    # -- array collectives ----------------------------------------------------
    def allgather(self, array: np.ndarray) -> List[np.ndarray]:
        array = np.asarray(array)
        if self.size == 1:
            return [array]
        gathered = self._gather_all(array)
        self._record("all_gather", sum(_nwords(g) for g in gathered))
        return gathered

    def allgatherv(
        self, array: np.ndarray, axis: int = 0, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        array = np.asarray(array)
        self._validate_out(out, array)
        if self.size == 1:
            if out is None:
                return array
            if out.shape != array.shape:
                raise CommunicatorError(
                    f"out buffer has shape {out.shape}, expected {array.shape}"
                )
            return self._copy_result(out, array)
        parts = self._gather_all(array)
        self._record("all_gather", sum(_nwords(p) for p in parts))
        if out is None:
            return np.concatenate(parts, axis=axis)
        _require_safe_cast(np.result_type(*parts), out, "gathered")
        try:
            np.concatenate(parts, axis=axis, out=out)
        except ValueError as exc:
            raise CommunicatorError(
                f"out buffer shape {out.shape} does not match the "
                f"gathered result: {exc}"
            ) from exc
        return out

    def gather(self, array: np.ndarray, root: int = 0) -> Optional[List[np.ndarray]]:
        array = np.asarray(array)
        if self.size == 1:
            return [array]
        with self._silenced():
            if self.rank == root:
                result = [
                    array.copy()
                    if r == root
                    else np.asarray(self.recv(source=r, tag=_OBJ_TAG))
                    for r in range(self.size)
                ]
            else:
                self.send(array, dest=root, tag=_OBJ_TAG)
                result = None
        self._record("gather", _nwords(array) * self.size)
        return result

    def scatter(
        self, arrays: Optional[Sequence[np.ndarray]], root: int = 0
    ) -> np.ndarray:
        if self.size == 1:
            assert arrays is not None
            return np.asarray(arrays[0])
        with self._silenced():
            if self.rank == root:
                if arrays is None or len(arrays) != self.size:
                    raise CommunicatorError(
                        f"root must provide exactly {self.size} arrays to scatter"
                    )
                for r in range(self.size):
                    if r != root:
                        self.send(np.asarray(arrays[r]), dest=r, tag=_OBJ_TAG)
                mine = np.asarray(arrays[root]).copy()
            else:
                mine = np.asarray(self.recv(source=root, tag=_OBJ_TAG))
        self._record("scatter", _nwords(mine) * self.size)
        return mine

    def reduce(
        self, array: np.ndarray, root: int = 0, op: ReduceOp = ReduceOp.SUM
    ) -> Optional[np.ndarray]:
        array = np.asarray(array)
        if self.size == 1:
            return array.copy()
        parts = self._gather_all(array)
        result = op.combine(parts) if self.rank == root else None
        self._record("reduce", _nwords(array))
        return result

    def allreduce(
        self,
        array: np.ndarray,
        op: ReduceOp = ReduceOp.SUM,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        array = np.asarray(array)
        self._validate_out(out, array, expected_shape=array.shape)
        if self.size == 1:
            if out is None:
                return array.copy()
            return self._copy_result(out, array)
        parts = self._gather_all(array)
        result = op.combine(parts, out=out)
        self._record("all_reduce", _nwords(array))
        return result

    def reduce_scatter(
        self,
        array: np.ndarray,
        counts: Optional[Sequence[int]] = None,
        axis: int = 0,
        op: ReduceOp = ReduceOp.SUM,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        array = np.asarray(array)
        length = array.shape[axis]
        if counts is None:
            base, rem = divmod(length, self.size)
            counts = [base + (1 if r < rem else 0) for r in range(self.size)]
        counts = list(counts)
        if len(counts) != self.size:
            raise CommunicatorError(
                f"counts must have length {self.size}, got {len(counts)}"
            )
        if sum(counts) != length:
            raise CommunicatorError(
                f"counts sum to {sum(counts)} but axis {axis} has length {length}"
            )
        offsets = np.concatenate(([0], np.cumsum(counts)))
        expected_shape = list(array.shape)
        expected_shape[axis] = counts[self.rank]
        self._validate_out(out, array, expected_shape=tuple(expected_shape))
        if self.size == 1:
            if out is None:
                return array.copy()
            return self._copy_result(out, array)
        parts = self._gather_all(array)
        lo, hi = offsets[self.rank], offsets[self.rank + 1]
        index: List[Any] = [slice(None)] * array.ndim
        index[axis] = slice(int(lo), int(hi))
        pieces = [p[tuple(index)] for p in parts]
        result = op.combine(pieces, out=out)
        self._record("reduce_scatter", _nwords(array))
        return result


class SocketBackend(Backend):
    """Launches an SPMD program on ``n_ranks`` processes over a TCP mesh.

    Parameters
    ----------
    n_ranks:
        Number of SPMD ranks (forked processes).  Exceeding the host's CPU
        count emits a :class:`RuntimeWarning`, as on the process backend.
    name:
        Label used in process names and diagnostics.
    timeout:
        Seconds a rank waits on a barrier or recv token before raising a
        :class:`~repro.util.errors.CommunicatorError` naming the token and
        the likely-stuck peer.
    connect_timeout:
        Seconds allowed for building the full mesh (and for each hello
        handshake); a rank that cannot reach a peer raises naming that peer
        and its port.
    """

    parallel_python = True
    cross_process = True
    wire_transport = True

    def __init__(
        self,
        n_ranks: int,
        name: str = "spmd",
        *,
        timeout: float = DEFAULT_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ):
        super().__init__(n_ranks, name=name)
        self.timeout = float(timeout)
        self.connect_timeout = float(connect_timeout)
        cpus = available_cpus()
        if n_ranks > cpus:
            import warnings

            warnings.warn(
                f"socket backend: {n_ranks} ranks oversubscribe the "
                f"{cpus} available CPU(s); ranks will time-slice rather than "
                "run concurrently (consider n_ranks <= cpu count, or the "
                "'lockstep' backend for large simulated grids)",
                RuntimeWarning,
                stacklevel=2,
            )

    @staticmethod
    def _fork_context():
        import multiprocessing as mp

        try:
            return mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise CommunicatorError(
                "the 'socket' backend requires the fork start method "
                "(POSIX only); use the 'thread' or 'lockstep' backend here"
            ) from None

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        if self.n_ranks == 1:
            # A single rank needs no wire; run inline like the other backends.
            comm = Comm(state=SharedGroupState(1), rank=0, group_ranks=(0,))
            return [program(comm, *args, **kwargs)]

        ctx = self._fork_context()
        runtime = _SocketRuntime(self.n_ranks, self.timeout, self.connect_timeout)
        world = SocketGroupState(
            self.n_ranks, runtime, uid=("world",), members=tuple(range(self.n_ranks))
        )
        all_ranks = tuple(range(self.n_ranks))
        result_queue = ctx.Queue()
        observers = kwargs.get("observers") or ()

        def worker(rank: int) -> None:
            try:
                runtime.bind(rank)
            except BaseException as exc:  # noqa: BLE001 - must reach the parent
                result_queue.put((rank, "err", _picklable_exception(rank, exc), None))
                runtime.close()
                return
            comm = SocketComm(state=world, rank=rank, group_ranks=all_ranks)
            try:
                value = program(comm, *args, **kwargs)
                extra = None
                if rank == 0 and observers:
                    # Ship rank 0's observer state home, as on the process
                    # backend.  Best-effort: unpicklable observers simply
                    # keep their parent-side state.
                    try:
                        states = [getattr(o, "__dict__", None) for o in observers]
                        pickle.dumps(states)
                        extra = states
                    except Exception:
                        extra = None
                try:
                    # All ranks drain in-flight frames before anyone tears the
                    # mesh down, so a fast rank's close never aborts a slow one.
                    runtime.barrier(("shutdown",), all_ranks)
                except PeerAbortError:
                    # A peer failed after this rank finished; the failing rank
                    # reports the root cause, this rank's value is still good.
                    pass
                result_queue.put((rank, "ok", value, extra))
            except BaseException as exc:  # noqa: BLE001 - must not strand peers
                runtime.broadcast_abort(
                    f"rank {rank} failed: {type(exc).__name__}: {exc}"
                )
                result_queue.put((rank, "err", _picklable_exception(rank, exc), None))
            finally:
                runtime.close()

        processes = [
            ctx.Process(target=worker, args=(rank,), name=f"{self.name}-rank{rank}")
            for rank in range(self.n_ranks)
        ]
        for proc in processes:
            proc.start()
        runtime.close_listeners()

        results: List[Any] = [None] * self.n_ranks
        collected = [False] * self.n_ranks
        observer_states = None
        try:
            while not all(collected):
                try:
                    rank, status, payload, extra = result_queue.get(timeout=0.1)
                except queue.Empty:
                    self._reap_dead_ranks(processes, collected, results, result_queue)
                    continue
                collected[rank] = True
                if status == "ok":
                    results[rank] = payload
                    if rank == 0:
                        observer_states = extra
                else:
                    results[rank] = _RankFailure(rank, payload)
            for proc in processes:
                proc.join()
        finally:
            for proc in processes:
                if proc.is_alive():  # pragma: no cover - defensive teardown
                    proc.terminate()
                    proc.join()
            result_queue.cancel_join_thread()
            result_queue.close()

        if observer_states is not None:
            for observer, state in zip(observers, observer_states):
                if isinstance(state, dict):
                    observer.__dict__.update(state)
        raise_first_failure(results)
        return results

    def _reap_dead_ranks(self, processes, collected, results, result_queue) -> None:
        """Detect ranks that died without reporting and record the failure.

        Surviving ranks unblock on their own: the dead rank's sockets close,
        its peers' reader threads see EOF and raise an abort naming it.
        """
        for rank, proc in enumerate(processes):
            if collected[rank] or proc.is_alive() or proc.exitcode is None:
                continue
            deadline = time.monotonic() + 1.0
            drained = False
            while time.monotonic() < deadline:
                try:
                    got = result_queue.get(timeout=0.1)
                except queue.Empty:
                    continue
                other_rank, status, payload, _extra = got
                collected[other_rank] = True
                if status == "ok":
                    results[other_rank] = payload
                else:
                    results[other_rank] = _RankFailure(other_rank, payload)
                if other_rank == rank:
                    drained = True
                    break
            if drained:
                continue
            message = (
                f"rank {rank} (pid {proc.pid}) died with exit code "
                f"{proc.exitcode} before returning its result; "
                "surviving ranks were aborted"
            )
            collected[rank] = True
            results[rank] = _RankFailure(rank, CommunicatorError(message))


register_backend("socket", SocketBackend)
