"""The deterministic lockstep SPMD backend.

:class:`LockstepBackend` runs the ranks of an SPMD program *cooperatively*:
at any instant at most one rank executes user code, and control is handed off
only at communication points (barriers and empty-mailbox receives), always to
the lowest-numbered runnable rank.  Compared to the thread backend this gives

* **bit-for-bit reproducible runs** — the rank interleaving is a pure
  function of the program, never of OS scheduling, so two runs with the same
  seed produce byte-identical results *and* byte-identical schedules;
* **scalability in the rank count** — simulating a 16×16 grid (p = 256, the
  scale of the paper's Figure 3 studies) never has more than one runnable
  rank, so there is no GIL convoy, no barrier storm, and no thread-pool
  collapse;
* **deterministic deadlock detection** — when every live rank is blocked the
  backend raises a :class:`~repro.util.errors.CommunicatorError` naming each
  rank's blocking operation instead of hanging until a timeout.

Mechanically, each rank still owns a (parked) carrier thread, because its
paused call stack must live somewhere — but the scheduler guarantees the
threads never run concurrently (asserted by :attr:`LockstepBackend.max_concurrency`).
Ranks suspended between handoffs cost only their stack; no locks are
contended and no barrier wakeups fan out.
"""

from __future__ import annotations

import collections
import threading
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.comm.backends.base import (
    Backend,
    PeerAbortError,
    SharedGroupState,
    _RankFailure,
    raise_first_failure,
    register_backend,
)
from repro.util.errors import CommunicatorError


class _LockstepScheduler:
    """Baton scheduler: exactly one rank thread is ever unparked.

    Every rank has a private :class:`threading.Event` baton.  A rank runs
    until it suspends (barrier, empty recv) or finishes; the scheduler then
    picks the lowest-numbered runnable rank and hands it the baton.  All
    bookkeeping is guarded by one mutex, and each handoff wakes exactly one
    thread — no ``notify_all`` fan-out, so the cost of a p-rank barrier is
    O(p) handoffs rather than O(p²) wakeups.
    """

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self._mutex = threading.Lock()
        self._batons = [threading.Event() for _ in range(n_ranks)]
        self._runnable = [True] * n_ranks
        self._done = [False] * n_ranks
        self._blocked_reason: List[Optional[str]] = [None] * n_ranks
        self._current: Optional[int] = 0
        self._aborted = False
        self._deadlock_message: Optional[str] = None
        self._live = 0
        self.max_live = 0
        self.schedule_trace: List[int] = [0]
        self._tls = threading.local()
        self._batons[0].set()  # rank 0 runs first

    # -- thread identity ----------------------------------------------------
    def attach(self, rank: int) -> None:
        """Bind the calling thread to ``rank`` (thread-local)."""
        self._tls.rank = rank

    @property
    def this_rank(self) -> int:
        return self._tls.rank

    # -- scheduling core (mutex held) ---------------------------------------
    def _pick_next_locked(self) -> None:
        for r in range(self.n_ranks):
            if self._runnable[r] and not self._done[r]:
                self._current = r
                self.schedule_trace.append(r)
                self._batons[r].set()
                return
        if all(self._done):
            self._current = None
            return
        # Every live rank is blocked: a deadlock.  Describe each rank so the
        # hang is diagnosable, then wake everyone to unwind.
        lines = []
        for r in range(self.n_ranks):
            if self._done[r]:
                status = "finished"
            else:
                status = self._blocked_reason[r] or "blocked"
            lines.append(f"  rank {r}: {status}")
        self._deadlock_message = (
            "SPMD deadlock: every live rank is blocked and no message or "
            "barrier arrival can release them\n" + "\n".join(lines)
        )
        self._abort_locked()
        raise CommunicatorError(self._deadlock_message)

    def _abort_locked(self) -> None:
        self._aborted = True
        for baton in self._batons:
            baton.set()

    def _release_baton_locked(self, rank: int) -> None:
        self._live -= 1
        self._batons[rank].clear()

    # -- public operations --------------------------------------------------
    def wait_for_turn(self, rank: int) -> None:
        """Park until this rank is handed the baton (or the run aborts)."""
        self._batons[rank].wait()
        with self._mutex:
            if self._aborted:
                self._raise_abort_locked()
            self._live += 1
            self.max_live = max(self.max_live, self._live)

    def _raise_abort_locked(self) -> None:
        if self._deadlock_message is not None:
            reason = self._blocked_reason[self.this_rank]
            suffix = f" (this rank was blocked in {reason})" if reason else ""
            raise CommunicatorError(self._deadlock_message + suffix)
        raise PeerAbortError("aborting: a peer rank failed")

    def suspend(self, reason: str) -> None:
        """Block the calling rank on ``reason`` and hand off; returns once resumed.

        The caller must have been marked non-runnable *before* this call only
        via :meth:`suspend` itself — callers just describe why they block.
        Some other rank must later mark this rank runnable again
        (:meth:`make_runnable`) for the handoff to come back.
        """
        rank = self.this_rank
        with self._mutex:
            if self._aborted:
                self._raise_abort_locked()
            self._runnable[rank] = False
            self._blocked_reason[rank] = reason
            self._release_baton_locked(rank)
            self._pick_next_locked()
        self.wait_for_turn(rank)

    def yield_turn(self) -> None:
        """Hand the baton to the lowest runnable rank (possibly the caller).

        Used by the last rank arriving at a barrier so the released group
        resumes in rank order rather than last-arriver-first.
        """
        rank = self.this_rank
        with self._mutex:
            if self._aborted:
                self._raise_abort_locked()
            self._release_baton_locked(rank)
            self._pick_next_locked()
        self.wait_for_turn(rank)

    def make_runnable(self, rank: int) -> None:
        """Mark a parked rank runnable again (does not preempt the caller)."""
        with self._mutex:
            self._runnable[rank] = True
            self._blocked_reason[rank] = None

    def check_abort(self) -> None:
        with self._mutex:
            if self._aborted:
                self._raise_abort_locked()

    def abort(self) -> None:
        with self._mutex:
            self._abort_locked()

    def finish(self, rank: int, failed: bool) -> None:
        """Retire the calling rank and hand the baton onward."""
        with self._mutex:
            self._done[rank] = True
            self._runnable[rank] = False
            self._live -= 1
            if failed:
                self._abort_locked()
                return
            if self._aborted:
                return
            try:
                self._pick_next_locked()
            except CommunicatorError:
                # The deadlock belongs to the still-blocked peers; they are
                # woken by the abort and raise the descriptive error
                # themselves.  This rank completed successfully.
                pass


class _LockstepMailbox:
    """FIFO (src → dst) channel that suspends the receiver instead of polling."""

    def __init__(self, state: "LockstepGroupState", src: int, dst: int):
        self._state = state
        self._src = src
        self._dst = dst
        self._items: Deque[Any] = collections.deque()

    def put(self, item: Any) -> None:
        sched = self._state.scheduler
        self._items.append(item)
        waiter = self._state.recv_waiters.pop((self._src, self._dst), None)
        if waiter is not None:
            sched.make_runnable(waiter)

    def get(self, timeout: Optional[float] = None) -> Any:
        # ``timeout`` is accepted for interface parity with queue.SimpleQueue
        # but ignored: with cooperative scheduling a wait can never be a race,
        # only progress or a deadlock — and deadlocks are detected exactly.
        sched = self._state.scheduler
        while not self._items:
            self._state.recv_waiters[(self._src, self._dst)] = sched.this_rank
            sched.suspend(
                f"recv(source={self._src}, dest={self._dst}, "
                f"group_size={self._state.size})"
            )
        return self._items.popleft()


class LockstepGroupState(SharedGroupState):
    """Group state whose synchronization goes through the lockstep scheduler.

    The deposit-slot protocol of the native collectives is inherited
    unchanged; only ``wait``/``abort`` (barriers), the mailboxes (receive
    suspends instead of polling) and ``make_subgroup`` (sub-communicators
    share the scheduler) differ from the thread backend's state.
    """

    #: Nonblocking collectives complete eagerly (at issue, via the native
    #: blocking collective): a helper thread would introduce a second
    #: runnable thread per rank and destroy the deterministic baton schedule.
    nonblocking_mode = "eager"

    def __init__(self, size: int, scheduler: _LockstepScheduler):
        super().__init__(size)
        self.scheduler = scheduler
        # Parked *world* ranks per in-progress barrier, and world ranks blocked
        # in a receive, keyed by (src, dst) group-local ranks.
        self._barrier_parked: List[int] = []
        self.recv_waiters: Dict[Tuple[int, int], int] = {}

    def _new_mailbox(self, src: int, dst: int) -> _LockstepMailbox:
        return _LockstepMailbox(self, src, dst)

    def make_subgroup(self, size: int, members=None, reg_key=None) -> "LockstepGroupState":
        return LockstepGroupState(size, self.scheduler)

    def wait(self) -> None:
        sched = self.scheduler
        sched.check_abort()
        if len(self._barrier_parked) + 1 == self.size:
            # Last arrival: release the parked members, then yield so the
            # group resumes in rank order.
            for world_rank in self._barrier_parked:
                sched.make_runnable(world_rank)
            self._barrier_parked.clear()
            sched.yield_turn()
        else:
            self._barrier_parked.append(sched.this_rank)
            sched.suspend(f"barrier(group_size={self.size})")

    def abort(self) -> None:
        self.scheduler.abort()


class LockstepBackend(Backend):
    """Runs an SPMD program one rank at a time, in rank order, deterministically.

    Attributes (populated by :meth:`run`)
    -------------------------------------
    max_concurrency:
        Largest number of ranks that were ever unparked simultaneously;
        always 1 for a completed lockstep run (asserted in the test suite).
    schedule_trace:
        The sequence of rank handoffs of the last run — identical across
        runs of the same program, which is the reproducibility contract.
    """

    deterministic_schedule = True
    simulates_large_grids = True

    def __init__(self, n_ranks: int, name: str = "spmd"):
        super().__init__(n_ranks, name=name)
        self.max_concurrency = 0
        self.schedule_trace: List[int] = []

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        # Imported here to avoid a circular import at module load time.
        from repro.comm.communicator import Comm

        scheduler = _LockstepScheduler(self.n_ranks)
        state = LockstepGroupState(self.n_ranks, scheduler)
        results: List[Any] = [None] * self.n_ranks

        def worker(rank: int) -> None:
            scheduler.attach(rank)
            comm = Comm(state=state, rank=rank, group_ranks=tuple(range(self.n_ranks)))
            failed = False
            try:
                scheduler.wait_for_turn(rank)
                results[rank] = program(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - must not strand peers
                results[rank] = _RankFailure(rank, exc)
                failed = True
            finally:
                scheduler.finish(rank, failed=failed)

        self._launch(worker)
        self.max_concurrency = scheduler.max_live if self.n_ranks > 1 else 1
        self.schedule_trace = scheduler.schedule_trace
        raise_first_failure(results)
        return results


register_backend("lockstep", LockstepBackend)
