"""The :class:`Backend` interface and the backend registry.

An execution backend is the substrate that runs an SPMD program — the same
per-rank function on ``n_ranks`` ranks, wired together by a
:class:`~repro.comm.communicator.Comm` — and collects the per-rank return
values.  The algorithms in :mod:`repro.core` are written against the
communicator only, so backends are interchangeable:

* ``"thread"`` (:class:`~repro.comm.backends.thread.ThreadBackend`) runs one
  Python thread per rank; ranks genuinely overlap wherever the numerical
  kernels release the GIL.
* ``"lockstep"`` (:class:`~repro.comm.backends.lockstep.LockstepBackend`)
  runs the ranks cooperatively, one at a time in rank order, handing off only
  at communication points — deterministic interleaving, deterministic
  deadlock detection, and no concurrent-thread pressure even at hundreds of
  simulated ranks.
* ``"process"`` (:class:`~repro.comm.backends.process.ProcessBackend`) runs
  one OS process per rank over shared-memory deposit slots — ranks escape
  the GIL, so real parallel speedups are measurable.
* ``"socket"`` (:class:`~repro.comm.backends.socket.SocketBackend`) runs one
  OS process per rank over a TCP mesh of length-prefixed frames — the wire
  backend whose collectives genuinely serialize onto a byte stream.
* ``"mpi"`` (:class:`~repro.comm.backends.mpi.MPIBackend`) maps the same
  interface onto real MPI collectives via ``mpi4py``; it registers only when
  ``mpi4py`` is importable, otherwise the name resolves to a clear
  "unavailable" error (see :func:`register_unavailable_backend`).

Each backend class carries :data:`CAPABILITY_FLAGS` class attributes
(``deterministic_schedule``, ``parallel_python``, ``cross_process``,
``simulates_large_grids``, ``wire_transport``) so callers — the CLI listing,
the benchmark harness — can pick a substrate by property rather than by
name.

Third-party backends plug in through :func:`register_backend`; everything
downstream selects a backend by name (``NMFConfig.backend``,
``fit(..., backend=...)``, the CLI's ``--backend`` flag).
"""

from __future__ import annotations

import abc
import difflib
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union

from repro.util.errors import CommunicatorError

#: Something :func:`make_backend` can turn into a Backend instance.
BackendSpec = Union[str, "Backend", Type["Backend"]]


class PeerAbortError(CommunicatorError):
    """Raised in ranks that were parked when a peer rank failed.

    The peer's original exception is the one re-raised to the caller
    (backends prefer real failures over these echoes when selecting which
    exception to surface); this marker only unwinds the surviving ranks'
    stacks.
    """


@dataclass
class _RankFailure:
    """Marker carrying an exception raised inside one rank's program."""

    rank: int
    exception: BaseException


def raise_first_failure(results: List[Any]) -> None:
    """Re-raise the most informative :class:`_RankFailure` in ``results``, if any.

    Real errors are preferred over the :class:`PeerAbortError` echoes a
    backend injects into peers when one rank fails; ties break by rank.
    """
    failures = [r for r in results if isinstance(r, _RankFailure)]
    if not failures:
        return
    real = [f for f in failures if not isinstance(f.exception, PeerAbortError)]
    first = min(real or failures, key=lambda f: f.rank)
    raise first.exception


class SharedGroupState:
    """Shared-memory state for one communicator group.

    One instance is shared by all ranks of a communicator.  It provides

    * ``slots`` — a list with one deposit slot per rank, used by the
      native collectives (deposit, barrier, read, barrier);
    * ``barrier`` — a reusable :class:`threading.Barrier` sized to the group;
    * ``mailboxes`` — per (src, dst) FIFO queues for point-to-point messages;
    * ``registry`` + ``lock`` — a scratch dict used to create sub-group state
      exactly once during ``split``.

    Subclasses (the lockstep backend's group state) override :meth:`wait`,
    :meth:`abort`, :meth:`make_subgroup` and :meth:`_new_mailbox` to swap the
    synchronization mechanism while keeping the deposit-slot protocol.
    """

    #: How nonblocking collectives progress on this substrate.  ``"helper"``
    #: means a per-communicator daemon thread executes the operation over the
    #: point-to-point mailboxes of a silent shadow communicator — genuinely
    #: asynchronous wherever the transport releases the GIL.  The lockstep
    #: state overrides this to ``"eager"``: handles complete at issue time via
    #: the native blocking collective, preserving the deterministic
    #: rank-ordered schedule that makes lockstep the semantics oracle.
    nonblocking_mode = "helper"

    def __init__(self, size: int):
        if size < 1:
            raise CommunicatorError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self.slots: List[Any] = [None] * size
        self.lock = threading.Lock()
        self.registry: Dict[Any, Any] = {}
        self._barrier: Optional[threading.Barrier] = None
        self._barrier_lock = threading.Lock()
        self._mailboxes: Dict[Tuple[int, int], Any] = {}
        self._mailbox_lock = threading.Lock()

    @property
    def barrier(self) -> threading.Barrier:
        """The group's reusable barrier, created on first use.

        Lazy because subclasses that synchronize through a scheduler (the
        lockstep backend) never touch it — a 256-rank lockstep run would
        otherwise allocate hundreds of dead Barrier objects across its
        sub-communicators.  Double-checked so the hot path (every barrier
        wait on the thread backend) is a plain attribute read, not a lock
        acquisition.
        """
        barrier = self._barrier
        if barrier is None:
            with self._barrier_lock:
                if self._barrier is None:
                    self._barrier = threading.Barrier(self.size)
                barrier = self._barrier
        return barrier

    def _new_mailbox(self, src: int, dst: int) -> Any:
        """Create the FIFO used for (src → dst) messages (hook for subclasses)."""
        return queue.SimpleQueue()

    def mailbox(self, src: int, dst: int) -> Any:
        key = (src, dst)
        with self._mailbox_lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = self._new_mailbox(src, dst)
                self._mailboxes[key] = box
            return box

    def make_subgroup(self, size: int, members=None, reg_key=None) -> "SharedGroupState":
        """State for a sub-communicator of ``size`` ranks (used by ``Comm.split``).

        ``members`` (the subgroup's ranks, group-local to the parent) and
        ``reg_key`` (the split's registry key) let cross-process states build
        a globally agreed identity for the new group; in-process states need
        neither.
        """
        return SharedGroupState(size)

    def wait(self) -> None:
        """Block until every rank of the group reaches this point."""
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError as exc:
            # An echo of a peer's failure, not a root cause: raise the marker
            # type so raise_first_failure surfaces the peer's real exception.
            raise PeerAbortError("a peer rank failed; barrier broken") from exc

    def abort(self) -> None:
        """Break the barrier so peer ranks do not hang after a failure."""
        self.barrier.abort()


#: Capability flags every backend class declares (as class attributes).
CAPABILITY_FLAGS: Tuple[str, ...] = (
    "deterministic_schedule",  # rank interleaving is a pure function of the program
    "parallel_python",         # ranks run Python bytecode concurrently (no GIL convoy)
    "cross_process",           # ranks live in separate OS processes
    "simulates_large_grids",   # hundreds of ranks are practical on one machine
    "wire_transport",          # collectives serialize onto a real byte stream
)


class Backend(abc.ABC):
    """Executes an SPMD program on ``n_ranks`` ranks and collects results.

    Parameters
    ----------
    n_ranks:
        Number of SPMD ranks to run.
    name:
        Optional label used in thread names and diagnostics.
    """

    # Conservative defaults; subclasses override the flags they earn.
    deterministic_schedule = False
    parallel_python = False
    cross_process = False
    simulates_large_grids = False
    wire_transport = False

    @classmethod
    def capabilities(cls) -> Dict[str, bool]:
        """This backend's :data:`CAPABILITY_FLAGS` as a name → bool mapping."""
        return {flag: bool(getattr(cls, flag)) for flag in CAPABILITY_FLAGS}

    def __init__(self, n_ranks: int, name: str = "spmd"):
        if n_ranks < 1:
            raise CommunicatorError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.name = name

    @abc.abstractmethod
    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Run ``program(comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values in rank order.  If any rank
        raises, the most informative failure (lowest rank, preferring real
        errors over peer-abort echoes) is re-raised in the caller after all
        ranks have stopped.
        """

    def _launch(self, worker: Callable[[int], None]) -> None:
        """Run ``worker(rank)`` for every rank on carrier threads.

        Shared scaffolding for backends whose ranks live on threads: a
        single rank runs inline, otherwise one named thread per rank is
        started and joined.  The worker owns all failure handling (it must
        never raise).
        """
        if self.n_ranks == 1:
            worker(0)
            return
        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"{self.name}-rank{rank}")
            for rank in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_ranks={self.n_ranks}, name={self.name!r})"


_REGISTRY: Dict[str, Type[Backend]] = {}

#: Backends that exist but cannot run here (missing optional dependency),
#: mapped to a human-readable reason.  Resolving such a name raises the
#: reason instead of the generic "unknown backend" error, and the name is
#: excluded from :func:`available_backends` — mirroring how the kernels
#: registry treats the numba kernels when numba is absent.
_UNAVAILABLE: Dict[str, str] = {}


def register_backend(name: str, cls: Type[Backend]) -> None:
    """Register a backend class under ``name`` (overwrites any previous entry)."""
    if not isinstance(name, str) or not name:
        raise CommunicatorError(f"backend name must be a non-empty string, got {name!r}")
    if not (isinstance(cls, type) and issubclass(cls, Backend)):
        raise CommunicatorError(f"backend class must subclass Backend, got {cls!r}")
    _UNAVAILABLE.pop(name, None)
    _REGISTRY[name] = cls


def register_unavailable_backend(name: str, reason: str) -> None:
    """Declare that backend ``name`` exists but cannot run in this environment.

    ``reason`` should tell the user what to install or change; it becomes the
    error message when the name is selected.  A later successful
    :func:`register_backend` for the same name clears the entry.
    """
    if name not in _REGISTRY:
        _UNAVAILABLE[name] = reason


def available_backends() -> List[str]:
    """Names of all registered backends, sorted."""
    _ensure_builtin_backends()
    return sorted(_REGISTRY)


def backend_capabilities(name: Optional[str] = None) -> Dict[str, Dict[str, bool]]:
    """Capability flags by backend name (all backends, or just ``name``)."""
    _ensure_builtin_backends()
    names = [name] if name is not None else sorted(_REGISTRY)
    return {n: get_backend_class(n).capabilities() for n in names}


def get_backend_class(name: str) -> Type[Backend]:
    """Look up a backend class by registry name."""
    _ensure_builtin_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        if name in _UNAVAILABLE:
            raise CommunicatorError(
                f"backend {name!r} is not available in this environment: "
                f"{_UNAVAILABLE[name]} (available backends: "
                f"{', '.join(sorted(_REGISTRY))})"
            ) from None
        close = difflib.get_close_matches(str(name), list(_REGISTRY), n=1)
        hint = f"did you mean {close[0]!r}? " if close else ""
        raise CommunicatorError(
            f"unknown backend {name!r}; {hint}available backends: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def make_backend(spec: BackendSpec, n_ranks: int, name: str = "spmd") -> Backend:
    """Resolve ``spec`` (name, class, or instance) into a Backend instance."""
    if isinstance(spec, Backend):
        if spec.n_ranks != n_ranks:
            raise CommunicatorError(
                f"backend instance is sized for {spec.n_ranks} ranks, "
                f"but {n_ranks} were requested"
            )
        return spec
    if isinstance(spec, type) and issubclass(spec, Backend):
        return spec(n_ranks, name=name)
    if isinstance(spec, str):
        return get_backend_class(spec)(n_ranks, name=name)
    raise CommunicatorError(
        f"backend must be a name, Backend class or Backend instance, got {spec!r}"
    )


def run_spmd(
    n_ranks: int,
    program: Callable[..., Any],
    *args: Any,
    name: str = "spmd",
    backend: BackendSpec = "thread",
    **kwargs: Any,
) -> List[Any]:
    """Convenience wrapper: run ``program(comm, *args, **kwargs)`` on ``n_ranks`` ranks.

    ``backend`` selects the execution substrate by registry name (default
    ``"thread"``); it also accepts a Backend class or instance.
    """
    return make_backend(backend, n_ranks, name=name).run(program, *args, **kwargs)


def _ensure_builtin_backends() -> None:
    """Import the built-in backend modules so they self-register."""
    # Deferred so `import repro.comm.backends.base` alone stays cycle-free.
    import repro.comm.backends.lockstep  # noqa: F401
    import repro.comm.backends.mpi  # noqa: F401
    import repro.comm.backends.process  # noqa: F401
    import repro.comm.backends.socket  # noqa: F401
    import repro.comm.backends.thread  # noqa: F401
