"""Pluggable SPMD execution backends.

The parallel algorithms are written against
:class:`~repro.comm.communicator.Comm` only; this package supplies the
substrate that actually runs the per-rank programs:

* :mod:`~repro.comm.backends.base` — the :class:`Backend` interface, the
  name → class registry and the :func:`run_spmd` entry point;
* :mod:`~repro.comm.backends.thread` — ``"thread"``: one Python thread per
  rank, real overlap wherever BLAS releases the GIL (the measured-benchmark
  substrate);
* :mod:`~repro.comm.backends.lockstep` — ``"lockstep"``: cooperative
  rank-ordered scheduling with at most one rank running at any instant —
  deterministic, deadlock-diagnosing, and able to simulate hundreds of ranks.

Select a backend by name anywhere downstream: ``NMFConfig(backend=...)``,
``parallel_nmf(..., backend=...)``, or the CLI's ``--backend`` flag.
"""

from repro.comm.backends.base import (
    Backend,
    PeerAbortError,
    SharedGroupState,
    available_backends,
    get_backend_class,
    make_backend,
    register_backend,
    run_spmd,
)
from repro.comm.backends.lockstep import LockstepBackend
from repro.comm.backends.thread import ThreadBackend

__all__ = [
    "Backend",
    "LockstepBackend",
    "PeerAbortError",
    "SharedGroupState",
    "ThreadBackend",
    "available_backends",
    "get_backend_class",
    "make_backend",
    "register_backend",
    "run_spmd",
]
