"""Pluggable SPMD execution backends.

The parallel algorithms are written against
:class:`~repro.comm.communicator.Comm` only; this package supplies the
substrate that actually runs the per-rank programs:

* :mod:`~repro.comm.backends.base` — the :class:`Backend` interface, the
  name → class registry (with per-backend capability flags) and the
  :func:`run_spmd` entry point;
* :mod:`~repro.comm.backends.thread` — ``"thread"``: one Python thread per
  rank, real overlap wherever BLAS releases the GIL;
* :mod:`~repro.comm.backends.lockstep` — ``"lockstep"``: cooperative
  rank-ordered scheduling with at most one rank running at any instant —
  deterministic, deadlock-diagnosing, and able to simulate hundreds of ranks;
* :mod:`~repro.comm.backends.process` — ``"process"``: one OS process per
  rank over shared-memory collectives — ranks escape the GIL, hence a
  measured-speedup substrate (:mod:`repro.bench` records its trajectory);
* :mod:`~repro.comm.backends.socket` — ``"socket"``: one OS process per rank
  over a TCP mesh of length-prefixed frames (:mod:`repro.comm.wire`) — the
  wire backend whose collectives genuinely serialize onto a byte stream;
* :mod:`~repro.comm.backends.mpi` — ``"mpi"``: the same interface mapped
  onto real MPI collectives via ``mpi4py``; registers only when ``mpi4py``
  is importable (check :data:`~repro.comm.backends.mpi.MPI4PY_AVAILABLE`),
  otherwise the name resolves to an actionable "unavailable" error.

Select a backend by name anywhere downstream: ``NMFConfig(backend=...)``,
``fit(..., backend=...)``, the CLI's ``--backend`` flag, or
``$REPRO_BENCH_BACKEND`` for the benchmark harness.
"""

from repro.comm.backends.base import (
    CAPABILITY_FLAGS,
    Backend,
    PeerAbortError,
    SharedGroupState,
    available_backends,
    backend_capabilities,
    get_backend_class,
    make_backend,
    register_backend,
    register_unavailable_backend,
    run_spmd,
)
from repro.comm.backends.lockstep import LockstepBackend
from repro.comm.backends.process import ProcessBackend
from repro.comm.backends.socket import SocketBackend
from repro.comm.backends.thread import ThreadBackend

__all__ = [
    "Backend",
    "CAPABILITY_FLAGS",
    "LockstepBackend",
    "PeerAbortError",
    "ProcessBackend",
    "SharedGroupState",
    "SocketBackend",
    "ThreadBackend",
    "available_backends",
    "backend_capabilities",
    "get_backend_class",
    "make_backend",
    "register_backend",
    "register_unavailable_backend",
    "run_spmd",
]
