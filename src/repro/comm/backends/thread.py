"""The thread-per-rank SPMD backend.

The paper's algorithms are SPMD programs: every MPI rank runs the same code
on its own block of the data.  :class:`ThreadBackend` reproduces that model in
a single Python process by running one thread per rank.  Ranks exchange numpy
buffers through shared memory slots guarded by reusable barriers, and
point-to-point messages flow through per-(source, destination) queues.

Threads are an adequate stand-in for MPI processes here because

* the heavy numerical kernels (BLAS matmuls, Cholesky factorizations inside
  BPP) release the GIL, so ranks genuinely overlap where it matters, and
* the purpose of the substrate is to execute the *communication structure* of
  Algorithms 2 and 3 faithfully — who owns what, what is sent where — which
  is independent of whether ranks are threads or processes.

For deterministic scheduling, or grids far wider than the machine (hundreds
of simulated ranks), use the ``"lockstep"`` backend instead
(:mod:`repro.comm.backends.lockstep`).
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.comm.backends.base import (  # noqa: F401 - re-exported for compat
    Backend,
    PeerAbortError,
    SharedGroupState,
    _RankFailure,
    raise_first_failure,
    register_backend,
)


class ThreadBackend(Backend):
    """Launches an SPMD program on ``n_ranks`` threads and collects results.

    Parameters
    ----------
    n_ranks:
        Number of SPMD ranks (threads) to run.
    name:
        Optional label used in thread names, helpful when debugging.
    """

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
        """Run ``program(comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values in rank order.  If any rank raises,
        the most informative exception (real failures before peer-abort
        echoes, then lowest rank) is re-raised in the caller after all
        threads have stopped.
        """
        # Imported here to avoid a circular import at module load time.
        from repro.comm.communicator import Comm

        state = SharedGroupState(self.n_ranks)
        results: List[Any] = [None] * self.n_ranks

        def worker(rank: int) -> None:
            comm = Comm(state=state, rank=rank, group_ranks=tuple(range(self.n_ranks)))
            try:
                results[rank] = program(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - must not hang peers
                results[rank] = _RankFailure(rank, exc)
                state.abort()

        self._launch(worker)
        raise_first_failure(results)
        return results


register_backend("thread", ThreadBackend)
