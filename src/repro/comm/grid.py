"""Processor grids (paper §5, Figure 2).

HPC-NMF distributes the data matrix ``A`` over a ``pr × pc`` grid of
processes.  Process ``(i, j)`` owns the block ``A_ij`` of size
``m/pr × n/pc``; the factor ``W`` is distributed by rows (block ``W_i`` on
grid row ``i``, sub-block ``(W_i)_j`` on process ``(i, j)``) and ``H`` by
columns (block ``H_j`` on grid column ``j``, sub-block ``(H_j)_i`` on process
``(i, j)``).

Grid selection follows the paper exactly (§5):

* if ``m/p > n`` (very tall and skinny), use the 1D grid ``pr = p, pc = 1``
  (bandwidth cost ``O(nk)``);
* otherwise choose ``pr ≈ sqrt(m p / n)`` and ``pc ≈ sqrt(n p / m)`` so that
  ``m/pr ≈ n/pc ≈ sqrt(mn/p)`` (bandwidth cost ``O(sqrt(m n k² / p))``),
  restricted to factorizations of ``p``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.comm.communicator import Comm
from repro.util.errors import CommunicatorError


def factor_pairs(p: int) -> List[Tuple[int, int]]:
    """All (pr, pc) with pr*pc == p, pr and pc positive integers.

    This is the planner's search space: :mod:`repro.plan` scores the cost
    model over every pair and :func:`choose_grid` must coincide with that
    brute-force argmin (property-tested in ``tests/plan/test_planner.py``).
    """
    pairs = []
    for pr in range(1, p + 1):
        if p % pr == 0:
            pairs.append((pr, p // pr))
    return pairs


def choose_grid(m: int, n: int, p: int) -> Tuple[int, int]:
    """Choose the processor grid shape (pr, pc) per the rule of §5.

    Returns the factorization of ``p`` that makes the local blocks closest to
    square in the scaled sense ``m/pr ≈ n/pc``, except in the tall-and-skinny
    regime ``m/p > n`` where the paper prescribes a 1D grid ``(p, 1)``.

    >>> choose_grid(6, 6, 4)
    (2, 2)
    >>> choose_grid(10_000, 10, 4)    # m/p = 2500 > n = 10 -> 1D
    (4, 1)
    """
    if p < 1:
        raise CommunicatorError(f"number of processes must be >= 1, got {p}")
    if m <= 0 or n <= 0:
        raise CommunicatorError(f"matrix dimensions must be positive, got {m}x{n}")
    if m / p > n:
        return (p, 1)
    if n / p > m:
        return (1, p)
    # Pick the factor pair minimizing the communication proxy m/pr + n/pc,
    # which is minimized when m/pr == n/pc (see §5's bandwidth expression
    # beta * (m k / pr + n k / pc)).
    best: Optional[Tuple[int, int]] = None
    best_cost = math.inf
    for pr, pc in factor_pairs(p):
        cost = m / pr + n / pc
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = (pr, pc)
    assert best is not None
    return best


@dataclass(frozen=True)
class GridShape:
    """A processor grid shape with convenience accessors."""

    pr: int
    pc: int

    @property
    def size(self) -> int:
        return self.pr * self.pc

    @property
    def is_1d(self) -> bool:
        return self.pr == 1 or self.pc == 1

    def coords(self, rank: int) -> Tuple[int, int]:
        """Map a linear rank to (row, col) coordinates (row-major order)."""
        if not 0 <= rank < self.size:
            raise CommunicatorError(f"rank {rank} out of range for grid {self.pr}x{self.pc}")
        return divmod(rank, self.pc)

    def rank_of(self, i: int, j: int) -> int:
        """Map (row, col) grid coordinates to the linear rank."""
        if not (0 <= i < self.pr and 0 <= j < self.pc):
            raise CommunicatorError(
                f"coords ({i}, {j}) out of range for grid {self.pr}x{self.pc}"
            )
        return i * self.pc + j


class ProcessGrid:
    """A ``pr × pc`` Cartesian grid over an existing communicator.

    Builds the row communicator (all ``pc`` processes with the same grid row
    ``i``, which carries the ``W`` collectives of Algorithm 3: the all-gather
    of ``W_i`` and the reduce-scatter of ``(A Hᵀ)_i``) and the column
    communicator (the ``pr`` processes with the same grid column ``j``, which
    carries the ``H`` collectives: the all-gather of ``H_j`` and the
    reduce-scatter of ``(Wᵀ A)_j``).  The factor sub-blocks these collectives
    produce and consume live in :mod:`repro.dist.factors`.

    Parameters
    ----------
    comm:
        World communicator whose size must equal ``pr * pc``.
    pr, pc:
        Grid dimensions.  Row-major rank placement: rank ``r`` sits at
        ``(r // pc, r % pc)``.
    """

    def __init__(self, comm: Comm, pr: int, pc: int):
        if pr < 1 or pc < 1:
            raise CommunicatorError(f"grid dimensions must be >= 1, got {pr}x{pc}")
        if pr * pc != comm.size:
            raise CommunicatorError(
                f"grid {pr}x{pc} requires {pr * pc} processes, communicator has {comm.size}"
            )
        self.comm = comm
        self.shape = GridShape(pr, pc)
        self.row_index, self.col_index = self.shape.coords(comm.rank)
        # Row communicator: fixed grid row, varying column (size pc).
        self.row_comm = comm.split(color=self.row_index, key=self.col_index)
        # Column communicator: fixed grid column, varying row (size pr).
        self.col_comm = comm.split(color=self.col_index, key=self.row_index)

    # -- convenience -------------------------------------------------------
    @property
    def pr(self) -> int:
        return self.shape.pr

    @property
    def pc(self) -> int:
        return self.shape.pc

    @property
    def size(self) -> int:
        return self.shape.size

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def coords(self) -> Tuple[int, int]:
        return (self.row_index, self.col_index)

    def __repr__(self) -> str:
        return (
            f"ProcessGrid(rank={self.rank}, coords=({self.row_index},{self.col_index}), "
            f"shape={self.pr}x{self.pc})"
        )
