"""Per-task time breakdown profiler (paper §6.3).

The paper reports per-iteration time split into six tasks:

* **MM** — local matrix multiplication with the local data block,
* **NLS** — local nonnegative least squares solves (BPP),
* **Gram** — local contribution to the k×k Gram matrices,
* **All-Gather** — collecting factor blocks,
* **Reduce-Scatter** — summing and distributing the matmul results,
* **All-Reduce** — summing the Gram matrices.

:class:`Profiler` accumulates wall-clock time per category; the parallel
algorithms wrap each step in ``with profiler.task(TaskCategory.MM): ...``.
:class:`TimeBreakdown` is the immutable result attached to
:class:`repro.core.result.NMFResult` and rendered by the experiment harness in
the same stacked form as Figure 3.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping

from repro.util.timing import WallClock


class TaskCategory(str, enum.Enum):
    """The six per-iteration task categories of Figure 3, plus bookkeeping.

    The three collective categories (``ALL_GATHER``/``REDUCE_SCATTER``/
    ``ALL_REDUCE``) always mean *exposed* communication: time the rank spent
    blocked on the critical path, whether inside a blocking collective or in
    ``CommHandle.wait()``.  ``HIDDEN_COMM`` is the portion of a nonblocking
    collective's duration that ran concurrently with compute already counted
    under MM/NLS/Gram — it is informational and therefore excluded from
    :attr:`TimeBreakdown.total` (counting it would double-book wall time).
    """

    MM = "MM"
    NLS = "NLS"
    GRAM = "Gram"
    ALL_GATHER = "AllGather"
    REDUCE_SCATTER = "ReduceScatter"
    ALL_REDUCE = "AllReduce"
    HIDDEN_COMM = "HiddenComm"
    OTHER = "Other"

    @classmethod
    def figure_order(cls) -> list["TaskCategory"]:
        """Category order used in the paper's stacked bars (bottom to top)."""
        return [cls.NLS, cls.MM, cls.GRAM, cls.ALL_GATHER, cls.REDUCE_SCATTER, cls.ALL_REDUCE]


@dataclass(frozen=True)
class TimeBreakdown:
    """Immutable per-category seconds, plus helpers used by the reports."""

    seconds: Mapping[str, float]

    @property
    def total(self) -> float:
        """Critical-path seconds: every category except ``HIDDEN_COMM``.

        Hidden communication overlaps compute that is already counted, so
        including it would double-book wall time.  Breakdowns recorded
        before nonblocking collectives existed carry no ``HiddenComm`` key
        and are unaffected.
        """
        return float(
            sum(
                v
                for k, v in self.seconds.items()
                if k != TaskCategory.HIDDEN_COMM.value
            )
        )

    @property
    def computation(self) -> float:
        return sum(
            self.seconds.get(c.value, 0.0)
            for c in (TaskCategory.MM, TaskCategory.NLS, TaskCategory.GRAM)
        )

    @property
    def communication(self) -> float:
        return sum(
            self.seconds.get(c.value, 0.0)
            for c in (
                TaskCategory.ALL_GATHER,
                TaskCategory.REDUCE_SCATTER,
                TaskCategory.ALL_REDUCE,
            )
        )

    @property
    def exposed_communication(self) -> float:
        """Alias of :attr:`communication`: comm time on the critical path."""
        return self.communication

    @property
    def hidden_communication(self) -> float:
        """Nonblocking-collective time overlapped with counted compute."""
        return float(self.seconds.get(TaskCategory.HIDDEN_COMM.value, 0.0))

    def get(self, category: TaskCategory | str) -> float:
        key = category.value if isinstance(category, TaskCategory) else str(category)
        return float(self.seconds.get(key, 0.0))

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown({k: v * factor for k, v in self.seconds.items()})

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        keys = set(self.seconds) | set(other.seconds)
        return TimeBreakdown(
            {k: self.seconds.get(k, 0.0) + other.seconds.get(k, 0.0) for k in keys}
        )

    def as_dict(self) -> Dict[str, float]:
        return dict(self.seconds)

    @classmethod
    def zeros(cls) -> "TimeBreakdown":
        return cls({c.value: 0.0 for c in TaskCategory.figure_order()})

    @classmethod
    def from_parts(cls, **parts: float) -> "TimeBreakdown":
        """Build a breakdown from keyword parts named after the categories.

        >>> TimeBreakdown.from_parts(MM=1.0, NLS=0.5).total
        1.5
        """
        valid = {c.value for c in TaskCategory}
        unknown = set(parts) - valid
        if unknown:
            raise KeyError(f"unknown task categories: {sorted(unknown)}")
        return cls(dict(parts))


@dataclass
class Profiler:
    """Accumulates wall-clock seconds per :class:`TaskCategory`."""

    clock: WallClock = field(default_factory=WallClock)
    _seconds: Dict[str, float] = field(default_factory=dict)
    _calls: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def task(self, category: TaskCategory) -> Iterator[None]:
        start = self.clock.now()
        try:
            yield
        finally:
            elapsed = self.clock.now() - start
            key = category.value
            self._seconds[key] = self._seconds.get(key, 0.0) + elapsed
            self._calls[key] = self._calls.get(key, 0) + 1

    def add(self, category: TaskCategory, seconds: float) -> None:
        """Add pre-measured seconds (used by the communicator hooks)."""
        key = category.value
        self._seconds[key] = self._seconds.get(key, 0.0) + seconds
        self._calls[key] = self._calls.get(key, 0) + 1

    def seconds(self, category: TaskCategory) -> float:
        return self._seconds.get(category.value, 0.0)

    def calls(self, category: TaskCategory) -> int:
        return self._calls.get(category.value, 0)

    def snapshot(self) -> TimeBreakdown:
        return TimeBreakdown(dict(self._seconds))

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()


def max_over_ranks(breakdowns: list[TimeBreakdown]) -> TimeBreakdown:
    """Critical-path combination: per category, the max over ranks.

    The paper reports per-iteration times of the slowest processor (the
    parallel running time); when the SPMD engine returns one breakdown per
    rank we combine them category-wise with max.
    """
    if not breakdowns:
        return TimeBreakdown.zeros()
    keys = set()
    for b in breakdowns:
        keys |= set(b.seconds)
    return TimeBreakdown({k: max(b.seconds.get(k, 0.0) for b in breakdowns) for k in keys})


def mean_over_ranks(breakdowns: list[TimeBreakdown]) -> TimeBreakdown:
    """Average the per-rank breakdowns category-wise (load-balance view)."""
    if not breakdowns:
        return TimeBreakdown.zeros()
    keys = set()
    for b in breakdowns:
        keys |= set(b.seconds)
    n = len(breakdowns)
    return TimeBreakdown({k: sum(b.seconds.get(k, 0.0) for b in breakdowns) / n for k in keys})
