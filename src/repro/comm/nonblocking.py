"""Nonblocking collectives: MPI-style request handles over the SPMD substrate.

:meth:`Comm.iallgatherv`, :meth:`Comm.iallreduce` and
:meth:`Comm.ireduce_scatter` return a :class:`CommHandle` immediately; the
collective completes in the background and the caller claims the result with
``wait()`` (blocking, idempotent) or polls with ``test()``.  This is the
primitive the pipelined Algorithm 2/3 loops use to hide the factor
all-gathers behind the opposite half-iteration's local compute (paper §4.3:
the collective terms are the dominant exposed cost once the local NLS is
fast).

Execution strategy — chosen per backend via
``SharedGroupState.nonblocking_mode``:

* ``"eager"`` (lockstep, and any size-1 communicator): the handle completes
  *at issue time* by running the native blocking collective.  The lockstep
  scheduler stays a deterministic single-runnable-rank baton pass, which
  preserves it as the byte-identical semantics oracle for the pipelined
  schedules.
* ``"helper"`` (thread and process backends): a per-communicator daemon
  thread executes the operation over the point-to-point mailboxes of a
  *silent shadow communicator* (a ``split`` of the issuing communicator that
  never records ledger entries).  Progress is genuinely asynchronous
  wherever the transport releases the GIL — always on the process backend,
  whose per-rank token queues live in ``multiprocessing`` pipes.

Byte-identity
-------------
The native blocking reductions combine all ``p`` contributions **in rank
order** (that is what makes every backend bitwise-reproducible), whereas the
recursive-halving/doubling reduction algorithms combine pairwise — different
floating-point rounding.  The helper path therefore composes every
nonblocking operation from :func:`recursive_doubling_allgather` (bitwise
exact: it only moves bytes) followed by the same rank-order
:meth:`ReduceOp.combine` / ``np.concatenate`` the native collective performs.
A nonblocking collective returns a result byte-identical to its blocking
counterpart on every backend, which is what lets the pipelined and blocking
schedules produce byte-identical factors.

Cost accounting
---------------
The helper's gather-based reduction physically moves more bytes than the
optimal §2.3 algorithm, but the :class:`CostLedger` records *modeled*
optimal-collective volume, not physical movement: each handle records the
same operation name and word count as the blocking call would, on the
issuing communicator, when the handle completes.  Pipelined and blocking
schedules therefore produce identical ledgers (the acceptance criterion that
communication *volume* stays on the paper's Table 2).

One modeled collective may be carried by several physical handles: the
panel-streamed reduce-scatter (:mod:`repro.comm.panels`) issues one
``ireduce_scatter(record=False)`` per MM panel — suppressing the per-handle
ledger entry — and books a single :meth:`Comm.record_collective` with the
monolithic call's word count once the stream completes, keeping the ledger
indistinguishable from the blocking schedule's.

Workspace safety
----------------
A handle that writes into a :attr:`Comm.workspace` buffer *pins* it for the
handle's lifetime; ``workspace.get`` on a pinned name raises
:class:`~repro.util.errors.WorkspacePinnedError` naming the issuing rank,
op, and tag instead of handing out a buffer the helper thread is still
filling.  ``wait()`` (or a successful ``test()``) unpins.
"""

from __future__ import annotations

import queue
import threading
import time
import weakref
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.comm.profiler import Profiler, TaskCategory
from repro.util.errors import CommunicatorError

__all__ = ["CommHandle", "finish"]

_SHUTDOWN = object()


class CommHandle:
    """Request handle for an in-flight nonblocking collective.

    Mirrors the MPI request object: ``wait()`` blocks until the operation
    completed and returns the result array (idempotent — later calls return
    the same array without blocking); ``test()`` polls, returning ``True``
    once complete.  If the operation failed (peer crash, bad buffer), both
    re-raise the failure.

    After completion the handle reports its timing split:
    ``exposed_seconds`` is time the caller spent blocked (issue-time for
    eager handles, ``wait()`` time for async ones) and ``hidden_seconds`` is
    the remainder of the operation's duration — communication that ran
    concurrently with the caller's compute.  :func:`finish` feeds these into
    a :class:`Profiler`.
    """

    def __init__(self, op: str, tag: int, unpin: Optional[Callable[[], None]] = None):
        self.op = op
        self.tag = tag
        self._unpin = unpin
        self._finalized = False
        self.exposed_seconds = 0.0
        self.hidden_seconds = 0.0

    # -- subclass duties -----------------------------------------------------
    def wait(self) -> Any:
        raise NotImplementedError

    def test(self) -> bool:
        raise NotImplementedError

    @property
    def done(self) -> bool:
        """Whether the operation has completed (never blocks)."""
        raise NotImplementedError

    # -- shared finalization -------------------------------------------------
    def _finalize_once(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        if self._unpin is not None:
            self._unpin()

    def __repr__(self) -> str:
        state = "done" if self.done else "in-flight"
        return f"{type(self).__name__}(op={self.op!r}, tag={self.tag}, {state})"


class _EagerHandle(CommHandle):
    """Handle completed at issue time via the native blocking collective."""

    def __init__(
        self,
        op: str,
        tag: int,
        result: Any,
        duration: float,
        unpin: Optional[Callable[[], None]] = None,
    ):
        super().__init__(op, tag, unpin=unpin)
        self._result = result
        # The blocking collective ran on the critical path at issue.
        self.exposed_seconds = duration
        self.hidden_seconds = 0.0

    @property
    def done(self) -> bool:
        return True

    def wait(self) -> Any:
        self._finalize_once()
        return self._result

    def test(self) -> bool:
        self._finalize_once()
        return True


class _AsyncHandle(CommHandle):
    """Handle completed by a :class:`_HelperRunner` thread."""

    def __init__(
        self,
        op: str,
        tag: int,
        unpin: Optional[Callable[[], None]] = None,
        record: Optional[Callable[[float], None]] = None,
    ):
        super().__init__(op, tag, unpin=unpin)
        self._record = record
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._duration = 0.0
        self._words = 0.0

    # -- helper-thread side --------------------------------------------------
    def _complete(self, result: Any, words: float, duration: float) -> None:
        self._result = result
        self._words = words
        self._duration = duration
        self._event.set()

    def _fail(self, error: BaseException, duration: float) -> None:
        self._error = error
        self._duration = duration
        self._event.set()

    # -- caller side ---------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._event.is_set()

    def _finalize_once(self) -> None:
        if self._finalized:
            return
        # Exposed time was accumulated by wait(); everything else the
        # operation spent running overlapped the caller's compute.
        self.hidden_seconds = max(0.0, self._duration - self.exposed_seconds)
        super()._finalize_once()
        if self._error is None and self._record is not None:
            self._record(self._words)

    def wait(self) -> Any:
        if not self._event.is_set():
            start = time.perf_counter()
            self._event.wait()
            self.exposed_seconds += time.perf_counter() - start
        self._finalize_once()
        if self._error is not None:
            raise self._error
        return self._result

    def test(self) -> bool:
        if not self._event.is_set():
            return False
        self._finalize_once()
        if self._error is not None:
            raise self._error
        return True


class _HelperRunner:
    """One daemon thread executing a communicator's nonblocking ops in order.

    Operations are executed strictly in submission order over the silent
    shadow communicator, identically on every rank (the loops are SPMD), so
    the per-(src, dst) FIFO mailboxes guarantee messages of consecutive
    operations can never cross.
    """

    def __init__(self, owner: Any, shadow: Any):
        self._shadow = shadow
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._run,
            name=f"nb-helper-r{shadow.rank}",
            daemon=True,
        )
        self._thread.start()
        # Belt and braces for ad-hoc users that never call
        # shutdown_nonblocking(): stop the helper when the owning Comm is
        # collected.  The callback must not capture owner or self (that would
        # keep them alive forever); the queue alone is enough.
        self._finalizer = weakref.finalize(owner, _request_shutdown, self._queue)

    def submit(self, handle: _AsyncHandle, fn: Callable[[Any], Tuple[Any, float]]) -> None:
        self._queue.put((handle, fn))

    def shutdown(self, timeout: float = 5.0) -> None:
        """Finish pending operations, then stop and join the helper thread."""
        self._finalizer.detach()
        self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            handle, fn = item
            start = time.perf_counter()
            try:
                result, words = fn(self._shadow)
            except BaseException as exc:  # noqa: BLE001 - delivered via wait()
                handle._fail(exc, time.perf_counter() - start)
            else:
                handle._complete(result, words, time.perf_counter() - start)


def _request_shutdown(q: "queue.SimpleQueue") -> None:
    q.put(_SHUTDOWN)


def _nwords(obj: Any) -> float:
    from repro.comm.communicator import _nwords as nwords

    return nwords(obj)


# -- the helper-side operation bodies ---------------------------------------
# Each returns (result, ledger_words) and must be byte-identical to the
# native blocking collective it stands in for: recursive-doubling allgather
# moves the full contributions, then the rank-order combine/concatenate of
# the native protocol runs locally.

def _allgatherv_body(
    array: np.ndarray, axis: int, out: Optional[np.ndarray]
) -> Callable[[Any], Tuple[np.ndarray, float]]:
    def run(shadow: Any) -> Tuple[np.ndarray, float]:
        from repro.comm.collectives import recursive_doubling_allgather
        from repro.comm.communicator import _require_safe_cast

        parts = recursive_doubling_allgather(shadow, array)
        words = float(sum(_nwords(p) for p in parts))
        if out is None:
            return np.concatenate(parts, axis=axis), words
        _require_safe_cast(np.result_type(*parts), out, "gathered")
        try:
            np.concatenate(parts, axis=axis, out=out)
        except ValueError as exc:
            raise CommunicatorError(
                f"out buffer shape {out.shape} does not match the gathered result: {exc}"
            ) from exc
        return out, words

    return run


def _allreduce_body(
    array: np.ndarray, op: Any, out: Optional[np.ndarray]
) -> Callable[[Any], Tuple[np.ndarray, float]]:
    def run(shadow: Any) -> Tuple[np.ndarray, float]:
        from repro.comm.collectives import recursive_doubling_allgather

        parts = recursive_doubling_allgather(shadow, array)
        return op.combine(parts, out=out), _nwords(array)

    return run


def _reduce_scatter_body(
    array: np.ndarray,
    index: Tuple[Any, ...],
    op: Any,
    out: Optional[np.ndarray],
) -> Callable[[Any], Tuple[np.ndarray, float]]:
    def run(shadow: Any) -> Tuple[np.ndarray, float]:
        from repro.comm.collectives import recursive_doubling_allgather

        parts = recursive_doubling_allgather(shadow, array)
        pieces = [np.asarray(p)[index] for p in parts]
        return op.combine(pieces, out=out), _nwords(array)

    return run


def finish(
    handle: CommHandle,
    profiler: Optional[Profiler] = None,
    category: Optional[TaskCategory] = None,
) -> Any:
    """Wait on ``handle`` and book its timing split into ``profiler``.

    Exposed (blocked) seconds land in ``category`` — the same classic
    collective category the blocking call would be timed under, keeping
    existing breakdown totals backward-compatible — and overlapped seconds
    land in :attr:`TaskCategory.HIDDEN_COMM`.  Call once per handle.
    """
    result = handle.wait()
    if profiler is not None and category is not None:
        profiler.add(category, handle.exposed_seconds)
        if handle.hidden_seconds > 0.0:
            profiler.add(TaskCategory.HIDDEN_COMM, handle.hidden_seconds)
    return result
