"""Reusable per-rank output buffers for the collectives.

Every iteration of Algorithms 2 and 3 runs the same collectives on arrays of
the same shapes (the Gram all-reduces are ``k × k``, the factor all-gathers
are ``m/pr × k`` / ``k × n/pc``, the reduce-scatters produce each rank's
fixed sub-block).  Allocating fresh result arrays for each of them, every
iteration, is pure garbage-collector churn.

:class:`CollectiveWorkspace` holds *named* buffers that persist across
iterations: the algorithm asks for ``ws.get("gram_h", (k, k))`` once per
iteration and the collective writes its result in place (mirroring MPI's
caller-provided receive buffers).  Buffers are named rather than keyed by
shape so two same-shaped collectives that are live simultaneously (e.g. the
``W`` Gram and the ``H`` Gram inside one iteration) can never alias.

The workspace is per-communicator and therefore per-rank — results are
rank-private in the SPMD model, so no synchronization is needed.

Nonblocking collectives (:mod:`repro.comm.nonblocking`) *pin* the workspace
buffer they are writing into for the lifetime of their handle: requesting a
pinned buffer via :meth:`CollectiveWorkspace.get` raises
:class:`~repro.util.errors.WorkspacePinnedError` naming the issuing rank, the
operation, and the issue tag, instead of handing out an array another thread
is concurrently filling.  ``wait()``/completed ``test()`` unpin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.util.errors import WorkspacePinnedError

ShapeLike = Union[int, Tuple[int, ...]]


@dataclass(frozen=True)
class _Pin:
    """Provenance of an in-flight nonblocking op holding a buffer."""

    rank: int
    op: str
    tag: int


class CollectiveWorkspace:
    """Named, lazily allocated, shape-checked reusable numpy buffers."""

    def __init__(self):
        self._buffers: Dict[str, np.ndarray] = {}
        self._pins: Dict[str, _Pin] = {}

    def get(self, name: str, shape: ShapeLike, dtype=np.float64) -> np.ndarray:
        """Return the buffer registered under ``name``.

        The buffer is (re)allocated on first use and whenever the requested
        ``shape``/``dtype`` changed (e.g. a config sweep reusing one
        communicator); otherwise the same array object is returned every
        call, which is what makes the collectives allocation-free in steady
        state.  Contents are *not* cleared between calls — collectives
        overwrite every element.

        Raises :class:`WorkspacePinnedError` if the buffer is currently the
        target of an un-waited nonblocking collective.
        """
        pin = self._pins.get(name)
        if pin is not None:
            raise WorkspacePinnedError(name, rank=pin.rank, op=pin.op, tag=pin.tag)
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    def pin_matching(self, array: np.ndarray, *, rank: int, op: str, tag: int) -> Optional[str]:
        """Pin the named buffer that *is* ``array``, if the workspace owns one.

        Returns the pinned name (to pass to :meth:`unpin` on completion) or
        ``None`` when ``array`` is not a workspace buffer — ad-hoc ``out=``
        arrays are the caller's own concern.  Matching is by object identity,
        not by value or aliasing.
        """
        for name, buf in self._buffers.items():
            if buf is array:
                self._pins[name] = _Pin(rank=rank, op=op, tag=tag)
                return name
        return None

    def unpin(self, name: str) -> None:
        """Release the pin on ``name`` (idempotent)."""
        self._pins.pop(name, None)

    @property
    def pinned_names(self) -> Tuple[str, ...]:
        """Names currently held by in-flight nonblocking collectives."""
        return tuple(sorted(self._pins))

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the workspace."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop all buffers and pins (buffers are reallocated on next use)."""
        self._buffers.clear()
        self._pins.clear()

    def __repr__(self) -> str:
        return f"CollectiveWorkspace(buffers={len(self)}, nbytes={self.nbytes})"
