"""The MPI-like communicator used by the parallel NMF algorithms.

:class:`Comm` exposes the subset of MPI that Algorithms 2 and 3 of the paper
need — point-to-point ``send``/``recv``, ``barrier``, ``bcast``, ``gather``,
``scatter``, ``allgather`` (plus a concatenating ``allgatherv``),
``reduce_scatter``, ``allreduce`` and ``split`` — with numpy-buffer semantics
matching mpi4py's uppercase, buffer-based API (the fast path the mpi4py
tutorial recommends for array data).

Collectives follow a deposit / barrier / compute / barrier protocol on the
shared slots of the group's :class:`~repro.comm.backend.SharedGroupState`:
every rank deposits its contribution, waits, reads the contributions of all
ranks to compute its own result, and waits again so no rank can start the
next collective while a peer is still reading.  Reductions are evaluated in
rank order on every rank, so all ranks observe bitwise-identical results
(deterministic independent of thread scheduling).

Each communicator can carry a :class:`~repro.comm.cost.CostLedger`; every
collective then records the number of words and messages the *optimal* MPI
algorithm for that collective would move (the §2.3 expressions), which is the
quantity the paper's analysis — and our tests — reason about.
"""

from __future__ import annotations

import contextlib
import enum
import queue
import time
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.backends.base import SharedGroupState
from repro.comm.cost import CostLedger
from repro.comm.nonblocking import (
    CommHandle,
    _allgatherv_body,
    _allreduce_body,
    _AsyncHandle,
    _EagerHandle,
    _HelperRunner,
    _reduce_scatter_body,
)
from repro.comm.workspace import CollectiveWorkspace
from repro.util.errors import CommunicatorError


def _require_safe_cast(src_dtype, out: np.ndarray, what: str) -> None:
    """Reject an ``out`` buffer whose dtype cannot hold ``src_dtype`` losslessly."""
    if not np.can_cast(src_dtype, out.dtype, casting="safe"):
        raise CommunicatorError(
            f"out buffer dtype {out.dtype} cannot hold the {what} "
            f"dtype {src_dtype} without loss"
        )


class ReduceOp(str, enum.Enum):
    """Reduction operators supported by the reduce-style collectives."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"
    PROD = "prod"

    def combine(
        self, arrays: Sequence[np.ndarray], out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Reduce ``arrays`` elementwise in rank order (deterministic).

        With ``out`` the reduction is written into the provided buffer (which
        is also returned) instead of a freshly allocated array; ``out`` must
        match the element shape and must not alias any input.
        """
        if not arrays:
            raise CommunicatorError("cannot reduce an empty sequence")
        stack = [np.asarray(a) for a in arrays]
        if out is None:
            out = stack[0].astype(np.result_type(*stack), copy=True)
        else:
            if out.shape != stack[0].shape:
                raise CommunicatorError(
                    f"out buffer has shape {out.shape}, expected {stack[0].shape}"
                )
            _require_safe_cast(np.result_type(*stack), out, "reduction")
            np.copyto(out, stack[0])
        for a in stack[1:]:
            if self is ReduceOp.SUM:
                out += a
            elif self is ReduceOp.MAX:
                np.maximum(out, a, out=out)
            elif self is ReduceOp.MIN:
                np.minimum(out, a, out=out)
            elif self is ReduceOp.PROD:
                out *= a
        return out


def _nwords(obj: Any) -> float:
    """Approximate size of a payload in 8-byte words (for the cost ledger)."""
    if isinstance(obj, np.ndarray):
        return obj.size * obj.itemsize / 8.0
    if isinstance(obj, (list, tuple)):
        return float(sum(_nwords(o) for o in obj))
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 1.0
    return 1.0


class Comm:
    """A communicator over a fixed group of SPMD ranks.

    Instances are created by the execution backends of
    :mod:`repro.comm.backends` (the world communicator handed to the SPMD
    program) and by :meth:`split` (row/column communicators of the processor
    grid).  The communicator is backend-agnostic: the group state it was
    constructed with supplies the synchronization mechanism.
    """

    def __init__(
        self,
        state: SharedGroupState,
        rank: int,
        group_ranks: Tuple[int, ...],
        parent: Optional["Comm"] = None,
        ledger: Optional[CostLedger] = None,
    ):
        if not 0 <= rank < state.size:
            raise CommunicatorError(f"rank {rank} out of range for size {state.size}")
        self._state = state
        self._rank = rank
        self._group_ranks = group_ranks
        self._parent = parent
        self._split_count = 0
        self._ledger = ledger
        self._workspace: Optional[CollectiveWorkspace] = None
        # Nonblocking-collective state: shadow-communicator traffic must
        # never hit the ledger (_silent), handles get a per-communicator
        # issue tag (_nb_seq), and helper-mode backends lazily get one
        # daemon runner thread (_nb_runner).
        self._silent = False
        self._nb_seq = 0
        self._nb_runner: Optional[_HelperRunner] = None

    # -- identity ----------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the communicator (0-based)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._state.size

    @property
    def group_ranks(self) -> Tuple[int, ...]:
        """World ranks of the members of this communicator, in local-rank order."""
        return self._group_ranks

    def __repr__(self) -> str:
        return f"Comm(rank={self.rank}, size={self.size})"

    @property
    def ledger(self) -> Optional[CostLedger]:
        """The attached cost ledger; falls back to the parent communicator's.

        The dynamic lookup means a ledger attached to the world communicator
        is automatically used by the row/column sub-communicators the process
        grid created earlier, and that setup-phase collectives (before the
        ledger is attached) are not counted — only the per-iteration
        communication the paper's analysis talks about.
        """
        if self._ledger is not None:
            return self._ledger
        if self._parent is not None:
            return self._parent.ledger
        return None

    def attach_ledger(self, ledger: Optional[CostLedger]) -> None:
        """Attach (or detach, with None) a cost ledger recording collective volume."""
        self._ledger = ledger

    @property
    def workspace(self) -> CollectiveWorkspace:
        """This rank's reusable collective output buffers (lazily created).

        Pass ``workspace.get(name, shape)`` as the ``out=`` argument of
        :meth:`allreduce`, :meth:`reduce_scatter` or :meth:`allgatherv` to
        make the per-iteration collectives allocation-free.
        """
        if self._workspace is None:
            self._workspace = CollectiveWorkspace()
        return self._workspace

    @staticmethod
    def _validate_out(
        out: Optional[np.ndarray],
        array: np.ndarray,
        expected_shape: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Validate a caller-provided ``out`` buffer *before* any deposit.

        Raising before the first barrier keeps the failure symmetric across
        ranks (every rank rejects its own bad buffer) and the communicator
        usable afterwards; an exception between the two barriers of a
        collective would leave the deposit slots in an undefined state.

        Checks: ``out`` must not alias the input (peers read the deposited
        input while the result is written), must match ``expected_shape``
        when the result shape is known up front, and must be able to hold
        the contribution's dtype without loss.
        """
        if out is None:
            return
        if np.shares_memory(out, array):
            raise CommunicatorError(
                "out buffer must not share memory with the input array: peers "
                "read the input while the result is being written"
            )
        if expected_shape is not None and out.shape != tuple(expected_shape):
            raise CommunicatorError(
                f"out buffer has shape {out.shape}, expected {tuple(expected_shape)}"
            )
        _require_safe_cast(array.dtype, out, "contribution")

    @staticmethod
    def _copy_result(out: np.ndarray, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into ``out`` with the same safe-cast rule as combine.

        Used by the size-1 fast paths so a lossy ``out`` dtype is rejected
        identically regardless of communicator size.
        """
        array = np.asarray(array)
        _require_safe_cast(array.dtype, out, "result")
        np.copyto(out, array)
        return out

    @contextlib.contextmanager
    def _compute_phase(self):
        """The read/compute window between a collective's two barriers.

        Opens with the post-deposit barrier and guarantees the closing
        barrier runs even if the compute raises — otherwise peers blocked in
        the closing ``wait()`` would hang forever (the thread backend's
        barriers have no timeout, and a worker failure only aborts the world
        state, not sub-communicator states).  If the closing barrier itself
        fails during unwinding (e.g. a peer aborted concurrently), the
        original exception is the one that propagates.
        """
        self._state.wait()
        try:
            yield
        except BaseException:
            try:
                self._state.wait()
            except Exception:
                pass
            raise
        self._state.wait()

    def _record(self, operation: str, n_words: float) -> None:
        if self._silent:
            return
        ledger = self.ledger
        if ledger is not None:
            ledger.record(operation, self.size, n_words)

    def record_collective(self, operation: str, n_words: float) -> None:
        """Record one modeled §2.3 collective on the attached ledger.

        This is the explicit booking entry used by callers that *silence* a
        group of physical collectives standing in for one modeled operation —
        the panel-streamed reduce-scatter issues one ``ireduce_scatter`` per
        panel with ``record=False`` and then books a single monolithic entry
        here, so the ledger carries exactly the call/word/message totals the
        blocking call would have recorded.  Mirrors the blocking collectives'
        size-1 fast path (nothing is recorded on a singleton communicator).
        """
        if self.size > 1:
            self._record(operation, n_words)

    @contextlib.contextmanager
    def _silenced(self):
        """Temporarily suppress ledger recording on this communicator."""
        was_silent = self._silent
        self._silent = True
        try:
            yield
        finally:
            self._silent = was_silent

    # -- synchronization ---------------------------------------------------
    def barrier(self) -> None:
        """Block until all ranks of this communicator reach the barrier."""
        if self.size > 1:
            self._state.wait()

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to local rank ``dest`` (buffered, non-blocking)."""
        if not 0 <= dest < self.size:
            raise CommunicatorError(f"dest {dest} out of range for size {self.size}")
        if dest == self.rank:
            raise CommunicatorError("send to self is not supported; use local data directly")
        payload = obj.copy() if isinstance(obj, np.ndarray) else obj
        self._state.mailbox(self.rank, dest).put((tag, payload))
        self._record("send", _nwords(obj))

    def recv(self, source: int, tag: int = 0, timeout: float = 60.0) -> Any:
        """Receive the next message from ``source`` with matching ``tag``."""
        if not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range for size {self.size}")
        box = self._state.mailbox(source, self.rank)
        try:
            got_tag, payload = box.get(timeout=timeout)
        except queue.Empty as exc:
            raise CommunicatorError(
                f"recv timed out after {timeout:g}s: destination rank {self.rank} "
                f"waiting for a message from source rank {source} with tag {tag} "
                f"(communicator size {self.size}); the sender likely crashed, "
                "deadlocked, or never reached the matching send"
            ) from exc
        if got_tag != tag:
            raise CommunicatorError(
                f"rank {self.rank}: expected tag {tag} from {source}, got {got_tag}"
            )
        return payload

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        """Combined send to ``dest`` and receive from ``source`` (deadlock-free)."""
        self.send(obj, dest, tag=tag)
        return self.recv(source, tag=tag)

    @staticmethod
    def _detach(value: Any) -> Any:
        """Copy an ndarray read from a peer's deposit slot before it escapes.

        Slot reads may be views of a buffer the peer reuses for its next
        deposit (the process backend's shared-memory segments), so any array
        that outlives the collective's closing barrier must be detached.
        Non-array objects keep reference semantics (the object collectives'
        pickle-style contract).
        """
        return value.copy() if isinstance(value, np.ndarray) else value

    # -- object collectives (pickle-style, small metadata only) -------------
    def allgather_object(self, obj: Any) -> List[Any]:
        """Gather one arbitrary Python object from every rank (returned in rank order)."""
        if self.size == 1:
            return [obj]
        self._state.slots[self.rank] = obj
        with self._compute_phase():
            out = [
                obj if r == self.rank else self._detach(self._state.slots[r])
                for r in range(self.size)
            ]
        self._record("all_gather", _nwords(obj) * self.size)
        return out

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to all ranks."""
        if self.size == 1:
            return obj
        if self.rank == root:
            self._state.slots[root] = obj
        with self._compute_phase():
            # The root hands back the caller's own object; peers detach their
            # slot read so it cannot alias the root's next deposit.
            value = obj if self.rank == root else self._detach(self._state.slots[root])
        self._record("broadcast", _nwords(value))
        return value

    # -- array collectives ---------------------------------------------------
    def allgather(self, array: np.ndarray) -> List[np.ndarray]:
        """All-gather: every rank receives the list of all ranks' arrays."""
        array = np.asarray(array)
        if self.size == 1:
            return [array]
        self._state.slots[self.rank] = array
        with self._compute_phase():
            gathered = [np.asarray(self._state.slots[r]).copy() if r != self.rank else array
                        for r in range(self.size)]
        total_words = sum(_nwords(g) for g in gathered)
        self._record("all_gather", total_words)
        return gathered

    def allgatherv(
        self, array: np.ndarray, axis: int = 0, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """All-gather and concatenate along ``axis`` (blocks may differ in size).

        With ``out`` the concatenated result is written into the provided
        buffer (avoiding both the per-block copies and the concatenation
        allocation) and ``out`` is returned; its shape must equal the
        concatenated shape.
        """
        array = np.asarray(array)
        self._validate_out(out, array)
        if out is not None:
            # The axis length of the result depends on every rank's block and
            # is only checkable after the gather, but the rank and the other
            # dimensions are known now — reject bad buffers before any
            # deposit so the failure is symmetric across ranks.
            norm_axis = axis % array.ndim if array.ndim else 0
            if out.ndim != array.ndim or any(
                out.shape[d] != array.shape[d]
                for d in range(array.ndim)
                if d != norm_axis
            ):
                raise CommunicatorError(
                    f"out buffer shape {out.shape} is incompatible with "
                    f"gathered blocks of shape {array.shape} along axis {axis}"
                )
        if self.size == 1:
            if out is None:
                return array
            if out.shape != array.shape:
                raise CommunicatorError(
                    f"out buffer has shape {out.shape}, expected {array.shape}"
                )
            return self._copy_result(out, array)
        if out is None:
            return np.concatenate(self.allgather(array), axis=axis)
        # Concatenate straight from the deposit slots into the caller's
        # buffer: between the two barriers peers cannot mutate their deposits,
        # so the intermediate per-block copies of allgather() are unnecessary.
        self._state.slots[self.rank] = array
        with self._compute_phase():
            parts = [np.asarray(self._state.slots[r]) for r in range(self.size)]
            _require_safe_cast(np.result_type(*parts), out, "gathered")
            try:
                np.concatenate(parts, axis=axis, out=out)
            except ValueError as exc:
                raise CommunicatorError(
                    f"out buffer shape {out.shape} does not match the "
                    f"gathered result: {exc}"
                ) from exc
        self._record("all_gather", sum(_nwords(p) for p in parts))
        return out

    def gather(self, array: np.ndarray, root: int = 0) -> Optional[List[np.ndarray]]:
        """Gather arrays on ``root``; other ranks receive ``None``."""
        array = np.asarray(array)
        if self.size == 1:
            return [array]
        self._state.slots[self.rank] = array
        with self._compute_phase():
            result = None
            if self.rank == root:
                result = [np.asarray(self._state.slots[r]).copy() for r in range(self.size)]
        self._record("gather", _nwords(array) * self.size)
        return result

    def scatter(self, arrays: Optional[Sequence[np.ndarray]], root: int = 0) -> np.ndarray:
        """Scatter a per-rank list from ``root``; returns this rank's element."""
        if self.size == 1:
            assert arrays is not None
            return np.asarray(arrays[0])
        if self.rank == root:
            if arrays is None or len(arrays) != self.size:
                raise CommunicatorError(
                    f"root must provide exactly {self.size} arrays to scatter"
                )
            self._state.slots[root] = [np.asarray(a) for a in arrays]
        with self._compute_phase():
            mine = np.asarray(self._state.slots[root][self.rank]).copy()
        self._record("scatter", _nwords(mine) * self.size)
        return mine

    def reduce(self, array: np.ndarray, root: int = 0, op: ReduceOp = ReduceOp.SUM
               ) -> Optional[np.ndarray]:
        """Reduce arrays elementwise onto ``root``; other ranks receive ``None``."""
        array = np.asarray(array)
        if self.size == 1:
            return array.copy()
        self._state.slots[self.rank] = array
        with self._compute_phase():
            result = None
            if self.rank == root:
                result = op.combine(
                    [np.asarray(self._state.slots[r]) for r in range(self.size)]
                )
        self._record("reduce", _nwords(array))
        return result

    def allreduce(
        self,
        array: np.ndarray,
        op: ReduceOp = ReduceOp.SUM,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """All-reduce: every rank receives the elementwise reduction over ranks.

        With ``out`` the reduction is computed into the provided buffer
        (which is returned) instead of a fresh allocation; ``out`` must not
        alias ``array``.
        """
        array = np.asarray(array)
        self._validate_out(out, array, expected_shape=array.shape)
        if self.size == 1:
            if out is None:
                return array.copy()
            return self._copy_result(out, array)
        self._state.slots[self.rank] = array
        with self._compute_phase():
            result = op.combine(
                [np.asarray(self._state.slots[r]) for r in range(self.size)], out=out
            )
        self._record("all_reduce", _nwords(array))
        return result

    def allreduce_scalar(self, value: float, op: ReduceOp = ReduceOp.SUM) -> float:
        """All-reduce a single scalar (used for objective values and norms)."""
        return float(self.allreduce(np.asarray([float(value)]), op=op)[0])

    def reduce_scatter(
        self,
        array: np.ndarray,
        counts: Optional[Sequence[int]] = None,
        axis: int = 0,
        op: ReduceOp = ReduceOp.SUM,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Reduce-scatter: sum arrays over ranks, split the sum along ``axis``.

        Every rank contributes an identically shaped ``array``; after the
        call, rank ``r`` owns the ``r``-th block (of size ``counts[r]`` along
        ``axis``) of the elementwise reduction.  If ``counts`` is omitted the
        axis is split as evenly as possible (first ``remainder`` blocks one
        element larger), matching
        :func:`repro.dist.partition.block_counts` — so a count-less
        reduce-scatter lands each rank exactly on the block that
        :mod:`repro.dist` assigns it.

        With ``out`` the reduced block is computed into the provided buffer
        (which is returned); ``out`` must not alias ``array``.
        """
        array = np.asarray(array)
        length = array.shape[axis]
        if counts is None:
            base, rem = divmod(length, self.size)
            counts = [base + (1 if r < rem else 0) for r in range(self.size)]
        counts = list(counts)
        if len(counts) != self.size:
            raise CommunicatorError(
                f"counts must have length {self.size}, got {len(counts)}"
            )
        if sum(counts) != length:
            raise CommunicatorError(
                f"counts sum to {sum(counts)} but axis {axis} has length {length}"
            )
        offsets = np.concatenate(([0], np.cumsum(counts)))
        expected_shape = list(array.shape)
        expected_shape[axis] = counts[self.rank]
        self._validate_out(out, array, expected_shape=tuple(expected_shape))
        if self.size == 1:
            if out is None:
                return array.copy()
            return self._copy_result(out, array)
        self._state.slots[self.rank] = array
        with self._compute_phase():
            lo, hi = offsets[self.rank], offsets[self.rank + 1]
            index: List[Any] = [slice(None)] * array.ndim
            index[axis] = slice(lo, hi)
            index = tuple(index)
            pieces = [np.asarray(self._state.slots[r])[index] for r in range(self.size)]
            result = op.combine(pieces, out=out)
        self._record("reduce_scatter", _nwords(array))
        return result

    # -- nonblocking collectives ---------------------------------------------
    @property
    def _nonblocking_eager(self) -> bool:
        """Whether handles complete at issue time on this substrate.

        True for size-1 communicators (nothing to overlap) and for group
        states that declare ``nonblocking_mode == "eager"`` (lockstep, whose
        deterministic baton schedule must not gain helper threads).
        """
        if self.size == 1:
            return True
        return getattr(self._state, "nonblocking_mode", "helper") == "eager"

    def _next_nb_tag(self) -> int:
        self._nb_seq += 1
        return self._nb_seq

    def _pin_out(self, out: Optional[np.ndarray], op: str, tag: int):
        """Pin ``out`` in this rank's workspace for a handle's lifetime.

        Returns the unpin callback for the handle (or ``None`` when ``out``
        is absent or not a workspace buffer).  Pinning happens on every
        backend — including eager ones, where the data is already in place —
        so the reuse-hazard error triggers identically everywhere.
        """
        if out is None or self._workspace is None:
            return None
        name = self._workspace.pin_matching(out, rank=self.rank, op=op, tag=tag)
        if name is None:
            return None
        workspace = self._workspace
        return lambda: workspace.unpin(name)

    def _make_shadow(self) -> "Comm":
        """Collectively create the silent transport communicator for a helper.

        The split's own setup collective must not be counted either, so this
        communicator is temporarily silenced during the split; the shadow is
        permanently silent and detached from the parent chain (the helper
        thread holds it, and a parent reference would keep the issuing
        communicator alive forever).
        """
        with self._silenced():
            shadow = self.split(color=0, key=self.rank)
        shadow._silent = True
        shadow._parent = None
        return shadow

    def ensure_nonblocking(self) -> bool:
        """Collectively prepare this communicator for nonblocking collectives.

        On helper-mode backends this creates the silent shadow communicator
        (a collective operation — every rank must call this at the same
        point) and starts the daemon runner thread; call it during setup,
        before attaching a ledger, so first use inside a timed loop pays no
        hidden split.  Eager substrates and size-1 communicators need no
        preparation.  Returns True when a helper runner is active.
        """
        if self._nonblocking_eager:
            return False
        if self._nb_runner is None:
            self._nb_runner = _HelperRunner(self, self._make_shadow())
        return True

    def shutdown_nonblocking(self) -> None:
        """Drain and stop this communicator's helper thread (if any).

        Pending handles still complete (the runner finishes its queue before
        exiting) and remain waitable.  Idempotent; a later nonblocking call
        would lazily recreate the helper.
        """
        runner = self._nb_runner
        self._nb_runner = None
        if runner is not None:
            runner.shutdown()

    def _issue(
        self,
        op: str,
        blocking_call,
        body_factory,
        ledger_op: str,
        out: Optional[np.ndarray],
        record: bool = True,
    ) -> CommHandle:
        """Shared issue path: eager completion or helper submission.

        With ``record=False`` the operation leaves no ledger entry at all —
        the caller is expected to book one modeled collective for a whole
        group of physical ones via :meth:`record_collective` (the
        panel-streaming contract; see :mod:`repro.comm.panels`).
        """
        tag = self._next_nb_tag()
        unpin = self._pin_out(out, op, tag)
        if self._nonblocking_eager:
            start = time.perf_counter()
            try:
                if record:
                    result = blocking_call()
                else:
                    with self._silenced():
                        result = blocking_call()
            except BaseException:
                if unpin is not None:
                    unpin()
                raise
            return _EagerHandle(op, tag, result, time.perf_counter() - start, unpin=unpin)
        self.ensure_nonblocking()
        handle = _AsyncHandle(
            op,
            tag,
            unpin=unpin,
            record=(lambda words: self._record(ledger_op, words)) if record else None,
        )
        self._nb_runner.submit(handle, body_factory())
        return handle

    def iallgatherv(
        self, array: np.ndarray, axis: int = 0, out: Optional[np.ndarray] = None
    ) -> CommHandle:
        """Nonblocking :meth:`allgatherv`; returns a :class:`CommHandle`.

        The result (``handle.wait()``) is byte-identical to the blocking
        call's.  The input is snapshotted at issue, so the caller may
        overwrite ``array`` immediately; ``out`` must stay untouched until
        ``wait()`` (workspace buffers enforce this via pinning).
        """
        array = np.asarray(array)
        self._validate_out(out, array)
        if out is not None:
            norm_axis = axis % array.ndim if array.ndim else 0
            if out.ndim != array.ndim or any(
                out.shape[d] != array.shape[d]
                for d in range(array.ndim)
                if d != norm_axis
            ):
                raise CommunicatorError(
                    f"out buffer shape {out.shape} is incompatible with "
                    f"gathered blocks of shape {array.shape} along axis {axis}"
                )
        return self._issue(
            "iallgatherv",
            lambda: self.allgatherv(array, axis=axis, out=out),
            lambda: _allgatherv_body(array.copy(), axis, out),
            "all_gather",
            out,
        )

    def iallreduce(
        self,
        array: np.ndarray,
        op: ReduceOp = ReduceOp.SUM,
        out: Optional[np.ndarray] = None,
        record: bool = True,
    ) -> CommHandle:
        """Nonblocking :meth:`allreduce`; returns a :class:`CommHandle`.

        Byte-identical to the blocking call: the helper gathers the full
        contributions point-to-point and combines them in rank order, the
        same order the native collective uses.

        ``record=False`` suppresses this operation's ledger entry so a caller
        can book it via :meth:`record_collective` at the *blocking schedule's
        program point* instead of at completion time — keeping the ledger's
        per-entry accumulation order (and hence its floating-point sums)
        identical across schedules even while the operation is in flight past
        other collectives (the deferred error path of the pipelined loops).
        """
        array = np.asarray(array)
        self._validate_out(out, array, expected_shape=array.shape)
        return self._issue(
            "iallreduce",
            lambda: self.allreduce(array, op=op, out=out),
            lambda: _allreduce_body(array.copy(), op, out),
            "all_reduce",
            out,
            record=record,
        )

    def ireduce_scatter(
        self,
        array: np.ndarray,
        counts: Optional[Sequence[int]] = None,
        axis: int = 0,
        op: ReduceOp = ReduceOp.SUM,
        out: Optional[np.ndarray] = None,
        record: bool = True,
    ) -> CommHandle:
        """Nonblocking :meth:`reduce_scatter`; returns a :class:`CommHandle`.

        ``record=False`` suppresses this operation's ledger entry so a caller
        splitting one modeled reduce-scatter into per-panel pieces can book
        the single monolithic entry itself with :meth:`record_collective`
        (panel streaming, :mod:`repro.comm.panels`).
        """
        array = np.asarray(array)
        length = array.shape[axis]
        if counts is None:
            base, rem = divmod(length, self.size)
            counts = [base + (1 if r < rem else 0) for r in range(self.size)]
        counts = list(counts)
        if len(counts) != self.size:
            raise CommunicatorError(
                f"counts must have length {self.size}, got {len(counts)}"
            )
        if sum(counts) != length:
            raise CommunicatorError(
                f"counts sum to {sum(counts)} but axis {axis} has length {length}"
            )
        offsets = np.concatenate(([0], np.cumsum(counts)))
        expected_shape = list(array.shape)
        expected_shape[axis] = counts[self.rank]
        self._validate_out(out, array, expected_shape=tuple(expected_shape))
        index: List[Any] = [slice(None)] * array.ndim
        index[axis] = slice(int(offsets[self.rank]), int(offsets[self.rank + 1]))
        index = tuple(index)
        return self._issue(
            "ireduce_scatter",
            lambda: self.reduce_scatter(array, counts=counts, axis=axis, op=op, out=out),
            lambda: _reduce_scatter_body(array.copy(), index, op, out),
            "reduce_scatter",
            out,
            record=record,
        )

    # -- communicator management --------------------------------------------
    def split(self, color: int, key: Optional[int] = None) -> "Comm":
        """Partition the communicator into sub-communicators by ``color``.

        All ranks must call ``split``; ranks sharing a ``color`` end up in the
        same sub-communicator, ordered by ``key`` (default: current rank).
        This is how the processor grid builds its row and column
        communicators.
        """
        if key is None:
            key = self.rank
        self._split_count += 1
        split_id = self._split_count
        info = self.allgather_object((int(color), int(key), self.rank))
        members = sorted(
            [(k, r) for (c, k, r) in info if c == int(color)], key=lambda kr: (kr[0], kr[1])
        )
        group_local_ranks = [r for _, r in members]
        new_rank = group_local_ranks.index(self.rank)
        group_world_ranks = tuple(self._group_ranks[r] for r in group_local_ranks)

        with self._state.lock:
            reg_key = ("split", split_id, int(color))
            sub_state = self._state.registry.get(reg_key)
            if sub_state is None:
                # The state decides its own subgroup type, so sub-communicators
                # stay on the same backend (thread, lockstep, process, ...) as
                # their parent.  The member list and registry key give
                # cross-process states a globally agreed group identity.
                sub_state = self._state.make_subgroup(
                    len(group_local_ranks),
                    members=tuple(group_local_ranks),
                    reg_key=reg_key,
                )
                self._state.registry[reg_key] = sub_state
        # Make sure every rank observed its sub-state before anyone proceeds.
        self.barrier()
        return self._make_comm(
            state=sub_state,
            rank=new_rank,
            group_ranks=group_world_ranks,
            parent=self,
        )

    def _make_comm(
        self,
        state: SharedGroupState,
        rank: int,
        group_ranks: Tuple[int, ...],
        parent: "Comm",
    ) -> "Comm":
        """Construct the communicator :meth:`split` returns (subclass hook).

        Wire communicators (the socket backend's :class:`SocketComm`)
        override this so the row/column sub-communicators of the process
        grid — and the silent shadow communicators of the nonblocking
        helpers — keep the wire collectives rather than degrading to the
        slot-based base class.  Not simply ``type(self)`` because subclasses
        with different constructor signatures (:class:`SelfComm`) must not
        be re-instantiated blindly.
        """
        return Comm(state=state, rank=rank, group_ranks=group_ranks, parent=parent)

    def dup(self) -> "Comm":
        """Return a communicator over the same group with fresh shared state."""
        return self.split(color=0, key=self.rank)


class SelfComm(Comm):
    """A size-1 communicator for running the parallel code paths sequentially."""

    def __init__(self, ledger: Optional[CostLedger] = None):
        super().__init__(SharedGroupState(1), rank=0, group_ranks=(0,), ledger=ledger)
