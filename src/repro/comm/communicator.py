"""The MPI-like communicator used by the parallel NMF algorithms.

:class:`Comm` exposes the subset of MPI that Algorithms 2 and 3 of the paper
need — point-to-point ``send``/``recv``, ``barrier``, ``bcast``, ``gather``,
``scatter``, ``allgather`` (plus a concatenating ``allgatherv``),
``reduce_scatter``, ``allreduce`` and ``split`` — with numpy-buffer semantics
matching mpi4py's uppercase, buffer-based API (the fast path the mpi4py
tutorial recommends for array data).

Collectives follow a deposit / barrier / compute / barrier protocol on the
shared slots of the group's :class:`~repro.comm.backend.SharedGroupState`:
every rank deposits its contribution, waits, reads the contributions of all
ranks to compute its own result, and waits again so no rank can start the
next collective while a peer is still reading.  Reductions are evaluated in
rank order on every rank, so all ranks observe bitwise-identical results
(deterministic independent of thread scheduling).

Each communicator can carry a :class:`~repro.comm.cost.CostLedger`; every
collective then records the number of words and messages the *optimal* MPI
algorithm for that collective would move (the §2.3 expressions), which is the
quantity the paper's analysis — and our tests — reason about.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.backend import SharedGroupState
from repro.comm.cost import CostLedger
from repro.util.errors import CommunicatorError


class ReduceOp(str, enum.Enum):
    """Reduction operators supported by the reduce-style collectives."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"
    PROD = "prod"

    def combine(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Reduce ``arrays`` elementwise in rank order (deterministic)."""
        if not arrays:
            raise CommunicatorError("cannot reduce an empty sequence")
        stack = [np.asarray(a) for a in arrays]
        out = stack[0].astype(np.result_type(*stack), copy=True)
        for a in stack[1:]:
            if self is ReduceOp.SUM:
                out += a
            elif self is ReduceOp.MAX:
                np.maximum(out, a, out=out)
            elif self is ReduceOp.MIN:
                np.minimum(out, a, out=out)
            elif self is ReduceOp.PROD:
                out *= a
        return out


def _nwords(obj: Any) -> float:
    """Approximate size of a payload in 8-byte words (for the cost ledger)."""
    if isinstance(obj, np.ndarray):
        return obj.size * obj.itemsize / 8.0
    if isinstance(obj, (list, tuple)):
        return float(sum(_nwords(o) for o in obj))
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 1.0
    return 1.0


class Comm:
    """A communicator over a fixed group of SPMD ranks.

    Instances are created by :class:`~repro.comm.backend.ThreadBackend` (the
    world communicator handed to the SPMD program) and by :meth:`split`
    (row/column communicators of the processor grid).
    """

    def __init__(
        self,
        state: SharedGroupState,
        rank: int,
        group_ranks: Tuple[int, ...],
        parent: Optional["Comm"] = None,
        ledger: Optional[CostLedger] = None,
    ):
        if not 0 <= rank < state.size:
            raise CommunicatorError(f"rank {rank} out of range for size {state.size}")
        self._state = state
        self._rank = rank
        self._group_ranks = group_ranks
        self._parent = parent
        self._split_count = 0
        self._ledger = ledger

    # -- identity ----------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the communicator (0-based)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._state.size

    @property
    def group_ranks(self) -> Tuple[int, ...]:
        """World ranks of the members of this communicator, in local-rank order."""
        return self._group_ranks

    def __repr__(self) -> str:
        return f"Comm(rank={self.rank}, size={self.size})"

    @property
    def ledger(self) -> Optional[CostLedger]:
        """The attached cost ledger; falls back to the parent communicator's.

        The dynamic lookup means a ledger attached to the world communicator
        is automatically used by the row/column sub-communicators the process
        grid created earlier, and that setup-phase collectives (before the
        ledger is attached) are not counted — only the per-iteration
        communication the paper's analysis talks about.
        """
        if self._ledger is not None:
            return self._ledger
        if self._parent is not None:
            return self._parent.ledger
        return None

    def attach_ledger(self, ledger: Optional[CostLedger]) -> None:
        """Attach (or detach, with None) a cost ledger recording collective volume."""
        self._ledger = ledger

    def _record(self, operation: str, n_words: float) -> None:
        ledger = self.ledger
        if ledger is not None:
            ledger.record(operation, self.size, n_words)

    # -- synchronization ---------------------------------------------------
    def barrier(self) -> None:
        """Block until all ranks of this communicator reach the barrier."""
        if self.size > 1:
            self._state.wait()

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to local rank ``dest`` (buffered, non-blocking)."""
        if not 0 <= dest < self.size:
            raise CommunicatorError(f"dest {dest} out of range for size {self.size}")
        if dest == self.rank:
            raise CommunicatorError("send to self is not supported; use local data directly")
        payload = obj.copy() if isinstance(obj, np.ndarray) else obj
        self._state.mailbox(self.rank, dest).put((tag, payload))
        self._record("send", _nwords(obj))

    def recv(self, source: int, tag: int = 0, timeout: float = 60.0) -> Any:
        """Receive the next message from ``source`` with matching ``tag``."""
        if not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range for size {self.size}")
        box = self._state.mailbox(source, self.rank)
        try:
            got_tag, payload = box.get(timeout=timeout)
        except Exception as exc:  # queue.Empty
            raise CommunicatorError(
                f"rank {self.rank}: timed out waiting for message from {source} (tag {tag})"
            ) from exc
        if got_tag != tag:
            raise CommunicatorError(
                f"rank {self.rank}: expected tag {tag} from {source}, got {got_tag}"
            )
        return payload

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        """Combined send to ``dest`` and receive from ``source`` (deadlock-free)."""
        self.send(obj, dest, tag=tag)
        return self.recv(source, tag=tag)

    # -- object collectives (pickle-style, small metadata only) -------------
    def allgather_object(self, obj: Any) -> List[Any]:
        """Gather one arbitrary Python object from every rank (returned in rank order)."""
        if self.size == 1:
            return [obj]
        self._state.slots[self.rank] = obj
        self._state.wait()
        out = list(self._state.slots)
        self._state.wait()
        self._record("all_gather", _nwords(obj) * self.size)
        return out

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to all ranks."""
        if self.size == 1:
            return obj
        if self.rank == root:
            self._state.slots[root] = obj
        self._state.wait()
        value = self._state.slots[root]
        if isinstance(value, np.ndarray) and self.rank != root:
            value = value.copy()
        self._state.wait()
        self._record("broadcast", _nwords(value))
        return value

    # -- array collectives ---------------------------------------------------
    def allgather(self, array: np.ndarray) -> List[np.ndarray]:
        """All-gather: every rank receives the list of all ranks' arrays."""
        array = np.asarray(array)
        if self.size == 1:
            return [array]
        self._state.slots[self.rank] = array
        self._state.wait()
        gathered = [np.asarray(self._state.slots[r]).copy() if r != self.rank else array
                    for r in range(self.size)]
        self._state.wait()
        total_words = sum(_nwords(g) for g in gathered)
        self._record("all_gather", total_words)
        return gathered

    def allgatherv(self, array: np.ndarray, axis: int = 0) -> np.ndarray:
        """All-gather and concatenate along ``axis`` (blocks may differ in size)."""
        parts = self.allgather(np.asarray(array))
        if self.size == 1:
            return parts[0]
        return np.concatenate(parts, axis=axis)

    def gather(self, array: np.ndarray, root: int = 0) -> Optional[List[np.ndarray]]:
        """Gather arrays on ``root``; other ranks receive ``None``."""
        array = np.asarray(array)
        if self.size == 1:
            return [array]
        self._state.slots[self.rank] = array
        self._state.wait()
        result = None
        if self.rank == root:
            result = [np.asarray(self._state.slots[r]).copy() for r in range(self.size)]
        self._state.wait()
        self._record("gather", _nwords(array) * self.size)
        return result

    def scatter(self, arrays: Optional[Sequence[np.ndarray]], root: int = 0) -> np.ndarray:
        """Scatter a per-rank list from ``root``; returns this rank's element."""
        if self.size == 1:
            assert arrays is not None
            return np.asarray(arrays[0])
        if self.rank == root:
            if arrays is None or len(arrays) != self.size:
                raise CommunicatorError(
                    f"root must provide exactly {self.size} arrays to scatter"
                )
            self._state.slots[root] = [np.asarray(a) for a in arrays]
        self._state.wait()
        mine = np.asarray(self._state.slots[root][self.rank]).copy()
        self._state.wait()
        self._record("scatter", _nwords(mine) * self.size)
        return mine

    def reduce(self, array: np.ndarray, root: int = 0, op: ReduceOp = ReduceOp.SUM
               ) -> Optional[np.ndarray]:
        """Reduce arrays elementwise onto ``root``; other ranks receive ``None``."""
        array = np.asarray(array)
        if self.size == 1:
            return array.copy()
        self._state.slots[self.rank] = array
        self._state.wait()
        result = None
        if self.rank == root:
            result = op.combine([np.asarray(self._state.slots[r]) for r in range(self.size)])
        self._state.wait()
        self._record("reduce", _nwords(array))
        return result

    def allreduce(self, array: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        """All-reduce: every rank receives the elementwise reduction over ranks."""
        array = np.asarray(array)
        if self.size == 1:
            return array.copy()
        self._state.slots[self.rank] = array
        self._state.wait()
        result = op.combine([np.asarray(self._state.slots[r]) for r in range(self.size)])
        self._state.wait()
        self._record("all_reduce", _nwords(array))
        return result

    def allreduce_scalar(self, value: float, op: ReduceOp = ReduceOp.SUM) -> float:
        """All-reduce a single scalar (used for objective values and norms)."""
        return float(self.allreduce(np.asarray([float(value)]), op=op)[0])

    def reduce_scatter(
        self,
        array: np.ndarray,
        counts: Optional[Sequence[int]] = None,
        axis: int = 0,
        op: ReduceOp = ReduceOp.SUM,
    ) -> np.ndarray:
        """Reduce-scatter: sum arrays over ranks, split the sum along ``axis``.

        Every rank contributes an identically shaped ``array``; after the
        call, rank ``r`` owns the ``r``-th block (of size ``counts[r]`` along
        ``axis``) of the elementwise reduction.  If ``counts`` is omitted the
        axis is split as evenly as possible (first ``remainder`` blocks one
        element larger), matching
        :func:`repro.dist.partition.block_counts` — so a count-less
        reduce-scatter lands each rank exactly on the block that
        :mod:`repro.dist` assigns it.
        """
        array = np.asarray(array)
        length = array.shape[axis]
        if counts is None:
            base, rem = divmod(length, self.size)
            counts = [base + (1 if r < rem else 0) for r in range(self.size)]
        counts = list(counts)
        if len(counts) != self.size:
            raise CommunicatorError(
                f"counts must have length {self.size}, got {len(counts)}"
            )
        if sum(counts) != length:
            raise CommunicatorError(
                f"counts sum to {sum(counts)} but axis {axis} has length {length}"
            )
        offsets = np.concatenate(([0], np.cumsum(counts)))
        if self.size == 1:
            return array.copy()
        self._state.slots[self.rank] = array
        self._state.wait()
        lo, hi = offsets[self.rank], offsets[self.rank + 1]
        index: List[Any] = [slice(None)] * array.ndim
        index[axis] = slice(lo, hi)
        index = tuple(index)
        pieces = [np.asarray(self._state.slots[r])[index] for r in range(self.size)]
        result = op.combine(pieces)
        self._state.wait()
        self._record("reduce_scatter", _nwords(array))
        return result

    # -- communicator management --------------------------------------------
    def split(self, color: int, key: Optional[int] = None) -> "Comm":
        """Partition the communicator into sub-communicators by ``color``.

        All ranks must call ``split``; ranks sharing a ``color`` end up in the
        same sub-communicator, ordered by ``key`` (default: current rank).
        This is how the processor grid builds its row and column
        communicators.
        """
        if key is None:
            key = self.rank
        self._split_count += 1
        split_id = self._split_count
        info = self.allgather_object((int(color), int(key), self.rank))
        members = sorted(
            [(k, r) for (c, k, r) in info if c == int(color)], key=lambda kr: (kr[0], kr[1])
        )
        group_local_ranks = [r for _, r in members]
        new_rank = group_local_ranks.index(self.rank)
        group_world_ranks = tuple(self._group_ranks[r] for r in group_local_ranks)

        with self._state.lock:
            reg_key = ("split", split_id, int(color))
            sub_state = self._state.registry.get(reg_key)
            if sub_state is None:
                sub_state = SharedGroupState(len(group_local_ranks))
                self._state.registry[reg_key] = sub_state
        # Make sure every rank observed its sub-state before anyone proceeds.
        self.barrier()
        return Comm(
            state=sub_state,
            rank=new_rank,
            group_ranks=group_world_ranks,
            parent=self,
        )

    def dup(self) -> "Comm":
        """Return a communicator over the same group with fresh shared state."""
        return self.split(color=0, key=self.rank)


class SelfComm(Comm):
    """A size-1 communicator for running the parallel code paths sequentially."""

    def __init__(self, ledger: Optional[CostLedger] = None):
        super().__init__(SharedGroupState(1), rank=0, group_ranks=(0,), ledger=ledger)
