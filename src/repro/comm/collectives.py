"""Textbook point-to-point algorithms for the MPI collectives (paper §2.3).

The paper's cost analysis assumes the *optimal* collective algorithms — ring
or recursive-doubling all-gather (``alpha log p + beta (p-1)/p n``),
recursive-halving reduce-scatter (``alpha log p + (beta+gamma) (p-1)/p n``)
and the reduce-scatter + all-gather all-reduce
(``2 alpha log p + (2 beta + gamma)(p-1)/p n``); see Chan et al. and
Thakur et al. (the paper's references [2, 18]).

The native collectives of :class:`~repro.comm.communicator.Comm` use shared
memory directly; the functions here re-implement the same collectives using
only ``send``/``recv`` so that

* the cost structure the model charges (number of rounds, bytes per round)
  exists in executable form and can be asserted in tests, and
* the substrate has a faithful analogue of what an MPI library actually does
  on a distributed-memory machine.

All functions are SPMD: every rank of ``comm`` must call them collectively.

The nonblocking collectives (:mod:`repro.comm.nonblocking`) build on
:func:`recursive_doubling_allgather`: it is bitwise exact (it only moves
bytes), so a helper thread can run it on a shadow communicator and apply the
native rank-order combine locally, reproducing the blocking collective's
result byte-for-byte while the issuing rank keeps computing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.comm.communicator import Comm, ReduceOp
from repro.util.errors import CommunicatorError


def _largest_power_of_two_below(p: int) -> int:
    """Largest power of two <= p."""
    return 1 << (p.bit_length() - 1)


#: Tags for the fold/unfold phases that adapt the power-of-two algorithms to
#: arbitrary communicator sizes (MPICH's scheme); distinct from the per-round
#: tags 0..log2(p)-1 of the main phases.
_FOLD_TAG = 1001
_UNFOLD_TAG = 1002


def _fold_into_pairs(comm: Comm, work: np.ndarray, op: ReduceOp):
    """MPICH pre-phase adapting a reduction to a non-power-of-two size.

    The first ``2·(p - p2)`` ranks pair up (``p2`` the largest power of two
    ≤ ``p``): each odd rank sends its whole vector to its even partner, which
    reduces it in and represents both ranks through the power-of-two main
    phase.  Returns ``(work, vrank, to_real)`` where

    * ``work is None`` marks a folded (odd) rank that must now wait for the
      ``_UNFOLD_TAG`` message carrying its share of the result,
    * ``vrank`` is the rank within the ``p2``-sized virtual group, and
    * ``to_real`` maps virtual ranks back to communicator ranks.

    For participants the returned ``work`` is a private buffer safe to
    mutate in place; the input itself is never copied on folded ranks
    (``send`` buffers internally) nor on pair carriers (``op.combine``
    allocates the merged result).
    """
    p, r = comm.size, comm.rank
    n_folded = p - _largest_power_of_two_below(p)
    if r < 2 * n_folded and r % 2 == 1:
        comm.send(work, dest=r - 1, tag=_FOLD_TAG)
        work, vrank = None, None
    elif r < 2 * n_folded:
        incoming = np.asarray(comm.recv(source=r + 1, tag=_FOLD_TAG))
        work = op.combine([work, incoming])
        vrank = r // 2
    else:
        work = work.copy()
        vrank = r - n_folded

    def to_real(v: int) -> int:
        return 2 * v if v < n_folded else v + n_folded

    return work, vrank, to_real


def ring_allgather(comm: Comm, array: np.ndarray) -> List[np.ndarray]:
    """All-gather via the bidirectional ring (bandwidth-optimal) algorithm.

    Runs ``p - 1`` rounds; in round ``t`` each rank forwards the block it
    received in round ``t-1`` to its right neighbour.  Total volume per rank
    is ``(p-1)/p * n`` words, matching the cost model (the latency term is
    ``p - 1`` messages rather than ``log p``; MPI libraries switch to
    recursive doubling for small messages, which we mirror in
    :func:`recursive_doubling_allgather`).
    """
    array = np.asarray(array)
    p, r = comm.size, comm.rank
    blocks: List[Optional[np.ndarray]] = [None] * p
    blocks[r] = array
    if p == 1:
        return [array]
    right = (r + 1) % p
    left = (r - 1) % p
    send_idx = r
    for step in range(p - 1):
        # Even ranks send first to avoid a send/recv cycle deadlock on
        # rendezvous semantics; our mailboxes are buffered so either order
        # works, but we keep the canonical structure.
        comm.send(blocks[send_idx], dest=right, tag=step)
        recv_idx = (r - 1 - step) % p
        blocks[recv_idx] = np.asarray(comm.recv(source=left, tag=step))
        send_idx = recv_idx
    assert all(b is not None for b in blocks)
    return [np.asarray(b) for b in blocks]


def recursive_doubling_allgather(comm: Comm, array: np.ndarray) -> List[np.ndarray]:
    """All-gather via recursive doubling (``log2 p`` rounds of pairwise exchange).

    In round ``t`` each rank exchanges its current collection with the partner
    at distance ``2^t``; after ``log2 p`` rounds everyone has every block.

    Non-power-of-two sizes use MPICH's fold/unfold adaptation: the trailing
    ``p - p2`` ranks (``p2`` the largest power of two ≤ ``p``) first fold
    their block into a partner in the leading ``p2``-rank group, the group
    runs the power-of-two exchange, and the folded ranks receive the finished
    result in a final unfold round — ``log2 p2 + 2`` rounds in total.
    """
    p, r = comm.size, comm.rank
    if p == 1:
        return [np.asarray(array)]
    p2 = _largest_power_of_two_below(p)

    if r >= p2:
        # Folded rank: contribute through the partner, then wait for the result.
        comm.send([(r, np.asarray(array))], dest=r - p2, tag=_FOLD_TAG)
        blocks = comm.recv(source=r - p2, tag=_UNFOLD_TAG)
        return [np.asarray(b) for _, b in sorted(blocks)]

    owned = {r: np.asarray(array)}
    if r + p2 < p:
        incoming = comm.recv(source=r + p2, tag=_FOLD_TAG)
        for idx, block in incoming:
            owned[idx] = np.asarray(block)
    distance = 1
    round_idx = 0
    while distance < p2:
        partner = r ^ distance
        payload = sorted(owned.items())
        comm.send(payload, dest=partner, tag=round_idx)
        incoming = comm.recv(source=partner, tag=round_idx)
        for idx, block in incoming:
            owned[idx] = np.asarray(block)
        distance <<= 1
        round_idx += 1
    if r + p2 < p:
        comm.send(sorted(owned.items()), dest=r + p2, tag=_UNFOLD_TAG)
    return [owned[i] for i in range(p)]


def recursive_halving_reduce_scatter(
    comm: Comm,
    array: np.ndarray,
    counts: Optional[Sequence[int]] = None,
    op: ReduceOp = ReduceOp.SUM,
) -> np.ndarray:
    """Reduce-scatter via recursive halving (``log2 p`` rounds of half-exchange).

    In round ``t`` each rank exchanges half of its active range with the
    partner at distance ``p / 2^(t+1)`` and reduces the received half into its
    own; after ``log2 p`` rounds each rank holds the fully reduced block it is
    responsible for.  The volume per rank is ``(p-1)/p * n`` words.

    Non-power-of-two sizes use MPICH's fold/unfold adaptation: the first
    ``2·(p - p2)`` ranks pair up (``p2`` the largest power of two ≤ ``p``);
    each odd rank folds its whole vector into its even partner, which then
    represents the merged block of both ranks through the power-of-two main
    phase and finally unfolds the odd partner's block back to it.
    """
    array = np.asarray(array, dtype=np.float64)
    p, r = comm.size, comm.rank
    length = array.shape[0]
    if counts is None:
        base, rem = divmod(length, p)
        counts = [base + (1 if i < rem else 0) for i in range(p)]
    counts = list(counts)
    if len(counts) != p or sum(counts) != length:
        raise CommunicatorError("counts must have one entry per rank and sum to the axis length")
    if p == 1:
        return array.copy()

    p2 = _largest_power_of_two_below(p)
    n_folded = p - p2  # number of (even, odd) pairs in the fold phase

    work, vrank, to_real = _fold_into_pairs(comm, array, op)
    if work is None:
        # Folded rank: the even partner carries the contribution and sends
        # the finished block back.
        return np.asarray(comm.recv(source=r - 1, tag=_UNFOLD_TAG)).copy()

    # Virtual block layout: pair blocks are merged, tail blocks unchanged.
    vcounts = [counts[2 * i] + counts[2 * i + 1] for i in range(n_folded)]
    vcounts += counts[2 * n_folded:]
    offsets = np.concatenate(([0], np.cumsum(vcounts))).astype(int)

    # Active range of *virtual block indices* this rank is still responsible for.
    lo_blk, hi_blk = 0, p2
    distance = p2 // 2
    round_idx = 0
    while distance >= 1:
        mid_blk = lo_blk + (hi_blk - lo_blk) // 2
        vpartner = vrank ^ distance
        if vrank < vpartner:
            keep_lo, keep_hi = lo_blk, mid_blk
            send_lo, send_hi = mid_blk, hi_blk
        else:
            keep_lo, keep_hi = mid_blk, hi_blk
            send_lo, send_hi = lo_blk, mid_blk
        send_slice = slice(offsets[send_lo], offsets[send_hi])
        keep_slice = slice(offsets[keep_lo], offsets[keep_hi])
        comm.send(work[send_slice], dest=to_real(vpartner), tag=round_idx)
        incoming = np.asarray(comm.recv(source=to_real(vpartner), tag=round_idx))
        work[keep_slice] = op.combine([work[keep_slice], incoming])
        lo_blk, hi_blk = keep_lo, keep_hi
        distance //= 2
        round_idx += 1
    assert hi_blk - lo_blk == 1 and lo_blk == vrank
    block = work[offsets[vrank]: offsets[vrank + 1]]
    if vrank < n_folded:
        # The merged block covers real ranks 2·vrank (this rank) and
        # 2·vrank + 1 (the folded partner); unfold the partner's share.
        comm.send(block[counts[r]:], dest=r + 1, tag=_UNFOLD_TAG)
        return block[: counts[r]].copy()
    return block.copy()


def recursive_doubling_allreduce(
    comm: Comm, array: np.ndarray, op: ReduceOp = ReduceOp.SUM
) -> np.ndarray:
    """All-reduce via recursive doubling (``log2 p`` rounds of pairwise exchange).

    Non-power-of-two sizes use the same fold/unfold adaptation as
    :func:`recursive_halving_reduce_scatter`: odd members of the first
    ``2·(p - p2)`` ranks fold into their even partner, the ``p2``-rank group
    runs the power-of-two exchange, and the folded ranks receive the finished
    result back.
    """
    array = np.asarray(array, dtype=np.float64)
    p, r = comm.size, comm.rank
    if p == 1:
        return array.copy()

    p2 = _largest_power_of_two_below(p)
    n_folded = p - p2

    work, vrank, to_real = _fold_into_pairs(comm, array, op)
    if work is None:
        return np.asarray(comm.recv(source=r - 1, tag=_UNFOLD_TAG)).copy()

    distance = 1
    round_idx = 0
    while distance < p2:
        vpartner = vrank ^ distance
        comm.send(work, dest=to_real(vpartner), tag=round_idx)
        incoming = np.asarray(comm.recv(source=to_real(vpartner), tag=round_idx))
        # Reduce in a canonical (lower-rank-first) order so every rank computes
        # bitwise-identical results regardless of its position.
        if vrank < vpartner:
            work = op.combine([work, incoming])
        else:
            work = op.combine([incoming, work])
        distance <<= 1
        round_idx += 1
    if vrank < n_folded:
        comm.send(work, dest=r + 1, tag=_UNFOLD_TAG)
    return work


def reduce_scatter_allgather_allreduce(
    comm: Comm, array: np.ndarray, op: ReduceOp = ReduceOp.SUM
) -> np.ndarray:
    """All-reduce composed of reduce-scatter + all-gather (Rabenseifner's algorithm).

    This is the large-message algorithm whose cost,
    ``2 alpha log p + (2 beta + gamma)(p-1)/p n``, is exactly the all-reduce
    expression quoted in §2.3 of the paper.  Works for any communicator size:
    the reduce-scatter stage handles non-powers-of-two via fold/unfold and
    the all-gather stage is a ring.
    """
    array = np.asarray(array, dtype=np.float64)
    p = comm.size
    if p == 1:
        return array.copy()
    original_shape = array.shape
    flat = array.reshape(-1)
    # Pad so the vector splits evenly into p blocks (padding is reduced too,
    # then discarded; this only affects constants, not the asymptotic cost).
    base, rem = divmod(flat.size, p)
    padded_len = flat.size if rem == 0 else (base + 1) * p
    padded = np.zeros(padded_len, dtype=np.float64)
    padded[: flat.size] = flat
    counts = [padded_len // p] * p
    my_block = recursive_halving_reduce_scatter(comm, padded, counts=counts, op=op)
    blocks = ring_allgather(comm, my_block)
    full = np.concatenate(blocks)[: flat.size]
    return full.reshape(original_shape)


def binomial_broadcast(comm: Comm, array: Optional[np.ndarray], root: int = 0) -> np.ndarray:
    """Broadcast via a binomial tree (``log2 p`` rounds, MPICH's small-message scheme).

    Only the root needs to supply ``array``; every rank returns the broadcast
    value.  Works for any communicator size (not just powers of two).
    """
    p, r = comm.size, comm.rank
    if p == 1:
        assert array is not None
        return np.asarray(array)
    # Work in a rotated rank space where the root is virtual rank 0.
    vrank = (r - root) % p
    data = np.asarray(array) if vrank == 0 else None

    # Phase 1: a non-root rank receives from the parent identified by clearing
    # its lowest set bit (in virtual rank space).
    mask = 1
    while mask < p:
        if vrank & mask:
            parent_v = vrank ^ mask
            parent = (parent_v + root) % p
            data = np.asarray(comm.recv(source=parent, tag=0))
            break
        mask <<= 1
    # Phase 2: forward to children at increasing distances below the bit where
    # phase 1 stopped.
    mask >>= 1
    while mask > 0:
        child_v = vrank | mask
        if child_v != vrank and child_v < p:
            child = (child_v + root) % p
            assert data is not None
            comm.send(data, dest=child, tag=0)
        mask >>= 1
    assert data is not None
    return data
