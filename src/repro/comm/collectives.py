"""Textbook point-to-point algorithms for the MPI collectives (paper §2.3).

The paper's cost analysis assumes the *optimal* collective algorithms — ring
or recursive-doubling all-gather (``alpha log p + beta (p-1)/p n``),
recursive-halving reduce-scatter (``alpha log p + (beta+gamma) (p-1)/p n``)
and the reduce-scatter + all-gather all-reduce
(``2 alpha log p + (2 beta + gamma)(p-1)/p n``); see Chan et al. and
Thakur et al. (the paper's references [2, 18]).

The native collectives of :class:`~repro.comm.communicator.Comm` use shared
memory directly; the functions here re-implement the same collectives using
only ``send``/``recv`` so that

* the cost structure the model charges (number of rounds, bytes per round)
  exists in executable form and can be asserted in tests, and
* the substrate has a faithful analogue of what an MPI library actually does
  on a distributed-memory machine.

All functions are SPMD: every rank of ``comm`` must call them collectively.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.comm.communicator import Comm, ReduceOp
from repro.util.errors import CommunicatorError


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def ring_allgather(comm: Comm, array: np.ndarray) -> List[np.ndarray]:
    """All-gather via the bidirectional ring (bandwidth-optimal) algorithm.

    Runs ``p - 1`` rounds; in round ``t`` each rank forwards the block it
    received in round ``t-1`` to its right neighbour.  Total volume per rank
    is ``(p-1)/p * n`` words, matching the cost model (the latency term is
    ``p - 1`` messages rather than ``log p``; MPI libraries switch to
    recursive doubling for small messages, which we mirror in
    :func:`recursive_doubling_allgather`).
    """
    array = np.asarray(array)
    p, r = comm.size, comm.rank
    blocks: List[Optional[np.ndarray]] = [None] * p
    blocks[r] = array
    if p == 1:
        return [array]
    right = (r + 1) % p
    left = (r - 1) % p
    send_idx = r
    for step in range(p - 1):
        # Even ranks send first to avoid a send/recv cycle deadlock on
        # rendezvous semantics; our mailboxes are buffered so either order
        # works, but we keep the canonical structure.
        comm.send(blocks[send_idx], dest=right, tag=step)
        recv_idx = (r - 1 - step) % p
        blocks[recv_idx] = np.asarray(comm.recv(source=left, tag=step))
        send_idx = recv_idx
    assert all(b is not None for b in blocks)
    return [np.asarray(b) for b in blocks]


def recursive_doubling_allgather(comm: Comm, array: np.ndarray) -> List[np.ndarray]:
    """All-gather via recursive doubling (``log2 p`` rounds, power-of-two ranks).

    In round ``t`` each rank exchanges its current collection with the partner
    at distance ``2^t``; after ``log2 p`` rounds everyone has every block.
    """
    p, r = comm.size, comm.rank
    if p == 1:
        return [np.asarray(array)]
    if not _is_power_of_two(p):
        raise CommunicatorError("recursive doubling all-gather requires a power-of-two size")
    owned = {r: np.asarray(array)}
    distance = 1
    round_idx = 0
    while distance < p:
        partner = r ^ distance
        payload = sorted(owned.items())
        comm.send(payload, dest=partner, tag=round_idx)
        incoming = comm.recv(source=partner, tag=round_idx)
        for idx, block in incoming:
            owned[idx] = np.asarray(block)
        distance <<= 1
        round_idx += 1
    return [owned[i] for i in range(p)]


def recursive_halving_reduce_scatter(
    comm: Comm,
    array: np.ndarray,
    counts: Optional[Sequence[int]] = None,
    op: ReduceOp = ReduceOp.SUM,
) -> np.ndarray:
    """Reduce-scatter via recursive halving (``log2 p`` rounds, power-of-two ranks).

    In round ``t`` each rank exchanges half of its active range with the
    partner at distance ``p / 2^(t+1)`` and reduces the received half into its
    own; after ``log2 p`` rounds each rank holds the fully reduced block it is
    responsible for.  The volume per rank is ``(p-1)/p * n`` words.
    """
    array = np.asarray(array, dtype=np.float64)
    p, r = comm.size, comm.rank
    length = array.shape[0]
    if counts is None:
        base, rem = divmod(length, p)
        counts = [base + (1 if i < rem else 0) for i in range(p)]
    counts = list(counts)
    if len(counts) != p or sum(counts) != length:
        raise CommunicatorError("counts must have one entry per rank and sum to the axis length")
    if p == 1:
        return array.copy()
    if not _is_power_of_two(p):
        raise CommunicatorError("recursive halving reduce-scatter requires a power-of-two size")

    offsets = np.concatenate(([0], np.cumsum(counts))).astype(int)
    work = array.copy()
    # Active range of *block indices* this rank is still responsible for.
    lo_blk, hi_blk = 0, p
    distance = p // 2
    round_idx = 0
    while distance >= 1:
        mid_blk = lo_blk + (hi_blk - lo_blk) // 2
        partner = r ^ distance
        mine_is_low = r < partner
        if mine_is_low:
            keep_lo, keep_hi = lo_blk, mid_blk
            send_lo, send_hi = mid_blk, hi_blk
        else:
            keep_lo, keep_hi = mid_blk, hi_blk
            send_lo, send_hi = lo_blk, mid_blk
        send_slice = slice(offsets[send_lo], offsets[send_hi])
        keep_slice = slice(offsets[keep_lo], offsets[keep_hi])
        comm.send(work[send_slice], dest=partner, tag=round_idx)
        incoming = np.asarray(comm.recv(source=partner, tag=round_idx))
        work[keep_slice] = op.combine([work[keep_slice], incoming])
        lo_blk, hi_blk = keep_lo, keep_hi
        distance //= 2
        round_idx += 1
    assert hi_blk - lo_blk == 1 and lo_blk == r
    return work[offsets[r]: offsets[r + 1]].copy()


def recursive_doubling_allreduce(
    comm: Comm, array: np.ndarray, op: ReduceOp = ReduceOp.SUM
) -> np.ndarray:
    """All-reduce via recursive doubling (``log2 p`` rounds, power-of-two ranks)."""
    array = np.asarray(array, dtype=np.float64)
    p, r = comm.size, comm.rank
    if p == 1:
        return array.copy()
    if not _is_power_of_two(p):
        raise CommunicatorError("recursive doubling all-reduce requires a power-of-two size")
    work = array.copy()
    distance = 1
    round_idx = 0
    while distance < p:
        partner = r ^ distance
        comm.send(work, dest=partner, tag=round_idx)
        incoming = np.asarray(comm.recv(source=partner, tag=round_idx))
        # Reduce in a canonical (lower-rank-first) order so every rank computes
        # bitwise-identical results regardless of its position.
        if r < partner:
            work = op.combine([work, incoming])
        else:
            work = op.combine([incoming, work])
        distance <<= 1
        round_idx += 1
    return work


def reduce_scatter_allgather_allreduce(
    comm: Comm, array: np.ndarray, op: ReduceOp = ReduceOp.SUM
) -> np.ndarray:
    """All-reduce composed of reduce-scatter + all-gather (Rabenseifner's algorithm).

    This is the large-message algorithm whose cost,
    ``2 alpha log p + (2 beta + gamma)(p-1)/p n``, is exactly the all-reduce
    expression quoted in §2.3 of the paper.
    """
    array = np.asarray(array, dtype=np.float64)
    p = comm.size
    if p == 1:
        return array.copy()
    original_shape = array.shape
    flat = array.reshape(-1)
    # Pad so the vector splits evenly into p blocks (padding is reduced too,
    # then discarded; this only affects constants, not the asymptotic cost).
    base, rem = divmod(flat.size, p)
    padded_len = flat.size if rem == 0 else (base + 1) * p
    padded = np.zeros(padded_len, dtype=np.float64)
    padded[: flat.size] = flat
    counts = [padded_len // p] * p
    my_block = recursive_halving_reduce_scatter(comm, padded, counts=counts, op=op)
    blocks = ring_allgather(comm, my_block)
    full = np.concatenate(blocks)[: flat.size]
    return full.reshape(original_shape)


def binomial_broadcast(comm: Comm, array: Optional[np.ndarray], root: int = 0) -> np.ndarray:
    """Broadcast via a binomial tree (``log2 p`` rounds, MPICH's small-message scheme).

    Only the root needs to supply ``array``; every rank returns the broadcast
    value.  Works for any communicator size (not just powers of two).
    """
    p, r = comm.size, comm.rank
    if p == 1:
        assert array is not None
        return np.asarray(array)
    # Work in a rotated rank space where the root is virtual rank 0.
    vrank = (r - root) % p
    data = np.asarray(array) if vrank == 0 else None

    # Phase 1: a non-root rank receives from the parent identified by clearing
    # its lowest set bit (in virtual rank space).
    mask = 1
    while mask < p:
        if vrank & mask:
            parent_v = vrank ^ mask
            parent = (parent_v + root) % p
            data = np.asarray(comm.recv(source=parent, tag=0))
            break
        mask <<= 1
    # Phase 2: forward to children at increasing distances below the bit where
    # phase 1 stopped.
    mask >>= 1
    while mask > 0:
        child_v = vrank | mask
        if child_v != vrank and child_v < p:
            child = (child_v + root) % p
            assert data is not None
            comm.send(data, dest=child, tag=0)
        mask >>= 1
    assert data is not None
    return data
