"""MPI-like SPMD communication substrate.

The paper's implementation is C++/MPI.  This package provides the equivalent
substrate in pure Python:

* :mod:`~repro.comm.backends` supplies pluggable execution backends behind a
  registry: ``"thread"`` (:class:`ThreadBackend`, one Python thread per rank,
  real overlap wherever BLAS releases the GIL) and ``"lockstep"``
  (:class:`LockstepBackend`, deterministic rank-ordered cooperative
  scheduling that can simulate hundreds of ranks and diagnoses deadlocks
  exactly);
* :class:`~repro.comm.communicator.Comm` exposes the MPI operations the
  paper's algorithms use — ``send``/``recv``, ``bcast``, ``allgather``,
  ``reduce_scatter``, ``allreduce``, ``barrier``, ``split`` — with
  numpy-buffer semantics (mirroring mpi4py's uppercase, buffer-based API),
  including MPI-style caller-provided receive buffers (``out=``) backed by
  the reusable :class:`~repro.comm.workspace.CollectiveWorkspace`;
* :mod:`~repro.comm.collectives` re-implements the textbook point-to-point
  algorithms for these collectives (ring all-gather, recursive halving
  reduce-scatter, recursive doubling all-reduce; arbitrary communicator
  sizes via MPICH's fold/unfold scheme) whose costs are exactly the
  alpha-beta-gamma expressions quoted in §2.3 of the paper;
* :mod:`~repro.comm.cost` implements that alpha-beta-gamma model and a
  per-rank ledger of words/messages/flops;
* :mod:`~repro.comm.grid` provides the ``pr × pc`` processor grid with row and
  column sub-communicators used by Algorithm 3;
* :mod:`~repro.comm.profiler` accumulates wall-clock time into the six task
  categories of §6.3 (MM, NLS, Gram, All-Gather, Reduce-Scatter, All-Reduce).
"""

from repro.comm.backends import (
    Backend,
    LockstepBackend,
    ThreadBackend,
    available_backends,
    make_backend,
    register_backend,
    run_spmd,
)
from repro.comm.communicator import Comm, ReduceOp
from repro.comm.cost import AlphaBetaGamma, CostLedger, CollectiveCost, EDISON
from repro.comm.grid import ProcessGrid, choose_grid
from repro.comm.profiler import TaskCategory, Profiler, TimeBreakdown
from repro.comm.workspace import CollectiveWorkspace

__all__ = [
    "Backend",
    "LockstepBackend",
    "ThreadBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "run_spmd",
    "Comm",
    "ReduceOp",
    "AlphaBetaGamma",
    "CostLedger",
    "CollectiveCost",
    "CollectiveWorkspace",
    "EDISON",
    "ProcessGrid",
    "choose_grid",
    "TaskCategory",
    "Profiler",
    "TimeBreakdown",
]
