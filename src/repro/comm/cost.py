"""The alpha-beta-gamma communication/computation cost model (paper §2.2-2.3).

In this model a message of ``n`` words costs ``alpha + n * beta`` where
``alpha`` is per-message latency and ``beta`` per-word inverse bandwidth, and
each floating-point operation costs ``gamma``.  The collective costs the paper
quotes (and that this module reproduces) are, for ``p`` processes and total
data of ``n`` words:

==================  =====================================================
all-gather          ``alpha*log2(p) + beta*(p-1)/p * n``
reduce-scatter      ``alpha*log2(p) + (beta+gamma)*(p-1)/p * n``
all-reduce          ``2*alpha*log2(p) + (2*beta+gamma)*(p-1)/p * n``
==================  =====================================================

All costs are zero when ``p == 1``.

Two things are built on the model:

* :class:`CollectiveCost` — evaluates the closed-form cost of each collective,
  used by the analytic performance model (:mod:`repro.perf.model`) to
  regenerate the paper's figures at paper scale, and — through the
  per-variant cost hooks — by the planning layer (:mod:`repro.plan`) to
  score variant × grid candidates for ``fit(..., variant="auto")``;
* :class:`CostLedger` — a per-rank ledger that records, for every collective a
  :class:`~repro.comm.communicator.Comm` actually executes, the operation
  name, the number of words moved and the number of messages on the critical
  path.  Tests compare the ledger totals against the paper's per-iteration
  expressions (§4.3 and §5).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class AlphaBetaGamma:
    """Machine constants of the alpha-beta-gamma model.

    Parameters
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Per-word (8-byte double) transfer time in seconds.
    gamma:
        Per-flop time in seconds.
    name:
        Human-readable label for reports.
    """

    alpha: float
    beta: float
    gamma: float
    name: str = "generic"

    @property
    def flops_per_second(self) -> float:
        return 1.0 / self.gamma

    def message_cost(self, words: float) -> float:
        """Cost of a single point-to-point message of ``words`` doubles."""
        return self.alpha + words * self.beta

    def flop_cost(self, flops: float) -> float:
        """Cost of ``flops`` floating point operations."""
        return flops * self.gamma


#: Machine constants approximating one node of NERSC "Edison" (§6.1.2):
#: dual-socket 12-core Ivy Bridge, 460.8 Gflop/s per node (19.2 Gflop/s per
#: core), Cray Aries dragonfly interconnect (~8 GB/s per-node MPI bandwidth,
#: ~1.3 microsecond latency).  Per-core constants are used because the paper
#: reports per-core (per-process) scaling.
EDISON = AlphaBetaGamma(
    alpha=1.3e-6,
    beta=8.0 / (8.0e9 / 24.0),  # seconds per 8-byte word, per-core share of NIC
    gamma=1.0 / 19.2e9,
    name="edison",
)

#: A deliberately communication-friendly laptop-like preset used in examples.
LAPTOP = AlphaBetaGamma(
    alpha=5.0e-7,
    beta=8.0 / 12.0e9,
    gamma=1.0 / 5.0e9,
    name="laptop",
)


class CollectiveCost:
    """Closed-form costs of the MPI collectives under an ``AlphaBetaGamma`` model.

    ``n_words`` always refers to the *total* data size of the collective as
    defined in §2.3: for all-gather the size of the gathered result, for
    reduce-scatter and all-reduce the size of the per-rank input.
    """

    def __init__(self, machine: AlphaBetaGamma):
        self.machine = machine

    @staticmethod
    def _log2p(p: int) -> float:
        return math.log2(p) if p > 1 else 0.0

    def point_to_point(self, n_words: float) -> float:
        """One message of ``n_words`` words between two ranks."""
        return self.machine.alpha + self.machine.beta * n_words

    def all_gather(self, p: int, n_words: float) -> float:
        if p <= 1:
            return 0.0
        m = self.machine
        return m.alpha * self._log2p(p) + m.beta * (p - 1) / p * n_words

    def reduce_scatter(self, p: int, n_words: float) -> float:
        if p <= 1:
            return 0.0
        m = self.machine
        return m.alpha * self._log2p(p) + (m.beta + m.gamma) * (p - 1) / p * n_words

    def all_reduce(self, p: int, n_words: float) -> float:
        if p <= 1:
            return 0.0
        m = self.machine
        return 2 * m.alpha * self._log2p(p) + (2 * m.beta + m.gamma) * (p - 1) / p * n_words

    def broadcast(self, p: int, n_words: float) -> float:
        if p <= 1:
            return 0.0
        m = self.machine
        return m.alpha * self._log2p(p) + m.beta * n_words


@dataclass
class LedgerEntry:
    """Aggregated record of one collective type on one communicator size."""

    operation: str
    calls: int = 0
    words: float = 0.0
    messages: float = 0.0
    reduction_flops: float = 0.0

    def add(self, words: float, messages: float, reduction_flops: float = 0.0) -> None:
        self.calls += 1
        self.words += words
        self.messages += messages
        self.reduction_flops += reduction_flops


@dataclass
class CostLedger:
    """Per-rank record of communication volume along the critical path.

    ``words`` counts 8-byte words communicated by this rank (the
    ``(p-1)/p * n`` critical-path volume of the optimal collective
    algorithms), and ``messages`` counts the ``log2 p``-style message counts.
    The ledger is what the tests check against the closed-form per-iteration
    costs derived in §4.3 (Naive) and §5 (HPC-NMF).
    """

    entries: dict = field(default_factory=lambda: defaultdict(dict))

    def _entry(self, operation: str) -> LedgerEntry:
        if operation not in self.entries:
            self.entries[operation] = LedgerEntry(operation)
        return self.entries[operation]

    def record(self, operation: str, p: int, n_words: float) -> None:
        """Record one collective of total size ``n_words`` over ``p`` ranks."""
        if p <= 1:
            return
        log2p = math.log2(p)
        frac = (p - 1) / p * n_words
        if operation == "all_gather":
            self._entry(operation).add(words=frac, messages=log2p)
        elif operation == "reduce_scatter":
            self._entry(operation).add(words=frac, messages=log2p, reduction_flops=frac)
        elif operation == "all_reduce":
            self._entry(operation).add(words=2 * frac, messages=2 * log2p, reduction_flops=frac)
        elif operation == "broadcast":
            self._entry(operation).add(words=n_words, messages=log2p)
        elif operation in ("send", "recv", "gather", "scatter"):
            self._entry(operation).add(words=n_words, messages=1.0)
        else:
            self._entry(operation).add(words=n_words, messages=1.0)

    # -- aggregate views ---------------------------------------------------
    @property
    def total_words(self) -> float:
        return sum(e.words for e in self.entries.values())

    @property
    def total_messages(self) -> float:
        return sum(e.messages for e in self.entries.values())

    def words_for(self, operation: str) -> float:
        entry = self.entries.get(operation)
        return entry.words if entry else 0.0

    def calls_for(self, operation: str) -> int:
        entry = self.entries.get(operation)
        return entry.calls if entry else 0

    def reset(self) -> None:
        self.entries.clear()

    def merge(self, other: "CostLedger") -> "CostLedger":
        """Return a new ledger holding the element-wise sum of two ledgers."""
        merged = CostLedger()
        for src in (self, other):
            for op, entry in src.entries.items():
                tgt = merged._entry(op)
                tgt.calls += entry.calls
                tgt.words += entry.words
                tgt.messages += entry.messages
                tgt.reduction_flops += entry.reduction_flops
        return merged

    def summary(self) -> dict:
        """Return a plain-dict summary suitable for reports and JSON output."""
        return {
            op: {
                "calls": e.calls,
                "words": e.words,
                "messages": e.messages,
                "reduction_flops": e.reduction_flops,
            }
            for op, e in sorted(self.entries.items())
        }
