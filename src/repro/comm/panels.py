"""Panel-streamed reduce-scatter: overlap the big MMs with their collectives.

Algorithm 3's dominant per-iteration transfers are the line-7 and line-13
reduce-scatters, each fed by the local matmul directly before it (lines 6 and
12) — which is why the PR-7 pipelined schedule left them blocking: the whole
input only exists once the whole MM is done.  But the reduce-scatter's split
boundaries (the ``w_scatter_counts`` / ``h_scatter_counts`` sub-blocking of
:mod:`repro.dist`) also tile the MM itself: the rows (columns) of ``V_ij``
(``Y_ij``) destined for rank ``t`` depend only on the matching row (column)
panel of the local data block.  :func:`stream_reduce_scatter` therefore

1. computes panel ``t`` of the MM (one tiled GEMM),
2. immediately issues a nonblocking :meth:`~repro.comm.communicator.Comm.
   ireduce_scatter` carrying *only* that panel (``counts`` are zero for every
   rank but ``t``), so panel ``t``'s communication overlaps panel ``t+1``'s
   GEMM,
3. after the last panel, waits the handles in issue order and hands rank
   ``t`` its own reduced sub-block.

Byte-identity
-------------
Panel ``t``'s collective combines, in rank order, exactly the slices the
monolithic blocking call would combine for rank ``t`` — same values, same
order, same destination buffer — so the streamed result is bitwise equal to
the blocking reduce-scatter of the assembled MM output.  The loops tile the
MM identically on *both* schedules (the blocking schedule assembles the
panels into one buffer and issues the monolithic call), so schedule choice
never changes a single GEMM rounding either.

Ledger purity
-------------
One modeled §2.3 reduce-scatter must stay one ledger entry regardless of how
many physical panels carried it.  Every per-panel issue passes
``record=False`` and the helper books a single
:meth:`~repro.comm.communicator.Comm.record_collective` with the full input's
word count once the stream completes — calls, words, messages and reduction
flops all match the monolithic call's entry exactly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.comm.nonblocking import finish
from repro.comm.profiler import Profiler, TaskCategory

__all__ = ["panel_slices", "stream_reduce_scatter"]


def panel_slices(counts: Sequence[int]) -> List[slice]:
    """The per-panel index ranges a ``counts`` split induces along its axis."""
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(int)
    return [slice(int(offsets[t]), int(offsets[t + 1])) for t in range(len(counts))]


def stream_reduce_scatter(
    comm,
    compute_panel: Callable[[int], np.ndarray],
    counts: Sequence[int],
    axis: int,
    out: Optional[np.ndarray],
    profiler: Optional[Profiler] = None,
    compute_category: TaskCategory = TaskCategory.MM,
) -> np.ndarray:
    """Tiled MM + per-panel nonblocking reduce-scatter over ``comm``.

    Parameters
    ----------
    comm:
        The communicator the monolithic reduce-scatter would run on (the
        grid's row or column communicator).  ``comm.size`` must equal
        ``len(counts)``.
    compute_panel:
        ``compute_panel(t) -> ndarray`` producing panel ``t`` of the MM
        output: the slice of the full input whose extent along ``axis`` is
        ``counts[t]`` (and which the monolithic call would scatter to rank
        ``t``).  Timed under ``compute_category``.
    counts:
        The monolithic call's scatter split (``w_scatter_counts`` /
        ``h_scatter_counts``); empty panels (count 0) are still issued so
        every rank runs the same collective schedule.
    axis:
        Scatter axis of the monolithic call (0 for ``V_ij``, 1 for ``Y_ij``).
    out:
        This rank's receive buffer for its own sub-block (panel
        ``t == comm.rank``); foreign panels produce empty results that are
        discarded.
    profiler:
        Books panel GEMMs under ``compute_category`` and the collective wait
        under ``ReduceScatter`` (+ ``HiddenComm`` for the overlapped part).

    Returns this rank's reduced sub-block (``out`` when provided).
    """
    counts = [int(c) for c in counts]
    if len(counts) != comm.size:
        raise ValueError(
            f"counts must have one panel per rank: got {len(counts)} panels "
            f"on a size-{comm.size} communicator"
        )
    handles = []
    total_words = 0.0
    for t in range(len(counts)):
        if profiler is not None:
            with profiler.task(compute_category):
                panel = compute_panel(t)
        else:
            panel = compute_panel(t)
        panel = np.asarray(panel)
        if panel.shape[axis] != counts[t]:
            raise ValueError(
                f"panel {t} has extent {panel.shape[axis]} along axis {axis}, "
                f"expected counts[{t}] = {counts[t]}"
            )
        total_words += panel.size * panel.itemsize / 8.0
        panel_counts = [0] * len(counts)
        panel_counts[t] = counts[t]
        handles.append(
            comm.ireduce_scatter(
                panel,
                counts=panel_counts,
                axis=axis,
                out=out if t == comm.rank else None,
                record=False,
            )
        )
    result = None
    for t, handle in enumerate(handles):
        reduced = finish(handle, profiler, TaskCategory.REDUCE_SCATTER)
        if t == comm.rank:
            result = reduced
    comm.record_collective("reduce_scatter", total_words)
    return result
