"""Nonzero load balance of the 2D block distribution (paper §7, future work).

For dense matrices the uniform block distribution is perfectly balanced by
construction (block sizes differ by at most one row/column).  For *sparse*
matrices the flop cost of the local multiplies is proportional to
``nnz(A_ij)``, and real-world graphs concentrate nonzeros on hub vertices, so
a uniform index split can leave one block with many times the average work.
The paper's future-work section calls this out; this module quantifies it and
implements the standard mitigation:

* :func:`imbalance_factor` — the ``max / mean`` nonzero count over the
  ``pr × pc`` blocks (1.0 is perfect balance; the slowest rank runs the
  computation ``imbalance×`` longer than the average);
* :func:`random_permutation_balance` — apply independent random row and
  column permutations, which destroys the spatial clustering of hubs and
  brings the expected per-block nnz close to uniform (at the cost of
  destroying any natural ordering of the data).

Both accept dense and sparse inputs so benchmarks can compare like for like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dist.partition import block_offsets
from repro.util.errors import PartitionError
from repro.util.validation import is_sparse


@dataclass(frozen=True)
class LoadBalanceReport:
    """Per-block nonzero statistics of one ``pr × pc`` distribution."""

    pr: int
    pc: int
    nnz_per_block: np.ndarray      # shape (pr, pc)
    total_nnz: int
    max_nnz: int
    min_nnz: int
    mean_nnz: float
    imbalance: float               # max_nnz / mean_nnz, 1.0 when empty

    def __str__(self) -> str:
        return (
            f"LoadBalanceReport(grid={self.pr}x{self.pc}, nnz={self.total_nnz}, "
            f"max={self.max_nnz}, mean={self.mean_nnz:.1f}, "
            f"imbalance={self.imbalance:.2f})"
        )


def nnz_per_block(A, pr: int, pc: int) -> np.ndarray:
    """Count the nonzeros landing in each block of the ``pr × pc`` distribution.

    Uses the same remainder-spreading boundaries as
    :mod:`repro.dist.partition`, so the counts are exactly what each rank of a
    :class:`~repro.dist.distmatrix.DistMatrix2D` would report as ``local_nnz``.
    """
    if pr < 1 or pc < 1:
        raise PartitionError(f"grid dimensions must be >= 1, got {pr}x{pc}")
    m, n = A.shape
    if is_sparse(A):
        coo = A.tocoo()
        rows, cols = coo.row, coo.col
    else:
        rows, cols = np.nonzero(np.asarray(A))
    row_edges = np.asarray(block_offsets(m, pr))
    col_edges = np.asarray(block_offsets(n, pc))
    i = np.searchsorted(row_edges, rows, side="right") - 1
    j = np.searchsorted(col_edges, cols, side="right") - 1
    flat = np.bincount(i * pc + j, minlength=pr * pc)
    return flat.reshape(pr, pc)


def imbalance_factor(A, pr: int, pc: int) -> LoadBalanceReport:
    """Nonzero imbalance of ``A`` under the uniform ``pr × pc`` block split.

    Returns a :class:`LoadBalanceReport`; its ``imbalance`` is
    ``max(nnz_per_block) / mean(nnz_per_block)`` — the factor by which the
    most loaded rank exceeds the average (and hence, to first order, the
    slowdown of the bulk-synchronous iteration relative to perfect balance).
    """
    counts = nnz_per_block(A, pr, pc)
    total = int(counts.sum())
    mean = total / counts.size
    imbalance = float(counts.max() / mean) if total > 0 else 1.0
    return LoadBalanceReport(
        pr=int(pr),
        pc=int(pc),
        nnz_per_block=counts,
        total_nnz=total,
        max_nnz=int(counts.max()),
        min_nnz=int(counts.min()),
        mean_nnz=mean,
        imbalance=imbalance,
    )


def random_permutation_balance(
    A, seed: int = 0
) -> Tuple[object, np.ndarray, np.ndarray]:
    """Randomly permute rows and columns to spread dense rows/columns over blocks.

    Returns ``(permuted, row_perm, col_perm)`` with
    ``permuted[i, j] == A[row_perm[i], col_perm[j]]``.  NMF is equivalent up
    to the same permutations of the factors: if ``W', H'`` factorize the
    permuted matrix then ``W'[argsort(row_perm)], H'[:, argsort(col_perm)]``
    factorize ``A``, so the mitigation changes the layout, not the problem.
    """
    m, n = A.shape
    rng = np.random.default_rng(seed)
    row_perm = rng.permutation(m)
    col_perm = rng.permutation(n)
    if is_sparse(A):
        permuted = A.tocsr()[row_perm, :][:, col_perm].tocsr()
    else:
        permuted = np.ascontiguousarray(np.asarray(A)[np.ix_(row_perm, col_perm)])
    return permuted, row_perm, col_perm


def unpermute_factors(
    W: np.ndarray, H: np.ndarray, row_perm: np.ndarray, col_perm: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Map factors of the permuted matrix back to the original index order."""
    return W[np.argsort(row_perm)], H[:, np.argsort(col_perm)]
