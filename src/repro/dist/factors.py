"""Distributed factor matrices ``W`` and ``H`` for Algorithm 3 (Figure 2).

Both factors are ``p``-way partitioned over the whole ``pr × pc`` grid, but
along *different* axes and with different nesting:

* ``W (m × k)`` is split by **rows**: grid row ``i`` collectively owns the
  block ``W_i (m/pr × k)``, and within that row, process ``(i, j)`` owns the
  sub-block ``(W_i)_j (m/p × k)`` — the ``j``-th row chunk of ``W_i``.
* ``H (k × n)`` is split by **columns**: grid column ``j`` collectively owns
  ``H_j (k × n/pc)``, and process ``(i, j)`` owns ``(H_j)_i (k × n/p)`` — the
  ``i``-th column chunk of ``H_j``.

The nesting is what makes Algorithm 3's collectives line up exactly:

* an **all-gather over the grid column** (the ``pr`` processes sharing column
  ``j``) concatenates the ``(H_j)_i`` into ``H_j`` (line 5) — provided by
  :meth:`DistributedFactorH.col_block`;
* an **all-gather over the grid row** (the ``pc`` processes sharing row
  ``i``) concatenates the ``(W_i)_j`` into ``W_i`` (line 11) — provided by
  :meth:`DistributedFactorW.row_block`;
* the **reduce-scatters** (lines 7 and 13) split ``(A Hᵀ)_i`` / ``(Wᵀ A)_j``
  with ``block_counts`` over the same communicators, so each rank receives
  precisely the rows/columns of its own sub-block — no redistribution step
  exists anywhere in the algorithm.

Ownership invariant: the ``global_range`` intervals of all ``p`` ranks tile
``[0, m)`` (for ``W``) / ``[0, n)`` (for ``H``) without gaps or overlap, so
concatenating every rank's ``local`` reassembles the global factor exactly
(this is what :func:`repro.core.hpc_nmf.assemble_hpc_result` does).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dist.partition import block_range


def _nested_range(outer: Tuple[int, int], parts: int, index: int) -> Tuple[int, int]:
    """Global range of sub-block ``index`` of ``parts`` within ``outer``."""
    lo, hi = outer
    s0, s1 = block_range(hi - lo, parts, index)
    return lo + s0, lo + s1


class DistributedFactorW:
    """This rank's sub-block ``(W_i)_j`` of the row-partitioned ``W (m × k)``.

    Attributes
    ----------
    local:
        The ``(W_i)_j`` block, shape ``(global_range[1] - global_range[0], k)``.
        Assignable: the NLS solve of line 8 overwrites it every iteration.
    global_range:
        Half-open global *row* range of ``local`` within ``W``.
    block_range_in_row:
        The same range relative to ``W_i`` (used by the reduce-scatter
        counts, which are local to the grid row).
    """

    def __init__(self, grid, m: int, k: int):
        self.grid = grid
        self.m = int(m)
        self.k = int(k)
        i, j = grid.coords
        self.row_block_range = block_range(self.m, grid.pr, i)   # rows of W_i
        self.global_range = _nested_range(self.row_block_range, grid.pc, j)
        lo, hi = self.global_range
        self.block_range_in_row = (lo - self.row_block_range[0], hi - self.row_block_range[0])
        self.local = np.zeros((hi - lo, self.k))

    @classmethod
    def zeros(cls, grid, m: int, k: int) -> "DistributedFactorW":
        """An all-zero ``(W_i)_j`` (W needs no initialisation; see §6.1.3)."""
        return cls(grid, m, k)

    def row_block(self, out: np.ndarray = None) -> np.ndarray:
        """All-gather ``W_i (m/pr × k)`` over the grid row (line 11, collective).

        The row communicator orders ranks by grid column ``j``, matching the
        sub-block order, so a plain concatenation along axis 0 reassembles
        ``W_i`` with its rows in global order.  ``out`` (shape
        ``m/pr × k``) receives the gathered block without allocating.
        """
        return self.grid.row_comm.allgatherv(self.local, axis=0, out=out)

    def irow_block(self, out: np.ndarray = None):
        """Nonblocking :meth:`row_block`; returns a ``CommHandle``.

        The pipelined Algorithm 3 schedule issues this right after line 8's
        NLS so the gather overlaps the lines 9-10 Gram + all-reduce;
        ``handle.wait()`` yields the byte-identical gathered block.
        """
        return self.grid.row_comm.iallgatherv(self.local, axis=0, out=out)

    def __repr__(self) -> str:
        return (
            f"DistributedFactorW(rank={self.grid.rank}, rows={self.global_range}, "
            f"k={self.k})"
        )


class DistributedFactorH:
    """This rank's sub-block ``(H_j)_i`` of the column-partitioned ``H (k × n)``.

    Attributes
    ----------
    local:
        The ``(H_j)_i`` block, shape ``(k, global_range[1] - global_range[0])``.
        Assignable: seeded by ``init_h_slice`` and overwritten by the NLS
        solve of line 14 every iteration.
    global_range:
        Half-open global *column* range of ``local`` within ``H``.
    block_range_in_col:
        The same range relative to ``H_j`` (grid-column-local coordinates).
    """

    def __init__(self, grid, k: int, n: int):
        self.grid = grid
        self.k = int(k)
        self.n = int(n)
        i, j = grid.coords
        self.col_block_range = block_range(self.n, grid.pc, j)   # columns of H_j
        self.global_range = _nested_range(self.col_block_range, grid.pr, i)
        lo, hi = self.global_range
        self.block_range_in_col = (lo - self.col_block_range[0], hi - self.col_block_range[0])
        self.local = np.zeros((self.k, hi - lo))

    @classmethod
    def zeros(cls, grid, k: int, n: int) -> "DistributedFactorH":
        """An all-zero ``(H_j)_i`` (callers seed it with ``init_h_slice``)."""
        return cls(grid, k, n)

    def col_block(self, out: np.ndarray = None) -> np.ndarray:
        """All-gather ``H_j (k × n/pc)`` over the grid column (line 5, collective).

        The column communicator orders ranks by grid row ``i``, matching the
        sub-block order, so concatenation along axis 1 reassembles ``H_j``
        with its columns in global order.  ``out`` (shape ``k × n/pc``)
        receives the gathered block without allocating.
        """
        return self.grid.col_comm.allgatherv(self.local, axis=1, out=out)

    def icol_block(self, out: np.ndarray = None):
        """Nonblocking :meth:`col_block`; returns a ``CommHandle``.

        The pipelined Algorithm 3 schedule issues the *next* iteration's
        ``H_j`` gather right after line 14's NLS so it overlaps the error
        path and the next iteration's lines 3-4.
        """
        return self.grid.col_comm.iallgatherv(self.local, axis=1, out=out)

    def __repr__(self) -> str:
        return (
            f"DistributedFactorH(rank={self.grid.rank}, cols={self.global_range}, "
            f"k={self.k})"
        )
