"""Local-block storage modes for :class:`~repro.dist.distmatrix.DistMatrix2D`.

The never-materialize-``A`` design means each rank only ever holds its own
block ``A_ij`` — but at webbase scale (§5 of the paper) even one block can
exceed RAM.  ``storage="memmap"`` rehomes a rank's **dense** block onto an
``np.memmap`` over an anonymous temporary file, so the OS pages block data
in and out on demand and the resident footprint is bounded by the access
pattern (the HPC-NMF inner loop streams row/column panels, which is exactly
the memmap-friendly pattern).

Every consumer downstream — the panel slicing in ``hpc_nmf``, the local
GEMMs, the Frobenius norm — sees a normal ndarray interface, so the choice
is invisible to the algorithms: the memmap parity test pins dense Algorithm
3 byte-identical between the two modes.

Sparse blocks pass through unchanged: CSR's three-array layout would need a
dedicated on-disk format (one file per array) to stream, which is future
work; the mode is therefore documented as a no-op for sparse inputs rather
than an error, so mixed dense/sparse pipelines keep a single flag.

The backing file is unlinked immediately (``tempfile.TemporaryFile``): on
POSIX the mapping keeps the pages alive until the array is garbage
collected, and nothing is leaked on crash.
"""

from __future__ import annotations

import tempfile
from typing import Tuple

import numpy as np

from repro.util.errors import ShapeError
from repro.util.validation import is_sparse

#: Storage modes accepted by ``NMFConfig.storage`` / ``--storage``.
STORAGE_MODES: Tuple[str, ...] = ("memory", "memmap")


def validate_storage(storage: str) -> str:
    """Return ``storage`` if it names a known mode, raise otherwise."""
    if storage not in STORAGE_MODES:
        raise ShapeError(
            f"storage must be one of {', '.join(STORAGE_MODES)} "
            f"(where local blocks live), got {storage!r}"
        )
    return storage


def materialize_block(block, storage: str):
    """Rehome one local block according to ``storage``.

    ``"memory"`` returns the block unchanged.  ``"memmap"`` copies a dense
    block into an ``np.memmap`` over an unlinked temporary file and returns
    the map; sparse blocks and empty blocks (zero-size arrays cannot be
    mmapped) are returned unchanged.
    """
    validate_storage(storage)
    if storage == "memory" or is_sparse(block):
        return block
    arr = np.asarray(block)
    if arr.size == 0:
        return arr
    # The mapping holds the pages; unlinking now (TemporaryFile) means no
    # on-disk residue survives the array, even on a crash, and closing the
    # descriptor right away avoids fd exhaustion with many blocks — on
    # POSIX an established mapping outlives its file descriptor.
    with tempfile.TemporaryFile(prefix="repro-block-") as f:
        mapped = np.memmap(f, dtype=arr.dtype, mode="w+", shape=arr.shape)
    mapped[...] = arr
    mapped.flush()
    return mapped
