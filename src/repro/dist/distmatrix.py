"""Distributed data matrices: the 2D-blocked ``A_ij`` and the doubly 1D-blocked ``A_i``/``A^i``.

Two layouts cover the paper's two parallel algorithms:

* :class:`DistMatrix2D` — Algorithm 3's layout (Figure 2): process ``(i, j)``
  of a ``pr × pc`` grid owns the single block ``A_ij`` of size roughly
  ``m/pr × n/pc``.  The data matrix is stored exactly once and is **never
  communicated**; this is what makes HPC-NMF's communication volume
  independent of ``nnz(A)``.
* :class:`DoublePartitioned1D` — Algorithm 2's layout: rank ``i`` of ``p``
  owns a row block ``A_i (m/p × n)`` *and* a column block ``A^i (m × n/p)``
  (the data is stored twice), because Naive-Parallel-NMF multiplies against
  ``A`` from both sides with fully replicated factors.

Both accept dense ndarrays and scipy sparse matrices; the block boundaries
come from :mod:`repro.dist.partition`, so they agree with the factor layout
in :mod:`repro.dist.factors` and with the communicator's default
reduce-scatter counts.

Construction paths for :class:`DistMatrix2D`:

* :meth:`DistMatrix2D.from_global` — every rank slices its block out of a
  globally readable ``A`` (the convenient path for tests and small runs);
* :meth:`DistMatrix2D.from_block_generator` — each rank *generates* only its
  own block and the global matrix never exists anywhere (the scalable path;
  the paper generates its synthetic data exactly this way, each process with
  its own seed).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.dist.partition import block_range
from repro.dist.storage import materialize_block
from repro.util.errors import PartitionError, ShapeError
from repro.util.validation import is_sparse


def _local_norm_squared(block) -> float:
    """Squared Frobenius norm of one local block (dense or sparse)."""
    if is_sparse(block):
        data = block.data
        return float(data @ data) if data.size else 0.0
    return float(np.vdot(block, block))


class DistMatrix2D:
    """The block ``A_ij`` of a globally ``m × n`` matrix on a ``pr × pc`` grid.

    Instances are per-rank SPMD objects: every rank of the grid holds one
    ``DistMatrix2D`` describing *its own* block plus the global metadata
    needed to reason about the whole matrix (shape, index ranges).

    Attributes
    ----------
    grid:
        The owning :class:`~repro.comm.grid.ProcessGrid`.
    block:
        This rank's local block (dense ndarray or scipy sparse matrix) of
        shape ``(row_range[1] - row_range[0], col_range[1] - col_range[0])``.
    row_range, col_range:
        Half-open global index ranges ``[lo, hi)`` of the rows/columns this
        rank owns: ``block == A[row_range[0]:row_range[1], col_range[0]:col_range[1]]``.
    global_shape:
        The global ``(m, n)``.
    """

    def __init__(
        self,
        grid,
        block,
        row_range: Tuple[int, int],
        col_range: Tuple[int, int],
        global_shape: Tuple[int, int],
    ):
        expected = (row_range[1] - row_range[0], col_range[1] - col_range[0])
        if tuple(block.shape) != expected:
            raise ShapeError(
                f"local block has shape {tuple(block.shape)}, "
                f"but ranges {row_range} x {col_range} require {expected}"
            )
        if is_sparse(block):
            # Canonicalise: generator-supplied blocks may carry duplicate
            # coordinates (COO built with replacement, non-canonical CSR),
            # which would corrupt nnz counts and the Frobenius norm
            # (data @ data assumes one entry per position).  CSR is also the
            # fast format for the local matmuls; both steps are no-ops for
            # already-canonical CSR blocks.
            block = block.tocsr()
            block.sum_duplicates()
        self.grid = grid
        self.block = block
        self.row_range = row_range
        self.col_range = col_range
        self.global_shape = (int(global_shape[0]), int(global_shape[1]))

    # -- construction -------------------------------------------------------
    @classmethod
    def local_ranges(cls, grid, m: int, n: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """The (row_range, col_range) of the calling rank's block ``A_ij``."""
        i, j = grid.coords
        return block_range(m, grid.pr, i), block_range(n, grid.pc, j)

    @classmethod
    def from_global(cls, grid, A, storage: str = "memory") -> "DistMatrix2D":
        """Slice this rank's ``A_ij`` out of a globally readable matrix.

        Nothing is communicated: in the SPMD model every rank calls this with
        the same ``A`` and keeps only its own block (exactly how an MPI code
        would read its block from a shared file).  ``storage`` selects where
        the local block lives (see :mod:`repro.dist.storage`): ``"memory"``
        keeps it resident, ``"memmap"`` rehomes dense blocks onto an
        ``np.memmap``-backed temporary file for out-of-core operation.
        """
        m, n = A.shape
        row_range, col_range = cls.local_ranges(grid, m, n)
        r0, r1 = row_range
        c0, c1 = col_range
        if is_sparse(A):
            # Normalise to CSR first: COO/DIA/BSR inputs don't support slicing.
            block = A.tocsr()[r0:r1, c0:c1]
        else:
            block = np.ascontiguousarray(np.asarray(A)[r0:r1, c0:c1])
        block = materialize_block(block, storage)
        return cls(grid, block, row_range, col_range, (m, n))

    @classmethod
    def from_block_generator(
        cls,
        grid,
        global_shape: Tuple[int, int],
        generator: Callable,
        storage: str = "memory",
    ) -> "DistMatrix2D":
        """Build the local block with ``generator(row_range, col_range, rank)``.

        The scalable path: the global matrix is *virtual* and only its blocks
        ever exist, one per rank.  The generator must return a block of shape
        ``(row_range[1] - row_range[0], col_range[1] - col_range[0])`` (dense
        or sparse); a wrong shape raises :class:`~repro.util.errors.ShapeError`.
        ``storage="memmap"`` spills the generated dense block to an
        ``np.memmap``-backed temporary file (see :mod:`repro.dist.storage`),
        bounding resident memory at webbase scale.
        """
        m, n = int(global_shape[0]), int(global_shape[1])
        if m <= 0 or n <= 0:
            raise PartitionError(f"global shape must be positive, got {m}x{n}")
        row_range, col_range = cls.local_ranges(grid, m, n)
        block = generator(row_range, col_range, grid.rank)
        block = materialize_block(block, storage)
        return cls(grid, block, row_range, col_range, (m, n))

    # -- properties ---------------------------------------------------------
    @property
    def is_sparse(self) -> bool:
        """True when the local block is a scipy sparse matrix."""
        return is_sparse(self.block)

    @property
    def local_shape(self) -> Tuple[int, int]:
        """Shape of this rank's block."""
        return tuple(self.block.shape)

    @property
    def local_nnz(self) -> int:
        """Nonzeros in this rank's block (``count_nonzero`` for dense blocks)."""
        if self.is_sparse:
            return int(self.block.nnz)
        return int(np.count_nonzero(self.block))

    # -- collective operations ---------------------------------------------
    def frobenius_norm_squared(self) -> float:
        """Global ``||A||_F²`` via an all-reduce of the local contributions.

        Collective: every rank of the grid must call it.  Used once during
        setup to normalise the objective (the Gram-trick error computation
        needs ``||A||²`` but never ``A`` itself).
        """
        return self.grid.comm.allreduce_scalar(_local_norm_squared(self.block))

    def to_global(self) -> np.ndarray:
        """Reassemble the dense global matrix on every rank (tests/debug only).

        Collective.  This materialises ``m × n`` on every rank — the exact
        thing the production algorithms are designed never to do — so it is
        strictly a correctness-checking utility.
        """
        m, n = self.global_shape
        block = self.block.toarray() if self.is_sparse else np.asarray(self.block)
        pieces = self.grid.comm.allgather_object(
            (self.row_range, self.col_range, block)
        )
        out = np.zeros((m, n), dtype=np.result_type(block, np.float64))
        for (r0, r1), (c0, c1), piece in pieces:
            out[r0:r1, c0:c1] = piece
        return out

    def __repr__(self) -> str:
        kind = "sparse" if self.is_sparse else "dense"
        return (
            f"DistMatrix2D(rank={self.grid.rank}, coords={self.grid.coords}, "
            f"rows={self.row_range}, cols={self.col_range}, {kind})"
        )


class DoublePartitioned1D:
    """Rank ``i``'s row block ``A_i`` and column block ``A^i`` for Algorithm 2.

    Naive-Parallel-NMF needs ``A_i Hᵀ`` (row block times the gathered ``H``)
    and ``W ᵀA^i`` (gathered ``W`` times the column block), so the data is
    deliberately stored twice — one of the inefficiencies HPC-NMF removes.

    Attributes
    ----------
    row_range, col_range:
        Global half-open ranges of the owned rows / columns.
    row_block:
        ``A[row_range[0]:row_range[1], :]`` — shape ``(m/p, n)``.
    col_block:
        ``A[:, col_range[0]:col_range[1]]`` — shape ``(m, n/p)``.
    """

    def __init__(self, rank: int, p: int, row_range, col_range, row_block, col_block,
                 global_shape: Tuple[int, int]):
        self.rank = int(rank)
        self.p = int(p)
        self.row_range = row_range
        self.col_range = col_range
        self.row_block = row_block
        self.col_block = col_block
        self.global_shape = (int(global_shape[0]), int(global_shape[1]))

    @classmethod
    def from_global(cls, rank: int, p: int, A) -> "DoublePartitioned1D":
        """Slice rank ``rank``-of-``p``'s row and column blocks out of ``A``."""
        m, n = A.shape
        row_range = block_range(m, p, rank)
        col_range = block_range(n, p, rank)
        r0, r1 = row_range
        c0, c1 = col_range
        if is_sparse(A):
            A = A.tocsr()   # COO/DIA/BSR inputs don't support slicing
            if not A.has_canonical_format:
                # Same duplicate-entry hazard DistMatrix2D.__init__ guards
                # against: naive.py computes ||A||² as data @ data on the row
                # block.  Copy first so the caller's matrix is not mutated.
                A = A.copy()
                A.sum_duplicates()
            row_block = A[r0:r1, :]
            # CSC keeps the column slice cheap and its transpose (taken by
            # matmul_wt_a) lands back on CSR, scipy's fast format.
            col_block = A[:, c0:c1].tocsc()
        else:
            A = np.asarray(A)
            row_block = np.ascontiguousarray(A[r0:r1, :])
            col_block = np.ascontiguousarray(A[:, c0:c1])
        return cls(rank, p, row_range, col_range, row_block, col_block, (m, n))

    @property
    def is_sparse(self) -> bool:
        """True when the blocks are scipy sparse matrices."""
        return is_sparse(self.row_block)

    def __repr__(self) -> str:
        kind = "sparse" if self.is_sparse else "dense"
        return (
            f"DoublePartitioned1D(rank={self.rank}/{self.p}, rows={self.row_range}, "
            f"cols={self.col_range}, {kind})"
        )
