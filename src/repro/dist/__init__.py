"""repro.dist — distributed matrices and factors on 1D/2D processor grids.

This package is the data-layout layer between the communication substrate
(:mod:`repro.comm`) and the algorithms (:mod:`repro.core`).  It owns the
answer to "which rank holds which indices":

* :mod:`repro.dist.partition` — the remainder-spreading contiguous block
  layout every distributed object uses (``block_counts``, ``block_range``);
* :mod:`repro.dist.distmatrix` — :class:`~repro.dist.distmatrix.DistMatrix2D`
  (Algorithm 3's ``A_ij`` blocks, with a never-materialize-``A`` generator
  path) and :class:`~repro.dist.distmatrix.DoublePartitioned1D` (Algorithm
  2's twice-stored row/column blocks);
* :mod:`repro.dist.factors` — the ``p``-way partitioned factors
  :class:`~repro.dist.factors.DistributedFactorW` / ``(W_i)_j`` and
  :class:`~repro.dist.factors.DistributedFactorH` / ``(H_j)_i``, whose
  all-gathers along grid rows/columns reconstruct ``W_i`` and ``H_j``;
* :mod:`repro.dist.load_balance` — nonzero imbalance diagnostics and the
  random-permutation mitigation for skewed sparse data (§7 future work).

See ``docs/ARCHITECTURE.md`` for how these objects carry Algorithm 3's
per-iteration dataflow.
"""

from __future__ import annotations

from repro.dist.distmatrix import DistMatrix2D, DoublePartitioned1D
from repro.dist.factors import DistributedFactorH, DistributedFactorW
from repro.dist.load_balance import (
    LoadBalanceReport,
    imbalance_factor,
    nnz_per_block,
    random_permutation_balance,
    unpermute_factors,
)
from repro.dist.partition import block_counts, block_offsets, block_range, owning_rank

__all__ = [
    "DistMatrix2D",
    "DoublePartitioned1D",
    "DistributedFactorH",
    "DistributedFactorW",
    "LoadBalanceReport",
    "block_counts",
    "block_offsets",
    "block_range",
    "owning_rank",
    "imbalance_factor",
    "nnz_per_block",
    "random_permutation_balance",
    "unpermute_factors",
]
