"""Block partitioning of index ranges over ranks (paper §4-5).

Every distributed object in the reproduction — the data blocks ``A_ij``, the
factor blocks ``W_i`` / ``H_j`` and their sub-blocks ``(W_i)_j`` / ``(H_j)_i``
— is laid out by the same rule: ``n`` indices are split into ``p`` contiguous
blocks whose sizes differ by at most one, with the remainder spread over the
*first* ``n mod p`` blocks.  This is the layout MPI programs conventionally
use for block distributions, and the one the communicator's
``reduce_scatter`` default ``counts`` reproduce, so a reduce-scatter with no
explicit counts lands each rank exactly on its own block.

The invariants (asserted by ``tests/dist/test_partition.py``):

* ``sum(block_counts(n, p)) == n`` — the blocks cover everything;
* ``block_range(n, p, r)`` for ``r = 0..p-1`` tile ``[0, n)`` in order,
  without gaps or overlap;
* any two counts differ by at most one (load balance of dense data);
* zero-sized blocks are legal (``p > n``), so degenerate grids still work.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.util.errors import PartitionError


def _check_args(n: int, p: int) -> Tuple[int, int]:
    n, p = int(n), int(p)
    if n < 0:
        raise PartitionError(f"cannot partition a negative length, got n={n}")
    if p < 1:
        raise PartitionError(f"number of blocks must be >= 1, got p={p}")
    return n, p


def block_counts(n: int, p: int) -> List[int]:
    """Sizes of the ``p`` blocks of ``n`` indices, remainder spread first.

    >>> block_counts(10, 3)
    [4, 3, 3]
    >>> block_counts(2, 4)
    [1, 1, 0, 0]
    """
    n, p = _check_args(n, p)
    base, rem = divmod(n, p)
    return [base + (1 if r < rem else 0) for r in range(p)]


def block_offsets(n: int, p: int) -> List[int]:
    """The ``p + 1`` block boundaries: ``offsets[r] .. offsets[r+1]`` is block ``r``.

    >>> block_offsets(10, 3)
    [0, 4, 7, 10]
    """
    offsets = [0]
    for count in block_counts(n, p):
        offsets.append(offsets[-1] + count)
    return offsets


def block_range(n: int, p: int, rank: int) -> Tuple[int, int]:
    """Half-open index range ``[lo, hi)`` owned by ``rank``.

    >>> [block_range(10, 3, r) for r in range(3)]
    [(0, 4), (4, 7), (7, 10)]
    """
    n, p = _check_args(n, p)
    rank = int(rank)
    if not 0 <= rank < p:
        raise PartitionError(f"rank {rank} out of range for {p} blocks")
    base, rem = divmod(n, p)
    lo = rank * base + min(rank, rem)
    hi = lo + base + (1 if rank < rem else 0)
    return lo, hi


def owning_rank(n: int, p: int, index: int) -> int:
    """The rank whose block contains global ``index``.

    >>> [owning_rank(10, 3, i) for i in (0, 3, 4, 9)]
    [0, 0, 1, 2]
    """
    n, p = _check_args(n, p)
    index = int(index)
    if not 0 <= index < n:
        raise PartitionError(f"index {index} out of range for length {n}")
    base, rem = divmod(n, p)
    # The first `rem` blocks have size base+1 and cover [0, rem*(base+1)).
    boundary = rem * (base + 1)
    if index < boundary:
        return index // (base + 1)
    return rem + (index - boundary) // base
