"""CLI for the benchmark-baseline writer: ``python -m repro.bench``."""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.bench.baseline import (
    SCALES,
    check_baseline,
    load_baseline,
    render_baseline,
    run_baseline,
    write_baseline,
)


def add_bench_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the baseline-writer options (shared with ``repro bench``)."""
    parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    parser.add_argument("-p", "--ranks", type=int, default=4,
                        help="SPMD ranks for the parallel runs (default 4)")
    parser.add_argument("--backends", nargs="+", default=["thread", "process"],
                        help="backends to measure (default: thread process)")
    parser.add_argument("--variant", default="hpc2d")
    parser.add_argument("--panels", nargs="*", default=["dense", "sparse"],
                        choices=["dense", "sparse"],
                        help="fit panels to measure; pass with no values to "
                             "skip the fit panels entirely")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of repeats per configuration (default 2)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--no-kernels", action="store_true",
                        help="skip the BPP kernel microbenchmark panel")
    parser.add_argument("--no-overlap", action="store_true",
                        help="skip the pipelined-vs-blocking schedule panel")
    parser.add_argument("--no-serve", action="store_true",
                        help="skip the serving load-test panel")
    parser.add_argument("--no-floors", action="store_true",
                        help="with --check: report floor comparisons but "
                             "always exit 0 (for hosts below the floors' "
                             "requires_cpus, e.g. <4-CPU laptops)")
    parser.add_argument("--out", default="benchmarks/results",
                        help="directory for the BENCH_*.json artifact")
    parser.add_argument("--label", default=None,
                        help="artifact label (default <scale>_p<ranks>)")
    parser.add_argument("--check", default=None, metavar="BASELINE_JSON",
                        help="fail (exit 1) if a speedup falls below this "
                             "committed baseline's floors")
    return parser


def build_parser() -> argparse.ArgumentParser:
    return add_bench_arguments(argparse.ArgumentParser(
        prog="repro.bench",
        description="measure the Fig-3-style benchmark panels and write BENCH_*.json",
    ))


def main(argv=None, args: Optional[argparse.Namespace] = None) -> int:
    if args is None:
        args = build_parser().parse_args(argv)
    payload = run_baseline(
        scale=args.scale,
        p=args.ranks,
        backends=tuple(args.backends),
        variant=args.variant,
        panels=tuple(args.panels),
        repeats=args.repeats,
        seed=args.seed,
        kernels=not args.no_kernels,
        overlap=not args.no_overlap,
        serve=not args.no_serve,
    )
    path = write_baseline(payload, args.out, label=args.label)
    print(render_baseline(payload))
    print(f"\nartifact written to {path}")
    if args.check:
        failures, skipped = check_baseline(payload, load_baseline(args.check))
        for note in skipped:
            print(f"SKIPPED: {note}")
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            if getattr(args, "no_floors", False):
                print("floors not enforced (--no-floors); exiting 0")
                return 0
            return 1
        print(f"baseline check passed against {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
