"""The serving load-test panel: closed-loop clients × kernels → req/s, p50/p99.

Two measurements per kernel, from the same request schedule:

* **hot path** — the serving data path exactly as the micro-batcher runs it
  (:func:`repro.serve.project.project_blocks`: one ``Wᵀ·block`` gemm per
  request, one coalesced NLS solve per batch, persistent pattern cache),
  driven synchronously.  This is the number the committed floor
  ``serve:batched_vs_scalar`` gates: it isolates what the kernel choice buys
  at serving batch shapes, independent of event-loop scheduling noise.
* **end-to-end** — the full :class:`~repro.serve.server.ProjectionService`
  under ``clients`` concurrent closed-loop asyncio clients (each waits for
  its response before sending the next request): requests/s, columns/s and
  the service's own p50/p99 latency and batch-size telemetry.  On a 1-CPU
  host the event loop and the kernel thread share one core, so this ratio is
  reported but not floored.

The traffic is *in-model*: request columns are drawn near the served basis
(``x = max(W h + noise, 0)`` with ``h`` bounded away from zero), the regime a
deployed model actually sees.  In-model columns mostly share BPP passive-set
patterns, which is precisely where the batched kernel's pattern grouping
pays; adversarially random columns fragment the patterns and land closer to
parity.  With the defaults each coalesced batch carries
``clients × columns_per_request = 256`` columns — far past the ≥ 16-column
regime the floor presumes (the batched kernel's per-call grouping setup
amortises from roughly 100 columns up).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Sequence

__all__ = ["run_serve_panel"]


def run_serve_panel(
    scale: str = "tiny",
    kernels: Sequence[str] = ("scalar", "batched"),
    clients: int = 8,
    requests_per_client: int = 4,
    columns_per_request: int = 32,
    batch_window: float = 0.002,
    repeats: int = 2,
    seed: int = 7,
) -> dict:
    """Load-test the projection hot path and service once per kernel.

    The model is a synthetic non-negative basis at the dense panel's
    ``m × k`` (the projection cost profile matters, not factorisation
    quality).  Every kernel serves the *same* request schedule, so the
    ``vs_scalar`` ratios isolate kernel performance; all timings are
    best-of-``repeats``.
    """
    import numpy as np

    from repro.bench.baseline import SCALES
    from repro.core.config import NMFConfig
    from repro.core.result import NMFResult
    from repro.nls.bpp import BlockPrincipalPivoting
    from repro.serve.project import project_blocks
    from repro.serve.server import ProjectionService
    from repro.serve.store import ModelStore

    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    spec = SCALES[scale]["dense"]
    m, k = int(spec["m"]), int(spec["k"])
    rng = np.random.default_rng(seed)
    W = np.abs(rng.standard_normal((m, k)))
    result = NMFResult(
        W=W,
        H=np.abs(rng.standard_normal((k, 8))),
        config=NMFConfig(k=k, seed=seed),
        iterations=1,
    )
    # One in-model request schedule, shared by every kernel under test:
    # schedule[i][r] is client i's r-th request block (m × columns_per_request).
    schedule = [
        [
            np.maximum(
                W @ (0.25 + np.abs(rng.standard_normal((k, columns_per_request))))
                + 0.02 * rng.standard_normal((m, columns_per_request)),
                0.0,
            )
            for _ in range(requests_per_client)
        ]
        for _ in range(clients)
    ]
    total_requests = clients * requests_per_client
    total_columns = total_requests * columns_per_request
    gram = W.T @ W

    # -- hot path: the batcher's data path, driven synchronously -------------
    # Each round coalesces the blocks all clients have in flight — the batch
    # composition a saturated micro-batcher converges to.
    rounds = [
        [schedule[i][r] for i in range(clients)]
        for r in range(requests_per_client)
    ]

    def _hotpath_wall(kernel: str) -> float:
        solver = BlockPrincipalPivoting(kernel=kernel, persistent_cache=True)
        for blocks in rounds:  # warm-up fills the persistent pattern cache
            project_blocks(W, blocks, gram=gram, solver=solver)
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for blocks in rounds:
                project_blocks(W, blocks, gram=gram, solver=solver)
            best = min(best, time.perf_counter() - start)
        return best

    # -- end to end: closed-loop clients against the real service ------------
    async def _service_run(kernel: str) -> Dict[str, object]:
        store = ModelStore()
        store.add_result("bench", result)
        service = ProjectionService(
            store,
            batch_window=batch_window,
            max_batch_columns=clients * columns_per_request,
            queue_limit=max(256, total_requests),
            default_deadline=60.0,
            kernel=kernel,
        )
        await service.start()
        loop = asyncio.get_running_loop()
        try:
            await service.submit("bench", schedule[0][0])  # warm-up

            async def client(i: int) -> None:
                for request in schedule[i]:
                    await service.submit("bench", request)

            start = loop.time()
            await asyncio.gather(*[client(i) for i in range(clients)])
            wall = loop.time() - start
            snapshot = service.stats.snapshot()
        finally:
            await service.stop()
        return {"wall_s": wall, "stats": snapshot}

    rows: List[dict] = []
    hot_walls: Dict[str, float] = {}
    e2e_walls: Dict[str, float] = {}
    for kernel in kernels:
        hot_walls[kernel] = _hotpath_wall(kernel)
        best = None
        for _ in range(max(1, repeats)):
            measured = asyncio.run(_service_run(kernel))
            if best is None or measured["wall_s"] < best["wall_s"]:
                best = measured
        e2e_walls[kernel] = best["wall_s"]
        stats = best["stats"]
        rows.append({
            "kernel": kernel,
            "hotpath_wall_s": hot_walls[kernel],
            "hotpath_columns_per_s": total_columns / hot_walls[kernel],
            "e2e_wall_s": best["wall_s"],
            "requests": total_requests,
            "columns": total_columns,
            "requests_per_s": total_requests / best["wall_s"],
            "columns_per_s": total_columns / best["wall_s"],
            "mean_batch_columns": stats["mean_batch_columns"],
            "latency_p50_s": stats["latency_seconds"]["p50"],
            "latency_p99_s": stats["latency_seconds"]["p99"],
        })
    reference = kernels[0]
    for row in rows:
        row[f"speedup_vs_{reference}"] = (
            hot_walls[reference] / row["hotpath_wall_s"]
        )
        row[f"e2e_speedup_vs_{reference}"] = e2e_walls[reference] / row["e2e_wall_s"]
    return {
        "panel": "serve",
        "m": m,
        "k": k,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "columns_per_request": columns_per_request,
        "batch_columns": clients * columns_per_request,
        "batch_window_s": batch_window,
        "repeats": repeats,
        "rows": rows,
    }
