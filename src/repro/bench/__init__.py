"""Recorded performance baselines (see :mod:`repro.bench.baseline`).

Run ``python -m repro.bench`` (or ``repro bench``) to measure the
Figure-3-style panels on this host and write a ``BENCH_*.json`` artifact;
pass ``--check`` to gate against a committed baseline's speedup floors.
"""

from repro.bench.baseline import (
    SCALES,
    check_baseline,
    load_baseline,
    render_baseline,
    run_baseline,
    run_kernel_panel,
    run_overlap_panel,
    write_baseline,
)
from repro.bench.serve_panel import run_serve_panel

__all__ = [
    "SCALES",
    "check_baseline",
    "load_baseline",
    "render_baseline",
    "run_baseline",
    "run_kernel_panel",
    "run_overlap_panel",
    "run_serve_panel",
    "write_baseline",
]
