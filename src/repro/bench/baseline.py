"""The benchmark-baseline writer: the repo's recorded performance trajectory.

The paper's evaluation (§6, Figure 3) is a grid of *measured* panels —
algorithm × processor count × dataset — and until now this reproduction only
ever verified the communication *structure* of those runs.  With the
``"process"`` backend the ranks genuinely run concurrently, so wall-clock
speedups are finally observable; this module measures them and writes the
result as a ``BENCH_*.json`` artifact:

* :func:`run_baseline` runs Figure-3-style panels (a dense DSYN-like and a
  sparse SSYN-like synthetic problem) for ``variant × backend × grid`` and
  records wall seconds, iterations/second and speedups — each parallel
  configuration against the sequential reference, and ``process`` against
  ``thread`` (the headline number: what escaping the GIL buys);
* :func:`write_baseline` serializes that payload as ``BENCH_<scale>_p<p>.json``;
* :func:`check_baseline` compares a fresh measurement against a committed
  baseline's ``floors`` and reports regressions — CI runs it on every push,
  skipping (loudly) any floor whose ``requires_cpus`` exceeds the host, so a
  1-core laptop doesn't fail a 4-rank speedup gate it cannot physically meet.

Scales are deliberately small (seconds, not minutes): the point is a
*trajectory* — a number CI re-measures on every change — not a paper-scale
reproduction, which stays in ``benchmarks/``.
"""

from __future__ import annotations

import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.backends.process import available_cpus

#: Problem sizes per scale.  Chosen so the *tiny* dense panel is dominated by
#: the pure-Python BPP solves (the GIL-bound work the process backend
#: parallelizes) rather than by fork/shared-memory setup: at
#: ``1024 × 768, k = 12`` the NLS task is ~60% of per-rank time.
SCALES: Dict[str, Dict[str, Dict[str, float]]] = {
    "tiny": {
        "dense": {"m": 1024, "n": 768, "k": 12, "iters": 20, "density": 1.0},
        "sparse": {"m": 1500, "n": 1000, "k": 10, "iters": 8, "density": 0.05},
    },
    "small": {
        "dense": {"m": 2048, "n": 1536, "k": 16, "iters": 12, "density": 1.0},
        "sparse": {"m": 4000, "n": 3000, "k": 12, "iters": 10, "density": 0.02},
    },
}

SCHEMA_VERSION = 1


def _panel_matrix(panel: str, spec: Dict[str, float], seed: int):
    if panel == "dense":
        from repro.data.lowrank import planted_lowrank

        return planted_lowrank(
            int(spec["m"]), int(spec["n"]), int(spec["k"]), seed=seed, noise_std=0.05
        )
    import scipy.sparse as sp

    return sp.random(
        int(spec["m"]), int(spec["n"]), density=float(spec["density"]),
        random_state=seed, format="csr",
    )


def run_kernel_panel(scale: str = "tiny", repeats: int = 3, seed: int = 7) -> dict:
    """Microbenchmark every available BPP kernel on one NLS problem.

    The problem is the dense panel's W-update: ``gram = H Hᵀ`` (k × k) and
    ``rhs = H Aᵀ`` (k × m), i.e. ``m`` right-hand-side columns through one
    solver call — exactly the shape the batched kernel's passive-set grouping
    is built for.  Each kernel gets one warm-up solve (numba's JIT
    compilation happens there, outside the timing) and is then timed
    best-of-``repeats``.  Speedups are relative to the ``scalar`` kernel.
    """
    import numpy as np

    from repro.nls import available_kernels, make_solver

    spec = SCALES[scale]["dense"]
    k, m, n = int(spec["k"]), int(spec["m"]), int(spec["n"])
    A = np.asarray(_panel_matrix("dense", spec, seed))
    rng = np.random.default_rng(seed)
    H = np.abs(rng.standard_normal((k, n)))
    gram_h = (H @ H.T + (H @ H.T).T) * 0.5
    rhs = H @ A.T                                  # k × m: one column per row of W

    rows: List[dict] = []
    times: Dict[str, float] = {}
    for kernel in available_kernels():
        solver = make_solver("bpp", kernel=kernel)
        solver.solve(gram_h, rhs)                  # warm-up (JIT compile for numba)
        times[kernel] = min(
            _timed(lambda: solver.solve(gram_h, rhs)) for _ in range(max(1, repeats))
        )
    for kernel, wall in times.items():
        rows.append({
            "kernel": kernel,
            "wall_s": wall,
            "columns_per_s": m / wall,
            "speedup_vs_scalar": times["scalar"] / wall,
        })
    return {"panel": "dense", "k": k, "columns": m, "repeats": repeats, "rows": rows}


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_overlap_panel(
    scale: str = "tiny",
    p: int = 4,
    backends: Sequence[str] = ("thread", "process"),
    variant: str = "hpc2d",
    repeats: int = 2,
    seed: int = 7,
) -> dict:
    """Time the three collective schedules on the dense panel.

    For each backend the dense panel runs three times — ``overlap=False``
    (strictly blocking), ``overlap=True, panel_comm=False`` (the PR-7
    pipelined schedule: nonblocking gathers/all-reduces, monolithic blocking
    reduce-scatters) and the default (pipelined *plus* panel-streamed
    reduce-scatters and the deferred error path) — and the ratios
    ``blocking / pipelined`` and ``pipelined / panel`` are reported per
    backend.  The committed baseline floors
    ``dense:process_pipelined_vs_blocking`` and
    ``dense:process_panel_vs_pipelined``; all three runs produce
    byte-identical factors, so any ratio change is pure schedule performance.
    Each row also records the profiler's exposed vs. hidden communication
    seconds per schedule — the split the BENCH artifact exports for the
    overlap trajectory.
    """
    spec = SCALES[scale]["dense"]
    k, iters = int(spec["k"]), int(spec["iters"])
    A = _panel_matrix("dense", spec, seed)
    schedules = (
        ("blocking", {"overlap": False}),
        ("pipelined", {"overlap": True, "panel_comm": False}),
        ("panel", {"overlap": True, "panel_comm": True}),
    )
    rows: List[dict] = []
    for backend in backends:
        walls: Dict[str, float] = {}
        comm_split: Dict[str, Dict[str, float]] = {}
        for name, options in schedules:
            wall, res = _timed_fit(
                A, k, iters, seed, repeats,
                variant=variant, n_ranks=p, backend=backend, **options,
            )
            walls[name] = wall
            comm_split[name] = {
                "exposed_comm_s": res.breakdown.exposed_communication,
                "hidden_comm_s": res.breakdown.hidden_communication,
            }
        rows.append({
            "panel": "dense", "variant": variant, "backend": backend, "p": p,
            "wall_blocking_s": walls["blocking"],
            "wall_pipelined_s": walls["pipelined"],
            "wall_panel_s": walls["panel"],
            "pipelined_vs_blocking": walls["blocking"] / walls["pipelined"],
            "panel_vs_pipelined": walls["pipelined"] / walls["panel"],
            "panel_vs_blocking": walls["blocking"] / walls["panel"],
            "comm_split": comm_split,
        })
    return {
        "panel": "dense", "variant": variant, "p": p,
        "k": k, "iters": iters, "repeats": repeats, "rows": rows,
    }


def _timed_fit(A, k: int, iters: int, seed: int, repeats: int, **kwargs) -> Tuple[float, object]:
    """Best-of-``repeats`` wall seconds for one full ``fit`` (and its result)."""
    from repro.core.api import fit

    best, result = float("inf"), None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        res = fit(A, k, max_iters=iters, seed=seed, **kwargs)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, res
    return best, result


def run_baseline(
    scale: str = "tiny",
    p: int = 4,
    backends: Sequence[str] = ("thread", "process"),
    variant: str = "hpc2d",
    panels: Sequence[str] = ("dense", "sparse"),
    repeats: int = 2,
    seed: int = 7,
    kernels: bool = True,
    overlap: bool = True,
    serve: bool = True,
) -> dict:
    """Measure the Figure-3-style panels and return the baseline payload.

    Every panel runs the sequential reference once (the speedup denominator)
    and then ``variant`` on ``p`` ranks once per backend.  The headline
    ``speedups`` map carries ``<panel>:process_vs_thread`` whenever both
    backends were measured — the number the committed baseline puts a floor
    under.  With ``kernels`` (the default) the BPP kernel microbenchmark
    (:func:`run_kernel_panel`) is appended under a separate ``"kernels"``
    key, contributing ``bpp_<kernel>_vs_scalar`` speedups — the committed
    baseline also floors ``bpp_batched_vs_scalar``.  With ``overlap`` (the
    default) the pipelined-vs-blocking panel (:func:`run_overlap_panel`) is
    appended under ``"overlap"``, contributing
    ``dense:<backend>_pipelined_vs_blocking`` speedups.  With ``serve`` (the
    default) the serving load-test panel
    (:func:`~repro.bench.serve_panel.run_serve_panel`) is appended under
    ``"serve"``, contributing ``serve:<kernel>_vs_scalar`` hot-path speedups —
    the committed baseline floors ``serve:batched_vs_scalar``.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; known: {sorted(SCALES)}")

    payload: dict = {
        "schema": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": scale,
        "p": p,
        "variant": variant,
        "repeats": repeats,
        "cpu_count": available_cpus(),
        "python": platform.python_version(),
        "panels": [],
        "speedups": {},
    }
    for panel in panels:
        spec = SCALES[scale][panel]
        k, iters = int(spec["k"]), int(spec["iters"])
        A = _panel_matrix(panel, spec, seed)
        seq_wall, _ = _timed_fit(A, k, iters, seed, repeats, variant="sequential")
        rows: List[dict] = [{
            "variant": "sequential", "backend": None, "grid": None, "p": 1,
            "wall_s": seq_wall, "iters_per_s": iters / seq_wall,
            "speedup_vs_sequential": 1.0,
        }]
        by_backend: Dict[str, float] = {}
        for backend in backends:
            wall, res = _timed_fit(
                A, k, iters, seed, repeats,
                variant=variant, n_ranks=p, backend=backend,
            )
            by_backend[backend] = wall
            rows.append({
                "variant": variant, "backend": backend,
                "grid": list(res.grid_shape) if res.grid_shape else None, "p": p,
                "wall_s": wall, "iters_per_s": iters / wall,
                "speedup_vs_sequential": seq_wall / wall,
            })
        payload["panels"].append({
            "panel": panel,
            "m": int(spec["m"]), "n": int(spec["n"]), "k": k, "iters": iters,
            "density": float(spec["density"]),
            "rows": rows,
        })
        if "thread" in by_backend and "process" in by_backend:
            payload["speedups"][f"{panel}:process_vs_thread"] = (
                by_backend["thread"] / by_backend["process"]
            )
        for backend, wall in by_backend.items():
            payload["speedups"][f"{panel}:{backend}_vs_sequential"] = seq_wall / wall
    if kernels:
        kernel_panel = run_kernel_panel(scale=scale, repeats=max(2, repeats), seed=seed)
        payload["kernels"] = kernel_panel
        for row in kernel_panel["rows"]:
            if row["kernel"] != "scalar":
                payload["speedups"][f"bpp_{row['kernel']}_vs_scalar"] = (
                    row["speedup_vs_scalar"]
                )
    if overlap:
        overlap_panel = run_overlap_panel(
            scale=scale, p=p, backends=backends, variant=variant,
            repeats=repeats, seed=seed,
        )
        payload["overlap"] = overlap_panel
        for row in overlap_panel["rows"]:
            payload["speedups"][
                f"dense:{row['backend']}_pipelined_vs_blocking"
            ] = row["pipelined_vs_blocking"]
            payload["speedups"][
                f"dense:{row['backend']}_panel_vs_pipelined"
            ] = row["panel_vs_pipelined"]
    if serve:
        from repro.bench.serve_panel import run_serve_panel

        serve_panel = run_serve_panel(
            scale=scale, repeats=max(2, repeats), seed=seed
        )
        payload["serve"] = serve_panel
        for row in serve_panel["rows"]:
            if row["kernel"] != "scalar":
                payload["speedups"][f"serve:{row['kernel']}_vs_scalar"] = (
                    row["speedup_vs_scalar"]
                )
    return payload


def write_baseline(payload: dict, out_dir, label: Optional[str] = None) -> Path:
    """Write ``payload`` as ``BENCH_<label>.json`` under ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    label = label or f"{payload['scale']}_p{payload['p']}"
    path = out_dir / f"BENCH_{label}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path) -> dict:
    return json.loads(Path(path).read_text())


def check_baseline(measured: dict, baseline: dict) -> Tuple[List[str], List[str]]:
    """Compare ``measured`` speedups against ``baseline['floors']``.

    Returns ``(failures, skipped)``: ``failures`` are human-readable
    regression descriptions (empty = pass); ``skipped`` explains every floor
    that was not enforced because the measuring host lacks the CPUs the
    floor presumes (``requires_cpus``) — hardware-gated, never silently.
    """
    failures: List[str] = []
    skipped: List[str] = []
    cpus = int(measured.get("cpu_count") or 1)
    for floor in baseline.get("floors", []):
        metric, minimum = floor["metric"], float(floor["min"])
        requires = int(floor.get("requires_cpus", 1))
        if cpus < requires:
            skipped.append(
                f"{metric} >= {minimum:g} not enforced: needs {requires} CPUs, "
                f"host has {cpus}"
            )
            continue
        value = measured.get("speedups", {}).get(metric)
        if value is None:
            failures.append(f"{metric} missing from the measured payload")
        elif value < minimum:
            failures.append(
                f"{metric} regressed: measured {value:.3g}, baseline floor {minimum:g}"
            )
    return failures, skipped


def render_baseline(payload: dict) -> str:
    """A compact human-readable table of the measured panels."""
    lines = [
        f"bench baseline: scale={payload['scale']} p={payload['p']} "
        f"cpus={payload['cpu_count']} python={payload['python']}",
        f"{'panel':>7}  {'variant':>10}  {'backend':>8}  {'grid':>6}  "
        f"{'wall s':>8}  {'iters/s':>8}  {'speedup':>8}",
    ]
    for panel in payload["panels"]:
        for row in panel["rows"]:
            grid = "x".join(map(str, row["grid"])) if row["grid"] else "-"
            lines.append(
                f"{panel['panel']:>7}  {row['variant']:>10}  "
                f"{row['backend'] or '-':>8}  {grid:>6}  {row['wall_s']:>8.3f}  "
                f"{row['iters_per_s']:>8.2f}  {row['speedup_vs_sequential']:>8.2f}"
            )
    kernel_panel = payload.get("kernels")
    if kernel_panel:
        lines.append(
            f"BPP kernels (dense W-update, k={kernel_panel['k']}, "
            f"columns={kernel_panel['columns']}):"
        )
        for row in kernel_panel["rows"]:
            lines.append(
                f"{'':>7}  {row['kernel']:>10}  {'-':>8}  {'-':>6}  "
                f"{row['wall_s']:>8.3f}  {row['columns_per_s']:>8.0f}  "
                f"{row['speedup_vs_scalar']:>8.2f}"
            )
    overlap_panel = payload.get("overlap")
    if overlap_panel:
        lines.append(
            f"overlap (blocking / pipelined / panel-streamed, dense, "
            f"{overlap_panel['variant']} p={overlap_panel['p']}):"
        )
        lines.append(
            f"{'':>7}  {'backend':>10}  {'block s':>8}  {'pipe s':>8}  "
            f"{'panel s':>8}  {'pipe/blk':>8}  {'pan/pipe':>8}  "
            f"{'exposed s':>9}  {'hidden s':>8}"
        )
        for row in overlap_panel["rows"]:
            split = row.get("comm_split", {}).get("panel", {})
            lines.append(
                f"{'':>7}  {row['backend']:>10}  "
                f"{row['wall_blocking_s']:>8.3f}  "
                f"{row['wall_pipelined_s']:>8.3f}  "
                f"{row['wall_panel_s']:>8.3f}  "
                f"{row['pipelined_vs_blocking']:>8.2f}  "
                f"{row['panel_vs_pipelined']:>8.2f}  "
                f"{split.get('exposed_comm_s', float('nan')):>9.3f}  "
                f"{split.get('hidden_comm_s', float('nan')):>8.3f}"
            )
    serve_panel = payload.get("serve")
    if serve_panel:
        lines.append(
            f"serve (micro-batched projection, m={serve_panel['m']} "
            f"k={serve_panel['k']}, {serve_panel['clients']} clients x "
            f"{serve_panel['columns_per_request']} cols/request, "
            f"batch={serve_panel['batch_columns']}):"
        )
        lines.append(
            f"{'':>7}  {'kernel':>10}  {'hot cols/s':>10}  {'req/s':>8}  "
            f"{'p50 ms':>8}  {'p99 ms':>8}  {'speedup':>8}"
        )
        for row in serve_panel["rows"]:
            lines.append(
                f"{'':>7}  {row['kernel']:>10}  "
                f"{row['hotpath_columns_per_s']:>10.0f}  "
                f"{row['requests_per_s']:>8.0f}  "
                f"{row['latency_p50_s'] * 1e3:>8.2f}  "
                f"{row['latency_p99_s'] * 1e3:>8.2f}  "
                f"{row['speedup_vs_scalar']:>8.2f}"
            )
    for metric, value in sorted(payload["speedups"].items()):
        lines.append(f"  {metric} = {value:.3f}")
    return "\n".join(lines)
