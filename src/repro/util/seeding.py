"""Deterministic per-rank seeding.

The paper (§6.1.1 and the DSYN description in §6.1.1) generates the synthetic
input on each process with "its own prime seed that is different from other
processes", and initialises H with the same seed across algorithms so that
all variants perform the same computations.  We reproduce both conventions:

* :func:`per_rank_seed` maps a (base seed, rank) pair to a distinct prime-based
  seed, deterministically;
* :func:`spawn_rng` builds a :class:`numpy.random.Generator` from it.
"""

from __future__ import annotations

import numpy as np


def _first_primes(count: int) -> list[int]:
    """Return the first ``count`` prime numbers (simple sieve, small counts)."""
    primes: list[int] = []
    candidate = 2
    while len(primes) < count:
        is_prime = all(candidate % p for p in primes if p * p <= candidate)
        if is_prime:
            primes.append(candidate)
        candidate += 1
    return primes


_PRIME_CACHE: list[int] = _first_primes(2048)


def per_rank_seed(base_seed: int, rank: int) -> int:
    """Return a deterministic seed for ``rank`` derived from ``base_seed``.

    Each rank gets a distinct prime multiplier, mirroring the paper's
    "every process will have its own prime seed" convention while remaining
    reproducible for a fixed ``base_seed``.
    """
    if rank < 0:
        raise ValueError(f"rank must be nonnegative, got {rank}")
    if rank < len(_PRIME_CACHE):
        prime = _PRIME_CACHE[rank]
    else:  # pragma: no cover - enormous rank counts
        prime = _first_primes(rank + 1)[rank]
    return (int(base_seed) * 1_000_003 + prime * 7919 + rank) % (2**63 - 1)


def spawn_rng(base_seed: int, rank: int = 0) -> np.random.Generator:
    """Return a Generator seeded deterministically for ``(base_seed, rank)``."""
    return np.random.default_rng(per_rank_seed(base_seed, rank))
