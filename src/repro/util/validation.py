"""Input validation helpers used across the public API.

These helpers normalise user input (lists, matrices of any dtype, sparse
matrices) into the canonical forms the algorithms expect: C-contiguous
float64 ndarrays for dense data and CSR for sparse data.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.util.errors import NonNegativityError, ShapeError

MatrixLike = Union[np.ndarray, sp.spmatrix, sp.sparray]


def is_sparse(A) -> bool:
    """Return True if ``A`` is a scipy sparse matrix/array."""
    return sp.issparse(A)


def as_dense(A) -> np.ndarray:
    """Return ``A`` as a dense float64 ndarray (copying only when needed)."""
    if is_sparse(A):
        return np.asarray(A.todense(), dtype=np.float64)
    return np.ascontiguousarray(np.asarray(A, dtype=np.float64))


def check_matrix(A, name: str = "A", *, allow_sparse: bool = True):
    """Validate a 2-D matrix input and return it in canonical form.

    Dense inputs are returned as C-contiguous float64 arrays; sparse inputs
    are converted to CSR with float64 data.

    Raises
    ------
    ShapeError
        If the input is not two-dimensional or has a zero dimension.
    """
    if is_sparse(A):
        if not allow_sparse:
            raise ShapeError(f"{name} must be a dense array, got sparse {type(A).__name__}")
        A = sp.csr_matrix(A, dtype=np.float64)
        if A.ndim != 2:
            raise ShapeError(f"{name} must be 2-D, got {A.ndim}-D")
        if min(A.shape) == 0:
            raise ShapeError(f"{name} has a zero dimension: shape {A.shape}")
        return A
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got {A.ndim}-D")
    if min(A.shape) == 0:
        raise ShapeError(f"{name} has a zero dimension: shape {A.shape}")
    if not np.all(np.isfinite(A)):
        raise ShapeError(f"{name} contains NaN or Inf entries")
    return np.ascontiguousarray(A)


def check_nonnegative(A, name: str = "A") -> None:
    """Raise :class:`NonNegativityError` if ``A`` has any negative entry."""
    data = A.data if is_sparse(A) else A
    if data.size and np.min(data) < 0:
        raise NonNegativityError(f"{name} must be elementwise nonnegative")


def check_rank(k: int, m: int, n: int) -> int:
    """Validate the target rank ``k`` against the matrix dimensions."""
    k = int(k)
    if k < 1:
        raise ShapeError(f"rank k must be >= 1, got {k}")
    if k > min(m, n):
        raise ShapeError(f"rank k={k} exceeds min(m, n)={min(m, n)}")
    return k


def check_factors(W: np.ndarray, H: np.ndarray, m: int, n: int, k: int) -> None:
    """Validate factor matrix shapes ``W (m×k)`` and ``H (k×n)``."""
    if W.shape != (m, k):
        raise ShapeError(f"W must have shape {(m, k)}, got {W.shape}")
    if H.shape != (k, n):
        raise ShapeError(f"H must have shape {(k, n)}, got {H.shape}")
