"""Shared utilities: errors, validation, seeding, timers, array helpers."""

from repro.util.errors import (
    ReproError,
    ShapeError,
    NonNegativityError,
    CommunicatorError,
    ConvergenceWarning,
)
from repro.util.validation import (
    check_nonnegative,
    check_matrix,
    check_rank,
    as_dense,
    is_sparse,
)
from repro.util.seeding import per_rank_seed, spawn_rng
from repro.util.timing import Timer, WallClock

__all__ = [
    "ReproError",
    "ShapeError",
    "NonNegativityError",
    "CommunicatorError",
    "ConvergenceWarning",
    "check_nonnegative",
    "check_matrix",
    "check_rank",
    "as_dense",
    "is_sparse",
    "per_rank_seed",
    "spawn_rng",
    "Timer",
    "WallClock",
]
