"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with one ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """An array has an incompatible shape for the requested operation."""


class NonNegativityError(ReproError, ValueError):
    """An input that must be elementwise nonnegative contains negative entries."""


class CommunicatorError(ReproError, RuntimeError):
    """Misuse of the SPMD communicator (rank mismatch, dead backend, ...)."""


class WorkspacePinnedError(CommunicatorError):
    """A workspace buffer was requested while pinned by an in-flight handle.

    Raised by :meth:`repro.comm.workspace.CollectiveWorkspace.get` when the
    named buffer is the ``out=`` target of a nonblocking collective whose
    :class:`~repro.comm.nonblocking.CommHandle` has not been waited on yet.
    Carries the issuing ``rank``, the ``op`` name (e.g. ``"iallgatherv"``)
    and the per-communicator issue ``tag`` so the offending call site can be
    identified from the message alone.
    """

    def __init__(self, name: str, *, rank: int, op: str, tag: int):
        self.buffer_name = name
        self.rank = rank
        self.op = op
        self.tag = tag
        super().__init__(
            f"workspace buffer {name!r} is pinned by in-flight nonblocking "
            f"{op} (rank {rank}, tag {tag}); call wait() on its CommHandle "
            f"before reusing the buffer"
        )

    def __reduce__(self):
        # Keyword-only fields break the default exception pickling (the
        # process backend ships worker exceptions through a queue).
        return (
            _rebuild_workspace_pinned_error,
            (self.buffer_name, self.rank, self.op, self.tag),
        )


def _rebuild_workspace_pinned_error(name, rank, op, tag):
    return WorkspacePinnedError(name, rank=rank, op=op, tag=tag)


class PartitionError(ReproError, ValueError):
    """A matrix cannot be partitioned as requested (e.g. more ranks than rows)."""


class SolverError(ReproError, RuntimeError):
    """A local NLS solver failed to produce a valid solution."""


class ModelLoadError(ReproError, RuntimeError):
    """A saved model artifact could not be loaded or failed validation.

    Raised by :meth:`repro.core.result.NMFResult.load` (and by the serving
    model store on top of it) instead of the raw NumPy/zipfile/OS error, so a
    bad artifact is diagnosable from the message alone: it always names the
    ``path`` involved and, when a required array or metadata key is absent,
    the ``missing_key``.
    """

    def __init__(self, message: str, *, path=None, missing_key=None):
        self.path = str(path) if path is not None else None
        self.missing_key = missing_key
        super().__init__(message)


class ConvergenceWarning(UserWarning):
    """The iterative algorithm stopped before reaching the requested tolerance."""
