"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with one ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """An array has an incompatible shape for the requested operation."""


class NonNegativityError(ReproError, ValueError):
    """An input that must be elementwise nonnegative contains negative entries."""


class CommunicatorError(ReproError, RuntimeError):
    """Misuse of the SPMD communicator (rank mismatch, dead backend, ...)."""


class PartitionError(ReproError, ValueError):
    """A matrix cannot be partitioned as requested (e.g. more ranks than rows)."""


class SolverError(ReproError, RuntimeError):
    """A local NLS solver failed to produce a valid solution."""


class ConvergenceWarning(UserWarning):
    """The iterative algorithm stopped before reaching the requested tolerance."""
