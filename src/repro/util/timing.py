"""Lightweight wall-clock timing used by the per-task profiler.

The profiler in :mod:`repro.comm.profiler` accumulates time into the six task
categories of the paper's §6.3 (MM, NLS, Gram, All-Gather, Reduce-Scatter,
All-Reduce).  These classes provide the underlying clock and a context-manager
style timer so instrumentation stays out of the algorithm code's way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class WallClock:
    """Monotonic wall-clock source (wrapper to allow fake clocks in tests)."""

    def now(self) -> float:
        return time.perf_counter()


@dataclass
class Timer:
    """Accumulating timer usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.total >= 0.0
    True
    """

    clock: WallClock = field(default_factory=WallClock)
    total: float = 0.0
    calls: int = 0
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = self.clock.now()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.total += self.clock.now() - self._start
        self.calls += 1
        self._start = None

    def reset(self) -> None:
        self.total = 0.0
        self.calls = 0
        self._start = None
