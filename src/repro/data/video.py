"""Synthetic video matrix (the paper's "Video" dataset, substituted).

The paper records two minutes of a busy street intersection at 20 fps and
reshapes every RGB frame into a column, giving a dense 1,013,400 × 2,400
matrix; NMF then separates the (low-rank) background from the moving objects
left in the residual.

We cannot ship that recording, so this module synthesises a scene with the
same structure: a static background with smooth spatial gradients and a few
slowly varying illumination modes (making the background genuinely low rank),
plus a handful of rectangles moving across the frame (the "traffic"), plus
pixel noise.  Reshaping frames into columns produces the same tall-and-skinny
dense matrix shape — the regime in which the paper's grid-selection rule picks
a 1D processor grid — and background subtraction via NMF behaves the same way:
the rank-k reconstruction captures the background and the residual highlights
the moving rectangles (this is exactly what the video example demonstrates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class VideoSceneConfig:
    """Parameters of the synthetic street scene.

    The defaults produce a small scene suitable for tests and examples; the
    paper-scale configuration (used only by the analytic model) is 4K-like
    frames over 2,400 frames.
    """

    height: int = 48
    width: int = 64
    channels: int = 3
    frames: int = 120
    n_objects: int = 4
    object_size: int = 8
    background_modes: int = 3
    noise_std: float = 0.01
    seed: int = 0

    @property
    def pixels(self) -> int:
        return self.height * self.width * self.channels

    @property
    def matrix_shape(self) -> Tuple[int, int]:
        """Shape of the frames-as-columns matrix (pixels × frames)."""
        return (self.pixels, self.frames)


def _background(config: VideoSceneConfig, rng: np.random.Generator) -> np.ndarray:
    """A temporally near-constant, spatially smooth, low-rank background."""
    h, w, c, f = config.height, config.width, config.channels, config.frames
    yy, xx = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    spatial_modes = [np.ones((h, w)), yy, xx, yy * xx, np.sin(np.pi * yy), np.cos(np.pi * xx)]
    spatial_modes = spatial_modes[: max(config.background_modes, 1)]
    frames = np.zeros((h, w, c, f))
    t = np.linspace(0, 1, f)
    for mode_idx, mode in enumerate(spatial_modes):
        # Slow temporal modulation (e.g. lighting drift) keeps rank low but > 1.
        temporal = 0.6 + 0.4 * np.cos(2 * np.pi * (mode_idx + 1) * t / 10.0)
        color = rng.random(c) * 0.5 + 0.25
        frames += (
            mode[:, :, None, None] * color[None, None, :, None] * temporal[None, None, None, :]
        )
    return frames / len(spatial_modes)


def _moving_objects(config: VideoSceneConfig, rng: np.random.Generator) -> np.ndarray:
    """Bright rectangles translating across the frame (the 'traffic')."""
    h, w, c, f = config.height, config.width, config.channels, config.frames
    frames = np.zeros((h, w, c, f))
    size = config.object_size
    for _ in range(config.n_objects):
        row = rng.integers(0, max(h - size, 1))
        start_col = rng.integers(-w // 2, w // 2)
        speed = rng.uniform(0.3, 1.5) * (1 if rng.random() < 0.5 else -1)
        color = rng.random(c) * 0.8 + 0.2
        for frame in range(f):
            col = int(start_col + speed * frame) % w
            c_lo, c_hi = col, min(col + size, w)
            frames[row: row + size, c_lo:c_hi, :, frame] += color[None, None, :]
    return frames


def video_frames(config: VideoSceneConfig) -> np.ndarray:
    """The synthetic scene as an ``(height, width, channels, frames)`` array in [0, ~2]."""
    rng = np.random.default_rng(config.seed)
    frames = _background(config, rng) + _moving_objects(config, rng)
    if config.noise_std > 0:
        frames = frames + rng.normal(0.0, config.noise_std, size=frames.shape)
    return np.maximum(frames, 0.0)


def video_matrix(config: VideoSceneConfig | None = None, **overrides) -> np.ndarray:
    """The frames-as-columns matrix (``pixels × frames``) of the synthetic scene.

    >>> A = video_matrix(frames=10, height=8, width=8)
    >>> A.shape
    (192, 10)
    """
    if config is None:
        config = VideoSceneConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a VideoSceneConfig or keyword overrides, not both")
    frames = video_frames(config)
    return np.ascontiguousarray(
        frames.reshape(config.pixels, config.frames)
    )


def background_foreground_split(
    A: np.ndarray, W: np.ndarray, H: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Split a video matrix into background (``WH``) and foreground residual.

    Returns ``(background, foreground)`` with ``foreground = A - WH`` clipped
    at zero — the moving objects, as in the paper's description of the video
    use case.
    """
    background = W @ H
    foreground = np.maximum(A - background, 0.0)
    return background, foreground
