"""Synthetic dense and sparse matrices (the paper's DSYN and SSYN).

DSYN: "a uniform random matrix of size 172,800 × 115,200 [plus] random
Gaussian noise"; SSYN: "a random sparse Erdős–Rényi matrix of the same
dimensions, with density 0.001".  Both generators are deterministic in the
seed and accept arbitrary dimensions so the same code serves the paper-scale
analytic model and the scaled-down measured runs.

The generators can also produce just one block of the (virtual) global matrix
given global index ranges — the construction the paper uses, where "every
process will have its own prime seed ... to generate the input random matrix"
and the global matrix never exists in one place.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.util.seeding import per_rank_seed


def dense_synthetic(
    m: int,
    n: int,
    seed: int = 0,
    noise_std: float = 0.01,
    clip_nonnegative: bool = True,
) -> np.ndarray:
    """Dense uniform-random matrix with additive Gaussian noise (DSYN).

    Entries are ``U[0, 1) + N(0, noise_std²)``; negative results of the noise
    are clipped to zero by default so the matrix is a valid NMF input.
    """
    rng = np.random.default_rng(seed)
    A = rng.random((m, n))
    if noise_std > 0:
        A += rng.normal(0.0, noise_std, size=(m, n))
    if clip_nonnegative:
        np.maximum(A, 0.0, out=A)
    return A


def dense_synthetic_block(
    row_range: Tuple[int, int],
    col_range: Tuple[int, int],
    rank: int,
    seed: int = 0,
    noise_std: float = 0.01,
) -> np.ndarray:
    """One block of a DSYN-like matrix generated with the owning rank's own seed.

    Mirrors the paper's per-process generation: the block statistics match
    :func:`dense_synthetic` but blocks of different ranks are generated
    independently (the global matrix is "virtual").
    """
    r0, r1 = row_range
    c0, c1 = col_range
    rng = np.random.default_rng(per_rank_seed(seed, rank))
    block = rng.random((r1 - r0, c1 - c0))
    if noise_std > 0:
        block += rng.normal(0.0, noise_std, size=block.shape)
    np.maximum(block, 0.0, out=block)
    return block


def sparse_synthetic(
    m: int,
    n: int,
    density: float = 0.001,
    seed: int = 0,
    value_distribution: str = "uniform",
) -> sp.csr_matrix:
    """Sparse Erdős–Rényi matrix (SSYN): each entry is nonzero with probability ``density``.

    Nonzero values are uniform in (0, 1] ("uniform") or all ones ("binary").
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    if value_distribution == "uniform":
        data_rvs = lambda size: rng.random(size) + 1e-12  # noqa: E731 - strictly positive
    elif value_distribution == "binary":
        data_rvs = np.ones
    else:
        raise ValueError(f"unknown value_distribution {value_distribution!r}")
    A = sp.random(
        m,
        n,
        density=density,
        format="csr",
        random_state=np.random.default_rng(seed),
        data_rvs=data_rvs,
    )
    A.sum_duplicates()
    return A


def sparse_synthetic_block(
    row_range: Tuple[int, int],
    col_range: Tuple[int, int],
    rank: int,
    density: float = 0.001,
    seed: int = 0,
) -> sp.csr_matrix:
    """One block of an SSYN-like matrix generated with the owning rank's own seed."""
    r0, r1 = row_range
    c0, c1 = col_range
    return sparse_synthetic(r1 - r0, c1 - c0, density=density, seed=per_rank_seed(seed, rank))
