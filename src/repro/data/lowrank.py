"""Planted nonnegative low-rank matrices.

These are not one of the paper's benchmark datasets; they exist so the test
suite can check *recovery*: when the input truly is ``W* H*`` (plus optional
noise) with nonnegative factors of rank ``k``, every NMF variant should drive
the relative error toward the noise floor.  They are also handy in examples
for demonstrating interpretability of the factors.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def planted_lowrank(
    m: int,
    n: int,
    k: int,
    seed: int = 0,
    noise_std: float = 0.0,
    sparsity: float = 0.0,
    return_factors: bool = False,
):
    """A nonnegative matrix ``A = W* H* (+ noise)`` with known rank-``k`` structure.

    Parameters
    ----------
    m, n, k:
        Dimensions of the planted factorization.
    noise_std:
        Standard deviation of additive Gaussian noise (clipped so A stays
        nonnegative).
    sparsity:
        Fraction of entries of the *factors* zeroed out, producing parts-based
        structure (0 keeps the factors dense).
    return_factors:
        When True, return ``(A, W*, H*)``.
    """
    rng = np.random.default_rng(seed)
    W = rng.random((m, k))
    H = rng.random((k, n))
    if sparsity > 0:
        W[rng.random((m, k)) < sparsity] = 0.0
        H[rng.random((k, n)) < sparsity] = 0.0
        # Keep every row/column of the factors nonzero so the rank stays k.
        W[np.all(W == 0, axis=1), :] = rng.random((int(np.sum(np.all(W == 0, axis=1))), k))
        H[:, np.all(H == 0, axis=0)] = rng.random((k, int(np.sum(np.all(H == 0, axis=0)))))
    A = W @ H
    if noise_std > 0:
        A = np.maximum(A + rng.normal(0.0, noise_std, size=A.shape), 0.0)
    if return_factors:
        return A, W, H
    return A
