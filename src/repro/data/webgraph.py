"""Web-graph-like sparse adjacency matrices (the paper's "Webbase" dataset, substituted).

The paper uses the webbase-1M graph (1,000,005 nodes, 3,105,536 directed
edges) from Williams et al.'s SpMV study; NMF on the adjacency matrix exposes
cluster structure.  We generate a synthetic stand-in with the properties that
matter for the computational behaviour: a square, very sparse, directed graph
whose in/out-degree distributions are heavy-tailed (power-law-like), produced
by a preferential-attachment process with a small uniform-random component.
The skewed degree distribution is what creates nonzero load imbalance across
a uniform 2D block distribution — the effect the paper's future-work section
mentions — so keeping it matters for a faithful reproduction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def web_graph_matrix(
    n_nodes: int,
    n_edges: int,
    seed: int = 0,
    preferential_fraction: float = 0.75,
    weighted: bool = False,
) -> sp.csr_matrix:
    """A directed, power-law-ish graph adjacency matrix with ~``n_edges`` edges.

    Parameters
    ----------
    n_nodes:
        Number of vertices (the matrix is ``n_nodes × n_nodes``).
    n_edges:
        Target number of directed edges (duplicates are merged, so the exact
        count can be slightly lower).
    preferential_fraction:
        Fraction of edge endpoints chosen by preferential attachment (by
        popularity); the rest are uniform random, which keeps the graph from
        collapsing onto a few hubs.
    weighted:
        If True, edge weights are uniform in (0, 1]; otherwise all ones.

    Notes
    -----
    The generator works in O(n_edges) time and memory: destination popularity
    is approximated with a Zipf-like distribution over node indices rather
    than by maintaining the evolving degree sequence, which is accurate enough
    to produce the heavy-tailed in-degree profile NMF workloads care about.
    """
    if n_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {n_nodes}")
    if n_edges < 1:
        raise ValueError(f"need at least 1 edge, got {n_edges}")
    rng = np.random.default_rng(seed)

    n_pref = int(n_edges * preferential_fraction)
    n_unif = n_edges - n_pref

    # Zipf-like popularity over nodes: weight of node i proportional to 1/(i+1)^s.
    s = 0.9
    weights = 1.0 / np.power(np.arange(1, n_nodes + 1, dtype=np.float64), s)
    weights /= weights.sum()
    # Random permutation so the "popular" nodes are spread over the index
    # space (otherwise a block distribution would give rank 0 all the hubs).
    permutation = rng.permutation(n_nodes)

    dst_pref = permutation[rng.choice(n_nodes, size=n_pref, p=weights)]
    src_pref = permutation[rng.choice(n_nodes, size=n_pref, p=weights)]
    dst_unif = rng.integers(0, n_nodes, size=n_unif)
    src_unif = rng.integers(0, n_nodes, size=n_unif)

    src = np.concatenate([src_pref, src_unif])
    dst = np.concatenate([dst_pref, dst_unif])
    # Drop self loops.
    keep = src != dst
    src, dst = src[keep], dst[keep]

    if weighted:
        values = rng.random(src.size) + 1e-12
    else:
        values = np.ones(src.size)

    A = sp.coo_matrix((values, (src, dst)), shape=(n_nodes, n_nodes))
    A.sum_duplicates()
    A = A.tocsr()
    if not weighted:
        # Merged duplicates accumulate counts; clamp back to a 0/1 adjacency.
        A.data[:] = 1.0
    return A


def degree_statistics(A: sp.spmatrix) -> dict:
    """In/out degree summary statistics (used by tests to confirm heavy tails)."""
    A = A.tocsr()
    out_degree = np.diff(A.indptr)
    in_degree = np.diff(A.tocsc().indptr)
    return {
        "out_mean": float(out_degree.mean()),
        "out_max": int(out_degree.max()),
        "in_mean": float(in_degree.mean()),
        "in_max": int(in_degree.max()),
        "nnz": int(A.nnz),
    }
