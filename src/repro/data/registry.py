"""Named dataset configurations used by the experiment harness.

Each of the paper's four datasets appears twice:

* the **paper-scale** spec records the exact dimensions and sparsity of the
  dataset the paper used; these drive the *analytic* performance model that
  regenerates Figure 3 / Table 3 at 600 cores (no data is materialised);
* the **measured-scale** spec is a proportionally scaled-down instance small
  enough to factorize for real on a single machine with the SPMD backend;
  these drive the measured-mode benchmarks and the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.data.synthetic import dense_synthetic, sparse_synthetic
from repro.data.video import VideoSceneConfig, video_matrix
from repro.data.webgraph import web_graph_matrix


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset instance.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"ssyn-paper"`` or ``"video-small"``.
    kind:
        One of ``"dense"`` / ``"sparse"``.
    m, n:
        Matrix dimensions.
    density:
        Nonzero fraction for sparse datasets (None for dense).
    description:
        One-line description used by reports.
    loader:
        Zero-argument callable materialising the matrix, or ``None`` for
        paper-scale specs that exist only as dimensions for the analytic
        model.
    """

    name: str
    kind: str
    m: int
    n: int
    density: Optional[float] = None
    description: str = ""
    loader: Optional[Callable] = None

    @property
    def nnz_estimate(self) -> float:
        """Estimated nonzeros (m*n for dense, density*m*n for sparse)."""
        if self.kind == "sparse" and self.density is not None:
            return self.density * self.m * self.n
        return float(self.m) * float(self.n)

    @property
    def is_sparse(self) -> bool:
        return self.kind == "sparse"

    def load(self):
        """Materialise the matrix (raises for paper-scale, model-only specs)."""
        if self.loader is None:
            raise ValueError(
                f"dataset {self.name!r} is a paper-scale spec used only by the "
                "analytic model; use its measured-scale counterpart to get data"
            )
        return self.loader()


def _video_small() -> "object":
    return video_matrix(VideoSceneConfig(height=40, width=30, channels=3, frames=64, seed=7))


#: All registered dataset specs.
DATASETS: Dict[str, DatasetSpec] = {
    # ---- paper-scale (model only) -----------------------------------------
    "dsyn-paper": DatasetSpec(
        name="dsyn-paper",
        kind="dense",
        m=172_800,
        n=115_200,
        description="Dense synthetic, uniform + Gaussian noise (paper scale)",
    ),
    "ssyn-paper": DatasetSpec(
        name="ssyn-paper",
        kind="sparse",
        m=172_800,
        n=115_200,
        density=0.001,
        description="Sparse synthetic Erdős–Rényi, density 0.001 (paper scale)",
    ),
    "video-paper": DatasetSpec(
        name="video-paper",
        kind="dense",
        m=1_013_400,
        n=2_400,
        description="Street-intersection video, frames as columns (paper scale)",
    ),
    "webbase-paper": DatasetSpec(
        name="webbase-paper",
        kind="sparse",
        m=1_000_005,
        n=1_000_005,
        density=3_105_536 / (1_000_005 * 1_000_005),
        description="webbase-1M directed web graph (paper scale)",
    ),
    # ---- measured-scale (materialisable) ----------------------------------
    "dsyn-small": DatasetSpec(
        name="dsyn-small",
        kind="dense",
        m=864,
        n=576,
        description="Dense synthetic, 1/200-per-side scale of DSYN",
        loader=lambda: dense_synthetic(864, 576, seed=11),
    ),
    "ssyn-small": DatasetSpec(
        name="ssyn-small",
        kind="sparse",
        m=3_456,
        n=2_304,
        density=0.01,
        description="Sparse synthetic Erdős–Rényi (scaled; density raised to keep nnz/row similar)",
        loader=lambda: sparse_synthetic(3_456, 2_304, density=0.01, seed=11),
    ),
    "video-small": DatasetSpec(
        name="video-small",
        kind="dense",
        m=3_600,
        n=64,
        description="Synthetic street scene, 40x30 RGB frames as columns",
        loader=_video_small,
    ),
    "webbase-small": DatasetSpec(
        name="webbase-small",
        kind="sparse",
        m=4_000,
        n=4_000,
        density=12_000 / (4_000 * 4_000),
        description="Synthetic power-law directed graph, ~12k edges",
        loader=lambda: web_graph_matrix(4_000, 12_000, seed=5),
    ),
}

#: Mapping from the paper's dataset names to (paper, measured) registry keys.
PAPER_DATASETS = {
    "DSYN": ("dsyn-paper", "dsyn-small"),
    "SSYN": ("ssyn-paper", "ssyn-small"),
    "Video": ("video-paper", "video-small"),
    "Webbase": ("webbase-paper", "webbase-small"),
}


def load_dataset(name: str):
    """Materialise a registered dataset by name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}") from None
    return spec.load()


def paper_scale(paper_name: str) -> DatasetSpec:
    """The paper-scale spec for one of 'DSYN', 'SSYN', 'Video', 'Webbase'."""
    return DATASETS[PAPER_DATASETS[paper_name][0]]


def measured_scale(paper_name: str) -> DatasetSpec:
    """The measured-scale spec for one of 'DSYN', 'SSYN', 'Video', 'Webbase'."""
    return DATASETS[PAPER_DATASETS[paper_name][1]]
