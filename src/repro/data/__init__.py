"""Dataset generators matching the paper's evaluation (§6.1.1).

Four workloads drive the paper's experiments; each has a generator here plus
scaled-down presets for measured runs on a single machine:

* **DSYN** — dense uniform random matrix with additive Gaussian noise
  (:func:`~repro.data.synthetic.dense_synthetic`), paper scale
  172,800 × 115,200;
* **SSYN** — sparse Erdős–Rényi matrix of the same shape with density 0.001
  (:func:`~repro.data.synthetic.sparse_synthetic`);
* **Video** — a tall-and-skinny dense matrix whose columns are RGB video
  frames of a mostly static scene with moving objects
  (:func:`~repro.data.video.video_matrix`), paper scale 1,013,400 × 2,400;
* **Webbase** — the adjacency matrix of a large directed web-like graph with
  a power-law degree distribution (:func:`~repro.data.webgraph.web_graph_matrix`),
  paper scale 1,000,005 nodes / 3.1 M edges.

:mod:`~repro.data.lowrank` additionally provides planted nonnegative low-rank
matrices used by the recovery tests, and :mod:`~repro.data.registry` names the
paper-scale and measured-scale configurations used by the experiment harness.
"""

from repro.data.synthetic import dense_synthetic, sparse_synthetic
from repro.data.lowrank import planted_lowrank
from repro.data.video import video_matrix, VideoSceneConfig
from repro.data.webgraph import web_graph_matrix
from repro.data.registry import DatasetSpec, DATASETS, load_dataset, measured_scale, paper_scale

__all__ = [
    "dense_synthetic",
    "sparse_synthetic",
    "planted_lowrank",
    "video_matrix",
    "VideoSceneConfig",
    "web_graph_matrix",
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "measured_scale",
    "paper_scale",
]
