"""Hierarchical Alternating Least Squares (HALS) updates (paper Eq. 4).

HALS applies block coordinate descent over the k rows of the factor being
updated (columns of W / rows of H), using the most recent values of the other
rows within the same sweep.  In normal-equations form, with ``G = CᵀC`` and
``R = CᵀB``, the update of row ``i`` of ``X`` is

    X[i] ← [ R[i] − Σ_{l≠i} G[i, l] X[l] ]₊ / G[i, i]
          = [ X[i] + (R[i] − G[i] X) / G[i, i] ]₊,

where the second form reuses the running product ``G X`` so a full sweep costs
``2 c k²`` flops — the figure quoted in §4.1.

Rows with a vanishing diagonal ``G[i, i]`` (a column of C that is entirely
zero) are reset to zero, the conventional safeguard.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nls.base import NLSSolver, NLSState, register_solver

EPS = 1e-16


@register_solver
class HALSUpdate(NLSSolver):
    """HALS block-coordinate-descent solver for the normal-equations NLS problem."""

    name = "hals"

    def __init__(self, inner_iters: int = 1, kernel=None):
        super().__init__(kernel=kernel)
        if inner_iters < 1:
            raise ValueError(f"inner_iters must be >= 1, got {inner_iters}")
        self.inner_iters = int(inner_iters)

    def solve(
        self,
        gram: np.ndarray,
        rhs: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        gram, rhs, x0 = self._validate(gram, rhs, x0)
        k, c = rhs.shape
        if x0 is None:
            x = np.full((k, c), 0.5)
        else:
            x = np.maximum(x0, 0.0).copy()

        diag = np.diag(gram).copy()
        for _ in range(self.inner_iters):
            for i in range(k):
                if diag[i] <= EPS:
                    x[i, :] = 0.0
                    continue
                # residual row: R[i] - G[i, :] @ X, then add back the G[i,i] X[i]
                # term so the update uses the "X[i] + correction" form.
                gi_x = gram[i, :] @ x
                update = x[i, :] + (rhs[i, :] - gi_x) / diag[i]
                np.maximum(update, 0.0, out=update)
                x[i, :] = update
        self.last_state = NLSState(iterations=self.inner_iters)
        return x
