"""ADMM solver for the nonnegative least squares subproblem.

A fourth solver family for the ANLS framework (besides active-set/BPP,
multiplicative updates and coordinate descent): the alternating direction
method of multipliers splits the NLS problem

    min_{X >= 0} ½‖C X − B‖²
        =  min_{X, Z}  ½⟨X, G X⟩ − ⟨R, X⟩ + I_{Z >= 0}(Z)   s.t.  X = Z,

and alternates an unconstrained ridge solve, a projection, and a dual update:

    X ← (G + ρ I)⁻¹ (R + ρ (Z − U))
    Z ← max(X + U, 0)
    U ← U + X − Z.

Because ``G + ρ I`` is fixed across the inner iterations, its Cholesky factor
is computed once per ``solve`` call and reused — the same normal-equations
economics as the other solvers, so ADMM plugs into the sequential and parallel
algorithms unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg as sla

from repro.nls.base import NLSSolver, NLSState, register_solver


@register_solver
class ADMMSolver(NLSSolver):
    """ADMM for the normal-equations NLS problem.

    Parameters
    ----------
    rho:
        Augmented-Lagrangian penalty.  ``None`` uses ``trace(G)/k``, a common
        self-scaling choice that keeps the splitting well conditioned across
        the wildly different Gram scales the ANLS outer loop produces.
    max_iters:
        Inner ADMM iterations per call.
    tol:
        Stop when both the primal residual ``‖X − Z‖`` and the dual residual
        ``ρ‖Z − Z_prev‖`` fall below ``tol`` (relative to the iterate norms).
    """

    name = "admm"

    def __init__(self, rho: Optional[float] = None, max_iters: int = 100, tol: float = 1e-8,
                 kernel=None):
        super().__init__(kernel=kernel)
        self.rho = rho
        self.max_iters = int(max_iters)
        self.tol = float(tol)

    def solve(
        self,
        gram: np.ndarray,
        rhs: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        gram, rhs, x0 = self._validate(gram, rhs, x0)
        k, c = rhs.shape
        rho = self.rho if self.rho is not None else max(float(np.trace(gram)) / k, 1e-8)

        chol = sla.cho_factor(gram + rho * np.eye(k), lower=True, check_finite=False)

        Z = np.maximum(x0, 0.0).copy() if x0 is not None else np.zeros((k, c))
        U = np.zeros((k, c))

        state = NLSState(converged=False)
        for iteration in range(self.max_iters):
            X = sla.cho_solve(chol, rhs + rho * (Z - U), check_finite=False)
            Z_prev = Z
            Z = np.maximum(X + U, 0.0)
            U = U + X - Z

            primal = float(np.linalg.norm(X - Z))
            dual = rho * float(np.linalg.norm(Z - Z_prev))
            scale = max(1.0, float(np.linalg.norm(Z)), float(np.linalg.norm(X)))
            if primal <= self.tol * scale and dual <= self.tol * scale:
                state.iterations = iteration + 1
                state.converged = True
                break
        else:
            state.iterations = self.max_iters

        self.last_state = state
        return Z
