"""Local nonnegative least squares (NLS) solvers.

The ANLS framework (paper §4.1) alternates two NLS subproblems,

    W ← argmin_{W ≥ 0} ||A - W H||_F,      H ← argmin_{H ≥ 0} ||A - W H||_F,

each of which is solved from its *normal equations*: given the k×k Gram matrix
(``H Hᵀ`` or ``Wᵀ W``) and the k×c right-hand side (``A Hᵀ`` or ``Wᵀ A``),
find the nonnegative ``k × c`` solution column by column.  All solvers here
share that interface (:class:`~repro.nls.base.NLSSolver`), which is exactly
the quantity the parallel algorithms assemble with their collectives — so any
solver plugs into Algorithm 2 and Algorithm 3 unchanged, as the paper claims.

Implemented solvers:

* :class:`~repro.nls.bpp.BlockPrincipalPivoting` — the paper's default
  (Kim & Park 2011), an active-set-like method with block exchanges;
* :class:`~repro.nls.mu.MultiplicativeUpdate` — Lee & Seung updates (Eq. 3);
* :class:`~repro.nls.hals.HALSUpdate` — hierarchical ALS (Eq. 4);
* :class:`~repro.nls.pgrad.ProjectedGradient` — projected gradient descent
  with Lipschitz step size (the "generic constrained convex optimization"
  route mentioned in §4.1);
* :func:`~repro.nls.nnls.active_set_nnls` — single right-hand-side
  Lawson–Hanson active set, used as a correctness oracle in the tests.

BPP's inner engine is pluggable via the kernels registry
(:mod:`repro.nls.kernels`): ``scalar`` (the reference column loop),
``batched`` (vectorized pivot rules + stacked Cholesky, byte-identical to
scalar) and ``numba`` (JIT-compiled, behind a capability flag).
"""

from repro.nls.base import NLSSolver, NLSState, make_solver, available_solvers
from repro.nls.kernels import (
    NLSKernel,
    available_kernels,
    make_kernel,
    registered_kernels,
    resolve_kernel,
)
from repro.nls.bpp import BlockPrincipalPivoting
from repro.nls.mu import MultiplicativeUpdate
from repro.nls.hals import HALSUpdate
from repro.nls.pgrad import ProjectedGradient
from repro.nls.admm import ADMMSolver
from repro.nls.nnls import active_set_nnls
from repro.nls.kkt import kkt_residual, check_kkt

__all__ = [
    "NLSSolver",
    "NLSState",
    "make_solver",
    "available_solvers",
    "NLSKernel",
    "make_kernel",
    "available_kernels",
    "registered_kernels",
    "resolve_kernel",
    "BlockPrincipalPivoting",
    "MultiplicativeUpdate",
    "HALSUpdate",
    "ProjectedGradient",
    "ADMMSolver",
    "active_set_nnls",
    "kkt_residual",
    "check_kkt",
]
