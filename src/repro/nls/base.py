"""Common interface of the local NLS solvers.

Every solver consumes the *normal equations* form of the NLS problem

    min_{X >= 0} || C X - B ||_F²
    given   G = Cᵀ C   (k × k, symmetric positive semidefinite)
    and     R = Cᵀ B   (k × c, one column per right-hand side)

and produces a nonnegative ``k × c`` solution.  This is precisely the data
the parallel algorithms hold after their collectives: for the W-update,
``G = H Hᵀ`` and ``Rᵀ`` is the local block of ``A Hᵀ``; for the H-update,
``G = Wᵀ W`` and ``R`` is the local block of ``Wᵀ A``.

Iterative solvers (MU, HALS, projected gradient) additionally take the
previous iterate as a warm start, which is how they are used inside the
alternating framework.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Type

import numpy as np

from repro.util.errors import ShapeError


@dataclass
class NLSState:
    """Diagnostics returned by a solver alongside the solution."""

    iterations: int = 0
    backup_exchanges: int = 0
    full_exchanges: int = 0
    converged: bool = True
    extra: Dict[str, float] = field(default_factory=dict)


class NLSSolver(abc.ABC):
    """Abstract base class for normal-equations NLS solvers.

    Every solver accepts a ``kernel`` selection (``'scalar'``, ``'batched'``,
    ``'numba'``, ``'auto'`` or ``None`` for the default) so the front door can
    pass it uniformly; solvers with a pluggable inner engine (currently BPP)
    resolve it via :mod:`repro.nls.kernels`, the element-wise solvers simply
    record the request and ignore it.
    """

    #: registry name; subclasses override
    name: str = "abstract"

    def __init__(self, kernel: Optional[str] = None) -> None:
        self.last_state: Optional[NLSState] = None
        self.requested_kernel = kernel

    @abc.abstractmethod
    def solve(
        self,
        gram: np.ndarray,
        rhs: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Solve ``min_{X>=0} ||C X - B||`` given ``gram = CᵀC`` and ``rhs = CᵀB``.

        Parameters
        ----------
        gram:
            ``k × k`` symmetric positive semidefinite matrix.
        rhs:
            ``k × c`` right-hand side (``c`` independent columns).
        x0:
            Optional warm start of shape ``k × c`` (used by the iterative
            solvers; exact solvers may ignore it).

        Returns
        -------
        ndarray of shape ``k × c`` with nonnegative entries.
        """

    # -- shared validation -------------------------------------------------
    @staticmethod
    def _validate(gram: np.ndarray, rhs: np.ndarray, x0: Optional[np.ndarray]):
        gram = np.asarray(gram, dtype=np.float64)
        rhs = np.asarray(rhs, dtype=np.float64)
        if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
            raise ShapeError(f"gram must be square, got shape {gram.shape}")
        if rhs.ndim == 1:
            rhs = rhs[:, None]
        if rhs.shape[0] != gram.shape[0]:
            raise ShapeError(
                f"rhs has {rhs.shape[0]} rows but gram is {gram.shape[0]}x{gram.shape[0]}"
            )
        if x0 is not None:
            x0 = np.asarray(x0, dtype=np.float64)
            if x0.shape != rhs.shape:
                raise ShapeError(f"x0 must have shape {rhs.shape}, got {x0.shape}")
        return gram, rhs, x0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Type[NLSSolver]] = {}


def register_solver(cls: Type[NLSSolver]) -> Type[NLSSolver]:
    """Class decorator adding a solver to the ``make_solver`` registry."""
    _REGISTRY[cls.name] = cls
    return cls


def available_solvers() -> list[str]:
    """Names accepted by :func:`make_solver` (and by ``NMFConfig.solver``)."""
    # Import for side effects so the registry is populated even if the caller
    # only imported repro.nls.base.
    from repro.nls import admm, bpp, hals, mu, pgrad  # noqa: F401

    return sorted(_REGISTRY)


def make_solver(name: str, **kwargs) -> NLSSolver:
    """Instantiate a registered solver by name ('bpp', 'mu', 'hals', 'pgrad')."""
    from repro.nls import admm, bpp, hals, mu, pgrad  # noqa: F401

    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown NLS solver {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
