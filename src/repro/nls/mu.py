"""Multiplicative Update (MU) in normal-equations form (paper Eq. 3).

Lee & Seung's update for the H-subproblem ``min_{H>=0} ||A - WH||`` is

    H ← H ∘ (Wᵀ A) / (Wᵀ W H),

which only needs the Gram matrix ``Wᵀ W`` and the product ``Wᵀ A`` — exactly
the normal-equations interface shared by all solvers here.  As the paper notes
(§4.1), given those two matrices the extra cost of the update is ``2 c k²``
flops and each entry updates independently, which is why MU slots into the
same parallel framework: the communication pattern is unchanged, only the
local "NLS" task differs.

One call performs ``inner_iters`` multiplicative sweeps (default 1, matching
the conventional ANLS-MU iteration).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nls.base import NLSSolver, NLSState, register_solver

#: Floor added to denominators to avoid division by zero, the customary
#: epsilon of MU implementations.
EPS = 1e-16


@register_solver
class MultiplicativeUpdate(NLSSolver):
    """Multiplicative-update solver for the normal-equations NLS problem."""

    name = "mu"

    def __init__(self, inner_iters: int = 1, kernel=None):
        super().__init__(kernel=kernel)
        if inner_iters < 1:
            raise ValueError(f"inner_iters must be >= 1, got {inner_iters}")
        self.inner_iters = int(inner_iters)

    def solve(
        self,
        gram: np.ndarray,
        rhs: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        gram, rhs, x0 = self._validate(gram, rhs, x0)
        k, c = rhs.shape
        if x0 is None:
            # Without a previous iterate the multiplicative update has nothing
            # to rescale; start from a strictly positive constant matrix.
            x = np.full((k, c), 0.5)
        else:
            x = np.maximum(x0, EPS)

        numerator = np.maximum(rhs, 0.0)
        for _ in range(self.inner_iters):
            denominator = gram @ x
            np.maximum(denominator, EPS, out=denominator)
            x = x * (numerator / denominator)
        self.last_state = NLSState(iterations=self.inner_iters)
        return x
