"""Block Principal Pivoting (BPP) for nonnegative least squares (paper §4.2).

BPP (Kim & Park, "Fast nonnegative matrix factorization: an active-set-like
method and comparisons", SISC 2011) solves the KKT system of

    min_{x >= 0} ||C x - b||²        (Eq. 5 of the paper)

whose optimality conditions (Eq. 6) are

    y = CᵀC x − Cᵀb,    x >= 0,    y >= 0,    xᵀ y = 0,

i.e. a linear complementarity problem: the supports of ``x`` and ``y`` must be
complementary.  BPP maintains a partition of the k indices into a *passive*
set F (where x is free and y = 0) and an *active* set G (where x = 0 and y is
free), solves the unconstrained least squares restricted to F, and exchanges
*blocks* of infeasible indices between F and G until the KKT conditions hold.
A backup rule (exchange only the largest-index infeasible variable) guarantees
finite termination when full exchanges stop making progress.

This implementation solves many right-hand sides at once (the c columns of the
factor being updated): columns that share the same passive set are grouped so
one Cholesky factorization of ``G[F, F]`` serves the whole group — the
standard trick that makes BPP practical for NMF, where c is m/p or n/p and k
is small.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.linalg as sla

from repro.nls.base import NLSSolver, NLSState, register_solver
from repro.util.errors import SolverError


def _solve_passive_groups(
    gram: np.ndarray,
    rhs: np.ndarray,
    passive: np.ndarray,
    x: np.ndarray,
    columns: np.ndarray,
) -> None:
    """Solve the unconstrained LS on the passive set of each listed column.

    Columns are grouped by identical passive-set pattern; each group is solved
    with a single Cholesky (or pseudo-inverse fallback for singular blocks).
    ``x`` is updated in place; entries outside the passive set are set to 0.
    """
    k = gram.shape[0]
    if columns.size == 0:
        return
    patterns: Dict[bytes, list] = {}
    for col in columns:
        patterns.setdefault(passive[:, col].tobytes(), []).append(col)
    for pattern, cols in patterns.items():
        mask = np.frombuffer(pattern, dtype=bool)
        cols = np.asarray(cols)
        x[:, cols] = 0.0
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            continue
        sub_gram = gram[np.ix_(idx, idx)]
        sub_rhs = rhs[np.ix_(idx, cols)]
        try:
            chol = sla.cho_factor(sub_gram, lower=True, check_finite=False)
            sol = sla.cho_solve(chol, sub_rhs, check_finite=False)
        except np.linalg.LinAlgError:
            sol = np.linalg.lstsq(sub_gram, sub_rhs, rcond=None)[0]
        except sla.LinAlgError:
            sol = np.linalg.lstsq(sub_gram, sub_rhs, rcond=None)[0]
        x[np.ix_(idx, cols)] = sol


@register_solver
class BlockPrincipalPivoting(NLSSolver):
    """Multi-right-hand-side block principal pivoting NLS solver.

    Parameters
    ----------
    max_backup:
        Number of failed full exchanges tolerated per column before switching
        to the single-variable backup rule (the parameter "α" of Kim & Park,
        default 3).
    max_iters:
        Hard cap on pivoting iterations (a safeguard; BPP terminates finitely
        with the backup rule, typically in far fewer iterations).
    tol:
        Feasibility tolerance: entries of x and y above ``-tol`` count as
        nonnegative.
    """

    name = "bpp"

    def __init__(self, max_backup: int = 3, max_iters: int = 1000, tol: float = 1e-12):
        super().__init__()
        self.max_backup = int(max_backup)
        self.max_iters = int(max_iters)
        self.tol = float(tol)

    def solve(
        self,
        gram: np.ndarray,
        rhs: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        gram, rhs, x0 = self._validate(gram, rhs, x0)
        k, c = rhs.shape

        # Regularize an exactly singular Gram matrix minimally; the NMF outer
        # iteration keeps Gram well conditioned in practice (k << m, n).
        diag = np.diag(gram)
        if np.any(diag <= 0):
            gram = gram + np.eye(k) * max(np.max(diag), 1.0) * 1e-14

        x = np.zeros((k, c))
        y = -rhs.copy()
        # Start from the all-active partition (x = 0, y = -CᵀB), the standard
        # cold start; a warm start seeds the passive set from x0's support.
        passive = np.zeros((k, c), dtype=bool)
        if x0 is not None and np.any(x0 > 0):
            passive = x0 > 0
            cols = np.arange(c)
            _solve_passive_groups(gram, rhs, passive, x, cols)
            y = gram @ x - rhs

        alpha = np.full(c, self.max_backup)  # remaining full exchanges per column
        beta = np.full(c, k + 1)  # best (lowest) infeasibility count seen per column

        state = NLSState()
        for iteration in range(self.max_iters):
            x_infeasible = passive & (x < -self.tol)
            y_infeasible = (~passive) & (y < -self.tol)
            infeasible = x_infeasible | y_infeasible
            n_infeasible = infeasible.sum(axis=0)
            not_done = np.flatnonzero(n_infeasible > 0)
            if not_done.size == 0:
                state.iterations = iteration
                state.converged = True
                break

            for col in not_done:
                count = n_infeasible[col]
                if count < beta[col]:
                    # Progress: remember the new best and reset the budget.
                    beta[col] = count
                    alpha[col] = self.max_backup
                    exchange = infeasible[:, col]
                    state.full_exchanges += 1
                elif alpha[col] >= 1:
                    # No progress but budget remains: full exchange anyway.
                    alpha[col] -= 1
                    exchange = infeasible[:, col]
                    state.full_exchanges += 1
                else:
                    # Backup rule: exchange only the largest infeasible index.
                    exchange = np.zeros(k, dtype=bool)
                    exchange[np.flatnonzero(infeasible[:, col]).max()] = True
                    state.backup_exchanges += 1
                passive[exchange, col] = ~passive[exchange, col]

            _solve_passive_groups(gram, rhs, passive, x, not_done)
            y[:, not_done] = gram @ x[:, not_done] - rhs[:, not_done]
        else:
            state.iterations = self.max_iters
            state.converged = False
            raise SolverError(
                f"BPP did not converge within {self.max_iters} pivoting iterations"
            )

        # Clamp tiny negatives introduced by finite precision.
        np.maximum(x, 0.0, out=x)
        self.last_state = state
        return x


def bpp_flops_estimate(k: int, c: int, iterations: int = 5) -> float:
    """Rough flop count ``C_BPP(k, c)`` used by the analytic performance model.

    Each pivoting iteration factorizes (on average) one k×k system per passive
    set pattern and back-substitutes c columns: about ``k³/3 + 2 c k²`` flops.
    The paper leaves ``C_BPP`` symbolic; this estimate is only used to give the
    modeled NLS bars a realistic magnitude relative to the matmul terms.
    """
    return iterations * (k**3 / 3.0 + 2.0 * c * k**2)
