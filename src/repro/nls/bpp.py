"""Block Principal Pivoting (BPP) for nonnegative least squares (paper §4.2).

BPP (Kim & Park, "Fast nonnegative matrix factorization: an active-set-like
method and comparisons", SISC 2011) solves the KKT system of

    min_{x >= 0} ||C x - b||²        (Eq. 5 of the paper)

whose optimality conditions (Eq. 6) are

    y = CᵀC x − Cᵀb,    x >= 0,    y >= 0,    xᵀ y = 0,

i.e. a linear complementarity problem: the supports of ``x`` and ``y`` must be
complementary.  BPP maintains a partition of the k indices into a *passive*
set F (where x is free and y = 0) and an *active* set G (where x = 0 and y is
free), solves the unconstrained least squares restricted to F, and exchanges
*blocks* of infeasible indices between F and G until the KKT conditions hold.
A backup rule (exchange only the largest-index infeasible variable) guarantees
finite termination when full exchanges stop making progress.

This implementation solves many right-hand sides at once (the c columns of the
factor being updated): columns that share the same passive set are grouped so
one Cholesky factorization of ``G[F, F]`` serves the whole group — the
standard trick that makes BPP practical for NMF, where c is m/p or n/p and k
is small.  The inner engine that does the grouping, factorization and pivot
bookkeeping is pluggable: see :mod:`repro.nls.kernels` for the ``scalar`` /
``batched`` / ``numba`` kernels and their byte-identity contract.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nls.base import NLSSolver, register_solver
from repro.nls.kernels import ScalarKernel, make_kernel
from repro.util.errors import SolverError


def _solve_passive_groups(
    gram: np.ndarray,
    rhs: np.ndarray,
    passive: np.ndarray,
    x: np.ndarray,
    columns: np.ndarray,
) -> None:
    """Solve the unconstrained LS on the passive set of each listed column.

    Compatibility wrapper around the scalar kernel's group solve (the
    grouping/factorization logic now lives in :mod:`repro.nls.kernels`).
    ``x`` is updated in place; entries outside the passive set are set to 0.
    """
    from repro.nls.base import NLSState

    state = NLSState(extra={"cholesky_flops": 0.0, "triangular_solve_flops": 0.0})
    ScalarKernel._solve_groups(gram, rhs, passive, x, np.asarray(columns), {}, state)


@register_solver
class BlockPrincipalPivoting(NLSSolver):
    """Multi-right-hand-side block principal pivoting NLS solver.

    Parameters
    ----------
    max_backup:
        Number of failed full exchanges tolerated per column before switching
        to the single-variable backup rule (the parameter "α" of Kim & Park,
        default 3).
    max_iters:
        Hard cap on pivoting iterations (a safeguard; BPP terminates finitely
        with the backup rule, typically in far fewer iterations).
    tol:
        Feasibility tolerance: entries of x and y above ``-tol`` count as
        nonnegative.
    kernel:
        Inner-engine selection: ``'scalar'`` (default), ``'batched'``,
        ``'numba'``, or ``'auto'`` (fastest available).  See
        :mod:`repro.nls.kernels`.
    persistent_cache:
        Keep the passive-pattern → Cholesky-factor cache alive *across*
        ``solve`` calls.  Only valid when every call passes the same ``gram``
        (bit-for-bit) — the serving layer's situation, where ``gram = WᵀW``
        is fixed per model version and micro-batches arrive continuously.
        Reuse is bit-safe there (recomputing would reproduce the same bits);
        call :meth:`reset_cache` (or build a new solver) when the Gram
        changes.  Default off: the NMF outer loop changes the Gram every
        half-iteration, so cross-call reuse would be wrong.
    """

    name = "bpp"

    #: entries kept in the persistent pattern cache before it is cleared —
    #: a safety valve, not a tuning knob (k is small, patterns ≤ 2^k, and a
    #: serving workload revisits a handful of patterns).
    CACHE_LIMIT = 4096

    def __init__(
        self,
        max_backup: int = 3,
        max_iters: int = 1000,
        tol: float = 1e-12,
        kernel: Optional[str] = None,
        persistent_cache: bool = False,
    ):
        super().__init__(kernel=kernel)
        self.max_backup = int(max_backup)
        self.max_iters = int(max_iters)
        self.tol = float(tol)
        self.kernel = make_kernel(kernel)
        self._cache: Optional[dict] = {} if persistent_cache else None

    def reset_cache(self) -> None:
        """Drop cached factorizations (call when the Gram matrix changes)."""
        if self._cache is not None:
            self._cache.clear()

    @property
    def cached_patterns(self) -> int:
        """Number of passive-set patterns currently held in the persistent cache."""
        return len(self._cache) if self._cache is not None else 0

    def solve(
        self,
        gram: np.ndarray,
        rhs: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        gram, rhs, x0 = self._validate(gram, rhs, x0)
        k, _ = rhs.shape

        # Regularize an exactly singular Gram matrix minimally; the NMF outer
        # iteration keeps Gram well conditioned in practice (k << m, n).
        diag = np.diag(gram)
        if np.any(diag <= 0):
            gram = gram + np.eye(k) * max(np.max(diag), 1.0) * 1e-14

        if self._cache is not None and len(self._cache) > self.CACHE_LIMIT:
            self._cache.clear()
        x, state = self.kernel.solve(
            gram,
            rhs,
            x0,
            max_backup=self.max_backup,
            max_iters=self.max_iters,
            tol=self.tol,
            cache=self._cache,
        )
        self.last_state = state
        if not state.converged:
            raise SolverError(
                f"BPP did not converge within {self.max_iters} pivoting iterations"
            )

        # Clamp tiny negatives introduced by finite precision.
        np.maximum(x, 0.0, out=x)
        return x


def bpp_flops_estimate(
    k: int, c: int, iterations: int = 5, grouping_factor: float = 0.5
) -> float:
    """Flop count ``C_BPP(k, c)`` used by the analytic performance model.

    Each pivoting iteration factorizes one k×k passive block *per distinct
    passive-set pattern* — on average ``grouping_factor · c`` patterns, since
    columns sharing a pattern share the Cholesky (the grouping trick above) —
    and back-substitutes all ``c`` columns:

        iterations · (grouping_factor · c · k³/3  +  2 c k²)

    The paper leaves ``C_BPP`` symbolic; this estimate gives the modeled NLS
    bars a realistic magnitude relative to the matmul terms, and the kernels
    report their *measured* counterpart in ``NLSState.extra`` (pinned against
    this formula by ``tests/nls/test_kernels.py``).
    """
    return iterations * (grouping_factor * c * k**3 / 3.0 + 2.0 * c * k**2)
