"""NLS kernels registry: interchangeable inner engines for the BPP solver.

The PR-5 bench baseline showed that ~60% of per-rank time is spent inside the
pure-Python column-at-a-time BPP pivot loop — the local NLS solve that Kannan,
Ballard & Park implement as a dense batched kernel to get their MPI-scale
wins.  This module factors that inner engine out of
:class:`~repro.nls.bpp.BlockPrincipalPivoting` into a *kernel* registry that
mirrors the variant (``repro.core.variants``), solver (``repro.nls.base``) and
backend (``repro.comm.backends``) registries:

``scalar``
    The original column-at-a-time driver: a Python loop applies the Kim &
    Park exchange rules per column, and columns sharing a passive-set pattern
    are grouped so one Cholesky serves the group.  Always available.
``batched``
    A fully vectorized driver: the exchange rules are applied to all columns
    at once with boolean array arithmetic, passive-set patterns are grouped
    with ``packbits``/``lexsort`` instead of a Python dict, and all
    same-size passive blocks are factorized with ONE stacked
    ``np.linalg.cholesky`` call.  Always available; byte-identical to
    ``scalar`` (see below).
``numba``
    A JIT-compiled per-column engine (``repro.nls.kernels_numba``), selected
    at runtime behind a capability flag; when numba is not importable the
    kernel reports itself unavailable and ``auto`` falls back to ``batched``.

Byte-identity contract
----------------------
``scalar`` and ``batched`` share the exact same floating-point primitives —
``np.linalg.cholesky`` for factorization (whose stacked gufunc is bit-identical
to per-matrix calls), ``scipy.linalg.cho_solve`` for the triangular solves,
and the same ``gram @ x - rhs`` dual update — so the two kernels produce
byte-identical solutions.  ``tests/core/test_kernel_parity.py`` pins this at
the full-factorization level.  The ``numba`` kernel uses its own compiled
Cholesky and is only guaranteed to agree to solver tolerance.

Both NumPy kernels also keep a per-solve factorization cache keyed by the
passive-set pattern: a pattern revisited in a later pivot round reuses the
factor computed earlier (the Gram matrix never changes within a solve), which
is bit-safe because recomputing would produce the same bits.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple, Type

import numpy as np
import scipy.linalg as sla

from repro.nls.base import NLSState
from repro.util.errors import SolverError

__all__ = [
    "NLSKernel",
    "ScalarKernel",
    "BatchedKernel",
    "NumbaKernel",
    "register_kernel",
    "registered_kernels",
    "available_kernels",
    "resolve_kernel",
    "make_kernel",
    "cholesky_flops",
    "triangular_solve_flops",
]


# -- flop accounting primitives ---------------------------------------------
def cholesky_flops(size: int) -> float:
    """Flops to factorize one ``size × size`` SPD block (``s³/3``)."""
    return size**3 / 3.0


def triangular_solve_flops(size: int, columns: int = 1) -> float:
    """Flops for forward+back substitution of ``columns`` RHS (``2 s² c``)."""
    return 2.0 * size * size * columns


# -- shared numerical primitives --------------------------------------------
# Every kernel that claims byte-parity must route factorization and
# triangular solves through these two helpers so the bits agree by
# construction, not by coincidence.


def _factorize_pattern(
    gram: np.ndarray, idx: np.ndarray, state: NLSState
) -> Optional[np.ndarray]:
    """Cholesky factor of ``gram[idx, idx]`` or ``None`` if singular."""
    try:
        L = np.linalg.cholesky(gram[np.ix_(idx, idx)])
    except np.linalg.LinAlgError:
        return None
    state.extra["cholesky_flops"] += cholesky_flops(idx.size)
    return L


def _apply_pattern_solve(
    gram: np.ndarray,
    rhs: np.ndarray,
    idx: np.ndarray,
    L: Optional[np.ndarray],
    cols: np.ndarray,
    x: np.ndarray,
    state: NLSState,
) -> None:
    """Solve the passive-restricted system for one pattern group, in place."""
    sub_rhs = rhs[np.ix_(idx, cols)]
    if L is None:
        # Singular passive block: minimum-norm solution, as before.
        sol = np.linalg.lstsq(gram[np.ix_(idx, idx)], sub_rhs, rcond=None)[0]
    else:
        sol = sla.cho_solve((L, True), sub_rhs, check_finite=False)
        state.extra["triangular_solve_flops"] += triangular_solve_flops(
            idx.size, cols.size
        )
    x[np.ix_(idx, cols)] = sol


class NLSKernel(abc.ABC):
    """One interchangeable inner engine for the BPP normal-equations solve."""

    #: registry name; subclasses override
    name: str = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this kernel can run on the current host."""
        return True

    @abc.abstractmethod
    def solve(
        self,
        gram: np.ndarray,
        rhs: np.ndarray,
        x0: Optional[np.ndarray],
        *,
        max_backup: int,
        max_iters: int,
        tol: float,
        cache: Optional[Dict[bytes, Tuple[np.ndarray, Optional[np.ndarray]]]] = None,
    ) -> Tuple[np.ndarray, NLSState]:
        """Run BPP on pre-validated inputs; return ``(x, state)``.

        ``x`` may contain tiny negatives (the solver shell clamps); ``state``
        carries pivot diagnostics plus measured flop tallies in
        ``state.extra['cholesky_flops']`` / ``['triangular_solve_flops']``.

        ``cache`` is the passive-pattern → ``(idx, L)`` factorization cache.
        ``None`` (the default) gives each call a fresh one, the historical
        behaviour.  A caller that solves against the SAME ``gram`` repeatedly
        — the serving layer, where ``gram = WᵀW`` is fixed per model version —
        may pass a persistent dict so Cholesky factors survive across calls.
        Reuse is bit-safe precisely because the Gram matrix is unchanged:
        recomputing a cached factor would produce the same bits.  Passing a
        cache populated under a *different* Gram matrix is undefined
        behaviour; invalidate (pass a fresh dict) whenever ``gram`` changes.
        The compiled ``numba`` kernel keeps no Python-side cache and ignores
        the argument.
        """

    # -- shared driver pieces ------------------------------------------------
    @staticmethod
    def _fresh_state() -> NLSState:
        return NLSState(extra={"cholesky_flops": 0.0, "triangular_solve_flops": 0.0})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# -- registry ----------------------------------------------------------------
_KERNELS: Dict[str, Type[NLSKernel]] = {}


def register_kernel(cls: Type[NLSKernel]) -> Type[NLSKernel]:
    """Class decorator adding a kernel to the ``make_kernel`` registry."""
    _KERNELS[cls.name] = cls
    return cls


def registered_kernels() -> List[str]:
    """Every registered kernel name, whether or not it can run here."""
    return sorted(_KERNELS)


def available_kernels() -> List[str]:
    """Kernel names that can actually run on this host."""
    return [name for name in sorted(_KERNELS) if _KERNELS[name].is_available()]


def resolve_kernel(name: Optional[str]) -> str:
    """Normalize a requested kernel name to a concrete, available one.

    ``None`` means "the default" (``scalar``, preserving historical
    behaviour); ``"auto"`` picks the fastest available engine (``numba`` when
    importable, else ``batched``).  Explicitly requesting an unavailable or
    unknown kernel raises :class:`SolverError` — a typo must not silently
    fall back.
    """
    if name is None:
        return "scalar"
    name = name.lower()
    if name == "auto":
        return "numba" if _KERNELS["numba"].is_available() else "batched"
    if name not in _KERNELS:
        raise SolverError(
            f"unknown NLS kernel {name!r}; registered: {registered_kernels()} "
            "(or 'auto')"
        )
    if not _KERNELS[name].is_available():
        raise SolverError(
            f"NLS kernel {name!r} is not available on this host "
            f"(is its runtime dependency installed?); available: "
            f"{available_kernels()}"
        )
    return name


def make_kernel(name: Optional[str] = None) -> NLSKernel:
    """Instantiate a kernel by name ('scalar', 'batched', 'numba', 'auto')."""
    return _KERNELS[resolve_kernel(name)]()


# -- kernels -----------------------------------------------------------------
@register_kernel
class ScalarKernel(NLSKernel):
    """The original column-at-a-time BPP engine (pure NumPy + Python loop).

    Columns sharing a passive-set pattern are grouped in a dict so one
    Cholesky serves the group; a per-solve cache reuses factors across pivot
    rounds.  This is the reference engine every other kernel is tested
    against.
    """

    name = "scalar"

    def solve(self, gram, rhs, x0, *, max_backup, max_iters, tol, cache=None):
        k, c = rhs.shape
        state = self._fresh_state()
        if cache is None:
            cache = {}

        x = np.zeros((k, c))
        y = -rhs.copy()
        passive = np.zeros((k, c), dtype=bool)
        if x0 is not None and np.any(x0 > 0):
            passive = x0 > 0
            self._solve_groups(gram, rhs, passive, x, np.arange(c), cache, state)
            y = gram @ x - rhs

        alpha = np.full(c, max_backup)  # remaining full exchanges per column
        beta = np.full(c, k + 1)  # best (lowest) infeasibility count per column

        for iteration in range(max_iters):
            x_infeasible = passive & (x < -tol)
            y_infeasible = (~passive) & (y < -tol)
            infeasible = x_infeasible | y_infeasible
            n_infeasible = infeasible.sum(axis=0)
            not_done = np.flatnonzero(n_infeasible > 0)
            if not_done.size == 0:
                state.iterations = iteration
                state.converged = True
                break

            for col in not_done:
                count = n_infeasible[col]
                if count < beta[col]:
                    # Progress: remember the new best and reset the budget.
                    beta[col] = count
                    alpha[col] = max_backup
                    exchange = infeasible[:, col]
                    state.full_exchanges += 1
                elif alpha[col] >= 1:
                    # No progress but budget remains: full exchange anyway.
                    alpha[col] -= 1
                    exchange = infeasible[:, col]
                    state.full_exchanges += 1
                else:
                    # Backup rule: exchange only the largest infeasible index.
                    exchange = np.zeros(k, dtype=bool)
                    exchange[np.flatnonzero(infeasible[:, col]).max()] = True
                    state.backup_exchanges += 1
                passive[exchange, col] = ~passive[exchange, col]

            self._solve_groups(gram, rhs, passive, x, not_done, cache, state)
            y[:, not_done] = gram @ x[:, not_done] - rhs[:, not_done]
        else:
            state.iterations = max_iters
            state.converged = False
        return x, state

    @staticmethod
    def _solve_groups(gram, rhs, passive, x, columns, cache, state):
        if columns.size == 0:
            return
        patterns: Dict[bytes, list] = {}
        for col in columns:
            patterns.setdefault(passive[:, col].tobytes(), []).append(col)
        for pattern, cols in patterns.items():
            cols = np.asarray(cols)
            x[:, cols] = 0.0
            entry = cache.get(pattern)
            if entry is None:
                idx = np.flatnonzero(np.frombuffer(pattern, dtype=bool))
                L = _factorize_pattern(gram, idx, state) if idx.size else None
                entry = (idx, L)
                cache[pattern] = entry
            idx, L = entry
            if idx.size == 0:
                continue
            _apply_pattern_solve(gram, rhs, idx, L, cols, x, state)


@register_kernel
class BatchedKernel(NLSKernel):
    """Vectorized BPP engine: batched pivot rules + stacked Cholesky.

    Per pivot round the exchange rules are applied to every unconverged
    column at once with boolean array arithmetic; passive-set patterns are
    grouped via ``packbits``/``lexsort``; and all uncached same-size passive
    blocks are factorized with a single stacked ``np.linalg.cholesky`` call
    (one LAPACK dispatch instead of one per pattern).  Because NumPy's
    stacked Cholesky gufunc produces the same bits as per-matrix calls, and
    the triangular solves go through the same ``cho_solve`` primitive, this
    kernel is byte-identical to :class:`ScalarKernel`.
    """

    name = "batched"

    def solve(self, gram, rhs, x0, *, max_backup, max_iters, tol, cache=None):
        k, c = rhs.shape
        state = self._fresh_state()
        if cache is None:
            cache = {}

        x = np.zeros((k, c))
        y = -rhs.copy()
        passive = np.zeros((k, c), dtype=bool)
        if x0 is not None and np.any(x0 > 0):
            passive = x0 > 0
            self._solve_groups(gram, rhs, passive, x, np.arange(c), cache, state)
            y = gram @ x - rhs

        alpha = np.full(c, max_backup)
        beta = np.full(c, k + 1)

        for iteration in range(max_iters):
            x_infeasible = passive & (x < -tol)
            y_infeasible = (~passive) & (y < -tol)
            infeasible = x_infeasible | y_infeasible
            n_infeasible = infeasible.sum(axis=0)
            not_done = np.flatnonzero(n_infeasible > 0)
            if not_done.size == 0:
                state.iterations = iteration
                state.converged = True
                break

            # Kim & Park's three exchange rules, applied to all columns at once.
            counts = n_infeasible[not_done]
            improved = counts < beta[not_done]
            budget = (~improved) & (alpha[not_done] >= 1)
            full_mask = improved | budget
            beta[not_done[improved]] = counts[improved]
            alpha[not_done[improved]] = max_backup
            alpha[not_done[budget]] -= 1

            full_cols = not_done[full_mask]
            backup_cols = not_done[~full_mask]
            state.full_exchanges += int(full_cols.size)
            state.backup_exchanges += int(backup_cols.size)
            if full_cols.size:
                passive[:, full_cols] ^= infeasible[:, full_cols]
            if backup_cols.size:
                # Largest infeasible index per backup column.
                rows = (k - 1) - np.argmax(infeasible[::-1][:, backup_cols], axis=0)
                passive[rows, backup_cols] = ~passive[rows, backup_cols]

            self._solve_groups(gram, rhs, passive, x, not_done, cache, state)
            y[:, not_done] = gram @ x[:, not_done] - rhs[:, not_done]
        else:
            state.iterations = max_iters
            state.converged = False
        return x, state

    @staticmethod
    def _solve_groups(gram, rhs, passive, x, columns, cache, state):
        if columns.size == 0:
            return
        # Group columns by passive-set pattern without a Python dict pass:
        # pack each pattern into bytes, lex-sort, and split at boundaries.
        pats = passive[:, columns]
        packed = np.packbits(pats, axis=0)
        order = np.lexsort(packed[::-1])
        sorted_cols = columns[order]
        sorted_packed = packed[:, order]
        if sorted_cols.size > 1:
            changed = np.any(sorted_packed[:, 1:] != sorted_packed[:, :-1], axis=0)
            boundaries = np.flatnonzero(changed) + 1
            groups = np.split(sorted_cols, boundaries)
        else:
            groups = [sorted_cols]

        # Factorize every uncached pattern, batching same-size blocks into a
        # single stacked Cholesky call.
        group_keys = []
        to_factor: Dict[int, list] = {}
        for cols in groups:
            key = passive[:, cols[0]].tobytes()
            group_keys.append(key)
            if key in cache:
                continue
            idx = np.flatnonzero(passive[:, cols[0]])
            if idx.size == 0:
                cache[key] = (idx, None)
            else:
                to_factor.setdefault(idx.size, []).append((key, idx))
                cache[key] = (idx, None)  # placeholder, filled below
        for size, entries in to_factor.items():
            if len(entries) == 1:
                key, idx = entries[0]
                cache[key] = (idx, _factorize_pattern(gram, idx, state))
                continue
            idx_mat = np.array([idx for _, idx in entries])
            stack = gram[idx_mat[:, :, None], idx_mat[:, None, :]]
            try:
                factors = np.linalg.cholesky(stack)
            except np.linalg.LinAlgError:
                # At least one singular block: fall back to per-pattern calls
                # (bit-identical for the nonsingular ones).
                for key, idx in entries:
                    cache[key] = (idx, _factorize_pattern(gram, idx, state))
                continue
            state.extra["cholesky_flops"] += len(entries) * cholesky_flops(size)
            for (key, idx), L in zip(entries, factors):
                cache[key] = (idx, L)

        for key, cols in zip(group_keys, groups):
            x[:, cols] = 0.0
            idx, L = cache[key]
            if idx.size == 0:
                continue
            _apply_pattern_solve(gram, rhs, idx, L, cols, x, state)


@register_kernel
class NumbaKernel(NLSKernel):
    """JIT-compiled per-column BPP engine (requires numba).

    The compiled core (`repro.nls.kernels_numba`) runs the whole pivot loop
    — gathering, Cholesky, substitution, exchange rules — in machine code
    with zero per-column Python overhead.  Results agree with the NumPy
    kernels to solver tolerance (not bit-for-bit: the compiled Cholesky is
    its own arithmetic).  When numba is missing the kernel reports itself
    unavailable; ``resolve_kernel("auto")`` then falls back to ``batched``.
    """

    name = "numba"

    @classmethod
    def is_available(cls) -> bool:
        from repro.nls.kernels_numba import NUMBA_AVAILABLE

        return NUMBA_AVAILABLE

    def solve(self, gram, rhs, x0, *, max_backup, max_iters, tol, cache=None):
        # ``cache`` is accepted for interface uniformity but unused: the
        # compiled core keeps its factorizations in native arrays per call.
        from repro.nls.kernels_numba import bpp_columns

        k, c = rhs.shape
        state = self._fresh_state()
        x = np.zeros((k, c))
        if x0 is not None and np.any(x0 > 0):
            passive = np.ascontiguousarray(x0 > 0)
        else:
            passive = np.zeros((k, c), dtype=bool)
        iters, full_ex, backup_ex, converged, chol_flops, solve_flops = bpp_columns(
            np.ascontiguousarray(gram, dtype=np.float64),
            np.ascontiguousarray(rhs, dtype=np.float64),
            x,
            passive,
            int(max_backup),
            int(max_iters),
            float(tol),
        )
        state.iterations = int(iters)
        state.full_exchanges = int(full_ex)
        state.backup_exchanges = int(backup_ex)
        state.converged = bool(converged)
        state.extra["cholesky_flops"] = float(chol_flops)
        state.extra["triangular_solve_flops"] = float(solve_flops)
        return x, state
