"""KKT optimality checks for the NLS subproblem (paper Eq. 6).

For ``min_{x>=0} ||Cx − b||²`` with ``G = CᵀC`` and ``r = Cᵀb``, the KKT
conditions are

    y = G x − r,     x >= 0,     y >= 0,     xᵀ y = 0.

The residual returned by :func:`kkt_residual` is the largest violation of any
of the three inequality/complementarity conditions; a point is accepted as
optimal when that violation is below a tolerance.  These checks back the BPP
unit tests and the hypothesis property tests.
"""

from __future__ import annotations

import numpy as np


def kkt_residual(gram: np.ndarray, rhs: np.ndarray, x: np.ndarray) -> float:
    """Maximum violation of the KKT conditions at ``x`` (0 means optimal)."""
    gram = np.asarray(gram, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if rhs.ndim == 1:
        rhs = rhs[:, None]
    if x.ndim == 1:
        x = x[:, None]
    y = gram @ x - rhs
    primal = float(np.max(np.maximum(-x, 0.0), initial=0.0))
    dual = float(np.max(np.maximum(-y, 0.0), initial=0.0))
    complementarity = float(np.max(np.abs(x * y), initial=0.0))
    return max(primal, dual, complementarity)


def check_kkt(
    gram: np.ndarray,
    rhs: np.ndarray,
    x: np.ndarray,
    tol: float = 1e-6,
    scale_free: bool = True,
) -> bool:
    """True when ``x`` satisfies the KKT conditions to tolerance ``tol``.

    With ``scale_free=True`` (default) the tolerance is relative to the
    magnitude of the problem data, which keeps the check meaningful across the
    wide dynamic ranges the property tests generate.
    """
    scale = 1.0
    if scale_free:
        scale = max(
            1.0,
            float(np.max(np.abs(rhs), initial=0.0)),
            float(np.max(np.abs(gram), initial=0.0)),
        )
    return kkt_residual(gram, rhs, x) <= tol * scale
