"""Projected gradient descent for the normal-equations NLS problem.

The paper's §4.1 mentions projected gradient and interior point methods as the
generic alternatives to active-set solvers for the NLS subproblems; this
module provides the projected-gradient option as an extension so the solver
ablation (DESIGN.md §5) can compare all four families.

With ``G = CᵀC`` and ``R = CᵀB``, the objective is
``f(X) = ½⟨X, G X⟩ − ⟨R, X⟩`` (up to a constant), whose gradient is
``G X − R`` and whose Lipschitz constant is the spectral norm of ``G``.
We iterate ``X ← [X − (1/L)(G X − R)]₊`` until the projected-gradient norm
falls below ``tol`` or ``max_iters`` is reached.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nls.base import NLSSolver, NLSState, register_solver


@register_solver
class ProjectedGradient(NLSSolver):
    """Projected gradient descent with a fixed 1/L step size."""

    name = "pgrad"

    def __init__(self, max_iters: int = 200, tol: float = 1e-8, kernel=None):
        super().__init__(kernel=kernel)
        self.max_iters = int(max_iters)
        self.tol = float(tol)

    def solve(
        self,
        gram: np.ndarray,
        rhs: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        gram, rhs, x0 = self._validate(gram, rhs, x0)
        k, c = rhs.shape
        x = np.zeros((k, c)) if x0 is None else np.maximum(x0, 0.0).copy()

        # Lipschitz constant of the gradient: largest eigenvalue of the k×k Gram.
        eigvals = np.linalg.eigvalsh((gram + gram.T) / 2.0)
        lipschitz = float(max(eigvals[-1], 1e-12))
        step = 1.0 / lipschitz

        state = NLSState(converged=False)
        for iteration in range(self.max_iters):
            grad = gram @ x - rhs
            x_new = np.maximum(x - step * grad, 0.0)
            # Projected-gradient optimality measure: the change scaled by 1/step.
            pg_norm = float(np.linalg.norm(x_new - x)) * lipschitz
            x = x_new
            if pg_norm <= self.tol * max(1.0, float(np.linalg.norm(rhs))):
                state.iterations = iteration + 1
                state.converged = True
                break
        else:
            state.iterations = self.max_iters
        self.last_state = state
        return x
