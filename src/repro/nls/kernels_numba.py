"""Numba-compiled BPP core used by the ``numba`` kernel.

The whole per-column pivot loop — passive-set gathering, Cholesky
factorization, forward/back substitution, and the Kim & Park exchange rules —
is one nopython-compiled function with zero per-column Python overhead.  The
linear algebra is written as explicit loops (no ``np.linalg`` inside the
jitted region) so the core compiles on every numba version and also runs as
plain Python when numba is absent; ``NUMBA_AVAILABLE`` tells the registry
whether the compiled path is actually active.  Singular passive blocks are
handled with an escalating ridge (the NumPy kernels use ``lstsq`` instead, so
the agreement contract with them is solver-tolerance, not bits).
"""

from __future__ import annotations

import math

import numpy as np

try:  # pragma: no cover - exercised on the numba CI leg
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the default in minimal environments
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """No-op decorator so the core stays importable and testable."""
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate


@njit(cache=True)
def _cholesky_lower(sub, L, s):
    """Factor the leading ``s × s`` block of ``sub`` into ``L`` (lower).

    Returns False on breakdown (non-SPD block) without touching ``sub``.
    """
    for j in range(s):
        acc = sub[j, j]
        for t in range(j):
            acc -= L[j, t] * L[j, t]
        if acc <= 0.0:
            return False
        ljj = math.sqrt(acc)
        L[j, j] = ljj
        for i in range(j + 1, s):
            acc2 = sub[i, j]
            for t in range(j):
                acc2 -= L[i, t] * L[j, t]
            L[i, j] = acc2 / ljj
    return True


@njit(cache=True)
def bpp_columns(gram, rhs, x, passive, max_backup, max_iters, tol):
    """Solve BPP for every column of ``rhs``; ``x``/``passive`` in place.

    Returns ``(max_pivot_iters, full_exchanges, backup_exchanges, converged,
    cholesky_flops, triangular_solve_flops)``.
    """
    k, c = rhs.shape
    sub = np.empty((k, k))
    L = np.empty((k, k))
    b = np.empty(k)
    y = np.empty(k)
    idx = np.empty(k, np.int64)
    infeasible = np.zeros(k, np.bool_)
    max_col_iters = 0
    full_ex = 0
    backup_ex = 0
    converged = True
    chol_flops = 0.0
    solve_flops = 0.0
    for col in range(c):
        alpha = max_backup
        beta = k + 1
        it = 0
        while True:
            # Gather the passive indices and solve the restricted system.
            s = 0
            for i in range(k):
                x[i, col] = 0.0
                if passive[i, col]:
                    idx[s] = i
                    s += 1
            if s > 0:
                for a in range(s):
                    ia = idx[a]
                    for bb in range(s):
                        sub[a, bb] = gram[ia, idx[bb]]
                    b[a] = rhs[ia, col]
                ok = _cholesky_lower(sub, L, s)
                if not ok:
                    # Singular passive block: escalate a tiny ridge until the
                    # factorization succeeds (an all-zero block stays at x=0).
                    trace = 0.0
                    for a in range(s):
                        trace += sub[a, a]
                    ridge = 1e-12 * (trace / s) if trace > 0.0 else 1e-12
                    for _attempt in range(3):
                        for a in range(s):
                            sub[a, a] += ridge
                        ok = _cholesky_lower(sub, L, s)
                        if ok:
                            break
                        ridge *= 100.0
                if ok:
                    chol_flops += s * s * s / 3.0
                    # Forward substitution  L z = b   (z overwrites b) ...
                    for a in range(s):
                        acc = b[a]
                        for t in range(a):
                            acc -= L[a, t] * b[t]
                        b[a] = acc / L[a, a]
                    # ... back substitution  Lᵀ w = z  (w overwrites b).
                    for a in range(s - 1, -1, -1):
                        acc = b[a]
                        for t in range(a + 1, s):
                            acc -= L[t, a] * b[t]
                        b[a] = acc / L[a, a]
                    solve_flops += 2.0 * s * s
                    for a in range(s):
                        x[idx[a], col] = b[a]
            # Dual variables: y = G x − r restricted to this column.
            for i in range(k):
                acc = -rhs[i, col]
                for a in range(s):
                    acc += gram[i, idx[a]] * x[idx[a], col]
                y[i] = acc
            # Infeasibility census (primal on F, dual on G).
            n_inf = 0
            last_inf = -1
            for i in range(k):
                bad = False
                if passive[i, col]:
                    if x[i, col] < -tol:
                        bad = True
                elif y[i] < -tol:
                    bad = True
                infeasible[i] = bad
                if bad:
                    n_inf += 1
                    last_inf = i
            if n_inf == 0:
                break
            if it >= max_iters:
                converged = False
                break
            it += 1
            # Kim & Park exchange rules.
            if n_inf < beta:
                beta = n_inf
                alpha = max_backup
                full = True
            elif alpha >= 1:
                alpha -= 1
                full = True
            else:
                full = False
            if full:
                for i in range(k):
                    if infeasible[i]:
                        passive[i, col] = not passive[i, col]
                full_ex += 1
            else:
                passive[last_inf, col] = not passive[last_inf, col]
                backup_ex += 1
        if it > max_col_iters:
            max_col_iters = it
        for i in range(k):
            if x[i, col] < 0.0:
                x[i, col] = 0.0
    return max_col_iters, full_ex, backup_ex, converged, chol_flops, solve_flops
