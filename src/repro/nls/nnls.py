"""Single right-hand-side active-set NNLS (Lawson–Hanson), used as a test oracle.

The classic Lawson–Hanson algorithm adds one variable at a time to the passive
set and is therefore slow for many right-hand sides, but it is simple enough
to trust as a reference: the test suite checks that BPP produces the same
solutions (BPP is exact at termination, so both must agree on the unique
minimizer when ``CᵀC`` is positive definite).

This implementation works directly from the normal equations ``G = CᵀC``,
``r = Cᵀb``, the same interface as the production solvers.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ShapeError, SolverError


def active_set_nnls(gram: np.ndarray, rhs: np.ndarray, max_iters: int = 0) -> np.ndarray:
    """Solve ``min_{x>=0} ||Cx - b||`` given ``gram = CᵀC`` and ``rhs = Cᵀb``.

    Parameters
    ----------
    gram:
        ``k × k`` symmetric positive semidefinite matrix.
    rhs:
        Length-``k`` vector (single right-hand side) or ``k × c`` matrix, in
        which case the columns are solved independently.
    max_iters:
        Safety cap on active-set iterations; 0 means ``3 * k`` per column.

    Returns
    -------
    ndarray with the same shape as ``rhs``.
    """
    gram = np.asarray(gram, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise ShapeError(f"gram must be square, got {gram.shape}")
    if rhs.ndim == 2:
        return np.column_stack(
            [active_set_nnls(gram, rhs[:, j], max_iters=max_iters) for j in range(rhs.shape[1])]
        )
    k = gram.shape[0]
    if rhs.shape != (k,):
        raise ShapeError(f"rhs must have shape ({k},), got {rhs.shape}")
    limit = max_iters if max_iters > 0 else max(3 * k, 30)

    x = np.zeros(k)
    passive = np.zeros(k, dtype=bool)
    gradient = rhs - gram @ x  # equals -y in the paper's notation

    for _ in range(limit):
        candidates = (~passive) & (gradient > 1e-12)
        if not np.any(candidates):
            break
        # Add the most violated variable to the passive set.
        j = int(np.argmax(np.where(candidates, gradient, -np.inf)))
        passive[j] = True

        # Inner loop: solve on the passive set and step back if any passive
        # variable would become negative.
        while True:
            idx = np.flatnonzero(passive)
            z = np.zeros(k)
            sub = gram[np.ix_(idx, idx)]
            try:
                z[idx] = np.linalg.solve(sub, rhs[idx])
            except np.linalg.LinAlgError:
                z[idx] = np.linalg.lstsq(sub, rhs[idx], rcond=None)[0]
            if np.all(z[idx] > -1e-12):
                x = np.maximum(z, 0.0)
                break
            # Step from x toward z until the first passive variable hits zero.
            negative = idx[z[idx] <= -1e-12]
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = x[negative] / (x[negative] - z[negative])
            alpha = float(np.min(ratios))
            x = x + alpha * (z - x)
            np.maximum(x, 0.0, out=x)
            passive = passive & (x > 1e-12)
            if not np.any(passive):
                x = np.zeros(k)
                break
        gradient = rhs - gram @ x
    else:
        raise SolverError(f"active-set NNLS did not converge within {limit} iterations")
    return x
