"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover the common workflows:

* ``factorize`` — run NMF (sequential or parallel) on a registered dataset or
  an ``.npy``/``.npz`` file and print the result summary;
* ``experiment`` — regenerate one of the paper's figures/tables (modeled at
  paper scale, optionally measured at laptop scale);
* ``datasets`` — list the registered datasets and their dimensions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.comm.backends import available_backends
from repro.core.api import nmf, parallel_nmf
from repro.data.registry import DATASETS, load_dataset
from repro.perf.experiments import comparison_vs_k, strong_scaling, table3_grid
from repro.perf.report import render_breakdown_table, render_table3, to_csv


def _load_input(name_or_path: str):
    """Load a registered dataset by name, or a matrix from an .npy/.npz file."""
    if name_or_path in DATASETS:
        return load_dataset(name_or_path)
    path = Path(name_or_path)
    if not path.exists():
        raise SystemExit(
            f"'{name_or_path}' is neither a registered dataset ({', '.join(sorted(DATASETS))}) "
            "nor an existing file"
        )
    if path.suffix == ".npz":
        try:
            return sp.load_npz(path)
        except Exception:
            with np.load(path) as data:
                return data[next(iter(data.files))]
    return np.load(path)


def _cmd_factorize(args: argparse.Namespace) -> int:
    A = _load_input(args.input)
    if args.ranks <= 1 and args.algorithm == "sequential":
        result = nmf(A, args.k, max_iters=args.iters, solver=args.solver, seed=args.seed)
    else:
        result = parallel_nmf(
            A,
            args.k,
            n_ranks=max(args.ranks, 1),
            algorithm=args.algorithm,
            backend=args.backend,
            max_iters=args.iters,
            solver=args.solver,
            seed=args.seed,
        )
    print(result.summary())
    if args.save:
        np.savez(args.save, W=result.W, H=result.H,
                 relative_error=result.relative_error)
        print(f"factors written to {args.save}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "table3":
        table = table3_grid(
            mode=args.mode,
            k=50 if args.mode == "modeled" else 8,
            backend=args.backend,
        )
        print(render_table3(table))
        return 0
    dataset = args.dataset or "SSYN"
    if args.name == "comparison":
        result = comparison_vs_k(dataset, mode=args.mode, backend=args.backend)
        print(render_breakdown_table(result, x_axis="k"))
    elif args.name == "scaling":
        result = strong_scaling(dataset, mode=args.mode, backend=args.backend)
        print(render_breakdown_table(result, x_axis="p"))
    else:  # pragma: no cover - argparse choices prevent this
        raise SystemExit(f"unknown experiment {args.name!r}")
    if args.csv:
        Path(args.csv).write_text(to_csv(result))
        print(f"\nCSV written to {args.csv}")
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':>16}  {'kind':>7}  {'m':>10}  {'n':>10}  {'nnz (est.)':>12}  description")
    for name in sorted(DATASETS):
        spec = DATASETS[name]
        print(
            f"{name:>16}  {spec.kind:>7}  {spec.m:>10}  {spec.n:>10}"
            f"  {spec.nnz_estimate:>12.3g}  {spec.description}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    fact = sub.add_parser("factorize", help="run NMF on a dataset or matrix file")
    fact.add_argument("input", help="registered dataset name or .npy/.npz file")
    fact.add_argument("-k", type=int, required=True, help="target rank")
    fact.add_argument("--ranks", type=int, default=1, help="number of SPMD ranks")
    fact.add_argument("--algorithm", default="hpc2d",
                      choices=["sequential", "naive", "hpc1d", "hpc2d"])
    fact.add_argument("--backend", default="thread", choices=available_backends(),
                      help="SPMD execution backend (lockstep = deterministic, "
                           "scales to hundreds of simulated ranks)")
    fact.add_argument("--solver", default="bpp",
                      choices=["bpp", "mu", "hals", "pgrad", "admm"])
    fact.add_argument("--iters", type=int, default=20, help="outer iterations")
    fact.add_argument("--seed", type=int, default=42)
    fact.add_argument("--save", help="write factors to this .npz path")
    fact.set_defaults(func=_cmd_factorize)

    exp = sub.add_parser("experiment", help="regenerate a paper figure or table")
    exp.add_argument("name", choices=["comparison", "scaling", "table3"])
    exp.add_argument("--dataset", choices=["DSYN", "SSYN", "Video", "Webbase"])
    exp.add_argument("--mode", default="modeled", choices=["modeled", "measured"])
    exp.add_argument("--backend", default="thread", choices=available_backends(),
                     help="SPMD execution backend for measured mode")
    exp.add_argument("--csv", help="also write the series to this CSV path")
    exp.set_defaults(func=_cmd_experiment)

    data = sub.add_parser("datasets", help="list registered datasets")
    data.set_defaults(func=_cmd_datasets)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
