"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the common workflows:

* ``factorize`` — run any registered NMF variant on a registered dataset or
  an ``.npy``/``.npz`` file and print the result summary;
* ``plan`` — print the planner's candidate table (variant × grid, predicted
  per-task split, total, words moved) for a dataset or an ad-hoc
  ``--shape M N [--density D]`` problem, paper-Table-2 style;
* ``variants`` — list the registered variants and their capability flags;
* ``experiment`` — regenerate one of the paper's figures/tables (modeled at
  paper scale, optionally measured at laptop scale);
* ``bench`` — measure the benchmark-baseline panels and write BENCH_*.json;
* ``serve`` — deploy saved models behind the micro-batched projection
  server (``repro serve model.npz``; see :mod:`repro.serve`);
* ``datasets`` — list the registered datasets and their dimensions.

The ``--variant``, ``--solver`` and ``--backend`` choices are derived from
the variant / solver / backend registries, so registering a new entry
anywhere makes it immediately reachable from the CLI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro import __version__
from repro.comm.backends import available_backends
from repro.core.api import fit
from repro.core.variants import available_variants, get_variant
from repro.data.registry import DATASETS, PAPER_DATASETS, load_dataset, measured_scale, paper_scale
from repro.dist.storage import STORAGE_MODES
from repro.nls.base import available_solvers
from repro.nls.kernels import registered_kernels
from repro.perf.experiments import comparison_vs_k, strong_scaling, table3_grid
from repro.perf.machine import MachineSpec, edison_machine, laptop_machine
from repro.perf.report import render_breakdown_table, render_table3, to_csv
from repro.plan import ProblemSpec, plan_candidates, render_plan_table
from repro.util.errors import ShapeError, SolverError


def _load_input(name_or_path: str):
    """Load a dataset by registry name or paper name, or a matrix from a file.

    Accepts the measured-scale registry names (``ssyn-small``), the paper's
    dataset names (``SSYN`` resolves to the measured-scale instance) and
    ``.npy``/``.npz`` paths.
    """
    if name_or_path in DATASETS:
        return load_dataset(name_or_path)
    if name_or_path in PAPER_DATASETS:
        return measured_scale(name_or_path).load()
    path = Path(name_or_path)
    if not path.exists():
        known = sorted(DATASETS) + sorted(PAPER_DATASETS)
        raise SystemExit(
            f"'{name_or_path}' is neither a registered dataset ({', '.join(known)}) "
            "nor an existing file"
        )
    if path.suffix == ".npz":
        try:
            return sp.load_npz(path)
        except Exception:
            with np.load(path) as data:
                return data[next(iter(data.files))]
    return np.load(path)


def _cmd_factorize(args: argparse.Namespace) -> int:
    if args.ranks < 1:
        raise SystemExit(f"--ranks must be >= 1, got {args.ranks}")
    variant = get_variant(args.variant)
    if args.ranks > 1 and not variant.parallelizable:
        parallel = [v for v in available_variants() if get_variant(v).parallelizable]
        raise SystemExit(
            f"--ranks {args.ranks} needs a parallelizable variant, but "
            f"{variant.name!r} is sequential-only; pick one of {parallel} "
            "or drop --ranks"
        )
    A = _load_input(args.input)
    result = fit(
        A,
        args.k,
        variant=args.variant,
        n_ranks=args.ranks if variant.parallelizable else None,
        backend=args.backend,
        max_iters=args.iters,
        solver=args.solver,
        seed=args.seed,
        **({"kernel": args.kernel} if args.kernel else {}),
        **({"overlap": False} if args.no_overlap else {}),
        **({"panel_comm": False} if args.no_panel_comm else {}),
        **({"storage": args.storage} if args.storage else {}),
    )
    print(result.summary())
    if args.save:
        written = result.save(args.save)
        print(f"result written to {written} (reload with repro.NMFResult.load)")
    return 0


def _resolve_machine(name: str, ranks: int = 1) -> MachineSpec:
    if name == "edison":
        return edison_machine()
    if name == "laptop":
        return laptop_machine()
    # "local": micro-benchmark this host.  When planning a parallel run,
    # measure the per-rank GEMM rate under real contention (process backend)
    # rather than extrapolating the single-rank rate — but never launch more
    # probe processes than this process may actually use.  rate_overlap also
    # measures the achieved compute/comm hiding ratio per backend, so the
    # pipelined candidates' exposed/hidden split reflects this host rather
    # than the static DEFAULT_OVERLAP_EFFICIENCY guesses.
    from repro.comm.backends.process import available_cpus

    return MachineSpec.calibrate(
        ranks=max(1, min(ranks, available_cpus())), rate_overlap=True
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    if args.ranks < 1:
        raise SystemExit(f"--ranks must be >= 1, got {args.ranks}")
    if args.shape and args.input:
        raise SystemExit(
            f"pass either a dataset name ({args.input!r}) or --shape, not both"
        )
    if args.density is not None and not args.shape:
        raise SystemExit(
            "--density only applies to ad-hoc --shape problems; registered "
            "datasets carry their own sparsity"
        )
    if args.shape:
        m, n = args.shape
        if m < 1 or n < 1:
            raise SystemExit(f"--shape dimensions must be positive, got {m} {n}")
        nnz = args.density * m * n if args.density is not None else None
        try:
            problem = ProblemSpec(m=m, n=n, k=args.k, nnz=nnz)
        except ShapeError as exc:  # e.g. density outside [0, 1] or k < 1
            raise SystemExit(str(exc)) from None
    elif args.input:
        if args.input in PAPER_DATASETS:
            spec = paper_scale(args.input)
        elif args.input in DATASETS:
            spec = DATASETS[args.input]
        else:
            known = sorted(DATASETS) + sorted(PAPER_DATASETS)
            raise SystemExit(
                f"'{args.input}' is not a registered dataset; known: {', '.join(known)}"
            )
        try:
            problem = ProblemSpec.from_dataset(spec, args.k)
        except ShapeError as exc:  # e.g. -k 0
            raise SystemExit(str(exc)) from None
    else:
        raise SystemExit("pass a dataset name (e.g. SSYN) or --shape M N")
    machine = _resolve_machine(args.machine, ranks=args.ranks)
    try:
        plans = plan_candidates(
            problem, args.ranks, machine=machine, kernel=args.kernel,
            backend=args.backend,
        )
    except SolverError as exc:  # e.g. --kernel numba without numba installed
        raise SystemExit(str(exc)) from None
    print(render_plan_table(plans))
    if machine.overlap_efficiency is not None:
        rates = ", ".join(
            f"{backend}={machine.overlap_efficiency[backend]:.2f}"
            for backend in sorted(machine.overlap_efficiency)
        )
        print(f"measured overlap efficiency (hidden fraction of in-flight comm): {rates}")
    return 0


def _cmd_variants(_args: argparse.Namespace) -> int:
    flags = ("parallelizable", "sparse_ok", "symmetric_input", "supports_regularization")
    header = f"{'name':>12}  " + "  ".join(f"{f:>{len(f)}}" for f in flags) + "  summary"
    print(header)
    for name in available_variants():
        variant = get_variant(name)
        caps = variant.capabilities()
        cells = "  ".join(
            f"{'yes' if caps[f] else '-':>{len(f)}}" for f in flags
        )
        print(f"{name:>12}  {cells}  {variant.summary}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "table3":
        table = table3_grid(
            mode=args.mode,
            k=50 if args.mode == "modeled" else 8,
            backend=args.backend,
        )
        print(render_table3(table))
        return 0
    dataset = args.dataset or "SSYN"
    if args.name == "comparison":
        result = comparison_vs_k(dataset, mode=args.mode, backend=args.backend)
        print(render_breakdown_table(result, x_axis="k"))
    elif args.name == "scaling":
        result = strong_scaling(dataset, mode=args.mode, backend=args.backend)
        print(render_breakdown_table(result, x_axis="p"))
    else:  # pragma: no cover - argparse choices prevent this
        raise SystemExit(f"unknown experiment {args.name!r}")
    if args.csv:
        Path(args.csv).write_text(to_csv(result))
        print(f"\nCSV written to {args.csv}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(args=args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve import ModelStore, ProjectionServer, ProjectionService
    from repro.serve.server import run_self_test
    from repro.util.errors import ModelLoadError

    store = ModelStore(root=args.models_dir)
    try:
        if args.models_dir and not args.models:
            store.load_all()
        for spec in args.models:
            if "=" in spec:
                name, _, path = spec.partition("=")
                store.load(path, name=name)
            else:
                store.load(spec)
    except ModelLoadError as exc:
        raise SystemExit(str(exc)) from None
    if len(store) == 0:
        raise SystemExit(
            "nothing to serve: pass one or more .npz model artifacts "
            "(optionally as NAME=path) or --models-dir"
        )
    service = ProjectionService(
        store,
        batch_window=args.window,
        max_batch_columns=args.max_batch,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        kernel=args.kernel,
    )
    server = ProjectionServer(
        service, host=args.host, port=args.port,
        refresh_every=args.refresh_every,
    )

    async def _run() -> int:
        await server.start()
        print(
            f"serving {store.names()} on http://{server.host}:{server.port} "
            f"(kernel={args.kernel}, window={args.window * 1e3:g} ms, "
            f"max batch={args.max_batch} columns)"
        )
        try:
            if args.self_test is not None:
                summary = await run_self_test(server, n_requests=args.self_test)
                print(
                    f"self-test passed: {summary['requests']} concurrent "
                    f"requests against model {summary['model']!r}"
                )
                print(json.dumps(summary["stats"], indent=2))
                return 0
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':>16}  {'kind':>7}  {'m':>10}  {'n':>10}  {'nnz (est.)':>12}  description")
    for name in sorted(DATASETS):
        spec = DATASETS[name]
        print(
            f"{name:>16}  {spec.kind:>7}  {spec.m:>10}  {spec.n:>10}"
            f"  {spec.nnz_estimate:>12.3g}  {spec.description}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fact = sub.add_parser("factorize", help="run NMF on a dataset or matrix file")
    fact.add_argument("input",
                      help="registered dataset name, paper dataset name "
                           "(SSYN/DSYN/Video/Webbase), or .npy/.npz file")
    fact.add_argument("-k", type=int, required=True, help="target rank")
    fact.add_argument("--ranks", type=int, default=1,
                      help="number of SPMD ranks (parallelizable variants only)")
    fact.add_argument("--variant", "--algorithm", dest="variant", default="hpc2d",
                      choices=available_variants(),
                      help="NMF variant by registry name "
                           "(--algorithm is a deprecated alias)")
    fact.add_argument("--backend", default=None, choices=available_backends(),
                      help="SPMD execution backend (lockstep = deterministic, "
                           "scales to hundreds of simulated ranks; process = "
                           "one OS process per rank, true parallelism); "
                           "ignored by sequential-only variants")
    fact.add_argument("--solver", default="bpp", choices=available_solvers(),
                      help="local NLS solver by registry name")
    fact.add_argument("--kernel", default=None,
                      choices=registered_kernels() + ["auto"],
                      help="BPP inner engine (scalar = reference column loop, "
                           "batched = vectorized + stacked Cholesky, numba = "
                           "JIT-compiled when numba is installed, auto = "
                           "fastest available); default scalar")
    fact.add_argument("--iters", type=int, default=20, help="outer iterations")
    fact.add_argument("--seed", type=int, default=42)
    fact.add_argument("--no-overlap", action="store_true",
                      help="run the strictly blocking Algorithm 2/3 schedules "
                           "instead of the default pipelined one (nonblocking "
                           "collectives overlapping compute); results are "
                           "byte-identical either way")
    fact.add_argument("--storage", default=None, choices=list(STORAGE_MODES),
                      help="where each rank's local block of A lives (memory = "
                           "resident, memmap = np.memmap-backed temp files for "
                           "out-of-core blocks; sparse blocks stay in memory); "
                           "results are byte-identical either way")
    fact.add_argument("--no-panel-comm", action="store_true",
                      help="keep the pipelined schedule but issue the "
                           "line-7/line-13 reduce-scatters as monolithic "
                           "blocking calls instead of panel-streaming them "
                           "behind the tiled MM; results are byte-identical "
                           "either way")
    fact.add_argument("--save", help="write the full result to this .npz path")
    fact.set_defaults(func=_cmd_factorize)

    plan = sub.add_parser(
        "plan",
        help="print the cost-model candidate table (variant x grid) for a problem",
    )
    plan.add_argument(
        "input", nargs="?",
        help="registered dataset name or paper dataset name "
             "(SSYN/DSYN/Video/Webbase resolve to paper scale); "
             "omit when using --shape",
    )
    plan.add_argument(
        "--shape", nargs=2, type=int, metavar=("M", "N"),
        help="ad-hoc problem dimensions instead of a dataset name",
    )
    plan.add_argument(
        "--density", type=float, default=None,
        help="nonzero fraction for an ad-hoc sparse problem (default: dense)",
    )
    plan.add_argument("-k", type=int, default=50, help="target rank (default 50)")
    plan.add_argument(
        "-p", "--ranks", type=int, default=600,
        help="number of SPMD ranks to plan for (default 600, the paper's "
             "comparison core count)",
    )
    plan.add_argument(
        "--machine", default="edison", choices=["edison", "laptop", "local"],
        help="machine constants to price against ('local' micro-benchmarks "
             "this host via MachineSpec.calibrate)",
    )
    plan.add_argument("--kernel", default=None,
                      choices=registered_kernels() + ["auto"],
                      help="price the NLS term for this BPP kernel "
                           "(calibrated machines use measured per-kernel "
                           "throughput ratios)")
    plan.add_argument("--backend", default=None, choices=available_backends(),
                      help="also score pipelined-schedule candidates for this "
                           "execution backend (its overlap efficiency decides "
                           "how much communication hides behind compute)")
    plan.set_defaults(func=_cmd_plan)

    var = sub.add_parser("variants", help="list registered NMF variants")
    var.set_defaults(func=_cmd_variants)

    exp = sub.add_parser("experiment", help="regenerate a paper figure or table")
    exp.add_argument("name", choices=["comparison", "scaling", "table3"])
    exp.add_argument("--dataset", choices=sorted(PAPER_DATASETS))
    exp.add_argument("--mode", default="modeled", choices=["modeled", "measured"])
    exp.add_argument("--backend", default="thread", choices=available_backends(),
                     help="SPMD execution backend for measured mode")
    exp.add_argument("--csv", help="also write the series to this CSV path")
    exp.set_defaults(func=_cmd_experiment)

    from repro.bench.__main__ import add_bench_arguments

    bench = sub.add_parser(
        "bench",
        help="measure the benchmark baseline panels and write BENCH_*.json "
             "(same options as python -m repro.bench)",
    )
    add_bench_arguments(bench)
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="serve saved NMF models over HTTP: micro-batched projection of "
             "fresh columns onto the trained basis",
    )
    serve.add_argument(
        "models", nargs="*",
        help=".npz model artifacts to deploy (written by factorize --save); "
             "each may be a bare path (model name = file stem) or NAME=path",
    )
    serve.add_argument("--models-dir", default=None,
                       help="directory to resolve bare model names against; "
                            "with no positional models, every *.npz in it is "
                            "deployed")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8571,
                       help="TCP port (0 = pick a free ephemeral port)")
    serve.add_argument("--kernel", default="auto",
                       choices=registered_kernels() + ["auto"],
                       help="BPP kernel for the batched projection solves "
                            "(default auto = fastest available; responses are "
                            "byte-identical across kernels)")
    serve.add_argument("--window", type=float, default=0.002,
                       help="micro-batch coalescing window in seconds "
                            "(default 0.002)")
    serve.add_argument("--max-batch", type=int, default=256,
                       help="max columns per coalesced NLS call (default 256)")
    serve.add_argument("--queue-limit", type=int, default=256,
                       help="max queued requests before 503 load shedding")
    serve.add_argument("--deadline", type=float, default=2.0,
                       help="default per-request deadline in seconds "
                            "(overridable per request via JSON 'timeout')")
    serve.add_argument("--refresh-every", type=int, default=16,
                       help="ingest endpoint: publish a refreshed model "
                            "version every N ingested columns")
    serve.add_argument("--self-test", nargs="?", type=int, const=8,
                       default=None, metavar="N",
                       help="start the server, fire N concurrent projections "
                            "at it through a stdlib HTTP client (default 8), "
                            "verify 200s + finite residuals, then exit — the "
                            "CI smoke mode")
    serve.set_defaults(func=_cmd_serve)

    data = sub.add_parser("datasets", help="list registered datasets")
    data.set_defaults(func=_cmd_datasets)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
