"""The projection engine: hold ``W`` fixed, solve ``H`` for fresh columns.

Serving traffic is *projection*: given the trained basis ``W`` (m × k) and a
batch of new data columns ``X`` (m × c — new users, documents, video
frames), find

    ``H = argmin_{H ≥ 0} ‖X − W H‖_F``

one small NLS problem per column, solved through the same kernels registry
(:mod:`repro.nls.kernels`) the training loops use — ``batched`` coalesces the
whole micro-batch into one stacked solve, ``scalar`` is the per-column
reference, ``numba`` the JIT engine.

Byte-identity contract
----------------------
The micro-batcher's whole point is that co-batching must be *invisible* to a
client: a request's answer must not depend on which strangers shared its
batch.  Two implementation choices make the response bytes batch-invariant:

1. the right-hand side ``WᵀX`` is computed **per request block**, one gemm
   over exactly the columns that request carried
   (:func:`project_blocks`) — never one gemm over the coalesced batch, whose
   BLAS accumulation order (and therefore low bits) would depend on the
   co-batched strangers;
2. the BPP kernels solve each column's pivot sequence independently and the
   shared primitives (``np.linalg.cholesky`` + ``scipy.linalg.cho_solve``)
   are column-independent, so a column solved inside a coalesced batch is
   bit-identical to the same column solved alone (pinned by
   ``tests/serve/``).

Hence the response for a request co-batched with arbitrary neighbours equals,
bit for bit, the response for the same request served alone — and a
single-column request equals ``project(W, x, kernel="scalar")`` of that
column, for every kernel that honours the registry's byte-parity contract.

Request validation happens here too (:func:`validate_columns`): the server
validates every request at admission, so a malformed request is rejected
alone (HTTP 400) instead of crashing the batched call that serves its
co-batched neighbours.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.nls.base import NLSSolver
from repro.serve.errors import ProjectionRequestError

__all__ = [
    "validate_columns",
    "project",
    "project_blocks",
    "projection_residuals",
    "ModelRefresher",
]


def validate_columns(
    X, n_features: int, *, what: str = "request"
) -> np.ndarray:
    """Validate one request's payload into an ``m × c`` float64 column block.

    Accepts a single column (1-D of length ``n_features``) or a block of
    columns (2-D, ``n_features × c``).  Anything else — wrong length, wrong
    dimensionality, a dtype that is not real-numeric, NaN/Inf entries, or an
    empty batch — raises :class:`ProjectionRequestError` with a message
    precise enough to be returned verbatim as an HTTP 400 body.

    The result is always C-contiguous: BLAS picks a different code path (and
    produces different low bits) for strided views, so normalising the layout
    here keeps response bytes independent of the caller's memory layout.
    """
    try:
        X = np.ascontiguousarray(X, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProjectionRequestError(
            f"{what}: columns must be real-numeric, got data not convertible "
            f"to float64 ({exc})"
        ) from None
    if X.ndim == 1:
        X = X[:, None]
    if X.ndim != 2:
        raise ProjectionRequestError(
            f"{what}: expected one column (1-D) or a column block (2-D), "
            f"got a {X.ndim}-D array of shape {X.shape}"
        )
    if X.shape[1] == 0:
        raise ProjectionRequestError(f"{what}: the column block is empty")
    if X.shape[0] != n_features:
        raise ProjectionRequestError(
            f"{what}: columns have {X.shape[0]} rows but the model expects "
            f"{n_features} features per column"
        )
    if not np.isfinite(X).all():
        bad = int(np.flatnonzero(~np.isfinite(X).all(axis=0))[0])
        raise ProjectionRequestError(
            f"{what}: column {bad} contains NaN or Inf entries"
        )
    return X


def project(
    W: np.ndarray,
    X: np.ndarray,
    *,
    kernel: Optional[str] = None,
    solver: Optional[NLSSolver] = None,
    gram: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Project one request's columns ``X`` onto basis ``W``: the ``k × c`` ``H``.

    ``kernel`` selects the BPP inner engine from the kernels registry
    (``'scalar'``/``'batched'``/``'numba'``/``'auto'``); alternatively pass a
    pre-built ``solver`` — the server passes the model entry's
    persistent-cache solver so repeated batches reuse Cholesky factors.
    ``gram`` is ``WᵀW`` when the caller has it cached (the model store always
    does); ``None`` computes it here.

    ``X`` must be exactly one request's block: the right-hand side is one
    gemm over it, which is what makes the bytes independent of co-batching
    (the micro-batcher concatenates *per-request* right-hand sides via
    :func:`project_blocks` instead of calling gemm on the coalesced batch).
    """
    if X.ndim == 1:
        X = X[:, None]
    return project_blocks(W, [X], kernel=kernel, solver=solver, gram=gram)


def project_blocks(
    W: np.ndarray,
    blocks: Sequence[np.ndarray],
    *,
    kernel: Optional[str] = None,
    solver: Optional[NLSSolver] = None,
    gram: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Project several request blocks in ONE batched NLS call.

    The coalesced-batch entry point the micro-batcher uses: the right-hand
    side is assembled with one ``Wᵀ·block`` gemm **per block** and the solve
    runs once over the concatenation.  Because each request's rhs bytes
    depend only on its own block, and the BPP kernels treat columns
    independently, the slice of the result belonging to a block is
    bit-identical to serving that block alone — co-batching is invisible.
    Returns the ``k × Σc_i`` coefficient block in input order.
    """
    if solver is None:
        from repro.nls.bpp import BlockPrincipalPivoting

        solver = BlockPrincipalPivoting(kernel=kernel)
    if gram is None:
        gram = W.T @ W
    k = W.shape[1]
    total = sum(block.shape[1] for block in blocks)
    rhs = np.empty((k, total))
    offset = 0
    Wt = W.T
    for block in blocks:
        c = block.shape[1]
        # One gemm per request block: rhs bytes depend only on this block.
        rhs[:, offset:offset + c] = Wt @ block
        offset += c
    return solver.solve(gram, rhs)


def projection_residuals(
    W: np.ndarray, X: np.ndarray, H: np.ndarray
) -> np.ndarray:
    """Per-column relative residual ``‖x − W h‖₂ / ‖x‖₂`` (0/0 → 0)."""
    diff = X - W @ H
    norms = np.linalg.norm(X, axis=0)
    res = np.linalg.norm(diff, axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(norms > 0, res / np.where(norms > 0, norms, 1.0), 0.0)
    return out


class ModelRefresher:
    """Incremental model refresh: fold served columns back into the basis.

    Wraps the streaming variant (:class:`~repro.core.streaming.StreamingNMF`)
    seeded from the deployed basis: every ingested column updates the sliding
    window, every ``refresh_every`` columns the basis drifts via warm-started
    ANLS sweeps and the refreshed model is **published back into the store**
    as a new version (:meth:`ModelStore.swap` — the Gram cache invalidates by
    construction, because a swap builds a whole new entry).

    A :class:`~repro.core.observers.CheckpointEvery` observer rides along:
    each ingested column is reported as one synthetic iteration event, so
    every ``checkpoint_every`` columns an ``.npz`` checkpoint of the current
    factors lands on disk — the artifact the store can cold-start from.
    """

    def __init__(
        self,
        store,
        name: str,
        *,
        window: int = 64,
        refresh_every: int = 16,
        refresh_iters: int = 1,
        checkpoint_every: Optional[int] = None,
        checkpoint_template: Union[str, None] = None,
        seed: int = 0,
    ):
        from repro.core.observers import CheckpointEvery
        from repro.core.streaming import StreamingNMF

        self.store = store
        self.name = name
        entry = store.get(name)
        self._stream = StreamingNMF(
            n_pixels=entry.m,
            k=entry.k,
            window=window,
            refresh_every=refresh_every,
            refresh_iters=refresh_iters,
            solver=entry.result.solver or "bpp",
            seed=seed,
        )
        # Seed the stream from the deployed basis instead of a random one.
        self._stream.W = np.array(entry.W)
        self.refresh_every = int(refresh_every)
        self.published_versions: list = []
        self._checkpointer = None
        if checkpoint_every is not None:
            if checkpoint_template is None:
                raise ValueError(
                    "checkpoint_every requires a checkpoint_template path"
                )
            self._checkpointer = CheckpointEvery(checkpoint_every, checkpoint_template)

    @property
    def columns_seen(self) -> int:
        return self._stream.frames_seen

    @property
    def checkpoint_paths(self) -> list:
        return list(self._checkpointer.paths) if self._checkpointer else []

    def ingest(self, column: np.ndarray) -> np.ndarray:
        """Fold one validated column into the model; returns its residual.

        Publishing happens on the streaming variant's refresh cadence: after
        every ``refresh_every``-th column the drifted basis replaces the
        deployed model as a new store version.
        """
        from repro.core.observers import IterationEvent

        column = validate_columns(column, self._stream.n_pixels, what="ingest")
        if column.shape[1] != 1:
            raise ProjectionRequestError(
                f"ingest: exactly one column per ingest call, got {column.shape[1]}"
            )
        residual = self._stream.push_frame(column[:, 0])
        if self._stream.frames_seen % self.refresh_every == 0:
            self._publish()
        if self._checkpointer is not None:
            self._checkpointer.on_iteration(
                IterationEvent(
                    iteration=self._stream.frames_seen - 1,
                    variant="streaming",
                    relative_error=self._stream.window_error(),
                    k=self._stream.k,
                    W=self._stream.W,
                    H=self._stream.current_coefficients(),
                )
            )
        return residual

    def _publish(self) -> None:
        from repro.core.config import NMFConfig
        from repro.core.result import NMFResult

        old = self.store.get(self.name)
        refreshed = NMFResult(
            W=np.array(self._stream.W),
            H=self._stream.current_coefficients(),
            config=NMFConfig(
                k=self._stream.k,
                solver=old.result.config.solver,
                seed=old.result.config.seed,
            ),
            iterations=old.result.iterations,
            variant="streaming",
            solver=old.result.solver,
        )
        entry = self.store.swap(self.name, refreshed)
        self.published_versions.append(entry.version)
