"""NMF-as-a-service: the micro-batched asyncio projection front end.

Two layers, separable for testing:

:class:`ProjectionService`
    The transport-independent micro-batcher.  ``submit()`` validates a
    request at admission (400-class errors are raised *here*, so a malformed
    request can never fail its co-batched neighbours), applies bounded-queue
    load shedding (503) and a per-request deadline (504), then parks the
    request in an ``asyncio.Queue``.  A single worker coroutine drains the
    queue: it collects requests for at most ``batch_window`` seconds or until
    ``max_batch_columns`` columns are pending, groups them by model, and
    serves each group with ONE batched NLS call through
    :func:`repro.serve.project.project` — run in a one-thread executor so the
    event loop keeps admitting traffic (and answering ``/healthz``) while the
    kernel works.  Responses are bit-identical to single-column scalar-kernel
    projection regardless of batch composition (the contract pinned in
    ``tests/serve/``).

:class:`ProjectionServer`
    A stdlib-only HTTP/1.1 front end over ``asyncio.start_server``.  Routes:

    ========  ==============================  ==================================
    method    path                            action
    ========  ==============================  ==================================
    GET       ``/healthz``                    liveness + deployed model listing
    GET       ``/stats``                      queue depth, batch-size histogram,
                                              p50/p99 latency, shed/timeout counts
    POST      ``/v1/models/<name>/project``   micro-batched projection
    POST      ``/v1/models/<name>/ingest``    incremental refresh (streaming fold)
    POST      ``/v1/models/<name>/reload``    hot reload from the backing file
    ========  ==============================  ==================================

    Request body for ``project``: ``{"column": [...]}`` (one column of m
    floats) or ``{"columns": [[...], ...]}`` (several), plus an optional
    ``"timeout"`` in seconds overriding the server's default deadline.  The
    response carries ``h`` (one coefficient vector per requested column),
    per-column relative ``residuals``, the serving model ``version`` and the
    coalesced batch size the request rode in.

The ``repro serve`` CLI subcommand wires a :class:`~repro.serve.store.
ModelStore` into both layers; see :func:`repro.cli.main`.
"""

from __future__ import annotations

import asyncio
import functools
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve.errors import (
    DeadlineExceededError,
    ModelLoadError,
    ModelNotFoundError,
    ProjectionRequestError,
    ServeError,
    ServerOverloadedError,
)
from repro.serve.project import (
    ModelRefresher,
    project_blocks,
    projection_residuals,
    validate_columns,
)
from repro.serve.stats import ServeStats
from repro.serve.store import ModelStore

__all__ = ["ProjectionResponse", "ProjectionService", "ProjectionServer", "run_self_test"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: request bodies above this are rejected with 413 before parsing.
MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass
class ProjectionResponse:
    """What ``ProjectionService.submit`` resolves to for one request."""

    model: str
    version: int
    H: np.ndarray              # k × c, one column per requested column
    residuals: np.ndarray      # per-column relative residuals
    batch_columns: int         # coalesced batch size this request rode in


@dataclass
class _Pending:
    model: str
    columns: np.ndarray
    future: asyncio.Future
    deadline: float            # absolute, in loop.time() terms
    admitted: float = 0.0
    done_event: Optional[asyncio.Event] = field(default=None, repr=False)


class ProjectionService:
    """The micro-batcher: bounded queue → window/size-coalesced NLS calls.

    Parameters
    ----------
    store:
        The :class:`ModelStore` holding deployed models.
    batch_window:
        Seconds the batcher waits after the first queued request for
        companions to coalesce with (default 2 ms).
    max_batch_columns:
        Column budget per batched NLS call; the batcher stops collecting
        early when the pending batch reaches it.
    queue_limit:
        Maximum requests queued; admission beyond it raises
        :class:`ServerOverloadedError` (the HTTP 503).
    default_deadline:
        Per-request deadline in seconds when the request names none; requests
        still queued past their deadline fail with
        :class:`DeadlineExceededError` (the HTTP 504) instead of occupying a
        batch.
    kernel:
        BPP kernel the batched calls route through (``None`` = registry
        default ``scalar``; the CLI defaults to ``auto``).
    """

    def __init__(
        self,
        store: ModelStore,
        *,
        batch_window: float = 0.002,
        max_batch_columns: int = 64,
        queue_limit: int = 256,
        default_deadline: float = 2.0,
        kernel: Optional[str] = None,
        stats: Optional[ServeStats] = None,
    ):
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if max_batch_columns < 1:
            raise ValueError(f"max_batch_columns must be >= 1, got {max_batch_columns}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.store = store
        self.batch_window = float(batch_window)
        self.max_batch_columns = int(max_batch_columns)
        self.queue_limit = int(queue_limit)
        self.default_deadline = float(default_deadline)
        self.kernel = kernel
        self.stats = stats if stats is not None else ServeStats()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._worker_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._worker_task is not None:
            return
        # One worker thread: kernel calls stay serialized (BLAS already uses
        # the cores) while the event loop keeps admitting and timing out work.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-kernel"
        )
        self._worker_task = asyncio.get_running_loop().create_task(self._worker())

    async def stop(self) -> None:
        if self._worker_task is not None:
            self._worker_task.cancel()
            try:
                await self._worker_task
            except asyncio.CancelledError:
                pass
            self._worker_task = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    # -- admission -----------------------------------------------------------
    async def submit(
        self, model: str, columns, *, timeout: Optional[float] = None
    ) -> ProjectionResponse:
        """Admit one request and await its micro-batched response.

        Raises :class:`ModelNotFoundError` / :class:`ProjectionRequestError`
        / :class:`ServerOverloadedError` immediately at admission, and
        :class:`DeadlineExceededError` if the request expires in the queue.
        """
        if self._worker_task is None:
            raise ServeError("the projection service is not started")
        entry = self.store.get(model)
        X = validate_columns(columns, entry.m)
        if self._queue.qsize() >= self.queue_limit:
            self.stats.shed_total += 1
            raise ServerOverloadedError(
                f"request queue is full ({self.queue_limit} pending requests); "
                "load was shed — retry with backoff"
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        pending = _Pending(
            model=model,
            columns=X,
            future=loop.create_future(),
            deadline=now + (self.default_deadline if timeout is None else float(timeout)),
            admitted=now,
        )
        self._queue.put_nowait(pending)
        self.stats.record_admitted()
        self.stats.queue_depth = self._queue.qsize()
        try:
            response = await pending.future
        finally:
            self.stats.queue_depth = self._queue.qsize()
        self.stats.record_latency(loop.time() - pending.admitted)
        return response

    # -- the batcher ---------------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch: List[_Pending] = [first]
            n_columns = first.columns.shape[1]
            horizon = loop.time() + self.batch_window
            while n_columns < self.max_batch_columns:
                remaining = horizon - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
                batch.append(nxt)
                n_columns += nxt.columns.shape[1]
            self.stats.queue_depth = self._queue.qsize()
            try:
                await self._serve_batch(batch, loop)
            except Exception as exc:  # defensive: the worker must survive
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)

    async def _serve_batch(self, batch: List[_Pending], loop) -> None:
        now = loop.time()
        live: List[_Pending] = []
        for pending in batch:
            if pending.future.done():
                continue  # client went away
            if pending.deadline <= now:
                self.stats.deadline_total += 1
                pending.future.set_exception(
                    DeadlineExceededError(
                        f"request for model {pending.model!r} spent "
                        f"{now - pending.admitted:.3f}s queued, past its "
                        f"{pending.deadline - pending.admitted:.3f}s deadline"
                    )
                )
                continue
            live.append(pending)
        if not live:
            return

        groups: Dict[str, List[_Pending]] = {}
        for pending in live:
            groups.setdefault(pending.model, []).append(pending)

        for model, requests in groups.items():
            try:
                entry = self.store.get(model)
            except ModelNotFoundError as exc:  # model removed after admission
                self._fail(requests, exc)
                continue
            # A hot swap between admission and dequeue may have changed the
            # feature length; re-check so a stale request fails alone.
            stale = [r for r in requests if r.columns.shape[0] != entry.m]
            for r in stale:
                self._fail(
                    [r],
                    ProjectionRequestError(
                        f"model {model!r} was swapped to {entry.m} features "
                        f"while the request ({r.columns.shape[0]} features) "
                        "was queued; resubmit against the new version"
                    ),
                )
            requests = [r for r in requests if r.columns.shape[0] == entry.m]
            if not requests:
                continue
            X = np.concatenate([r.columns for r in requests], axis=1)
            try:
                # Per-request rhs blocks: each request's response bytes are
                # independent of its co-batched neighbours (see serve.project).
                H = await loop.run_in_executor(
                    self._executor,
                    functools.partial(
                        project_blocks,
                        entry.W,
                        [r.columns for r in requests],
                        gram=entry.gram,
                        solver=entry.solver_for(self.kernel),
                    ),
                )
            except Exception as exc:
                self._fail(requests, exc)
                continue
            residuals = projection_residuals(entry.W, X, H)
            self.stats.record_batch(len(requests), X.shape[1])
            offset = 0
            for pending in requests:
                c = pending.columns.shape[1]
                if not pending.future.done():
                    pending.future.set_result(
                        ProjectionResponse(
                            model=model,
                            version=entry.version,
                            H=H[:, offset:offset + c],
                            residuals=residuals[offset:offset + c],
                            batch_columns=X.shape[1],
                        )
                    )
                offset += c

    @staticmethod
    def _fail(requests: List[_Pending], exc: Exception) -> None:
        for pending in requests:
            if not pending.future.done():
                pending.future.set_exception(exc)


class ProjectionServer:
    """Stdlib-only asyncio HTTP/1.1 front end over a :class:`ProjectionService`."""

    def __init__(
        self,
        service: ProjectionService,
        host: str = "127.0.0.1",
        port: int = 8571,
        *,
        refresh_window: int = 64,
        refresh_every: int = 16,
    ):
        self.service = service
        self.store = service.store
        self.host = host
        self.port = port
        self.refresh_window = int(refresh_window)
        self.refresh_every = int(refresh_every)
        self._server: Optional[asyncio.AbstractServer] = None
        self._refreshers: Dict[str, ModelRefresher] = {}

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        # port=0 binds an ephemeral port; report the real one.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- one connection ------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                status, payload = exc.status, {"error": str(exc)}
            else:
                status, payload = await self._route(method, path, body)
        except Exception as exc:  # defensive: a handler bug must not kill the loop
            status, payload = 500, {"error": str(exc), "type": type(exc).__name__}
        try:
            body_bytes = json.dumps(payload).encode()
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body_bytes)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + body_bytes)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_request(reader) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body of {length} bytes exceeds the limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    # -- routing -------------------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, {"status": "ok", "models": self.store.describe()}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}
            snapshot = self.service.stats.snapshot()
            snapshot["models"] = self.store.describe()
            return 200, snapshot

        segments = [s for s in path.split("/") if s]
        if len(segments) == 4 and segments[:2] == ["v1", "models"]:
            name, action = segments[2], segments[3]
            if method != "POST":
                return 405, {"error": f"{action} is POST-only"}
            try:
                if action == "project":
                    return await self._project(name, body)
                if action == "ingest":
                    return await self._ingest(name, body)
                if action == "reload":
                    return await self._reload(name)
            except ProjectionRequestError as exc:
                self.service.stats.validation_errors += 1
                return 400, {"error": str(exc), "type": "ProjectionRequestError"}
            except ModelNotFoundError as exc:
                self.service.stats.model_errors += 1
                return 404, {"error": str(exc), "type": "ModelNotFoundError"}
            except ServerOverloadedError as exc:
                return 503, {"error": str(exc), "type": "ServerOverloadedError"}
            except DeadlineExceededError as exc:
                return 504, {"error": str(exc), "type": "DeadlineExceededError"}
            except ModelLoadError as exc:
                return 500, {"error": str(exc), "type": "ModelLoadError"}
        return 404, {"error": f"no route for {method} {path}"}

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProjectionRequestError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ProjectionRequestError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload

    @staticmethod
    def _extract_columns(payload: dict):
        if ("column" in payload) == ("columns" in payload):
            raise ProjectionRequestError(
                "request must carry exactly one of 'column' (one column) or "
                "'columns' (a list of columns)"
            )
        if "column" in payload:
            return payload["column"], True
        columns = payload["columns"]
        if not isinstance(columns, list) or not columns:
            raise ProjectionRequestError("'columns' must be a non-empty list of columns")
        return _transpose_columns(columns), False

    async def _project(self, name: str, body: bytes) -> Tuple[int, dict]:
        payload = self._parse_json(body)
        columns, _single = self._extract_columns(payload)
        timeout = payload.get("timeout")
        if timeout is not None and (not isinstance(timeout, (int, float)) or timeout <= 0):
            raise ProjectionRequestError(
                f"'timeout' must be a positive number of seconds, got {timeout!r}"
            )
        response = await self.service.submit(name, columns, timeout=timeout)
        return 200, {
            "model": response.model,
            "version": response.version,
            "h": response.H.T.tolist(),
            "residuals": response.residuals.tolist(),
            "batch_columns": response.batch_columns,
        }

    async def _ingest(self, name: str, body: bytes) -> Tuple[int, dict]:
        payload = self._parse_json(body)
        if "column" not in payload:
            raise ProjectionRequestError("ingest requires a single 'column'")
        refresher = self._refreshers.get(name)
        if refresher is None:
            self.store.get(name)  # 404 before building a refresher
            refresher = ModelRefresher(
                self.store,
                name,
                window=self.refresh_window,
                refresh_every=self.refresh_every,
            )
            self._refreshers[name] = refresher
        loop = asyncio.get_running_loop()
        residual = await loop.run_in_executor(
            self.service._executor, refresher.ingest, payload["column"]
        )
        entry = self.store.get(name)
        return 200, {
            "model": name,
            "columns_seen": refresher.columns_seen,
            "serving_version": entry.version,
            "foreground_norm": float(np.linalg.norm(residual)),
        }

    async def _reload(self, name: str) -> Tuple[int, dict]:
        entry = self.store.reload(name)
        return 200, {"model": name, "version": entry.version, **entry.metadata}


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


def _transpose_columns(columns: list) -> np.ndarray:
    """A JSON list of columns (each a list of m floats) → an m × c array."""
    try:
        arr = np.asarray(columns, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProjectionRequestError(
            f"'columns' entries must all be equal-length numeric lists ({exc})"
        ) from None
    if arr.ndim != 2:
        raise ProjectionRequestError(
            f"'columns' must be a list of equal-length columns, got a "
            f"{arr.ndim}-D payload"
        )
    return arr.T


async def run_self_test(
    server: ProjectionServer, *, n_requests: int = 8, seed: int = 0
) -> dict:
    """Fire concurrent stdlib-client projections at a running server.

    Used by ``repro serve --self-test`` (the CI smoke): picks the first
    registered model, sends ``n_requests`` concurrent single-column POSTs
    through ``urllib`` worker threads, asserts every response is a 200 with a
    finite residual, and returns a summary including the server's own
    ``/stats`` snapshot.
    """
    import urllib.request

    name = server.store.names()[0]
    entry = server.store.get(name)
    rng = np.random.default_rng(seed)
    columns = np.abs(rng.standard_normal((n_requests, entry.m)))
    base = f"http://{server.host}:{server.port}"

    def call(path: str, data: Optional[bytes] = None) -> Tuple[int, dict]:
        request = urllib.request.Request(
            base + path, data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())

    loop = asyncio.get_running_loop()
    status, health = await loop.run_in_executor(None, call, "/healthz")
    if status != 200 or health.get("status") != "ok":
        raise ServeError(f"/healthz failed: {status} {health}")

    tasks = [
        loop.run_in_executor(
            None,
            functools.partial(
                call,
                f"/v1/models/{name}/project",
                json.dumps({"column": columns[i].tolist()}).encode(),
            ),
        )
        for i in range(n_requests)
    ]
    results = await asyncio.gather(*tasks)
    for status, payload in results:
        if status != 200:
            raise ServeError(f"projection returned {status}: {payload}")
        residuals = payload.get("residuals", [])
        if not residuals or not all(np.isfinite(residuals)):
            raise ServeError(f"projection residuals not finite: {payload}")
    status, stats = await loop.run_in_executor(None, call, "/stats")
    if status != 200:
        raise ServeError(f"/stats failed: {status}")
    return {
        "model": name,
        "requests": n_requests,
        "responses": [payload for _, payload in results],
        "stats": stats,
    }
