"""NMF-as-a-service: model store, micro-batched projection server, refresh.

The serving layer answers the question the training subsystems leave open:
once HPC-NMF has factored ``A ≈ WH``, how do *fresh* columns get coefficients
at interactive latency?  Topic inference for new documents, cluster
assignment for new graph vertices, background subtraction for live video
frames — all are the projection ``h = argmin_{h≥0} ‖x − Wh‖``, one small NLS
problem per column, served through the same kernels registry the training
loops use.

Public surface:

* :class:`ModelStore` / :class:`ModelEntry` — named, versioned, validated
  model artifacts with cached Gram + Cholesky and hot reload
  (:mod:`repro.serve.store`);
* :func:`project` / :func:`validate_columns` / :class:`ModelRefresher` — the
  projection engine and the incremental-refresh hook
  (:mod:`repro.serve.project`);
* :class:`ProjectionService` / :class:`ProjectionServer` — the micro-batcher
  and the stdlib asyncio HTTP front end (:mod:`repro.serve.server`);
* :class:`ServeStats` — queue/batch/latency telemetry
  (:mod:`repro.serve.stats`);
* the error hierarchy with its HTTP status mapping
  (:mod:`repro.serve.errors`).
"""

from repro.serve.errors import (
    DeadlineExceededError,
    ModelLoadError,
    ModelNotFoundError,
    ProjectionRequestError,
    ServeError,
    ServerOverloadedError,
)
from repro.serve.project import (
    ModelRefresher,
    project,
    project_blocks,
    projection_residuals,
    validate_columns,
)
from repro.serve.server import (
    ProjectionResponse,
    ProjectionServer,
    ProjectionService,
    run_self_test,
)
from repro.serve.stats import LatencyWindow, ServeStats, percentile
from repro.serve.store import ModelEntry, ModelStore

__all__ = [
    "DeadlineExceededError",
    "LatencyWindow",
    "ModelEntry",
    "ModelLoadError",
    "ModelNotFoundError",
    "ModelRefresher",
    "ModelStore",
    "percentile",
    "project",
    "project_blocks",
    "projection_residuals",
    "ProjectionRequestError",
    "ProjectionResponse",
    "ProjectionServer",
    "ProjectionService",
    "ServeError",
    "ServerOverloadedError",
    "ServeStats",
    "validate_columns",
]
