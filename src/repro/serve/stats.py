"""Serving telemetry: counters, batch-size histogram, latency quantiles.

Everything here is plain-Python and allocation-light — it runs on the event
loop between batches.  :class:`ServeStats` is the single object the
micro-batcher, the HTTP front end and the ``/stats`` endpoint share; its
:meth:`~ServeStats.snapshot` is the JSON the endpoint returns.

Latency quantiles use the *nearest-rank* definition over a bounded ring of
the most recent observations (default 4096): p50/p99 of a live server should
describe recent traffic, not the whole process lifetime.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Dict, List

__all__ = ["percentile", "LatencyWindow", "ServeStats"]


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]); NaN if empty."""
    if not values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


class LatencyWindow:
    """Bounded ring of recent latency observations with quantile queries."""

    def __init__(self, maxlen: int = 4096):
        self._ring: Deque[float] = deque(maxlen=maxlen)

    def record(self, seconds: float) -> None:
        self._ring.append(float(seconds))

    def __len__(self) -> int:
        return len(self._ring)

    def quantiles(self, qs=(50.0, 99.0)) -> Dict[str, float]:
        values = list(self._ring)
        return {f"p{q:g}": percentile(values, q) for q in qs}


class ServeStats:
    """Shared telemetry of one projection service.

    ``batch_columns`` histograms the *coalesced* batch size (total columns
    per kernel call) — the number that shows whether micro-batching is
    actually coalescing traffic or degenerating to one call per request.
    """

    def __init__(self, latency_window: int = 4096):
        self.requests_total = 0
        self.responses_total = 0
        self.columns_total = 0
        self.batches_total = 0
        self.shed_total = 0          # 503s: queue full at admission
        self.deadline_total = 0      # 504s: expired in the queue
        self.validation_errors = 0   # 400s: rejected at admission
        self.model_errors = 0        # 404s: unknown model name
        self.batch_columns: Counter = Counter()
        self.latency = LatencyWindow(latency_window)
        self.queue_depth = 0         # gauge, maintained by the service

    # -- recording hooks (called by the service / front end) -----------------
    def record_admitted(self) -> None:
        self.requests_total += 1

    def record_batch(self, n_requests: int, n_columns: int) -> None:
        self.batches_total += 1
        self.responses_total += n_requests
        self.columns_total += n_columns
        self.batch_columns[n_columns] += 1

    def record_latency(self, seconds: float) -> None:
        self.latency.record(seconds)

    # -- derived views -------------------------------------------------------
    @property
    def mean_batch_columns(self) -> float:
        if self.batches_total == 0:
            return float("nan")
        return self.columns_total / self.batches_total

    def snapshot(self) -> dict:
        """The JSON-able state the ``/stats`` endpoint returns."""
        return {
            "requests_total": self.requests_total,
            "responses_total": self.responses_total,
            "columns_total": self.columns_total,
            "batches_total": self.batches_total,
            "shed_total": self.shed_total,
            "deadline_total": self.deadline_total,
            "validation_errors": self.validation_errors,
            "model_errors": self.model_errors,
            "queue_depth": self.queue_depth,
            "mean_batch_columns": self.mean_batch_columns,
            "batch_columns_histogram": {
                str(size): count
                for size, count in sorted(self.batch_columns.items())
            },
            "latency_seconds": self.latency.quantiles((50.0, 99.0)),
        }
