"""Exception hierarchy of the serving layer.

Every serve-raised error derives from :class:`ServeError` (and therefore from
:class:`~repro.util.errors.ReproError`), and each maps to exactly one HTTP
status in the front end (:mod:`repro.serve.server`):

=============================  ======  =======================================
exception                      status  meaning
=============================  ======  =======================================
:class:`ProjectionRequestError`   400  the request itself is malformed (wrong
                                       column length, non-numeric dtype,
                                       NaN/Inf entries, bad JSON)
:class:`ModelNotFoundError`       404  no model registered under that name
:class:`ServerOverloadedError`    503  the bounded request queue is full —
                                       the server sheds load instead of
                                       growing an unbounded backlog
:class:`DeadlineExceededError`    504  the request expired in the queue
                                       before a batch could serve it
=============================  ======  =======================================

Validation happens at *admission* (before a request enters the micro-batch
queue), so one malformed request is rejected alone with a 400 and can never
poison the batched NLS call that serves its innocent co-batched neighbours.

:class:`~repro.util.errors.ModelLoadError` (a bad artifact on disk) is
re-exported here for convenience; it surfaces as a 500 if a hot reload is
attempted against a corrupt file — the previous model version keeps serving.
"""

from __future__ import annotations

from repro.util.errors import ModelLoadError, ReproError

__all__ = [
    "ServeError",
    "ModelLoadError",
    "ModelNotFoundError",
    "ProjectionRequestError",
    "ServerOverloadedError",
    "DeadlineExceededError",
]


class ServeError(ReproError):
    """Base class for all errors raised by the serving layer."""


class ModelNotFoundError(ServeError, KeyError):
    """No model is registered in the store under the requested name."""

    def __init__(self, name: str, known: list):
        self.name = name
        self.known = sorted(known)
        # KeyError.__str__ would repr() the message; go through Exception.
        Exception.__init__(
            self, f"unknown model {name!r}; registered models: {self.known}"
        )

    def __str__(self) -> str:
        return self.args[0]


class ProjectionRequestError(ServeError, ValueError):
    """A projection request failed validation (the HTTP 400 of the service)."""


class ServerOverloadedError(ServeError, RuntimeError):
    """The bounded request queue is full; the request was shed (HTTP 503)."""


class DeadlineExceededError(ServeError, TimeoutError):
    """The request's deadline passed before it could be served (HTTP 504)."""
