"""The model store: named, versioned, validated ``NMFResult`` artifacts.

The store is the serving layer's source of truth for *which factors are
deployed*.  Each registered model is held as an immutable
:class:`ModelEntry` that pre-computes everything projection needs per model
version:

* ``W`` — the frozen basis (read-only, C-contiguous float64);
* ``gram`` — the cached ``WᵀW`` (the ``m·k²`` matmul no request should pay);
* ``cholesky`` — the Cholesky factor of a ridge-stabilised Gram, computed at
  load time both as an SPD validity check and as the warm-start/diagnostic
  factor for the refresh path;
* per-kernel BPP solvers with a *persistent* passive-pattern cache
  (:class:`~repro.nls.bpp.BlockPrincipalPivoting` with
  ``persistent_cache=True``): micro-batches that revisit a passive-set
  pattern reuse the Cholesky factor computed for an earlier batch, which is
  bit-safe because the Gram never changes within a model version.

**Gram-cache invalidation rule** (also documented in
``docs/ARCHITECTURE.md``): caches belong to the entry, never to the store.
:meth:`ModelStore.swap` / :meth:`ModelStore.reload` build a complete new
entry (fresh Gram, fresh Cholesky, empty pattern caches) and then atomically
replace the name binding; they never mutate an existing entry.  In-flight
batches keep serving from the entry object they resolved at dequeue time, so
a hot swap drops no requests — the next batch resolves the new version.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.result import NMFResult
from repro.nls.bpp import BlockPrincipalPivoting
from repro.serve.errors import ModelLoadError, ModelNotFoundError

__all__ = ["ModelEntry", "ModelStore"]

#: ridge added to the Gram diagonal before the validity Cholesky, scaled by
#: the largest diagonal entry — the same minimal stabilisation BPP applies to
#: an exactly singular Gram.
_RIDGE = 1e-12


@dataclass(frozen=True)
class ModelEntry:
    """One immutable deployed model version.

    Never mutate the arrays (they are marked read-only); build a new entry
    through the store to change anything.  ``solver_for`` hands out the
    per-kernel BPP solver whose persistent pattern cache is bound to this
    entry's Gram — sharing it across micro-batches is what makes repeated
    serving cheap, and discarding the whole entry is what keeps a model swap
    correct.
    """

    name: str
    version: int
    result: NMFResult
    W: np.ndarray
    gram: np.ndarray
    cholesky: np.ndarray
    metadata: dict
    source: Optional[Path] = None
    _solvers: Dict[str, BlockPrincipalPivoting] = field(
        default_factory=dict, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def m(self) -> int:
        """Rows of ``W`` — the feature length every request column must have."""
        return self.W.shape[0]

    @property
    def k(self) -> int:
        """Rank of the model (columns of ``W``)."""
        return self.W.shape[1]

    def solver_for(self, kernel: Optional[str]) -> BlockPrincipalPivoting:
        """The entry's persistent-cache BPP solver for ``kernel`` (memoised)."""
        key = kernel or "scalar"
        with self._lock:
            solver = self._solvers.get(key)
            if solver is None:
                solver = BlockPrincipalPivoting(kernel=kernel, persistent_cache=True)
                self._solvers[key] = solver
            return solver

    def describe(self) -> dict:
        """JSON-able summary for listings and the ``/stats`` endpoint."""
        return {
            "name": self.name,
            "version": self.version,
            "source": str(self.source) if self.source else None,
            **self.metadata,
        }


class ModelStore:
    """Loads, validates, lists and hot-swaps named model entries.

    Parameters
    ----------
    root:
        Optional directory; :meth:`load_all` registers every ``*.npz`` in it,
        and bare names passed to :meth:`load` resolve against it.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else None
        self._models: Dict[str, ModelEntry] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------
    def load(self, path: Union[str, Path], name: Optional[str] = None) -> ModelEntry:
        """Register the model saved at ``path`` (default name: the file stem).

        Raises :class:`~repro.util.errors.ModelLoadError` when the artifact
        is missing, corrupt, or fails serving validation.
        """
        path = Path(path)
        if not path.exists() and self.root is not None and not path.is_absolute():
            path = self.root / path
        result = NMFResult.load(path)  # raises ModelLoadError with the path
        return self._register(name or path.stem, result, source=path)

    def load_all(self) -> List[ModelEntry]:
        """Register every ``*.npz`` under ``root``; returns the new entries."""
        if self.root is None:
            raise ModelLoadError("this store has no root directory to scan")
        paths = sorted(self.root.glob("*.npz"))
        if not paths:
            raise ModelLoadError(
                f"no *.npz model artifacts found under {self.root}", path=self.root
            )
        return [self.load(path) for path in paths]

    def add_result(self, name: str, result: NMFResult) -> ModelEntry:
        """Register an in-memory result (no backing file) under ``name``."""
        return self._register(name, result, source=None)

    # -- lookup --------------------------------------------------------------
    def get(self, name: str) -> ModelEntry:
        """The current entry for ``name`` (raises :class:`ModelNotFoundError`)."""
        try:
            return self._models[name]
        except KeyError:
            raise ModelNotFoundError(name, list(self._models)) from None

    def names(self) -> List[str]:
        return sorted(self._models)

    def describe(self) -> List[dict]:
        """One :meth:`ModelEntry.describe` dict per registered model."""
        return [self._models[name].describe() for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    # -- hot swap ------------------------------------------------------------
    def reload(self, name: str) -> ModelEntry:
        """Re-read ``name`` from its backing file; atomically swap versions.

        The new entry is fully built (validated, Gram + Cholesky recomputed,
        caches empty) *before* the name binding changes, so a corrupt file on
        disk raises :class:`ModelLoadError` and leaves the previous version
        serving.  In-flight batches finish on whichever entry they resolved.
        """
        entry = self.get(name)
        if entry.source is None:
            raise ModelLoadError(
                f"model {name!r} was registered in memory and has no backing "
                "file to reload from"
            )
        result = NMFResult.load(entry.source)
        return self._register(name, result, source=entry.source)

    def swap(self, name: str, result: NMFResult) -> ModelEntry:
        """Replace (or create) ``name`` with ``result``; bumps the version."""
        entry = self._models.get(name)
        return self._register(name, result, source=entry.source if entry else None)

    # -- internals -----------------------------------------------------------
    def _register(
        self, name: str, result: NMFResult, source: Optional[Path]
    ) -> ModelEntry:
        entry = self._build_entry(name, result, source)
        with self._lock:
            previous = self._models.get(name)
            if previous is not None:
                entry = ModelEntry(
                    name=entry.name,
                    version=previous.version + 1,
                    result=entry.result,
                    W=entry.W,
                    gram=entry.gram,
                    cholesky=entry.cholesky,
                    metadata=entry.metadata,
                    source=entry.source,
                )
            self._models[name] = entry  # atomic rebind: readers see old or new
        return entry

    @staticmethod
    def _build_entry(
        name: str, result: NMFResult, source: Optional[Path]
    ) -> ModelEntry:
        described = f"model {name!r}" + (f" ({source})" if source else "")
        W = np.ascontiguousarray(np.asarray(result.W, dtype=np.float64))
        if W.ndim != 2 or W.shape[0] < 1 or W.shape[1] < 1:
            raise ModelLoadError(
                f"{described}: W must be a 2-D m×k basis, got shape {W.shape}",
                path=source,
            )
        if not np.isfinite(W).all():
            raise ModelLoadError(
                f"{described}: W contains non-finite entries", path=source
            )
        if (W < 0).any():
            raise ModelLoadError(
                f"{described}: W has negative entries; not a valid NMF basis",
                path=source,
            )
        if not W.any(axis=0).all():
            dead = int(np.flatnonzero(~W.any(axis=0))[0])
            raise ModelLoadError(
                f"{described}: basis column {dead} is identically zero; the "
                "Gram matrix would be singular",
                path=source,
            )
        W.setflags(write=False)
        gram = W.T @ W
        gram.setflags(write=False)
        k = W.shape[1]
        try:
            cholesky = np.linalg.cholesky(
                gram + np.eye(k) * (_RIDGE * float(gram.diagonal().max()))
            )
        except np.linalg.LinAlgError as exc:
            raise ModelLoadError(
                f"{described}: WᵀW is not positive definite even after ridge "
                "stabilisation; the basis columns are numerically dependent",
                path=source,
            ) from exc
        cholesky.setflags(write=False)
        return ModelEntry(
            name=name,
            version=1,
            result=result,
            W=W,
            gram=gram,
            cholesky=cholesky,
            metadata=result.model_metadata(),
            source=source,
        )
